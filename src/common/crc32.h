#ifndef BATI_COMMON_CRC32_H_
#define BATI_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace bati {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip checksum) over `n` bytes.
/// Chain blocks by passing the previous result as `seed`. Used to detect
/// truncated or garbled checkpoint files and fleet wire frames — integrity
/// only, not cryptographic.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(const std::string& s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

/// Fixed-width lowercase hex rendering ("%08x") of a CRC, the form the
/// checkpoint header and the fleet result frames embed.
std::string Crc32Hex(uint32_t crc);

/// Strict inverse of Crc32Hex: exactly eight lowercase/uppercase hex
/// digits. Returns false (leaving *out untouched) on anything else.
bool ParseCrc32Hex(const std::string& token, uint32_t* out);

}  // namespace bati

#endif  // BATI_COMMON_CRC32_H_
