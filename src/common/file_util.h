#ifndef BATI_COMMON_FILE_UTIL_H_
#define BATI_COMMON_FILE_UTIL_H_

#include <string>

#include "common/status.h"

namespace bati {

/// Writes `contents` to `path` crash-consistently: the bytes go to a
/// temporary sibling file (`path` + ".tmp") which is flushed, synced, and
/// atomically renamed over `path`. A reader therefore observes either the
/// previous complete file or the new complete file — never a truncated
/// mixture — even if the process dies mid-write. Shared by the checkpoint
/// writer and the layout-CSV exporter.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

}  // namespace bati

#endif  // BATI_COMMON_FILE_UTIL_H_
