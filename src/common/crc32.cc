#include "common/crc32.h"

#include <array>
#include <cstdio>

namespace bati {

namespace {

/// The reflected IEEE polynomial table, computed once at startup. 256
/// entries of 4 bytes; building it beats shipping a 1 KiB literal.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const std::array<uint32_t, 256>& table = Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string Crc32Hex(uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

bool ParseCrc32Hex(const std::string& token, uint32_t* out) {
  if (token.size() != 8) return false;
  uint32_t value = 0;
  for (char c : token) {
    const int digit = HexDigit(c);
    if (digit < 0) return false;
    value = (value << 4) | static_cast<uint32_t>(digit);
  }
  *out = value;
  return true;
}

}  // namespace bati
