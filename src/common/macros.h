#ifndef BATI_COMMON_MACROS_H_
#define BATI_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Internal invariant-checking macros. These terminate the process on
/// violation; they guard programmer errors, not user input (user input is
/// validated with Status at API boundaries).

namespace bati::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace bati::internal

#define BATI_CHECK(expr)                                      \
  do {                                                        \
    if (!(expr)) {                                            \
      ::bati::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                         \
  } while (0)

#define BATI_CHECK_OK(status_expr)                                         \
  do {                                                                     \
    const auto bati_check_ok_status = (status_expr);                       \
    if (!bati_check_ok_status.ok()) {                                      \
      std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, bati_check_ok_status.message().c_str());      \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define BATI_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;           \
  TypeName& operator=(const TypeName&) = delete

#endif  // BATI_COMMON_MACROS_H_
