#ifndef BATI_COMMON_STATUS_H_
#define BATI_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace bati {

/// Error codes used across the library's public API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  /// A transient failure (e.g. an injected what-if fault); retrying the
  /// same operation may succeed.
  kUnavailable,
  /// The operation exceeded its (simulated-clock) deadline.
  kDeadlineExceeded,
};

/// Lightweight status object (RocksDB/Abseil idiom). The library does not
/// throw exceptions across API boundaries; fallible operations return Status
/// or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad column".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T. Access to the value requires ok().
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from Status, mirroring absl::StatusOr usage.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    BATI_CHECK(!status_.ok());  // OK status must carry a value.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    BATI_CHECK(ok());
    return *value_;
  }
  T& value() & {
    BATI_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    BATI_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace bati

#endif  // BATI_COMMON_STATUS_H_
