#include "common/rng.h"

#include <cmath>
#include <numeric>

namespace bati {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  // xoshiro256**
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  BATI_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  BATI_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    BATI_CHECK(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) {
    return static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Floating-point edge.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  BATI_CHECK(k <= n);
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  // Partial Fisher-Yates: first k positions become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace bati
