#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace bati {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double Mean(const std::vector<double>& v) {
  RunningStats s;
  for (double x : v) s.Add(x);
  return s.mean();
}

double StdDev(const std::vector<double>& v) {
  RunningStats s;
  for (double x : v) s.Add(x);
  return s.stddev();
}

}  // namespace bati
