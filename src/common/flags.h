#ifndef BATI_COMMON_FLAGS_H_
#define BATI_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bati {

/// Strict numeric flag parsing: the whole token must parse — no silent
/// atoll-style truncation to 0. Prints a clear error to stderr and returns
/// false otherwise. `flag` names the flag in the error message.
bool ParseInt64Flag(const char* flag, const char* v, int64_t* out);
bool ParseUint64Flag(const char* flag, const char* v, uint64_t* out);
bool ParseDoubleFlag(const char* flag, const char* v, double* out);
/// ParseDoubleFlag restricted to [0, 1].
bool ParseRateFlag(const char* flag, const char* v, double* out);

/// The strict flag table shared by bati_tune, bati_export, and bati_batch:
/// register every flag against its output location, then Parse(). All
/// three tools validate identically — an unknown flag, a missing or
/// malformed value, or a bound violation prints one clear line to stderr
/// and makes Parse() return false, which the tools turn into usage + exit
/// code 2.
///
/// Accepted syntax for valued flags: `--flag VALUE` and `--flag=VALUE`.
/// Boolean flags take no value (`--flag=X` on one is an error), except
/// optional-value flags registered with AddOptionalValue (the
/// `--metrics[=FILE]` shape).
class FlagParser {
 public:
  /// Registers `--name` taking a string value.
  void AddString(const std::string& name, std::string* out);

  /// Registers `--name` as a presence switch: seeing it sets *out = true.
  void AddBool(const std::string& name, bool* out);

  /// Registers `--name` taking a strictly parsed integer >= `min`.
  void AddInt64(const std::string& name, int64_t* out,
                int64_t min = INT64_MIN);

  /// Registers `--name` taking a strictly parsed non-negative integer.
  void AddUint64(const std::string& name, uint64_t* out);

  /// Registers `--name` taking a strictly parsed double >= `min`.
  void AddDouble(const std::string& name, double* out, double min = -1e300);

  /// Registers `--name` taking a rate in [0, 1].
  void AddRate(const std::string& name, double* out);

  /// Registers `--name[=VALUE]`: bare presence sets *flag; the `=VALUE`
  /// form additionally stores the (non-empty) value.
  void AddOptionalValue(const std::string& name, bool* flag,
                        std::string* value);

  /// Parses argv[1..argc). Returns false after printing a one-line error
  /// on any violation. `--help` / `-h` also return false (the caller
  /// prints usage either way) with *help set when provided.
  bool Parse(int argc, char** argv, bool* help = nullptr) const;

 private:
  enum class Kind { kString, kBool, kInt64, kUint64, kDouble, kRate,
                    kOptionalValue };
  struct Flag {
    std::string name;  // with the leading "--"
    Kind kind = Kind::kString;
    std::string* str = nullptr;
    bool* boolean = nullptr;
    int64_t* i64 = nullptr;
    uint64_t* u64 = nullptr;
    double* dbl = nullptr;
    int64_t min_i64 = INT64_MIN;
    double min_dbl = -1e300;
  };

  const Flag* Find(const std::string& name) const;
  static bool Apply(const Flag& flag, const char* value);

  std::vector<Flag> flags_;
};

}  // namespace bati

#endif  // BATI_COMMON_FLAGS_H_
