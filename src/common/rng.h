#ifndef BATI_COMMON_RNG_H_
#define BATI_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace bati {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256** seeded through SplitMix64). All randomized components of the
/// library (MCTS, rollout, bandits, DQN, workload synthesis) draw from an Rng
/// owned by the caller so every experiment is reproducible from a seed, as the
/// paper's evaluation protocol requires (5 seeds, mean and standard deviation).
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi], inclusive on both ends. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box-Muller).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Samples an element index from non-negative weights, proportional to
  /// weight. If all weights are zero, samples uniformly. Requires non-empty.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Draws k distinct indices from [0, n) uniformly (k <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks an independent child stream; deterministic given parent state.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bati

#endif  // BATI_COMMON_RNG_H_
