#ifndef BATI_COMMON_STRINGS_H_
#define BATI_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace bati {

/// Joins elements with a separator, e.g. Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delimiter);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

}  // namespace bati

#endif  // BATI_COMMON_STRINGS_H_
