#include "common/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define BATI_HAVE_FSYNC 1
#endif

namespace bati {

namespace {

#ifdef BATI_HAVE_FSYNC
/// Syncs the directory containing `path`, making the rename itself — not
/// just the file's bytes — durable. Without this, a crash immediately after
/// rename(2) can lose the directory entry: the data blocks are on disk but
/// the name still points at the old file (or nothing).
bool SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = fsync(fd) == 0;
  close(fd);
  return ok;
}
#endif

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open file for write: " + tmp + " (" +
                            std::strerror(errno) + ")");
  }
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), f) ==
                contents.size();
  ok = std::fflush(f) == 0 && ok;
#ifdef BATI_HAVE_FSYNC
  // Make the rename durable: without the fsync a crash shortly after the
  // rename could surface an empty (not merely stale) file on some
  // filesystems.
  ok = fsync(fileno(f)) == 0 && ok;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path + " (" +
                            std::strerror(errno) + ")");
  }
#ifdef BATI_HAVE_FSYNC
  if (!SyncParentDir(path)) {
    return Status::Internal("directory fsync failed after rename: " + path);
  }
#endif
  return Status::Ok();
}

}  // namespace bati
