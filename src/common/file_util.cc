#include "common/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define BATI_HAVE_FSYNC 1
#endif

namespace bati {

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open file for write: " + tmp + " (" +
                            std::strerror(errno) + ")");
  }
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), f) ==
                contents.size();
  ok = std::fflush(f) == 0 && ok;
#ifdef BATI_HAVE_FSYNC
  // Make the rename durable: without the fsync a crash shortly after the
  // rename could surface an empty (not merely stale) file on some
  // filesystems.
  ok = fsync(fileno(f)) == 0 && ok;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path + " (" +
                            std::strerror(errno) + ")");
  }
  return Status::Ok();
}

}  // namespace bati
