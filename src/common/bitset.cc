#include "common/bitset.h"

#include <bit>

namespace bati {

namespace {
constexpr size_t kBitsPerWord = 64;

size_t WordsFor(size_t universe) {
  return (universe + kBitsPerWord - 1) / kBitsPerWord;
}
}  // namespace

DynamicBitset::DynamicBitset(size_t universe_size)
    : universe_size_(universe_size), words_(WordsFor(universe_size), 0) {}

DynamicBitset DynamicBitset::FromIndices(size_t universe_size,
                                         const std::vector<size_t>& indices) {
  DynamicBitset b(universe_size);
  for (size_t i : indices) b.set(i);
  return b;
}

size_t DynamicBitset::count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

bool DynamicBitset::test(size_t pos) const {
  BATI_CHECK(pos < universe_size_);
  return (words_[pos / kBitsPerWord] >> (pos % kBitsPerWord)) & 1ULL;
}

void DynamicBitset::set(size_t pos) {
  BATI_CHECK(pos < universe_size_);
  words_[pos / kBitsPerWord] |= (1ULL << (pos % kBitsPerWord));
}

void DynamicBitset::reset(size_t pos) {
  BATI_CHECK(pos < universe_size_);
  words_[pos / kBitsPerWord] &= ~(1ULL << (pos % kBitsPerWord));
}

void DynamicBitset::clear() {
  for (uint64_t& w : words_) w = 0;
}

DynamicBitset DynamicBitset::With(size_t pos) const {
  DynamicBitset out = *this;
  out.set(pos);
  return out;
}

DynamicBitset DynamicBitset::Without(size_t pos) const {
  DynamicBitset out = *this;
  out.reset(pos);
  return out;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool DynamicBitset::IsSubsetOfWith(const DynamicBitset& other,
                                   size_t extra) const {
  CheckCompatible(other);
  BATI_CHECK(extra < universe_size_);
  const size_t extra_word = extra / kBitsPerWord;
  const uint64_t extra_bit = 1ULL << (extra % kBitsPerWord);
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t outside = words_[i] & ~other.words_[i];
    if (i == extra_word) outside &= ~extra_bit;
    if (outside != 0) return false;
  }
  return true;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

DynamicBitset DynamicBitset::operator|(const DynamicBitset& other) const {
  CheckCompatible(other);
  DynamicBitset out(universe_size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] | other.words_[i];
  }
  return out;
}

DynamicBitset DynamicBitset::operator&(const DynamicBitset& other) const {
  CheckCompatible(other);
  DynamicBitset out(universe_size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & other.words_[i];
  }
  return out;
}

DynamicBitset DynamicBitset::operator-(const DynamicBitset& other) const {
  CheckCompatible(other);
  DynamicBitset out(universe_size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & ~other.words_[i];
  }
  return out;
}

bool DynamicBitset::operator==(const DynamicBitset& other) const {
  return universe_size_ == other.universe_size_ && words_ == other.words_;
}

std::vector<size_t> DynamicBitset::ToIndices() const {
  std::vector<size_t> out;
  out.reserve(count());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      out.push_back(w * kBitsPerWord + static_cast<size_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

uint64_t DynamicBitset::Hash() const {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001B3ULL;
  }
  h ^= universe_size_;
  h *= 0x100000001B3ULL;
  return h;
}

std::string DynamicBitset::ToString() const {
  std::string out = "{";
  bool first = true;
  for (size_t i : ToIndices()) {
    if (!first) out += ",";
    out += std::to_string(i);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace bati
