#ifndef BATI_COMMON_BITSET_H_
#define BATI_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"

namespace bati {

/// Fixed-universe dynamic bitset used to represent index configurations
/// (subsets of the candidate index universe). Configuration search touches
/// millions of subset/superset tests and hash lookups, so the representation
/// is word-packed with O(words) set algebra.
class DynamicBitset {
 public:
  /// Empty set over a universe of `universe_size` elements.
  explicit DynamicBitset(size_t universe_size = 0);

  /// Builds a set from explicit element ids (all < universe_size).
  static DynamicBitset FromIndices(size_t universe_size,
                                   const std::vector<size_t>& indices);

  size_t universe_size() const { return universe_size_; }

  /// Number of elements in the set.
  size_t count() const;

  bool empty() const { return count() == 0; }

  bool test(size_t pos) const;
  void set(size_t pos);
  void reset(size_t pos);
  void clear();

  /// Returns a copy with `pos` added.
  DynamicBitset With(size_t pos) const;

  /// Returns a copy with `pos` removed.
  DynamicBitset Without(size_t pos) const;

  /// True iff this is a subset of (or equal to) `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// True iff this is a subset of `other` ∪ {extra}: the subset test the
  /// derived-cost index runs per posting-list entry, without materializing
  /// the extended configuration.
  bool IsSubsetOfWith(const DynamicBitset& other, size_t extra) const;

  /// True iff the two sets share at least one element.
  bool Intersects(const DynamicBitset& other) const;

  DynamicBitset operator|(const DynamicBitset& other) const;
  DynamicBitset operator&(const DynamicBitset& other) const;
  DynamicBitset operator-(const DynamicBitset& other) const;

  bool operator==(const DynamicBitset& other) const;
  bool operator!=(const DynamicBitset& other) const {
    return !(*this == other);
  }

  /// Element ids present, ascending.
  std::vector<size_t> ToIndices() const;

  /// Stable 64-bit hash of the contents (FNV-1a over words).
  uint64_t Hash() const;

  /// e.g. "{1,4,7}" for debugging and traces.
  std::string ToString() const;

 private:
  size_t universe_size_;
  std::vector<uint64_t> words_;

  void CheckCompatible(const DynamicBitset& other) const {
    BATI_CHECK(universe_size_ == other.universe_size_);
  }
};

/// Hash functor for unordered containers keyed by configurations.
struct DynamicBitsetHash {
  size_t operator()(const DynamicBitset& b) const {
    return static_cast<size_t>(b.Hash());
  }
};

}  // namespace bati

#endif  // BATI_COMMON_BITSET_H_
