#include "common/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"

namespace bati {

bool ParseInt64Flag(const char* flag, const char* v, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (*v == '\0' || errno != 0 || end == nullptr || *end != '\0') {
    std::fprintf(stderr, "invalid integer for %s: '%s'\n", flag, v);
    return false;
  }
  *out = parsed;
  return true;
}

bool ParseUint64Flag(const char* flag, const char* v, uint64_t* out) {
  int64_t parsed = 0;
  if (!ParseInt64Flag(flag, v, &parsed) || parsed < 0) {
    if (parsed < 0) {
      std::fprintf(stderr, "%s must be non-negative, got '%s'\n", flag, v);
    }
    return false;
  }
  *out = static_cast<uint64_t>(parsed);
  return true;
}

bool ParseDoubleFlag(const char* flag, const char* v, double* out) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (*v == '\0' || errno != 0 || end == nullptr || *end != '\0') {
    std::fprintf(stderr, "invalid number for %s: '%s'\n", flag, v);
    return false;
  }
  *out = parsed;
  return true;
}

bool ParseRateFlag(const char* flag, const char* v, double* out) {
  if (!ParseDoubleFlag(flag, v, out)) return false;
  if (*out < 0.0 || *out > 1.0) {
    std::fprintf(stderr, "%s must be in [0, 1], got '%s'\n", flag, v);
    return false;
  }
  return true;
}

void FlagParser::AddString(const std::string& name, std::string* out) {
  Flag flag;
  flag.name = "--" + name;
  flag.kind = Kind::kString;
  flag.str = out;
  flags_.push_back(flag);
}

void FlagParser::AddBool(const std::string& name, bool* out) {
  Flag flag;
  flag.name = "--" + name;
  flag.kind = Kind::kBool;
  flag.boolean = out;
  flags_.push_back(flag);
}

void FlagParser::AddInt64(const std::string& name, int64_t* out,
                          int64_t min) {
  Flag flag;
  flag.name = "--" + name;
  flag.kind = Kind::kInt64;
  flag.i64 = out;
  flag.min_i64 = min;
  flags_.push_back(flag);
}

void FlagParser::AddUint64(const std::string& name, uint64_t* out) {
  Flag flag;
  flag.name = "--" + name;
  flag.kind = Kind::kUint64;
  flag.u64 = out;
  flags_.push_back(flag);
}

void FlagParser::AddDouble(const std::string& name, double* out,
                           double min) {
  Flag flag;
  flag.name = "--" + name;
  flag.kind = Kind::kDouble;
  flag.dbl = out;
  flag.min_dbl = min;
  flags_.push_back(flag);
}

void FlagParser::AddRate(const std::string& name, double* out) {
  Flag flag;
  flag.name = "--" + name;
  flag.kind = Kind::kRate;
  flag.dbl = out;
  flags_.push_back(flag);
}

void FlagParser::AddOptionalValue(const std::string& name, bool* flag_out,
                                  std::string* value) {
  Flag flag;
  flag.name = "--" + name;
  flag.kind = Kind::kOptionalValue;
  flag.boolean = flag_out;
  flag.str = value;
  flags_.push_back(flag);
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool FlagParser::Apply(const Flag& flag, const char* value) {
  const char* name = flag.name.c_str();
  switch (flag.kind) {
    case Kind::kString:
      *flag.str = value;
      return true;
    case Kind::kInt64:
      if (!ParseInt64Flag(name, value, flag.i64)) return false;
      if (*flag.i64 < flag.min_i64) {
        std::fprintf(stderr, "%s must be >= %lld, got '%s'\n", name,
                     static_cast<long long>(flag.min_i64), value);
        return false;
      }
      return true;
    case Kind::kUint64:
      return ParseUint64Flag(name, value, flag.u64);
    case Kind::kDouble:
      if (!ParseDoubleFlag(name, value, flag.dbl)) return false;
      if (*flag.dbl < flag.min_dbl) {
        std::fprintf(stderr, "%s must be >= %g, got '%s'\n", name,
                     flag.min_dbl, value);
        return false;
      }
      return true;
    case Kind::kRate:
      return ParseRateFlag(name, value, flag.dbl);
    case Kind::kOptionalValue:
      *flag.boolean = true;
      if (*value == '\0') {
        std::fprintf(stderr, "missing file name in %s=FILE\n", name);
        return false;
      }
      *flag.str = value;
      return true;
    case Kind::kBool:
      break;  // handled by the caller; bools never reach Apply()
  }
  BATI_CHECK(false && "unhandled flag kind");
  return false;
}

bool FlagParser::Parse(int argc, char** argv, bool* help) const {
  if (help != nullptr) *help = false;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      if (help != nullptr) *help = true;
      return false;
    }
    // Split --flag=value; the flag table decides whether '=' is allowed.
    const size_t eq = token.find('=');
    const std::string name = eq == std::string::npos ? token
                                                     : token.substr(0, eq);
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag: %s\n", name.c_str());
      return false;
    }
    if (flag->kind == Kind::kBool) {
      if (eq != std::string::npos) {
        std::fprintf(stderr, "%s takes no value\n", name.c_str());
        return false;
      }
      *flag->boolean = true;
      continue;
    }
    if (flag->kind == Kind::kOptionalValue) {
      *flag->boolean = true;
      if (eq == std::string::npos) continue;  // bare --flag form
      if (!Apply(*flag, token.c_str() + eq + 1)) return false;
      continue;
    }
    const char* value = nullptr;
    if (eq != std::string::npos) {
      value = token.c_str() + eq + 1;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!Apply(*flag, value)) return false;
  }
  return true;
}

}  // namespace bati
