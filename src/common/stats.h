#ifndef BATI_COMMON_STATS_H_
#define BATI_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace bati {

/// Streaming mean / standard-deviation accumulator (Welford). Used by the
/// experiment harness to aggregate metrics across RNG seeds, matching the
/// paper's protocol of reporting mean with error bars over five seeds.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }

  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Sample standard deviation of a vector; 0 for fewer than two elements.
double StdDev(const std::vector<double>& v);

}  // namespace bati

#endif  // BATI_COMMON_STATS_H_
