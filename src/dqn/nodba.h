#ifndef BATI_DQN_NODBA_H_
#define BATI_DQN_NODBA_H_

#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dqn/network.h"
#include "tuner/tuner.h"

namespace bati {

/// Options for the No-DBA baseline.
struct NoDbaOptions {
  /// Hidden layer widths (paper adaptation: three layers of 96, ReLU).
  std::vector<size_t> hidden = {96, 96, 96};
  double learning_rate = 1e-3;
  double gamma = 0.95;
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  /// Rounds over which epsilon decays linearly.
  int epsilon_decay_rounds = 30;
  size_t replay_capacity = 20000;
  size_t batch_size = 32;
  int train_batches_per_round = 4;
  int target_sync_rounds = 5;
  uint64_t seed = 1;
};

/// Re-implementation of the No-DBA baseline [Sharma et al.] with the paper's
/// adaptations (Section 7.2.2): one-hot configuration states, what-if costs
/// as rewards (instead of execution time), deep Q-learning with a small
/// CPU-trained MLP. Each round the agent assembles a K-index configuration
/// with an epsilon-greedy policy over its Q-network, spends one what-if call
/// per query to score it, and trains on replayed transitions. The best
/// configuration over all rounds is returned.
class NoDbaTuner : public Tuner {
 public:
  NoDbaTuner(TuningContext ctx, NoDbaOptions options = NoDbaOptions());

  TuningResult Tune(CostService& service) override;
  std::string name() const override { return "no-dba"; }

  /// Best improvement-so-far after each completed round (Figure 14).
  const std::vector<double>& round_trace() const { return round_trace_; }

  const std::vector<double>* progress_trace() const override {
    return &round_trace_;
  }

 private:
  struct Transition {
    Config state;
    int action = -1;
    double reward = 0.0;
    Config next_state;
    bool terminal = false;
  };

  TuningContext ctx_;
  NoDbaOptions options_;
  Rng rng_;
  std::vector<double> round_trace_;
};

}  // namespace bati

#endif  // BATI_DQN_NODBA_H_
