#ifndef BATI_DQN_MATRIX_H_
#define BATI_DQN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

namespace bati {

/// Minimal dense row-major matrix for the No-DBA deep-Q-learning baseline.
/// Sized for small MLPs (a few hundred inputs, ~100-unit hidden layers);
/// no BLAS dependency by design (the baseline is CPU-only, as in the paper).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* row(size_t r) { return data_.data() + r * cols_; }
  const double* row(size_t r) const { return data_.data() + r * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void Fill(double value) {
    for (double& v : data_) v = value;
  }

  /// He-normal initialization (suits ReLU activations).
  void RandomInit(Rng& rng, size_t fan_in);

  /// out = this(row-major, [m x k]) * rhs([k x n]).
  Matrix MatMul(const Matrix& rhs) const;

  /// out = transpose(this).
  Matrix Transposed() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace bati

#endif  // BATI_DQN_MATRIX_H_
