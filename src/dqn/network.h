#ifndef BATI_DQN_NETWORK_H_
#define BATI_DQN_NETWORK_H_

#include <vector>

#include "common/rng.h"
#include "dqn/matrix.h"

namespace bati {

/// A fully-connected feed-forward network with ReLU hidden activations and a
/// linear output, trained with Adam on squared error. This is the function
/// approximator for the No-DBA baseline's Q-network (the paper's adaptation
/// uses three fully connected layers of 96 neurons each with relu).
class Mlp {
 public:
  /// `layer_sizes` = {input, hidden..., output}.
  Mlp(const std::vector<size_t>& layer_sizes, Rng& rng);

  /// Forward pass for a batch ([batch x input]); returns [batch x output].
  Matrix Forward(const Matrix& input) const;

  /// One Adam step on 1/2 * ||masked (Forward(input) - target)||^2. Only
  /// output units with mask != 0 contribute gradient (Q-learning updates the
  /// taken action only). Returns the mean squared error over masked units.
  double TrainStep(const Matrix& input, const Matrix& target,
                   const Matrix& mask, double learning_rate);

  /// Copies the weights of `other` into this network (target-network sync).
  void CopyFrom(const Mlp& other);

  size_t input_size() const { return weights_.front().rows(); }
  size_t output_size() const { return weights_.back().cols(); }

 private:
  struct AdamState {
    Matrix m_w, v_w;
    std::vector<double> m_b, v_b;
  };

  std::vector<Matrix> weights_;             // [in x out] per layer
  std::vector<std::vector<double>> biases_;  // per layer
  std::vector<AdamState> adam_;
  int64_t adam_t_ = 0;
};

}  // namespace bati

#endif  // BATI_DQN_NETWORK_H_
