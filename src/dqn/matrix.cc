#include "dqn/matrix.h"

#include <cmath>

namespace bati {

void Matrix::RandomInit(Rng& rng, size_t fan_in) {
  double stddev =
      std::sqrt(2.0 / static_cast<double>(fan_in == 0 ? 1 : fan_in));
  for (double& v : data_) v = rng.Normal(0.0, stddev);
}

Matrix Matrix::MatMul(const Matrix& rhs) const {
  BATI_CHECK(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = at(i, k);
      if (a == 0.0) continue;  // one-hot inputs are mostly zero
      const double* rrow = rhs.row(k);
      double* orow = out.row(i);
      for (size_t j = 0; j < rhs.cols_; ++j) orow[j] += a * rrow[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  }
  return out;
}

}  // namespace bati
