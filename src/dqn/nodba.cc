#include "dqn/nodba.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>

#include "common/macros.h"

namespace bati {

namespace {

/// Writes the one-hot encoding h_C of a configuration into a matrix row.
void EncodeState(const Config& config, Matrix& batch, size_t row) {
  for (size_t pos : config.ToIndices()) batch.at(row, pos) = 1.0;
}

}  // namespace

NoDbaTuner::NoDbaTuner(TuningContext ctx, NoDbaOptions options)
    : ctx_(std::move(ctx)), options_(std::move(options)), rng_(options_.seed) {}

TuningResult NoDbaTuner::Tune(CostService& service) {
  round_trace_.clear();
  const int n = service.num_candidates();
  const int m = service.num_queries();
  const int k_max = ctx_.constraints.max_indexes;
  const Database& db = *ctx_.workload->database;

  std::vector<size_t> layers;
  layers.push_back(static_cast<size_t>(n));
  for (size_t h : options_.hidden) layers.push_back(h);
  layers.push_back(static_cast<size_t>(n));
  Mlp q_net(layers, rng_);
  Mlp target_net(layers, rng_);
  target_net.CopyFrom(q_net);

  std::deque<Transition> replay;
  Config best = service.EmptyConfig();
  double best_cost = service.BaseWorkloadCost();
  const double base = service.BaseWorkloadCost();

  auto feasible_actions = [&](const Config& config) {
    std::vector<int> out;
    for (int a = 0; a < n; ++a) {
      if (config.test(static_cast<size_t>(a))) continue;
      if (!FitsStorage(ctx_, db, config, a)) continue;
      out.push_back(a);
    }
    return out;
  };

  int round = 0;
  int zero_call_rounds = 0;
  while (service.HasBudget()) {
    service.BeginRound("dqn.round");
    int64_t calls_before = service.calls_made();
    double epsilon =
        options_.epsilon_start +
        (options_.epsilon_end - options_.epsilon_start) *
            std::min(1.0, static_cast<double>(round) /
                              std::max(1, options_.epsilon_decay_rounds));

    // ---- Assemble a configuration with epsilon-greedy over the Q-net. ----
    Config config = service.EmptyConfig();
    std::vector<Transition> episode;
    for (int step = 0; step < k_max; ++step) {
      std::vector<int> actions = feasible_actions(config);
      if (actions.empty()) break;
      int chosen;
      if (rng_.Bernoulli(epsilon)) {
        chosen = actions[static_cast<size_t>(rng_.UniformInt(
            0, static_cast<int64_t>(actions.size()) - 1))];
      } else {
        Matrix state(1, static_cast<size_t>(n));
        EncodeState(config, state, 0);
        Matrix q_values = q_net.Forward(state);
        chosen = actions.front();
        double best_q = -std::numeric_limits<double>::infinity();
        for (int a : actions) {
          double q = q_values.at(0, static_cast<size_t>(a));
          if (q > best_q) {
            best_q = q;
            chosen = a;
          }
        }
      }
      Transition t;
      t.state = config;
      t.action = chosen;
      config = config.With(static_cast<size_t>(chosen));
      t.next_state = config;
      t.terminal = (step == k_max - 1);
      episode.push_back(std::move(t));
    }
    if (episode.empty()) break;
    episode.back().terminal = true;

    // ---- Observe: one what-if call per query (a "round"), batched through
    // the engine; budget is still charged in query order. ----
    double round_cost = 0.0;
    bool budget_ran_out = false;
    std::vector<int> round_queries(static_cast<size_t>(m));
    std::iota(round_queries.begin(), round_queries.end(), 0);
    std::vector<std::optional<double>> costs =
        service.WhatIfCostMany(round_queries, config);
    for (int q = 0; q < m; ++q) {
      const auto& c = costs[static_cast<size_t>(q)];
      if (!c.has_value()) {
        budget_ran_out = true;
        round_cost += service.DerivedCost(q, config);
        continue;
      }
      round_cost += *c;
    }
    double improvement = base > 0.0 ? (1.0 - round_cost / base) : 0.0;
    episode.back().reward = improvement;

    for (Transition& t : episode) {
      replay.push_back(std::move(t));
      if (replay.size() > options_.replay_capacity) replay.pop_front();
    }

    // ---- Train on replayed minibatches (deep Q-learning). ----
    for (int b = 0; b < options_.train_batches_per_round &&
                    replay.size() >= options_.batch_size;
         ++b) {
      size_t bs = options_.batch_size;
      Matrix states(bs, static_cast<size_t>(n));
      Matrix next_states(bs, static_cast<size_t>(n));
      std::vector<const Transition*> sample(bs);
      for (size_t i = 0; i < bs; ++i) {
        sample[i] = &replay[static_cast<size_t>(rng_.UniformInt(
            0, static_cast<int64_t>(replay.size()) - 1))];
        EncodeState(sample[i]->state, states, i);
        EncodeState(sample[i]->next_state, next_states, i);
      }
      Matrix next_q = target_net.Forward(next_states);
      Matrix target(bs, static_cast<size_t>(n));
      Matrix mask(bs, static_cast<size_t>(n));
      for (size_t i = 0; i < bs; ++i) {
        double y = sample[i]->reward;
        if (!sample[i]->terminal) {
          // max over actions not already in the next state.
          double best_next = 0.0;
          for (int a = 0; a < n; ++a) {
            if (sample[i]->next_state.test(static_cast<size_t>(a))) continue;
            best_next =
                std::max(best_next, next_q.at(i, static_cast<size_t>(a)));
          }
          y += options_.gamma * best_next;
        }
        target.at(i, static_cast<size_t>(sample[i]->action)) = y;
        mask.at(i, static_cast<size_t>(sample[i]->action)) = 1.0;
      }
      q_net.TrainStep(states, target, mask, options_.learning_rate);
    }

    if (round_cost < best_cost) {
      best_cost = round_cost;
      best = config;
    }
    round_trace_.push_back(base > 0.0 ? (1.0 - best_cost / base) * 100.0
                                      : 0.0);
    ++round;
    if (round % options_.target_sync_rounds == 0) target_net.CopyFrom(q_net);
    if (budget_ran_out) break;
    // Fully cached rounds spend no budget; bail out if the policy froze.
    if (service.calls_made() == calls_before) {
      if (++zero_call_rounds >= 20) break;
    } else {
      zero_call_rounds = 0;
    }
  }

  TuningResult result;
  result.algorithm = name();
  result.best_config = best;
  result.derived_improvement = service.DerivedImprovement(best);
  result.what_if_calls = service.calls_made();
  // The trace always ends at the recommendation actually returned.
  if (round_trace_.empty() ||
      round_trace_.back() != result.derived_improvement) {
    round_trace_.push_back(result.derived_improvement);
  }
  return result;
}

}  // namespace bati
