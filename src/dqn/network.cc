#include "dqn/network.h"

#include <cmath>

namespace bati {

namespace {
constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;
}  // namespace

Mlp::Mlp(const std::vector<size_t>& layer_sizes, Rng& rng) {
  BATI_CHECK(layer_sizes.size() >= 2);
  for (size_t l = 0; l + 1 < layer_sizes.size(); ++l) {
    Matrix w(layer_sizes[l], layer_sizes[l + 1]);
    w.RandomInit(rng, layer_sizes[l]);
    weights_.push_back(std::move(w));
    biases_.emplace_back(layer_sizes[l + 1], 0.0);
    AdamState st;
    st.m_w = Matrix(layer_sizes[l], layer_sizes[l + 1]);
    st.v_w = Matrix(layer_sizes[l], layer_sizes[l + 1]);
    st.m_b.assign(layer_sizes[l + 1], 0.0);
    st.v_b.assign(layer_sizes[l + 1], 0.0);
    adam_.push_back(std::move(st));
  }
}

Matrix Mlp::Forward(const Matrix& input) const {
  Matrix act = input;
  for (size_t l = 0; l < weights_.size(); ++l) {
    Matrix next = act.MatMul(weights_[l]);
    for (size_t i = 0; i < next.rows(); ++i) {
      double* row = next.row(i);
      for (size_t j = 0; j < next.cols(); ++j) {
        row[j] += biases_[l][j];
        if (l + 1 < weights_.size() && row[j] < 0.0) row[j] = 0.0;  // ReLU
      }
    }
    act = std::move(next);
  }
  return act;
}

double Mlp::TrainStep(const Matrix& input, const Matrix& target,
                      const Matrix& mask, double learning_rate) {
  const size_t batch = input.rows();
  BATI_CHECK(batch > 0);

  // Forward pass keeping pre/post activations per layer.
  std::vector<Matrix> activations;  // post-activation, activations[0] = input
  activations.push_back(input);
  for (size_t l = 0; l < weights_.size(); ++l) {
    Matrix next = activations.back().MatMul(weights_[l]);
    for (size_t i = 0; i < next.rows(); ++i) {
      double* row = next.row(i);
      for (size_t j = 0; j < next.cols(); ++j) {
        row[j] += biases_[l][j];
        if (l + 1 < weights_.size() && row[j] < 0.0) row[j] = 0.0;
      }
    }
    activations.push_back(std::move(next));
  }

  // Output error (masked).
  Matrix delta = activations.back();
  double loss = 0.0;
  size_t masked_units = 0;
  for (size_t i = 0; i < batch; ++i) {
    for (size_t j = 0; j < delta.cols(); ++j) {
      double m = mask.at(i, j);
      double err = m != 0.0 ? (delta.at(i, j) - target.at(i, j)) : 0.0;
      delta.at(i, j) = err / static_cast<double>(batch);
      if (m != 0.0) {
        loss += err * err;
        ++masked_units;
      }
    }
  }
  if (masked_units > 0) loss /= static_cast<double>(masked_units);

  ++adam_t_;
  double bc1 = 1.0 - std::pow(kAdamBeta1, static_cast<double>(adam_t_));
  double bc2 = 1.0 - std::pow(kAdamBeta2, static_cast<double>(adam_t_));

  // Backward pass.
  for (size_t li = weights_.size(); li-- > 0;) {
    const Matrix& a_in = activations[li];
    Matrix grad_w = a_in.Transposed().MatMul(delta);
    std::vector<double> grad_b(delta.cols(), 0.0);
    for (size_t i = 0; i < delta.rows(); ++i) {
      for (size_t j = 0; j < delta.cols(); ++j) {
        grad_b[j] += delta.at(i, j);
      }
    }

    // Propagate delta to the previous layer (through ReLU) before mutating
    // the weights.
    if (li > 0) {
      Matrix prev_delta = delta.MatMul(weights_[li].Transposed());
      for (size_t i = 0; i < prev_delta.rows(); ++i) {
        for (size_t j = 0; j < prev_delta.cols(); ++j) {
          if (activations[li].at(i, j) <= 0.0) prev_delta.at(i, j) = 0.0;
        }
      }
      delta = std::move(prev_delta);
    }

    // Adam update.
    AdamState& st = adam_[li];
    for (size_t idx = 0; idx < grad_w.data().size(); ++idx) {
      double g = grad_w.data()[idx];
      double& m = st.m_w.data()[idx];
      double& v = st.v_w.data()[idx];
      m = kAdamBeta1 * m + (1.0 - kAdamBeta1) * g;
      v = kAdamBeta2 * v + (1.0 - kAdamBeta2) * g * g;
      weights_[li].data()[idx] -=
          learning_rate * (m / bc1) / (std::sqrt(v / bc2) + kAdamEps);
    }
    for (size_t j = 0; j < grad_b.size(); ++j) {
      double g = grad_b[j];
      double& m = st.m_b[j];
      double& v = st.v_b[j];
      m = kAdamBeta1 * m + (1.0 - kAdamBeta1) * g;
      v = kAdamBeta2 * v + (1.0 - kAdamBeta2) * g * g;
      biases_[li][j] -=
          learning_rate * (m / bc1) / (std::sqrt(v / bc2) + kAdamEps);
    }
  }
  return loss;
}

void Mlp::CopyFrom(const Mlp& other) {
  weights_ = other.weights_;
  biases_ = other.biases_;
}

}  // namespace bati
