#include "workload/binder.h"

#include <algorithm>
#include <cmath>

#include "sql/parser.h"

namespace bati {

namespace {

constexpr double kMinSelectivity = 1e-6;

double Clamp01(double s) {
  return std::min(1.0, std::max(kMinSelectivity, s));
}

/// Maps a string literal into the column's numeric domain via a stable hash,
/// so string predicates get deterministic, stats-driven selectivities.
double StringToDomain(const Column& column, const std::string& text) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  double frac = static_cast<double>(h >> 11) * 0x1.0p-53;
  return column.stats.min_value +
         frac * (column.stats.max_value - column.stats.min_value);
}

double LiteralValue(const Column& column, const sql::Literal& lit) {
  return lit.is_string ? StringToDomain(column, lit.text) : lit.number;
}

/// Resolver from alias/table-name to scan id and on to column refs.
class ScopeResolver {
 public:
  ScopeResolver(const sql::SelectStatement& stmt, const Database& db)
      : db_(db) {
    for (const sql::TableRef& ref : stmt.from) {
      names_.push_back(ref.EffectiveName());
      table_ids_.push_back(db.FindTable(ref.table));
      tables_.push_back(ref.table);
    }
  }

  Status Validate() const {
    for (size_t i = 0; i < table_ids_.size(); ++i) {
      if (table_ids_[i] < 0) {
        return Status::NotFound("table not found: " + tables_[i]);
      }
    }
    return Status::Ok();
  }

  int num_scans() const { return static_cast<int>(names_.size()); }
  int table_id(int scan) const { return table_ids_[static_cast<size_t>(scan)]; }
  const std::string& alias(int scan) const {
    return names_[static_cast<size_t>(scan)];
  }

  /// Resolves "qualifier.column" or bare "column" to (scan_id, ColumnRef).
  StatusOr<std::pair<int, ColumnRef>> Resolve(
      const sql::ColumnName& name) const {
    if (!name.qualifier.empty()) {
      for (size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name.qualifier || tables_[i] == name.qualifier) {
          int cid = db_.table(table_ids_[i]).FindColumn(name.column);
          if (cid < 0) {
            return Status::NotFound("column not found: " + name.ToString());
          }
          return std::make_pair(static_cast<int>(i),
                                ColumnRef{table_ids_[i], cid});
        }
      }
      return Status::NotFound("unknown table or alias: " + name.qualifier);
    }
    // Bare column: must be unambiguous across scans.
    int found_scan = -1;
    ColumnRef found_ref;
    for (size_t i = 0; i < names_.size(); ++i) {
      int cid = db_.table(table_ids_[i]).FindColumn(name.column);
      if (cid >= 0) {
        if (found_scan >= 0) {
          return Status::InvalidArgument("ambiguous column: " + name.column);
        }
        found_scan = static_cast<int>(i);
        found_ref = ColumnRef{table_ids_[i], cid};
      }
    }
    if (found_scan < 0) {
      return Status::NotFound("column not found: " + name.column);
    }
    return std::make_pair(found_scan, found_ref);
  }

 private:
  const Database& db_;
  std::vector<std::string> names_;
  std::vector<std::string> tables_;
  std::vector<int> table_ids_;
};

}  // namespace

double LiteralSelectivity(const Column& column, sql::CmpOp op, double value) {
  const ColumnStats& s = column.stats;
  // Histogram-based estimation when the column carries one; uniform-domain
  // assumption otherwise.
  if (!s.histogram.empty()) {
    switch (op) {
      case sql::CmpOp::kEq:
        return Clamp01(s.histogram.EqualityFraction(value, s.ndv));
      case sql::CmpOp::kNe:
        return Clamp01(1.0 - s.histogram.EqualityFraction(value, s.ndv));
      case sql::CmpOp::kLt:
      case sql::CmpOp::kLe:
        return Clamp01(s.histogram.CumulativeBelow(value));
      case sql::CmpOp::kGt:
      case sql::CmpOp::kGe:
        return Clamp01(1.0 - s.histogram.CumulativeBelow(value));
    }
  }
  double span = std::max(1e-12, s.max_value - s.min_value);
  double frac = (value - s.min_value) / span;
  frac = std::min(1.0, std::max(0.0, frac));
  switch (op) {
    case sql::CmpOp::kEq:
      return Clamp01(1.0 / std::max(1.0, s.ndv));
    case sql::CmpOp::kNe:
      return Clamp01(1.0 - 1.0 / std::max(1.0, s.ndv));
    case sql::CmpOp::kLt:
    case sql::CmpOp::kLe:
      return Clamp01(frac);
    case sql::CmpOp::kGt:
    case sql::CmpOp::kGe:
      return Clamp01(1.0 - frac);
  }
  return 1.0;
}

double BetweenSelectivity(const Column& column, double lo, double hi) {
  const ColumnStats& s = column.stats;
  if (!s.histogram.empty()) {
    double f = s.histogram.RangeFraction(lo, hi);
    return f <= 0.0 ? kMinSelectivity : Clamp01(f);
  }
  double span = std::max(1e-12, s.max_value - s.min_value);
  double clo = std::max(lo, s.min_value);
  double chi = std::min(hi, s.max_value);
  if (chi <= clo) return kMinSelectivity;
  return Clamp01((chi - clo) / span);
}

double InListSelectivity(const Column& column, int list_size) {
  return Clamp01(static_cast<double>(std::max(1, list_size)) /
                 std::max(1.0, column.stats.ndv));
}

double LikeSelectivity(std::string_view pattern) {
  // Prefix patterns ("abc%") are selective; substring ("%abc%") less so;
  // longer fixed parts are more selective.
  size_t fixed = 0;
  for (char c : pattern) {
    if (c != '%' && c != '_') ++fixed;
  }
  bool prefix = !pattern.empty() && pattern.front() != '%';
  double base = prefix ? 0.05 : 0.15;
  double s = base * std::pow(0.7, static_cast<double>(fixed) / 4.0);
  return Clamp01(s);
}

StatusOr<Query> BindStatement(const sql::SelectStatement& stmt,
                              const Database& db) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("query has no FROM clause");
  }
  ScopeResolver scope(stmt, db);
  if (Status s = scope.Validate(); !s.ok()) return s;

  Query q;
  for (int i = 0; i < scope.num_scans(); ++i) {
    q.scans.push_back(QueryScan{scope.table_id(i), scope.alias(i)});
  }

  // Binds one simple (non-join) predicate into a BoundFilter. Cross-scan
  // comparisons are not "simple" and are rejected here; the caller routes
  // them to the join list.
  auto bind_simple_filter =
      [&](const sql::Predicate& p) -> StatusOr<BoundFilter> {
    auto left = scope.Resolve(p.left);
    if (!left.ok()) return left.status();
    auto [scan_id, col_ref] = left.value();
    const Column& column = db.column(col_ref);
    BoundFilter f;
    f.scan_id = scan_id;
    f.column = col_ref;
    switch (p.kind) {
      case sql::Predicate::Kind::kCompareColumn: {
        auto right = scope.Resolve(p.right);
        if (!right.ok()) return right.status();
        if (right.value().first != scan_id) {
          return Status::Unimplemented(
              "join predicates are not allowed inside OR groups");
        }
        // Same-scan column-column comparison: System R defaults (1/10 for
        // equality, 1/3 for inequalities).
        f.kind = FilterKind::kColumnColumn;
        f.selectivity = (p.op == sql::CmpOp::kEq) ? 0.1 : (1.0 / 3.0);
        return f;
      }
      case sql::Predicate::Kind::kCompareLiteral: {
        double value = LiteralValue(column, p.literal);
        f.selectivity = LiteralSelectivity(column, p.op, value);
        switch (p.op) {
          case sql::CmpOp::kEq:
            f.kind = FilterKind::kEquality;
            break;
          case sql::CmpOp::kNe:
            f.kind = FilterKind::kNotEqual;
            break;
          default:
            f.kind = FilterKind::kRange;
            break;
        }
        return f;
      }
      case sql::Predicate::Kind::kBetween:
        f.kind = FilterKind::kRange;
        f.selectivity =
            BetweenSelectivity(column, LiteralValue(column, p.between_lo),
                               LiteralValue(column, p.between_hi));
        return f;
      case sql::Predicate::Kind::kIn:
        f.kind = FilterKind::kIn;
        f.selectivity =
            InListSelectivity(column, static_cast<int>(p.in_list.size()));
        return f;
      case sql::Predicate::Kind::kLike:
        f.kind = FilterKind::kLike;
        f.selectivity = LikeSelectivity(p.like_pattern);
        return f;
    }
    return Status::Internal("unhandled predicate kind");
  };

  for (const sql::Predicate& p : stmt.where) {
    // Disjunction group "(p1 OR p2 ...)": all disjuncts must be simple
    // predicates over the same scan; the group folds into one filter with
    // union selectivity 1 - prod(1 - s_i).
    if (!p.or_disjuncts.empty()) {
      auto first = bind_simple_filter(p);
      if (!first.ok()) return first.status();
      double pass_none = 1.0 - first->selectivity;
      for (const sql::Predicate& d : p.or_disjuncts) {
        if (!d.or_disjuncts.empty()) {
          return Status::Unimplemented("nested OR groups are not supported");
        }
        auto bound = bind_simple_filter(d);
        if (!bound.ok()) return bound.status();
        if (bound->scan_id != first->scan_id) {
          return Status::Unimplemented(
              "OR groups must reference a single table");
        }
        pass_none *= 1.0 - bound->selectivity;
      }
      BoundFilter combined = first.value();
      combined.kind = FilterKind::kOr;
      combined.selectivity =
          std::min(1.0, std::max(1e-6, 1.0 - pass_none));
      q.filters.push_back(combined);
      continue;
    }

    if (p.kind == sql::Predicate::Kind::kCompareColumn) {
      auto left = scope.Resolve(p.left);
      if (!left.ok()) return left.status();
      auto right = scope.Resolve(p.right);
      if (!right.ok()) return right.status();
      if (left.value().first != right.value().first) {
        if (p.op != sql::CmpOp::kEq) {
          return Status::Unimplemented(
              "only equality joins are supported in the subset");
        }
        q.joins.push_back(BoundJoin{left.value().first, left.value().second,
                                    right.value().first,
                                    right.value().second});
        continue;
      }
      // Same-scan comparison falls through to the simple-filter path.
    }
    auto bound = bind_simple_filter(p);
    if (!bound.ok()) return bound.status();
    q.filters.push_back(std::move(bound.value()));
  }

  for (const sql::SelectItem& item : stmt.select_list) {
    if (item.agg != sql::AggFunc::kNone) q.has_aggregation = true;
    if (item.star) {
      if (item.agg == sql::AggFunc::kNone) q.select_star = true;
      continue;  // COUNT(*) needs no specific column
    }
    auto resolved = scope.Resolve(*item.column);
    if (!resolved.ok()) return resolved.status();
    q.projections.push_back(
        BoundColumnUse{resolved.value().first, resolved.value().second});
  }

  for (const sql::ColumnName& g : stmt.group_by) {
    auto resolved = scope.Resolve(g);
    if (!resolved.ok()) return resolved.status();
    q.group_by.push_back(
        BoundColumnUse{resolved.value().first, resolved.value().second});
    q.has_aggregation = true;
  }
  for (const sql::OrderItem& o : stmt.order_by) {
    auto resolved = scope.Resolve(o.column);
    if (!resolved.ok()) return resolved.status();
    q.order_by.push_back(
        BoundColumnUse{resolved.value().first, resolved.value().second});
  }

  q.sql = sql::ToSql(stmt);
  return q;
}

StatusOr<Query> BindSql(std::string_view sql_text, const Database& db) {
  auto stmt = sql::Parse(sql_text);
  if (!stmt.ok()) return stmt.status();
  return BindStatement(stmt.value(), db);
}

WorkloadStats ComputeWorkloadStats(const Workload& workload) {
  WorkloadStats stats;
  stats.name = workload.name;
  stats.num_queries = workload.num_queries();
  if (workload.database != nullptr) {
    stats.num_tables = workload.database->num_tables();
    stats.size_gb = workload.database->TotalSizeBytes() / 1e9;
  }
  if (workload.queries.empty()) return stats;
  double joins = 0.0, filters = 0.0, scans = 0.0;
  for (const Query& q : workload.queries) {
    joins += q.num_joins();
    filters += q.num_filters();
    scans += q.num_scans();
  }
  double n = static_cast<double>(workload.queries.size());
  stats.avg_joins = joins / n;
  stats.avg_filters = filters / n;
  stats.avg_scans = scans / n;
  return stats;
}

}  // namespace bati
