#include "workload/schema_util.h"

#include <cstdio>

#include "common/macros.h"
#include "workload/binder.h"

namespace bati::schema_util {

Column IntCol(const std::string& name, double ndv, double min_value,
              double max_value) {
  Column c;
  c.name = name;
  c.type = ColumnType::kInt;
  c.stats.ndv = ndv;
  c.stats.min_value = min_value;
  c.stats.max_value = max_value;
  return c;
}

Column KeyCol(const std::string& name, double rows) {
  return IntCol(name, rows, 0, rows);
}

Column NumCol(const std::string& name, double ndv, double min_value,
              double max_value) {
  Column c;
  c.name = name;
  c.type = ColumnType::kDouble;
  c.stats.ndv = ndv;
  c.stats.min_value = min_value;
  c.stats.max_value = max_value;
  return c;
}

Column DateCol(const std::string& name, double days) {
  Column c;
  c.name = name;
  c.type = ColumnType::kDate;
  c.stats.ndv = days;
  c.stats.min_value = 0;
  c.stats.max_value = days;
  return c;
}

Column StrCol(const std::string& name, int length, double ndv) {
  Column c;
  c.name = name;
  c.type = ColumnType::kString;
  c.declared_length = length;
  c.stats.ndv = ndv;
  c.stats.min_value = 0;
  c.stats.max_value = 1;
  return c;
}

Workload BindAll(std::string workload_name,
                 std::shared_ptr<const Database> db,
                 const std::vector<std::string>& sqls,
                 const std::vector<std::string>& names) {
  BATI_CHECK(sqls.size() == names.size());
  Workload w;
  w.name = std::move(workload_name);
  w.database = db;
  for (size_t i = 0; i < sqls.size(); ++i) {
    auto bound = BindSql(sqls[i], *db);
    if (!bound.ok()) {
      std::fprintf(stderr, "workload %s, query %s: %s\nSQL: %s\n",
                   w.name.c_str(), names[i].c_str(),
                   bound.status().ToString().c_str(), sqls[i].c_str());
      BATI_CHECK(false && "workload template failed to bind");
    }
    Query q = std::move(bound.value());
    q.id = static_cast<int>(i);
    q.name = names[i];
    w.queries.push_back(std::move(q));
  }
  return w;
}

}  // namespace bati::schema_util
