#include "workload/loader.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "sql/ddl.h"
#include "workload/binder.h"

namespace bati {

namespace {

ColumnType TypeFromName(const std::string& type_name) {
  if (type_name == "INT" || type_name == "INTEGER") return ColumnType::kInt;
  if (type_name == "BIGINT") return ColumnType::kBigInt;
  if (type_name == "DOUBLE") return ColumnType::kDouble;
  if (type_name == "DECIMAL") return ColumnType::kDecimal;
  if (type_name == "DATE") return ColumnType::kDate;
  return ColumnType::kString;  // VARCHAR / CHAR / STRING
}

/// Splits a script into statements on top-level semicolons (quotes
/// respected), dropping empty pieces and line comments.
std::vector<std::string> SplitStatements(std::string_view script) {
  std::vector<std::string> out;
  std::string current;
  bool in_string = false;
  for (size_t i = 0; i < script.size(); ++i) {
    char c = script[i];
    if (c == '\'' ) in_string = !in_string;
    if (!in_string && c == '-' && i + 1 < script.size() &&
        script[i + 1] == '-') {
      while (i < script.size() && script[i] != '\n') ++i;
      current += ' ';
      continue;
    }
    if (c == ';' && !in_string) {
      if (!Trim(current).empty()) out.emplace_back(Trim(current));
      current.clear();
      continue;
    }
    current += c;
  }
  if (!Trim(current).empty()) out.emplace_back(Trim(current));
  return out;
}

}  // namespace

StatusOr<std::shared_ptr<Database>> LoadSchemaFromDdl(
    std::string database_name, std::string_view ddl_script) {
  auto statements = sql::ParseDdl(ddl_script);
  if (!statements.ok()) return statements.status();
  auto db = std::make_shared<Database>(std::move(database_name));
  for (const sql::CreateTableStmt& stmt : statements.value()) {
    Table table(stmt.table_name, stmt.rows);
    for (const sql::ColumnDef& def : stmt.columns) {
      Column col;
      col.name = def.name;
      col.type = TypeFromName(def.type_name);
      col.declared_length = def.length;
      // Defaults: key-like NDV over a [0, rows) domain; annotations win.
      col.stats.ndv = def.ndv.value_or(stmt.rows);
      if (def.range.has_value()) {
        col.stats.min_value = def.range->first;
        col.stats.max_value = def.range->second;
      } else {
        col.stats.min_value = 0;
        col.stats.max_value = std::max(1.0, stmt.rows);
      }
      if (table.FindColumn(col.name) >= 0) {
        return Status::InvalidArgument("duplicate column " + col.name +
                                       " in table " + stmt.table_name);
      }
      table.AddColumn(std::move(col));
    }
    if (auto added = db->AddTable(std::move(table)); !added.ok()) {
      return added.status();
    }
  }
  return db;
}

StatusOr<Workload> LoadWorkloadFromSql(std::string workload_name,
                                       std::shared_ptr<const Database> db,
                                       std::string_view sql_script) {
  if (db == nullptr) {
    return Status::InvalidArgument("null database");
  }
  Workload workload;
  workload.name = std::move(workload_name);
  workload.database = db;
  std::vector<std::string> statements = SplitStatements(sql_script);
  if (statements.empty()) {
    return Status::InvalidArgument("no SQL statements found");
  }
  for (size_t i = 0; i < statements.size(); ++i) {
    auto bound = BindSql(statements[i], *db);
    if (!bound.ok()) {
      return Status(bound.status().code(),
                    "statement " + std::to_string(i + 1) + ": " +
                        bound.status().message());
    }
    Query q = std::move(bound.value());
    q.id = static_cast<int>(i);
    q.name = "q" + std::to_string(i + 1);
    workload.queries.push_back(std::move(q));
  }
  return workload;
}

namespace {

std::string FormatNumber(double v) {
  // Integers without decimals; everything else with enough precision.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

const char* TypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return "INT";
    case ColumnType::kBigInt:
      return "BIGINT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kDecimal:
      return "DECIMAL";
    case ColumnType::kDate:
      return "DATE";
    case ColumnType::kString:
      return "VARCHAR";
  }
  return "INT";
}

}  // namespace

std::string DumpSchemaDdl(const Database& db) {
  std::string out = "-- schema: " + db.name() + "\n";
  for (int t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    out += "CREATE TABLE " + table.name() + " (\n";
    for (int c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      out += "  " + col.name + " " + TypeName(col.type);
      if (col.type == ColumnType::kString) {
        out += "(" + std::to_string(std::max(1, col.declared_length)) + ")";
      }
      out += " NDV " + FormatNumber(col.stats.ndv);
      out += " RANGE (" + FormatNumber(col.stats.min_value) + ", " +
             FormatNumber(col.stats.max_value) + ")";
      if (c + 1 < table.num_columns()) out += ",";
      out += "\n";
    }
    out += ") WITH (ROWS = " + FormatNumber(table.row_count()) + ");\n\n";
  }
  return out;
}

std::string DumpWorkloadSql(const Workload& workload) {
  std::string out = "-- workload: " + workload.name + "\n";
  for (const Query& q : workload.queries) {
    out += "-- " + q.name + "\n";
    out += q.sql + ";\n\n";
  }
  return out;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace bati
