#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "workload/generators.h"
#include "workload/schema_util.h"

namespace bati {

namespace {

using schema_util::DateCol;
using schema_util::IntCol;
using schema_util::KeyCol;
using schema_util::NumCol;
using schema_util::StrCol;

std::shared_ptr<Database> MakeTpcdsDatabase(double scale) {
  auto db = std::make_shared<Database>("tpcds");
  const double sf = 10.0 * scale;  // paper uses sf=10

  auto add = [&db](Table t) {
    BATI_CHECK_OK(db->AddTable(std::move(t)).status());
  };

  // ---- Dimension tables ----
  {
    Table t("date_dim", 73049);
    t.AddColumn(KeyCol("d_date_sk", 73049));
    t.AddColumn(IntCol("d_year", 200, 1900, 2100));
    t.AddColumn(IntCol("d_moy", 12, 1, 12));
    t.AddColumn(IntCol("d_dom", 31, 1, 31));
    t.AddColumn(IntCol("d_qoy", 4, 1, 4));
    t.AddColumn(IntCol("d_month_seq", 2400, 0, 2400));
    t.AddColumn(IntCol("d_week_seq", 10436, 0, 10436));
    t.AddColumn(StrCol("d_day_name", 9, 7));
    t.AddColumn(IntCol("d_dow", 7, 0, 7));
    add(std::move(t));
  }
  {
    Table t("time_dim", 86400);
    t.AddColumn(KeyCol("t_time_sk", 86400));
    t.AddColumn(IntCol("t_hour", 24, 0, 24));
    t.AddColumn(IntCol("t_minute", 60, 0, 60));
    t.AddColumn(StrCol("t_meal_time", 20, 4));
    add(std::move(t));
  }
  {
    const double rows = 102000;
    Table t("item", rows);
    t.AddColumn(KeyCol("i_item_sk", rows));
    t.AddColumn(StrCol("i_item_id", 16, rows / 2));
    t.AddColumn(NumCol("i_current_price", 100, 0.09, 99.99));
    t.AddColumn(StrCol("i_brand", 50, 700));
    t.AddColumn(StrCol("i_class", 50, 99));
    t.AddColumn(StrCol("i_category", 50, 10));
    t.AddColumn(IntCol("i_manufact_id", 1000, 1, 1000));
    t.AddColumn(IntCol("i_manager_id", 100, 1, 100));
    t.AddColumn(StrCol("i_color", 20, 92));
    t.AddColumn(StrCol("i_size", 20, 7));
    t.AddColumn(StrCol("i_units", 10, 21));
    add(std::move(t));
  }
  {
    const double rows = 50000 * sf;
    Table t("customer", rows);
    t.AddColumn(KeyCol("c_customer_sk", rows));
    t.AddColumn(StrCol("c_customer_id", 16, rows));
    t.AddColumn(IntCol("c_current_cdemo_sk", 1920800, 0, 1920800));
    t.AddColumn(IntCol("c_current_hdemo_sk", 7200, 0, 7200));
    t.AddColumn(IntCol("c_current_addr_sk", 25000 * sf, 0, 25000 * sf));
    t.AddColumn(StrCol("c_first_name", 20, 5000));
    t.AddColumn(StrCol("c_last_name", 30, 5000));
    t.AddColumn(IntCol("c_birth_year", 70, 1924, 1994));
    t.AddColumn(StrCol("c_birth_country", 20, 200));
    add(std::move(t));
  }
  {
    const double rows = 25000 * sf;
    Table t("customer_address", rows);
    t.AddColumn(KeyCol("ca_address_sk", rows));
    t.AddColumn(StrCol("ca_city", 60, 700));
    t.AddColumn(StrCol("ca_county", 30, 1850));
    t.AddColumn(StrCol("ca_state", 2, 51));
    t.AddColumn(StrCol("ca_zip", 10, 10000));
    t.AddColumn(StrCol("ca_country", 20, 1));
    t.AddColumn(IntCol("ca_gmt_offset", 6, -10, -5));
    add(std::move(t));
  }
  {
    Table t("customer_demographics", 1920800);
    t.AddColumn(KeyCol("cd_demo_sk", 1920800));
    t.AddColumn(StrCol("cd_gender", 1, 2));
    t.AddColumn(StrCol("cd_marital_status", 1, 5));
    t.AddColumn(StrCol("cd_education_status", 20, 7));
    t.AddColumn(IntCol("cd_purchase_estimate", 20, 500, 10000));
    t.AddColumn(StrCol("cd_credit_rating", 10, 4));
    t.AddColumn(IntCol("cd_dep_count", 7, 0, 6));
    add(std::move(t));
  }
  {
    Table t("household_demographics", 7200);
    t.AddColumn(KeyCol("hd_demo_sk", 7200));
    t.AddColumn(IntCol("hd_income_band_sk", 20, 0, 20));
    t.AddColumn(StrCol("hd_buy_potential", 15, 6));
    t.AddColumn(IntCol("hd_dep_count", 10, 0, 9));
    t.AddColumn(IntCol("hd_vehicle_count", 6, -1, 4));
    add(std::move(t));
  }
  {
    const double rows = 102;
    Table t("store", rows);
    t.AddColumn(KeyCol("s_store_sk", rows));
    t.AddColumn(StrCol("s_store_id", 16, rows / 2));
    t.AddColumn(StrCol("s_store_name", 50, rows / 2));
    t.AddColumn(IntCol("s_number_employees", 100, 200, 300));
    t.AddColumn(StrCol("s_city", 60, 20));
    t.AddColumn(StrCol("s_county", 30, 9));
    t.AddColumn(StrCol("s_state", 2, 9));
    t.AddColumn(IntCol("s_market_id", 10, 1, 10));
    add(std::move(t));
  }
  {
    Table t("warehouse", 10);
    t.AddColumn(KeyCol("w_warehouse_sk", 10));
    t.AddColumn(StrCol("w_warehouse_name", 20, 10));
    t.AddColumn(IntCol("w_warehouse_sq_ft", 10, 50000, 1000000));
    t.AddColumn(StrCol("w_state", 2, 9));
    add(std::move(t));
  }
  {
    Table t("ship_mode", 20);
    t.AddColumn(KeyCol("sm_ship_mode_sk", 20));
    t.AddColumn(StrCol("sm_type", 30, 6));
    t.AddColumn(StrCol("sm_carrier", 20, 20));
    add(std::move(t));
  }
  {
    Table t("web_site", 42);
    t.AddColumn(KeyCol("web_site_sk", 42));
    t.AddColumn(StrCol("web_name", 50, 21));
    t.AddColumn(StrCol("web_company_name", 50, 6));
    add(std::move(t));
  }
  {
    Table t("web_page", 2040);
    t.AddColumn(KeyCol("wp_web_page_sk", 2040));
    t.AddColumn(StrCol("wp_char_count", 10, 100));
    t.AddColumn(IntCol("wp_link_count", 25, 2, 25));
    add(std::move(t));
  }
  {
    Table t("catalog_page", 12000);
    t.AddColumn(KeyCol("cp_catalog_page_sk", 12000));
    t.AddColumn(StrCol("cp_department", 20, 1));
    t.AddColumn(IntCol("cp_catalog_number", 109, 1, 109));
    add(std::move(t));
  }
  {
    Table t("call_center", 24);
    t.AddColumn(KeyCol("cc_call_center_sk", 24));
    t.AddColumn(StrCol("cc_name", 50, 12));
    t.AddColumn(StrCol("cc_manager", 40, 12));
    add(std::move(t));
  }
  {
    Table t("promotion", 500);
    t.AddColumn(KeyCol("p_promo_sk", 500));
    t.AddColumn(StrCol("p_channel_email", 1, 2));
    t.AddColumn(StrCol("p_channel_event", 1, 2));
    add(std::move(t));
  }
  {
    Table t("reason", 45);
    t.AddColumn(KeyCol("r_reason_sk", 45));
    t.AddColumn(StrCol("r_reason_desc", 100, 45));
    add(std::move(t));
  }
  {
    Table t("income_band", 20);
    t.AddColumn(KeyCol("ib_income_band_sk", 20));
    t.AddColumn(IntCol("ib_lower_bound", 20, 0, 190001));
    t.AddColumn(IntCol("ib_upper_bound", 20, 10000, 200000));
    add(std::move(t));
  }

  // ---- Fact tables ----
  const double customers = 50000 * sf;
  const double addresses = 25000 * sf;
  auto add_sales_cols = [&](Table& t, const std::string& p, double rows) {
    t.AddColumn(IntCol(p + "_sold_date_sk", 1824, 2450815, 2452654));
    t.AddColumn(IntCol(p + "_sold_time_sk", 86400, 0, 86400));
    t.AddColumn(IntCol(p + "_item_sk", 102000, 0, 102000));
    t.AddColumn(IntCol(p + "_customer_sk", customers, 0, customers));
    t.AddColumn(IntCol(p + "_cdemo_sk", 1920800, 0, 1920800));
    t.AddColumn(IntCol(p + "_hdemo_sk", 7200, 0, 7200));
    t.AddColumn(IntCol(p + "_addr_sk", addresses, 0, addresses));
    t.AddColumn(IntCol(p + "_promo_sk", 500, 0, 500));
    t.AddColumn(IntCol(p + "_quantity", 100, 1, 100));
    t.AddColumn(NumCol(p + "_wholesale_cost", 10000, 1, 100));
    t.AddColumn(NumCol(p + "_list_price", 20000, 1, 200));
    t.AddColumn(NumCol(p + "_sales_price", 20000, 0, 200));
    t.AddColumn(NumCol(p + "_ext_sales_price", 1000000, 0, 20000));
    t.AddColumn(NumCol(p + "_ext_discount_amt", 1000000, 0, 20000));
    t.AddColumn(NumCol(p + "_net_profit", 2000000, -10000, 20000));
    t.AddColumn(NumCol(p + "_net_paid", 2000000, 0, 24000));
    (void)rows;
  };
  {
    const double rows = 2880000 * sf;
    Table t("store_sales", rows);
    add_sales_cols(t, "ss", rows);
    t.AddColumn(IntCol("ss_store_sk", 102, 0, 102));
    t.AddColumn(IntCol("ss_ticket_number", rows / 5, 0, rows / 5));
    add(std::move(t));
  }
  {
    const double rows = 288000 * sf;
    Table t("store_returns", rows);
    t.AddColumn(IntCol("sr_returned_date_sk", 1824, 2450815, 2452654));
    t.AddColumn(IntCol("sr_item_sk", 102000, 0, 102000));
    t.AddColumn(IntCol("sr_customer_sk", customers, 0, customers));
    t.AddColumn(IntCol("sr_cdemo_sk", 1920800, 0, 1920800));
    t.AddColumn(IntCol("sr_store_sk", 102, 0, 102));
    t.AddColumn(IntCol("sr_reason_sk", 45, 0, 45));
    t.AddColumn(IntCol("sr_ticket_number", rows, 0, rows));
    t.AddColumn(NumCol("sr_return_quantity", 100, 1, 100));
    t.AddColumn(NumCol("sr_return_amt", 1000000, 0, 19000));
    t.AddColumn(NumCol("sr_net_loss", 1000000, 0, 10000));
    add(std::move(t));
  }
  {
    const double rows = 1440000 * sf;
    Table t("catalog_sales", rows);
    add_sales_cols(t, "cs", rows);
    t.AddColumn(IntCol("cs_call_center_sk", 24, 0, 24));
    t.AddColumn(IntCol("cs_catalog_page_sk", 12000, 0, 12000));
    t.AddColumn(IntCol("cs_ship_mode_sk", 20, 0, 20));
    t.AddColumn(IntCol("cs_warehouse_sk", 10, 0, 10));
    t.AddColumn(IntCol("cs_order_number", rows / 2, 0, rows / 2));
    t.AddColumn(IntCol("cs_ship_date_sk", 1824, 2450815, 2452654));
    add(std::move(t));
  }
  {
    const double rows = 144000 * sf;
    Table t("catalog_returns", rows);
    t.AddColumn(IntCol("cr_returned_date_sk", 1824, 2450815, 2452654));
    t.AddColumn(IntCol("cr_item_sk", 102000, 0, 102000));
    t.AddColumn(IntCol("cr_refunded_customer_sk", customers, 0, customers));
    t.AddColumn(IntCol("cr_call_center_sk", 24, 0, 24));
    t.AddColumn(IntCol("cr_reason_sk", 45, 0, 45));
    t.AddColumn(IntCol("cr_order_number", rows, 0, rows));
    t.AddColumn(NumCol("cr_return_quantity", 100, 1, 100));
    t.AddColumn(NumCol("cr_return_amount", 1000000, 0, 19000));
    t.AddColumn(NumCol("cr_net_loss", 1000000, 0, 10000));
    add(std::move(t));
  }
  {
    const double rows = 720000 * sf;
    Table t("web_sales", rows);
    add_sales_cols(t, "ws", rows);
    t.AddColumn(IntCol("ws_web_site_sk", 42, 0, 42));
    t.AddColumn(IntCol("ws_web_page_sk", 2040, 0, 2040));
    t.AddColumn(IntCol("ws_ship_mode_sk", 20, 0, 20));
    t.AddColumn(IntCol("ws_warehouse_sk", 10, 0, 10));
    t.AddColumn(IntCol("ws_order_number", rows / 2, 0, rows / 2));
    t.AddColumn(IntCol("ws_ship_date_sk", 1824, 2450815, 2452654));
    add(std::move(t));
  }
  {
    const double rows = 71800 * sf;
    Table t("web_returns", rows);
    t.AddColumn(IntCol("wr_returned_date_sk", 1824, 2450815, 2452654));
    t.AddColumn(IntCol("wr_item_sk", 102000, 0, 102000));
    t.AddColumn(IntCol("wr_refunded_customer_sk", customers, 0, customers));
    t.AddColumn(IntCol("wr_web_page_sk", 2040, 0, 2040));
    t.AddColumn(IntCol("wr_reason_sk", 45, 0, 45));
    t.AddColumn(IntCol("wr_order_number", rows, 0, rows));
    t.AddColumn(NumCol("wr_return_quantity", 100, 1, 100));
    t.AddColumn(NumCol("wr_return_amt", 1000000, 0, 19000));
    t.AddColumn(NumCol("wr_net_loss", 1000000, 0, 10000));
    add(std::move(t));
  }
  {
    const double rows = 13311000 * sf;
    Table t("inventory", rows);
    t.AddColumn(IntCol("inv_date_sk", 261, 2450815, 2452654));
    t.AddColumn(IntCol("inv_item_sk", 102000, 0, 102000));
    t.AddColumn(IntCol("inv_warehouse_sk", 10, 0, 10));
    t.AddColumn(IntCol("inv_quantity_on_hand", 1000, 0, 1000));
    add(std::move(t));
  }
  return db;
}

/// One query-family structure: a fact table (by column prefix), the dimension
/// joins to emit, raw filter conjuncts (with one "%d" slot for a variant
/// parameter in some filters), and grouping columns. Each family is emitted
/// three times with different literal parameters, yielding 99 query
/// templates matching TPC-DS's template-with-substitution design.
struct Family {
  const char* fact;                 // fact table name
  const char* prefix;               // fact column prefix, e.g. "ss"
  std::vector<std::string> joins;   // full join conjuncts
  std::vector<std::string> filters; // conjuncts; "{v}" substituted per variant
  std::vector<std::string> group_by;
  std::vector<std::string> select;  // select list items
  std::vector<std::string> extra_tables;  // joined tables besides fact
};

std::string Substitute(const std::string& text, const std::string& value) {
  std::string out = text;
  size_t pos = out.find("{v}");
  if (pos != std::string::npos) out.replace(pos, 3, value);
  return out;
}

std::string AssembleSql(const Family& f, const std::string& variant) {
  std::string sql = "SELECT ";
  for (size_t i = 0; i < f.select.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += f.select[i];
  }
  sql += " FROM ";
  sql += f.fact;
  for (const std::string& t : f.extra_tables) sql += ", " + t;
  sql += " WHERE ";
  bool first = true;
  for (const std::string& j : f.joins) {
    if (!first) sql += " AND ";
    sql += j;
    first = false;
  }
  for (const std::string& flt : f.filters) {
    if (!first) sql += " AND ";
    sql += Substitute(flt, variant);
    first = false;
  }
  if (!f.group_by.empty()) {
    sql += " GROUP BY ";
    for (size_t i = 0; i < f.group_by.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += f.group_by[i];
    }
    sql += " ORDER BY " + f.group_by[0];
  }
  return sql;
}

/// 33 structural families x 3 literal variants = 99 queries.
std::vector<Family> TpcdsFamilies() {
  std::vector<Family> fams;

  // 1: store sales by item category and year.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_sold_date_sk = d_date_sk", "ss_item_sk = i_item_sk"},
      {"d_year = {v}", "i_category = 'Books'"},
      {"i_brand", "i_class"},
      {"i_brand", "i_class", "SUM(ss_ext_sales_price)"},
      {"date_dim", "item"}});
  // 2: store sales by customer demographics.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_sold_date_sk = d_date_sk", "ss_cdemo_sk = cd_demo_sk",
       "ss_item_sk = i_item_sk"},
      {"cd_gender = 'M'", "cd_marital_status = 'S'",
       "cd_education_status = 'College'", "d_year = {v}"},
      {"i_item_id"},
      {"i_item_id", "AVG(ss_quantity)", "AVG(ss_list_price)",
       "AVG(ss_sales_price)"},
      {"date_dim", "customer_demographics", "item"}});
  // 3: store + store_returns chained by ticket.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_sold_date_sk = d_date_sk", "ss_ticket_number = sr_ticket_number",
       "ss_item_sk = sr_item_sk", "ss_store_sk = s_store_sk",
       "sr_reason_sk = r_reason_sk"},
      {"d_moy = {v}", "s_state = 'TN'"},
      {"s_store_name"},
      {"s_store_name", "SUM(sr_return_amt)", "COUNT(*)"},
      {"date_dim", "store_returns", "store", "reason"}});
  // 4: web sales by site and month.
  fams.push_back(Family{
      "web_sales", "ws",
      {"ws_sold_date_sk = d_date_sk", "ws_web_site_sk = web_site_sk",
       "ws_item_sk = i_item_sk"},
      {"d_year = {v}", "d_moy = 11", "i_category = 'Electronics'"},
      {"web_name"},
      {"web_name", "SUM(ws_ext_sales_price)", "SUM(ws_net_profit)"},
      {"date_dim", "web_site", "item"}});
  // 5: catalog sales with warehouse and ship mode.
  fams.push_back(Family{
      "catalog_sales", "cs",
      {"cs_sold_date_sk = d_date_sk", "cs_warehouse_sk = w_warehouse_sk",
       "cs_ship_mode_sk = sm_ship_mode_sk",
       "cs_call_center_sk = cc_call_center_sk"},
      {"d_moy = {v}", "sm_type = 'EXPRESS'"},
      {"w_warehouse_name", "sm_type"},
      {"w_warehouse_name", "sm_type", "SUM(cs_ext_sales_price)", "COUNT(*)"},
      {"date_dim", "warehouse", "ship_mode", "call_center"}});
  // 6: customer + address + store sales.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_sold_date_sk = d_date_sk", "ss_customer_sk = c_customer_sk",
       "c_current_addr_sk = ca_address_sk", "ss_item_sk = i_item_sk"},
      {"ca_state = '{v}'", "d_year = 2001"},
      {"ca_state", "i_category"},
      {"ca_state", "i_category", "COUNT(*)", "AVG(ss_quantity)"},
      {"date_dim", "customer", "customer_address", "item"}});
  // 7: promotion effect on store sales.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_sold_date_sk = d_date_sk", "ss_item_sk = i_item_sk",
       "ss_promo_sk = p_promo_sk", "ss_cdemo_sk = cd_demo_sk"},
      {"cd_gender = 'F'", "cd_marital_status = 'W'", "d_year = {v}",
       "p_channel_email = 'N'"},
      {"i_item_id"},
      {"i_item_id", "AVG(ss_quantity)", "AVG(ss_sales_price)"},
      {"date_dim", "item", "promotion", "customer_demographics"}});
  // 8: store sales by household demographics and time.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_sold_time_sk = t_time_sk", "ss_hdemo_sk = hd_demo_sk",
       "ss_store_sk = s_store_sk"},
      {"t_hour = {v}", "hd_dep_count = 5", "s_store_name = 'ese'"},
      {},
      {"COUNT(*)"},
      {"time_dim", "household_demographics", "store"}});
  // 9: inventory by item and warehouse.
  fams.push_back(Family{
      "inventory", "inv",
      {"inv_date_sk = d_date_sk", "inv_item_sk = i_item_sk",
       "inv_warehouse_sk = w_warehouse_sk"},
      {"d_month_seq BETWEEN {v} AND 1211",
       "i_current_price BETWEEN 0.99 AND 1.49"},
      {"w_warehouse_name", "i_item_id"},
      {"w_warehouse_name", "i_item_id", "SUM(inv_quantity_on_hand)"},
      {"date_dim", "item", "warehouse"}});
  // 10: web returns with reasons and pages.
  fams.push_back(Family{
      "web_returns", "wr",
      {"wr_returned_date_sk = d_date_sk", "wr_item_sk = i_item_sk",
       "wr_reason_sk = r_reason_sk", "wr_web_page_sk = wp_web_page_sk"},
      {"d_year = {v}"},
      {"r_reason_desc"},
      {"r_reason_desc", "SUM(wr_return_amt)", "AVG(wr_return_quantity)"},
      {"date_dim", "item", "reason", "web_page"}});
  // 11: catalog returns by call center.
  fams.push_back(Family{
      "catalog_returns", "cr",
      {"cr_returned_date_sk = d_date_sk",
       "cr_call_center_sk = cc_call_center_sk", "cr_item_sk = i_item_sk",
       "cr_reason_sk = r_reason_sk"},
      {"d_year = {v}", "d_moy = 12"},
      {"cc_name"},
      {"cc_name", "SUM(cr_net_loss)", "COUNT(*)"},
      {"date_dim", "call_center", "item", "reason"}});
  // 12: cross-channel: store and web sales on the same items.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_item_sk = i_item_sk", "ws_item_sk = i_item_sk",
       "ss_sold_date_sk = d_date_sk", "ws_sold_date_sk = d_date_sk"},
      {"d_year = {v}", "i_category = 'Music'"},
      {"i_item_id"},
      {"i_item_id", "SUM(ss_ext_sales_price)", "SUM(ws_ext_sales_price)"},
      {"web_sales", "item", "date_dim"}});
  // 13: store sales with address gmt offset and demographics.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_sold_date_sk = d_date_sk", "ss_addr_sk = ca_address_sk",
       "ss_cdemo_sk = cd_demo_sk", "ss_store_sk = s_store_sk"},
      {"ca_gmt_offset = -5", "cd_education_status = '{v}'", "d_year = 1998"},
      {"s_store_name"},
      {"s_store_name", "AVG(ss_quantity)", "AVG(ss_ext_sales_price)"},
      {"date_dim", "customer_address", "customer_demographics", "store"}});
  // 14: item price comparison across brands.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_item_sk = i_item_sk", "ss_sold_date_sk = d_date_sk"},
      {"i_manufact_id = {v}", "d_moy = 11"},
      {"i_brand", "d_year"},
      {"i_brand", "d_year", "SUM(ss_ext_sales_price)"},
      {"item", "date_dim"}});
  // 15: catalog sales to customers in given states.
  fams.push_back(Family{
      "catalog_sales", "cs",
      {"cs_sold_date_sk = d_date_sk", "cs_customer_sk = c_customer_sk",
       "c_current_addr_sk = ca_address_sk"},
      {"ca_state IN ('CA', 'WA', 'GA')", "d_qoy = {v}", "d_year = 2001"},
      {"ca_zip"},
      {"ca_zip", "SUM(cs_sales_price)"},
      {"date_dim", "customer", "customer_address"}});
  // 16: catalog orders shipped from warehouses.
  fams.push_back(Family{
      "catalog_sales", "cs",
      {"cs_ship_date_sk = d_date_sk", "cs_warehouse_sk = w_warehouse_sk",
       "cs_call_center_sk = cc_call_center_sk"},
      {"d_moy = {v}", "w_state = 'GA'"},
      {},
      {"COUNT(cs_order_number)", "SUM(cs_ext_sales_price)"},
      {"date_dim", "warehouse", "call_center"}});
  // 17: store + returns + catalog chained (three facts).
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_ticket_number = sr_ticket_number", "ss_item_sk = sr_item_sk",
       "sr_customer_sk = cs_customer_sk", "sr_item_sk = cs_item_sk",
       "ss_sold_date_sk = d_date_sk", "ss_item_sk = i_item_sk",
       "ss_store_sk = s_store_sk"},
      {"d_qoy = {v}", "d_year = 2001"},
      {"i_item_id", "s_state"},
      {"i_item_id", "s_state", "AVG(ss_quantity)", "AVG(sr_return_quantity)",
       "AVG(cs_quantity)"},
      {"store_returns", "catalog_sales", "date_dim", "item", "store"}});
  // 18: catalog sales with customer birth demographics.
  fams.push_back(Family{
      "catalog_sales", "cs",
      {"cs_sold_date_sk = d_date_sk", "cs_customer_sk = c_customer_sk",
       "cs_cdemo_sk = cd_demo_sk", "c_current_addr_sk = ca_address_sk",
       "cs_item_sk = i_item_sk"},
      {"cd_gender = 'F'", "cd_education_status = '{v}'",
       "c_birth_year BETWEEN 1960 AND 1970"},
      {"i_item_id", "ca_state"},
      {"i_item_id", "ca_state", "AVG(cs_quantity)", "AVG(cs_list_price)"},
      {"date_dim", "customer", "customer_demographics", "customer_address",
       "item"}});
  // 19: store sales by brand and manager.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_sold_date_sk = d_date_sk", "ss_item_sk = i_item_sk",
       "ss_customer_sk = c_customer_sk",
       "c_current_addr_sk = ca_address_sk", "ss_store_sk = s_store_sk"},
      {"i_manager_id = {v}", "d_moy = 11", "d_year = 1999"},
      {"i_brand"},
      {"i_brand", "SUM(ss_ext_sales_price)"},
      {"date_dim", "item", "customer", "customer_address", "store"}});
  // 20: catalog sales by item class over a date range.
  fams.push_back(Family{
      "catalog_sales", "cs",
      {"cs_sold_date_sk = d_date_sk", "cs_item_sk = i_item_sk"},
      {"i_category IN ('Sports', 'Books', 'Home')",
       "d_date_sk BETWEEN {v} AND 2451500"},
      {"i_item_id", "i_class"},
      {"i_item_id", "i_class", "SUM(cs_ext_sales_price)"},
      {"date_dim", "item"}});
  // 21: inventory before/after a date.
  fams.push_back(Family{
      "inventory", "inv",
      {"inv_date_sk = d_date_sk", "inv_item_sk = i_item_sk",
       "inv_warehouse_sk = w_warehouse_sk"},
      {"i_current_price BETWEEN {v} AND 1.5",
       "d_date_sk BETWEEN 2451200 AND 2451260"},
      {"w_warehouse_name", "i_item_id"},
      {"w_warehouse_name", "i_item_id", "SUM(inv_quantity_on_hand)"},
      {"date_dim", "item", "warehouse"}});
  // 22: inventory by product hierarchy.
  fams.push_back(Family{
      "inventory", "inv",
      {"inv_date_sk = d_date_sk", "inv_item_sk = i_item_sk"},
      {"d_month_seq BETWEEN {v} AND 1205"},
      {"i_brand", "i_class", "i_category"},
      {"i_brand", "i_class", "i_category", "AVG(inv_quantity_on_hand)"},
      {"date_dim", "item"}});
  // 23: frequent store buyers who bought from catalog too.
  fams.push_back(Family{
      "catalog_sales", "cs",
      {"cs_sold_date_sk = d_date_sk", "cs_customer_sk = c_customer_sk",
       "ss_customer_sk = c_customer_sk", "ss_item_sk = i_item_sk"},
      {"d_year = {v}", "d_moy = 3"},
      {"c_last_name"},
      {"c_last_name", "SUM(cs_ext_sales_price)"},
      {"date_dim", "customer", "store_sales", "item"}});
  // 24: store returns joined back to sales with customers.
  fams.push_back(Family{
      "store_returns", "sr",
      {"sr_ticket_number = ss_ticket_number", "sr_item_sk = ss_item_sk",
       "sr_customer_sk = c_customer_sk", "ss_store_sk = s_store_sk",
       "sr_item_sk = i_item_sk"},
      {"s_market_id = {v}", "i_color = 'pale'"},
      {"c_last_name", "c_first_name"},
      {"c_last_name", "c_first_name", "SUM(sr_return_amt)"},
      {"store_sales", "customer", "store", "item"}});
  // 25: store sales and returns and catalog re-purchases.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_ticket_number = sr_ticket_number", "ss_item_sk = sr_item_sk",
       "sr_customer_sk = ws_customer_sk", "sr_item_sk = ws_item_sk",
       "ss_item_sk = i_item_sk", "ss_store_sk = s_store_sk",
       "ss_sold_date_sk = d_date_sk"},
      {"d_moy = {v}", "d_year = 2000"},
      {"i_item_id", "s_store_id"},
      {"i_item_id", "s_store_id", "SUM(ss_net_profit)", "SUM(sr_net_loss)",
       "SUM(ws_net_profit)"},
      {"store_returns", "web_sales", "item", "store", "date_dim"}});
  // 26: catalog sales demographic averages.
  fams.push_back(Family{
      "catalog_sales", "cs",
      {"cs_sold_date_sk = d_date_sk", "cs_item_sk = i_item_sk",
       "cs_cdemo_sk = cd_demo_sk", "cs_promo_sk = p_promo_sk"},
      {"cd_gender = 'M'", "cd_marital_status = '{v}'",
       "cd_education_status = 'College'", "d_year = 2000"},
      {"i_item_id"},
      {"i_item_id", "AVG(cs_quantity)", "AVG(cs_list_price)",
       "AVG(cs_sales_price)"},
      {"date_dim", "item", "customer_demographics", "promotion"}});
  // 27: store sales over states for given demographics.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_sold_date_sk = d_date_sk", "ss_item_sk = i_item_sk",
       "ss_store_sk = s_store_sk", "ss_cdemo_sk = cd_demo_sk"},
      {"cd_gender = 'F'", "cd_marital_status = 'D'", "d_year = {v}",
       "s_state IN ('TN', 'SD')"},
      {"i_item_id", "s_state"},
      {"i_item_id", "s_state", "AVG(ss_quantity)", "AVG(ss_list_price)"},
      {"date_dim", "item", "store", "customer_demographics"}});
  // 28: store sales price buckets (single table, heavy filters).
  fams.push_back(Family{
      "store_sales", "ss",
      {},
      {"ss_quantity BETWEEN 0 AND 5",
       "ss_list_price BETWEEN {v} AND 100",
       "ss_wholesale_cost BETWEEN 10 AND 60"},
      {},
      {"AVG(ss_list_price)", "COUNT(*)"},
      {}});
  // 29: web page visits by time and household.
  fams.push_back(Family{
      "web_sales", "ws",
      {"ws_sold_time_sk = t_time_sk", "ws_ship_mode_sk = sm_ship_mode_sk",
       "ws_web_page_sk = wp_web_page_sk"},
      {"t_hour BETWEEN {v} AND 12", "sm_carrier = 'UPS'"},
      {"wp_link_count"},
      {"wp_link_count", "COUNT(*)"},
      {"time_dim", "ship_mode", "web_page"}});
  // 30: web returns per customer and state.
  fams.push_back(Family{
      "web_returns", "wr",
      {"wr_returned_date_sk = d_date_sk",
       "wr_refunded_customer_sk = c_customer_sk",
       "c_current_addr_sk = ca_address_sk"},
      {"d_year = {v}", "ca_state = 'GA'"},
      {"c_customer_id", "c_last_name"},
      {"c_customer_id", "c_last_name", "SUM(wr_return_amt)"},
      {"date_dim", "customer", "customer_address"}});
  // 31: store and web sales by county and quarter.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_sold_date_sk = d_date_sk", "ss_addr_sk = ca_address_sk",
       "ws_sold_date_sk = d_date_sk", "ws_addr_sk = ca_address_sk"},
      {"d_qoy = {v}", "d_year = 2000"},
      {"ca_county"},
      {"ca_county", "SUM(ss_ext_sales_price)", "SUM(ws_ext_sales_price)"},
      {"web_sales", "date_dim", "customer_address"}});
  // 32: catalog sales discount outliers.
  fams.push_back(Family{
      "catalog_sales", "cs",
      {"cs_item_sk = i_item_sk", "cs_sold_date_sk = d_date_sk"},
      {"i_manufact_id = {v}",
       "d_date_sk BETWEEN 2451200 AND 2451290",
       "cs_ext_discount_amt > 1000"},
      {},
      {"SUM(cs_ext_discount_amt)"},
      {"item", "date_dim"}});
  // 33: store sales of specific manufacturers by month.
  fams.push_back(Family{
      "store_sales", "ss",
      {"ss_sold_date_sk = d_date_sk", "ss_item_sk = i_item_sk",
       "ss_addr_sk = ca_address_sk"},
      {"i_manufact_id IN (350, 245, 900, 230)", "d_moy = {v}",
       "ca_gmt_offset = -6"},
      {"i_manufact_id"},
      {"i_manufact_id", "SUM(ss_ext_sales_price)"},
      {"date_dim", "item", "customer_address"}});

  BATI_CHECK(fams.size() == 33);

  // Enrichment pass: TPC-DS queries are wide star joins (Table 1: avg 8.8
  // scans per query). Give every multi-table sales-fact family its channel
  // dimension, the customer chain, and the time dimension where absent.
  auto has_table = [](const Family& f, const std::string& t) {
    for (const std::string& e : f.extra_tables) {
      if (e == t) return true;
    }
    return false;
  };
  auto add_join = [&](Family& f, const std::string& table,
                      const std::string& conjunct) {
    if (has_table(f, table)) return;
    f.extra_tables.push_back(table);
    f.joins.push_back(conjunct);
  };
  for (Family& f : fams) {
    if (f.joins.empty()) continue;  // keep single-table families single
    std::string fact = f.fact;
    std::string p = f.prefix;
    if (fact == "store_sales" || fact == "catalog_sales" ||
        fact == "web_sales") {
      add_join(f, "time_dim", p + "_sold_time_sk = t_time_sk");
      add_join(f, "customer", p + "_customer_sk = c_customer_sk");
      if (!has_table(f, "customer_address")) {
        f.extra_tables.push_back("customer_address");
        f.joins.push_back("c_current_addr_sk = ca_address_sk");
      }
    }
    if (fact == "store_sales") {
      add_join(f, "store", "ss_store_sk = s_store_sk");
      add_join(f, "item", "ss_item_sk = i_item_sk");
    } else if (fact == "catalog_sales") {
      add_join(f, "call_center", "cs_call_center_sk = cc_call_center_sk");
      add_join(f, "item", "cs_item_sk = i_item_sk");
    } else if (fact == "web_sales") {
      add_join(f, "web_site", "ws_web_site_sk = web_site_sk");
      add_join(f, "item", "ws_item_sk = i_item_sk");
    }
  }
  return fams;
}

/// Variant parameter values per family (three instances per family).
std::vector<std::string> FamilyVariants(size_t family_idx) {
  // Cycle through value sets appropriate for the filter slot of each family.
  switch (family_idx % 33) {
    case 0: return {"1999", "2000", "2001"};
    case 1: return {"1998", "2000", "2002"};
    case 2: return {"4", "7", "11"};
    case 3: return {"1999", "2000", "2001"};
    case 4: return {"2", "5", "9"};
    case 5: return {"TX", "CA", "NY"};
    case 6: return {"1998", "1999", "2000"};
    case 7: return {"9", "15", "20"};
    case 8: return {"1200", "1204", "1208"};
    case 9: return {"1999", "2000", "2001"};
    case 10: return {"1998", "1999", "2000"};
    case 11: return {"1999", "2000", "2001"};
    case 12: return {"College", "Advanced Degree", "4 yr Degree"};
    case 13: return {"100", "350", "800"};
    case 14: return {"1", "2", "3"};
    case 15: return {"2", "4", "6"};
    case 16: return {"1", "2", "3"};
    case 17: return {"College", "Primary", "Secondary"};
    case 18: return {"8", "38", "88"};
    case 19: return {"2451100", "2451180", "2451400"};
    case 20: return {"0.99", "1.10", "1.25"};
    case 21: return {"1193", "1197", "1201"};
    case 22: return {"1999", "2000", "2001"};
    case 23: return {"5", "7", "10"};
    case 24: return {"1", "6", "11"};
    case 25: return {"S", "M", "D"};
    case 26: return {"1999", "2000", "2001"};
    case 27: return {"20", "50", "80"};
    case 28: return {"6", "8", "10"};
    case 29: return {"1999", "2000", "2001"};
    case 30: return {"1", "2", "3"};
    case 31: return {"120", "400", "770"};
    case 32: return {"3", "7", "12"};
  }
  return {"1", "2", "3"};
}

}  // namespace

Workload MakeTpcds(const WorkloadOptions& options) {
  auto db = MakeTpcdsDatabase(options.scale);
  std::vector<Family> fams = TpcdsFamilies();
  std::vector<std::string> sqls;
  std::vector<std::string> names;
  int qnum = 1;
  for (int variant = 0; variant < 3; ++variant) {
    for (size_t f = 0; f < fams.size(); ++f) {
      std::vector<std::string> variants = FamilyVariants(f);
      sqls.push_back(
          AssembleSql(fams[f], variants[static_cast<size_t>(variant)]));
      names.push_back("q" + std::to_string(qnum++));
    }
  }
  BATI_CHECK(sqls.size() == 99);
  return schema_util::BindAll("tpcds", std::move(db), sqls, names);
}

}  // namespace bati
