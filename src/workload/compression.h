#ifndef BATI_WORKLOAD_COMPRESSION_H_
#define BATI_WORKLOAD_COMPRESSION_H_

#include <vector>

#include "workload/query.h"

namespace bati {

/// Options for workload compression.
struct CompressionOptions {
  /// Hard cap on the number of representatives (0 = keep every cluster).
  /// When capped, clusters are kept in decreasing order of weight.
  int max_queries = 0;
};

/// A compressed workload: one representative query per template cluster,
/// with multiplicities.
struct CompressedWorkload {
  /// Representative queries (ids renumbered 0..n-1).
  Workload workload;
  /// Number of original queries each representative stands for.
  std::vector<double> weights;
  /// Original query ids per cluster (parallel to `workload.queries`).
  std::vector<std::vector<int>> members;
};

/// Template-signature workload compression (the technique the paper's
/// footnote 5 points to for multi-instance workloads): queries that share a
/// structural template — the same multiset of scanned tables, the same join
/// column pairs, and the same filtered columns with the same predicate kinds
/// (literal values ignored) — collapse into one representative. Tuning the
/// compressed workload spends what-if budget only on structurally distinct
/// queries; the recommendation transfers to the full workload because
/// candidate-index usefulness is determined by the template, not by the
/// literals.
CompressedWorkload CompressWorkload(
    const Workload& input,
    const CompressionOptions& options = CompressionOptions());

/// Stable 64-bit template signature used by CompressWorkload; exposed for
/// testing and for callers that want to group queries themselves.
uint64_t TemplateSignature(const Query& query);

}  // namespace bati

#endif  // BATI_WORKLOAD_COMPRESSION_H_
