#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "workload/generators.h"
#include "workload/schema_util.h"

namespace bati {

namespace {

using schema_util::IntCol;
using schema_util::NumCol;
using schema_util::StrCol;

/// Parameters of the synthetic "real workload" generator, tuned per DESIGN.md
/// to match the paper's Table 1 rows for Real-D and Real-M.
struct RealParams {
  const char* name;
  /// Prefix for generated table/column names (must be a valid identifier).
  const char* table_prefix;
  int num_tables;
  int num_queries;
  double target_bytes;
  /// Mean number of joins per query (scans = joins + 1 on a join tree).
  double mean_joins;
  /// Mean number of filter predicates per query.
  double mean_filters;
  /// Mean number of FK edges leaving each table.
  double mean_fks;
  /// Fraction of tables that are large "fact-like" tables.
  double fact_fraction;
  uint64_t schema_seed;
};

struct TableMeta {
  int id_col = 0;                  // ordinal of the surrogate key column
  std::vector<int> fk_cols;        // ordinals of FK columns
  std::vector<int> fk_targets;     // referenced table ids (parallel array)
  std::vector<int> attr_cols;      // ordinals of non-key attribute columns
};

/// Builds the synthetic schema: tables with skewed sizes, surrogate keys,
/// FK edges to earlier tables, and a handful of filterable attributes.
std::shared_ptr<Database> MakeRealDatabase(const RealParams& p,
                                           std::vector<TableMeta>* metas,
                                           std::vector<std::vector<int>>* adj) {
  Rng rng(p.schema_seed);
  auto db = std::make_shared<Database>(p.name);
  metas->resize(static_cast<size_t>(p.num_tables));
  adj->assign(static_cast<size_t>(p.num_tables), {});

  // Draw raw row counts with heavy skew, then rescale to the byte target.
  std::vector<double> rows(static_cast<size_t>(p.num_tables));
  for (int i = 0; i < p.num_tables; ++i) {
    bool fact = rng.Bernoulli(p.fact_fraction);
    double log10_rows =
        fact ? rng.Uniform(6.5, 8.2) : rng.Uniform(2.0, 5.5);
    rows[static_cast<size_t>(i)] = std::pow(10.0, log10_rows);
  }

  // Column layouts first (widths needed for the byte-total rescale).
  struct PendingTable {
    std::string name;
    std::vector<Column> columns;
  };
  std::vector<PendingTable> pending(static_cast<size_t>(p.num_tables));
  double total_bytes = 0.0;
  for (int i = 0; i < p.num_tables; ++i) {
    TableMeta& meta = (*metas)[static_cast<size_t>(i)];
    PendingTable& pt = pending[static_cast<size_t>(i)];
    std::string tname = std::string(p.table_prefix) + "_t" + std::to_string(i);
    pt.name = tname;
    double r = rows[static_cast<size_t>(i)];

    // Surrogate key.
    meta.id_col = static_cast<int>(pt.columns.size());
    pt.columns.push_back(IntCol(tname + "_id", r, 0, r));

    // FK columns to earlier tables (preferring larger targets sometimes to
    // create realistic fact->dimension shapes).
    if (i > 0) {
      int n_fks = static_cast<int>(rng.UniformInt(
          1, std::max<int64_t>(1, static_cast<int64_t>(2 * p.mean_fks - 1))));
      std::set<int> targets;
      for (int f = 0; f < n_fks; ++f) {
        int target = static_cast<int>(rng.UniformInt(0, i - 1));
        if (!targets.insert(target).second) continue;
        double trows = rows[static_cast<size_t>(target)];
        meta.fk_cols.push_back(static_cast<int>(pt.columns.size()));
        meta.fk_targets.push_back(target);
        pt.columns.push_back(
            IntCol(tname + "_fk" + std::to_string(f), trows, 0, trows));
        (*adj)[static_cast<size_t>(i)].push_back(target);
        (*adj)[static_cast<size_t>(target)].push_back(i);
      }
    }

    // Attribute columns: a mix of low- and high-cardinality values.
    int n_attrs = static_cast<int>(rng.UniformInt(3, 9));
    for (int a = 0; a < n_attrs; ++a) {
      meta.attr_cols.push_back(static_cast<int>(pt.columns.size()));
      std::string cname = tname + "_a" + std::to_string(a);
      switch (rng.UniformInt(0, 3)) {
        case 0: {  // categorical, often skewed (real data rarely uniform)
          Column c = IntCol(cname, rng.Uniform(2, 60), 0, 1000);
          if (rng.Bernoulli(0.5)) {
            c.stats.histogram =
                Histogram::Zipf(0, 1000, 12, rng.Uniform(0.8, 1.8));
          }
          pt.columns.push_back(std::move(c));
          break;
        }
        case 1:  // timestamp-like
          pt.columns.push_back(IntCol(cname, 100000, 0, 100000));
          break;
        case 2:  // measure
          pt.columns.push_back(NumCol(cname, 1e6, 0, 1e6));
          break;
        default:  // short text
          pt.columns.push_back(
              StrCol(cname, static_cast<int>(rng.UniformInt(8, 40)),
                     rng.Uniform(10, 1e5)));
          break;
      }
    }
    double width = 0;
    for (const Column& c : pt.columns) width += c.WidthBytes();
    total_bytes += r * width;
  }

  // Rescale row counts so the database totals the paper's size, keeping
  // key/FK statistics consistent: a surrogate key's NDV equals its table's
  // rescaled rows; an FK's NDV equals the referenced table's rescaled rows.
  double factor = p.target_bytes / std::max(1.0, total_bytes);
  auto scaled_rows = [&](int i) {
    return std::max(10.0, rows[static_cast<size_t>(i)] * factor);
  };
  for (int i = 0; i < p.num_tables; ++i) {
    const TableMeta& meta = (*metas)[static_cast<size_t>(i)];
    double r = scaled_rows(i);
    Table t(pending[static_cast<size_t>(i)].name, r);
    std::vector<Column>& cols = pending[static_cast<size_t>(i)].columns;
    cols[static_cast<size_t>(meta.id_col)].stats.ndv = r;
    cols[static_cast<size_t>(meta.id_col)].stats.max_value = r;
    for (size_t f = 0; f < meta.fk_cols.size(); ++f) {
      double target_rows = scaled_rows(meta.fk_targets[f]);
      Column& fk = cols[static_cast<size_t>(meta.fk_cols[f])];
      fk.stats.ndv = std::min(target_rows, r);
      fk.stats.max_value = target_rows;
    }
    for (int a : meta.attr_cols) {
      Column& c = cols[static_cast<size_t>(a)];
      c.stats.ndv = std::min(c.stats.ndv, r);
    }
    for (Column& c : cols) t.AddColumn(c);
    BATI_CHECK_OK(db->AddTable(std::move(t)).status());
  }
  return db;
}

/// Generates one query as SQL text: a random FK-walk join tree with a few
/// filters and an aggregate output.
std::string GenerateQuerySql(const RealParams& p, const Database& db,
                             const std::vector<TableMeta>& metas,
                             const std::vector<std::vector<int>>& adj,
                             Rng& rng) {
  const int want_scans =
      std::max(2, static_cast<int>(std::round(rng.Normal(
                      p.mean_joins + 1.0, p.mean_joins * 0.2))));

  // Random walk over the FK graph collecting distinct tables. Real
  // enterprise queries are overwhelmingly N:1 join chains (fact to
  // dimensions), so the walk is cardinality-bounded: an edge is taken only
  // if the estimated join output stays within a small multiple of the
  // current intermediate size (otherwise a fan-out join would blow up the
  // intermediate result and no index could help the query).
  std::set<int> visited;
  std::vector<int> order;
  std::vector<std::string> join_conjuncts;
  int start = -1;
  // Prefer a large table as the chain's "fact" anchor.
  for (int tries = 0; tries < 400 && start < 0; ++tries) {
    int cand = static_cast<int>(rng.UniformInt(0, p.num_tables - 1));
    if (adj[static_cast<size_t>(cand)].empty()) continue;
    if (db.table(cand).row_count() >= 1e4 || tries > 200) start = cand;
  }
  BATI_CHECK(start >= 0);
  visited.insert(start);
  order.push_back(start);
  double card = db.table(start).row_count();
  while (static_cast<int>(order.size()) < want_scans) {
    // Frontier: unvisited neighbors of any visited table whose join keeps
    // the intermediate result bounded.
    std::vector<std::pair<int, int>> frontier;  // (from, to)
    // The join column's dominant NDV is the *referenced* table's key
    // cardinality, so establish the FK direction for each candidate edge.
    auto references = [&](int holder, int target) {
      const TableMeta& hm = metas[static_cast<size_t>(holder)];
      for (int t : hm.fk_targets) {
        if (t == target) return true;
      }
      return false;
    };
    auto estimated_out = [&](int v, int nb) {
      double rows_nb = db.table(nb).row_count();
      double referenced_rows =
          references(nb, v) ? db.table(v).row_count() : rows_nb;
      return card * rows_nb / std::max(1.0, referenced_rows);
    };
    for (int v : order) {
      for (int nb : adj[static_cast<size_t>(v)]) {
        if (visited.count(nb) != 0) continue;
        if (estimated_out(v, nb) <= card * 2.0 + 100.0) {
          frontier.emplace_back(v, nb);
        }
      }
    }
    if (frontier.empty()) break;
    auto [from, to] =
        frontier[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(frontier.size()) - 1))];
    card = std::max(1.0, estimated_out(from, to));
    visited.insert(to);
    order.push_back(to);
    // Emit the FK equality conjunct for this edge (direction depends on
    // which side holds the FK).
    auto emit = [&](int holder, int target) -> bool {
      const TableMeta& hm = metas[static_cast<size_t>(holder)];
      for (size_t f = 0; f < hm.fk_targets.size(); ++f) {
        if (hm.fk_targets[f] == target) {
          const Table& ht = db.table(holder);
          const Table& tt = db.table(target);
          join_conjuncts.push_back(
              ht.column(hm.fk_cols[f]).name + " = " +
              tt.column(metas[static_cast<size_t>(target)].id_col).name);
          return true;
        }
      }
      return false;
    };
    if (!emit(to, from)) BATI_CHECK(emit(from, to));
  }

  // Filters: Poisson-ish count with the configured mean.
  std::vector<std::string> filter_conjuncts;
  int n_filters = 0;
  {
    double mean = p.mean_filters;
    while (mean > 0 && rng.Uniform() < mean / (1.0 + mean) &&
           n_filters < 6) {
      ++n_filters;
      mean *= 0.7;
    }
  }
  for (int f = 0; f < n_filters; ++f) {
    int t = order[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(order.size()) - 1))];
    const TableMeta& meta = metas[static_cast<size_t>(t)];
    if (meta.attr_cols.empty()) continue;
    const Table& table = db.table(t);
    int col = meta.attr_cols[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(meta.attr_cols.size()) - 1))];
    const Column& c = table.column(col);
    double lo = c.stats.min_value, hi = c.stats.max_value;
    if (rng.Bernoulli(0.6)) {
      // Equality on a value within the domain.
      int64_t v = static_cast<int64_t>(rng.Uniform(lo, hi));
      filter_conjuncts.push_back(c.name + " = " + std::to_string(v));
    } else {
      double a = rng.Uniform(lo, hi);
      double b = a + rng.Uniform(0.01, 0.2) * (hi - lo);
      filter_conjuncts.push_back(c.name + " BETWEEN " +
                                 std::to_string(static_cast<int64_t>(a)) +
                                 " AND " +
                                 std::to_string(static_cast<int64_t>(b)));
    }
  }

  // Output: group by one attribute, aggregate one measure.
  const Table& first = db.table(order.front());
  const TableMeta& fmeta = metas[static_cast<size_t>(order.front())];
  std::string group_col =
      fmeta.attr_cols.empty()
          ? first.column(fmeta.id_col).name
          : first.column(fmeta.attr_cols.front()).name;
  const Table& last = db.table(order.back());
  const TableMeta& lmeta = metas[static_cast<size_t>(order.back())];
  std::string agg_col =
      lmeta.attr_cols.empty()
          ? last.column(lmeta.id_col).name
          : last.column(lmeta.attr_cols.back()).name;

  std::string sql = "SELECT " + group_col + ", COUNT(*), SUM(" + agg_col +
                    ") FROM ";
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += db.table(order[i]).name();
  }
  sql += " WHERE ";
  bool need_and = false;
  for (const std::string& j : join_conjuncts) {
    if (need_and) sql += " AND ";
    sql += j;
    need_and = true;
  }
  for (const std::string& flt : filter_conjuncts) {
    if (need_and) sql += " AND ";
    sql += flt;
    need_and = true;
  }
  sql += " GROUP BY " + group_col;
  return sql;
}

Workload MakeReal(const RealParams& p, const WorkloadOptions& options) {
  RealParams scaled = p;
  scaled.target_bytes *= options.scale;
  std::vector<TableMeta> metas;
  std::vector<std::vector<int>> adj;
  auto db = MakeRealDatabase(scaled, &metas, &adj);
  Rng rng(scaled.schema_seed ^ 0x517CC1B727220A95ULL);
  std::vector<std::string> sqls;
  std::vector<std::string> names;
  for (int i = 0; i < scaled.num_queries; ++i) {
    sqls.push_back(GenerateQuerySql(scaled, *db, metas, adj, rng));
    names.push_back(std::string(p.table_prefix) + "_q" + std::to_string(i + 1));
  }
  return schema_util::BindAll(p.name, std::move(db), sqls, names);
}

}  // namespace

Workload MakeRealD(const WorkloadOptions& options) {
  RealParams p;
  p.name = "real-d";
  p.table_prefix = "rd";
  p.num_tables = 7912;
  p.num_queries = 32;
  p.target_bytes = 587e9;
  p.mean_joins = 15.6;
  p.mean_filters = 0.25;
  p.mean_fks = 1.6;
  p.fact_fraction = 0.01;
  p.schema_seed = 0xD001;
  return MakeReal(p, options);
}

Workload MakeRealDBench(const WorkloadOptions& options) {
  // Same schema shape as Real-D (Table 1), doubled query count and a
  // distinct seed: the benchmark workload must be big enough to engage the
  // batched executor pool without being the workload the figures tune.
  RealParams p;
  p.name = "real-d-bench";
  p.table_prefix = "rb";
  p.num_tables = 7912;
  p.num_queries = 64;
  p.target_bytes = 587e9;
  p.mean_joins = 15.6;
  p.mean_filters = 0.25;
  p.mean_fks = 1.6;
  p.fact_fraction = 0.01;
  p.schema_seed = 0xD002;
  return MakeReal(p, options);
}

Workload MakeRealM(const WorkloadOptions& options) {
  RealParams p;
  p.name = "real-m";
  p.table_prefix = "rm";
  p.num_tables = 474;
  p.num_queries = 317;
  p.target_bytes = 26e9;
  p.mean_joins = 20.2;
  p.mean_filters = 1.5;
  p.mean_fks = 2.2;
  p.fact_fraction = 0.04;
  p.schema_seed = 0x4EA1;
  return MakeReal(p, options);
}

}  // namespace bati
