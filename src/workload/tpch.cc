#include <memory>

#include "common/macros.h"
#include "workload/generators.h"
#include "workload/schema_util.h"

namespace bati {

namespace {

using schema_util::DateCol;
using schema_util::IntCol;
using schema_util::KeyCol;
using schema_util::NumCol;
using schema_util::StrCol;

/// Dates are encoded as days since 1992-01-01 (domain 0..2525, ~7 years).
constexpr double kDays = 2525;

std::shared_ptr<Database> MakeTpchDatabase(double scale) {
  auto db = std::make_shared<Database>("tpch");
  const double sf = 10.0 * scale;  // paper uses sf=10

  {
    Table t("region", 5);
    t.AddColumn(KeyCol("r_regionkey", 5));
    t.AddColumn(StrCol("r_name", 25, 5));
    t.AddColumn(StrCol("r_comment", 100, 5));
    BATI_CHECK_OK(db->AddTable(std::move(t)).status());
  }
  {
    Table t("nation", 25);
    t.AddColumn(KeyCol("n_nationkey", 25));
    t.AddColumn(StrCol("n_name", 25, 25));
    t.AddColumn(IntCol("n_regionkey", 5, 0, 5));
    t.AddColumn(StrCol("n_comment", 100, 25));
    BATI_CHECK_OK(db->AddTable(std::move(t)).status());
  }
  {
    const double rows = 10000 * sf;
    Table t("supplier", rows);
    t.AddColumn(KeyCol("s_suppkey", rows));
    t.AddColumn(StrCol("s_name", 25, rows));
    t.AddColumn(StrCol("s_address", 40, rows));
    t.AddColumn(IntCol("s_nationkey", 25, 0, 25));
    t.AddColumn(StrCol("s_phone", 15, rows));
    t.AddColumn(NumCol("s_acctbal", 100000, -1000, 10000));
    t.AddColumn(StrCol("s_comment", 100, rows));
    BATI_CHECK_OK(db->AddTable(std::move(t)).status());
  }
  {
    const double rows = 150000 * sf;
    Table t("customer", rows);
    t.AddColumn(KeyCol("c_custkey", rows));
    t.AddColumn(StrCol("c_name", 25, rows));
    t.AddColumn(StrCol("c_address", 40, rows));
    t.AddColumn(IntCol("c_nationkey", 25, 0, 25));
    t.AddColumn(StrCol("c_phone", 15, rows));
    t.AddColumn(NumCol("c_acctbal", 1000000, -1000, 10000));
    t.AddColumn(StrCol("c_mktsegment", 10, 5));
    t.AddColumn(StrCol("c_comment", 117, rows));
    BATI_CHECK_OK(db->AddTable(std::move(t)).status());
  }
  {
    const double rows = 200000 * sf;
    Table t("part", rows);
    t.AddColumn(KeyCol("p_partkey", rows));
    t.AddColumn(StrCol("p_name", 55, rows));
    t.AddColumn(StrCol("p_mfgr", 25, 5));
    t.AddColumn(StrCol("p_brand", 10, 25));
    t.AddColumn(StrCol("p_type", 25, 150));
    t.AddColumn(IntCol("p_size", 50, 1, 50));
    t.AddColumn(StrCol("p_container", 10, 40));
    t.AddColumn(NumCol("p_retailprice", 100000, 900, 2100));
    t.AddColumn(StrCol("p_comment", 23, rows));
    BATI_CHECK_OK(db->AddTable(std::move(t)).status());
  }
  {
    const double rows = 800000 * sf;
    Table t("partsupp", rows);
    t.AddColumn(IntCol("ps_partkey", 200000 * sf, 0, 200000 * sf));
    t.AddColumn(IntCol("ps_suppkey", 10000 * sf, 0, 10000 * sf));
    t.AddColumn(IntCol("ps_availqty", 10000, 1, 10000));
    t.AddColumn(NumCol("ps_supplycost", 100000, 1, 1000));
    t.AddColumn(StrCol("ps_comment", 199, rows));
    BATI_CHECK_OK(db->AddTable(std::move(t)).status());
  }
  {
    const double rows = 1500000 * sf;
    Table t("orders", rows);
    t.AddColumn(KeyCol("o_orderkey", rows));
    t.AddColumn(IntCol("o_custkey", 150000 * sf, 0, 150000 * sf));
    t.AddColumn(StrCol("o_orderstatus", 1, 3));
    t.AddColumn(NumCol("o_totalprice", 1000000, 850, 560000));
    t.AddColumn(DateCol("o_orderdate", kDays));
    t.AddColumn(StrCol("o_orderpriority", 15, 5));
    t.AddColumn(StrCol("o_clerk", 15, 1000 * sf));
    t.AddColumn(IntCol("o_shippriority", 1, 0, 1));
    t.AddColumn(StrCol("o_comment", 79, rows));
    BATI_CHECK_OK(db->AddTable(std::move(t)).status());
  }
  {
    const double rows = 6000000 * sf;
    Table t("lineitem", rows);
    t.AddColumn(IntCol("l_orderkey", 1500000 * sf, 0, 1500000 * sf));
    t.AddColumn(IntCol("l_partkey", 200000 * sf, 0, 200000 * sf));
    t.AddColumn(IntCol("l_suppkey", 10000 * sf, 0, 10000 * sf));
    t.AddColumn(IntCol("l_linenumber", 7, 1, 7));
    t.AddColumn(NumCol("l_quantity", 50, 1, 50));
    t.AddColumn(NumCol("l_extendedprice", 1000000, 900, 105000));
    t.AddColumn(NumCol("l_discount", 11, 0, 0.1));
    t.AddColumn(NumCol("l_tax", 9, 0, 0.08));
    t.AddColumn(StrCol("l_returnflag", 1, 3));
    t.AddColumn(StrCol("l_linestatus", 1, 2));
    t.AddColumn(DateCol("l_shipdate", kDays));
    t.AddColumn(DateCol("l_commitdate", kDays));
    t.AddColumn(DateCol("l_receiptdate", kDays));
    t.AddColumn(StrCol("l_shipinstruct", 25, 4));
    t.AddColumn(StrCol("l_shipmode", 10, 7));
    t.AddColumn(StrCol("l_comment", 44, rows));
    BATI_CHECK_OK(db->AddTable(std::move(t)).status());
  }
  return db;
}

/// Simplified TPC-H templates expressed in the analytic SQL subset
/// (conjunctive predicates, equi-joins; subqueries flattened into joins).
/// Dates appear as day numbers in [0, 2525).
std::vector<std::string> TpchQueries() {
  // clang-format off: SQL literals read best unwrapped.
  return {
      // q1: pricing summary report
      "SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), AVG(l_discount), COUNT(*) "
      "FROM lineitem WHERE l_shipdate <= 2430 GROUP BY l_returnflag, l_linestatus "
      "ORDER BY l_returnflag, l_linestatus",
      // q2: minimum cost supplier
      "SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone "
      "FROM part, supplier, partsupp, nation, region "
      "WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND p_size = 15 "
      "AND p_type LIKE '%BRASS' AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
      "AND r_name = 'EUROPE' ORDER BY s_acctbal DESC, n_name, s_name, p_partkey",
      // q3: shipping priority
      "SELECT l_orderkey, SUM(l_extendedprice), o_orderdate, o_shippriority "
      "FROM customer, orders, lineitem "
      "WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey "
      "AND o_orderdate < 1165 AND l_shipdate > 1165 "
      "GROUP BY l_orderkey, o_orderdate, o_shippriority ORDER BY o_orderdate",
      // q4: order priority checking
      "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem "
      "WHERE l_orderkey = o_orderkey AND o_orderdate >= 1370 AND o_orderdate < 1460 "
      "AND l_commitdate < l_receiptdate GROUP BY o_orderpriority ORDER BY o_orderpriority",
      // q5: local supplier volume
      "SELECT n_name, SUM(l_extendedprice) FROM customer, orders, lineitem, supplier, nation, region "
      "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey "
      "AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
      "AND r_name = 'ASIA' AND o_orderdate >= 730 AND o_orderdate < 1095 "
      "GROUP BY n_name ORDER BY n_name",
      // q6: forecasting revenue change
      "SELECT SUM(l_extendedprice) FROM lineitem "
      "WHERE l_shipdate >= 730 AND l_shipdate < 1095 AND l_discount BETWEEN 0.05 AND 0.07 "
      "AND l_quantity < 24",
      // q7: volume shipping
      "SELECT n_name, SUM(l_extendedprice) FROM supplier, lineitem, orders, customer, nation "
      "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey "
      "AND s_nationkey = n_nationkey AND n_name = 'FRANCE' "
      "AND l_shipdate BETWEEN 1095 AND 1825 GROUP BY n_name",
      // q8: national market share
      "SELECT o_orderdate, SUM(l_extendedprice) "
      "FROM part, supplier, lineitem, orders, customer, nation, region "
      "WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey "
      "AND o_custkey = c_custkey AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey "
      "AND r_name = 'AMERICA' AND o_orderdate BETWEEN 1095 AND 1825 "
      "AND p_type = 'ECONOMY ANODIZED STEEL' GROUP BY o_orderdate ORDER BY o_orderdate",
      // q9: product type profit measure
      "SELECT n_name, o_orderdate, SUM(l_extendedprice) "
      "FROM part, supplier, lineitem, partsupp, orders, nation "
      "WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey "
      "AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey "
      "AND p_name LIKE '%green%' GROUP BY n_name, o_orderdate ORDER BY n_name, o_orderdate DESC",
      // q10: returned item reporting
      "SELECT c_custkey, c_name, SUM(l_extendedprice), c_acctbal, n_name, c_address, c_phone "
      "FROM customer, orders, lineitem, nation "
      "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND o_orderdate >= 1000 "
      "AND o_orderdate < 1090 AND l_returnflag = 'R' AND c_nationkey = n_nationkey "
      "GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address",
      // q11: important stock identification
      "SELECT ps_partkey, SUM(ps_supplycost) FROM partsupp, supplier, nation "
      "WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'GERMANY' "
      "GROUP BY ps_partkey ORDER BY ps_partkey",
      // q12: shipping modes and order priority
      "SELECT l_shipmode, COUNT(*) FROM orders, lineitem "
      "WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP') "
      "AND l_commitdate < l_receiptdate AND l_receiptdate >= 730 AND l_receiptdate < 1095 "
      "GROUP BY l_shipmode ORDER BY l_shipmode",
      // q13: customer distribution
      "SELECT c_custkey, COUNT(o_orderkey) FROM customer, orders "
      "WHERE c_custkey = o_custkey AND o_comment LIKE '%special%requests%' "
      "GROUP BY c_custkey",
      // q14: promotion effect
      "SELECT SUM(l_extendedprice) FROM lineitem, part "
      "WHERE l_partkey = p_partkey AND l_shipdate >= 1340 AND l_shipdate < 1370",
      // q15: top supplier (view flattened)
      "SELECT s_suppkey, s_name, s_address, s_phone, SUM(l_extendedprice) "
      "FROM supplier, lineitem WHERE s_suppkey = l_suppkey "
      "AND l_shipdate >= 1460 AND l_shipdate < 1550 "
      "GROUP BY s_suppkey, s_name, s_address, s_phone ORDER BY s_suppkey",
      // q16: parts/supplier relationship
      "SELECT p_brand, p_type, p_size, COUNT(ps_suppkey) FROM partsupp, part "
      "WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#45' "
      "AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9) "
      "GROUP BY p_brand, p_type, p_size ORDER BY p_brand, p_type, p_size",
      // q17: small-quantity-order revenue
      "SELECT AVG(l_extendedprice) FROM lineitem, part "
      "WHERE p_partkey = l_partkey AND p_brand = 'Brand#23' AND p_container = 'MED BOX' "
      "AND l_quantity < 5",
      // q18: large volume customer
      "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity) "
      "FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND o_totalprice > 400000 "
      "GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice "
      "ORDER BY o_totalprice DESC, o_orderdate",
      // q19: discounted revenue
      "SELECT SUM(l_extendedprice) FROM lineitem, part "
      "WHERE p_partkey = l_partkey AND p_brand = 'Brand#12' "
      "AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5 "
      "AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON'",
      // q20: potential part promotion
      "SELECT s_name, s_address FROM supplier, nation, partsupp, part "
      "WHERE s_suppkey = ps_suppkey AND ps_partkey = p_partkey AND p_name LIKE 'forest%' "
      "AND s_nationkey = n_nationkey AND n_name = 'CANADA' AND ps_availqty > 5000 "
      "ORDER BY s_name",
      // q21: suppliers who kept orders waiting
      "SELECT s_name, COUNT(*) FROM supplier, lineitem, orders, nation "
      "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND o_orderstatus = 'F' "
      "AND l_receiptdate > l_commitdate AND s_nationkey = n_nationkey "
      "AND n_name = 'SAUDI ARABIA' GROUP BY s_name ORDER BY s_name",
      // q22: global sales opportunity
      "SELECT c_phone, COUNT(*), SUM(c_acctbal) FROM customer "
      "WHERE c_acctbal > 0 AND c_phone LIKE '13%' GROUP BY c_phone",
  };
  // clang-format on
}

}  // namespace

Workload MakeTpch(const WorkloadOptions& options) {
  auto db = MakeTpchDatabase(options.scale);
  std::vector<std::string> sqls = TpchQueries();
  std::vector<std::string> names;
  names.reserve(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    names.push_back("q" + std::to_string(i + 1));
  }
  return schema_util::BindAll("tpch", std::move(db), sqls, names);
}

}  // namespace bati
