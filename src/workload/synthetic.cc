#include <memory>

#include "common/macros.h"
#include "workload/generators.h"
#include "workload/schema_util.h"

namespace bati {

using schema_util::IntCol;
using schema_util::KeyCol;
using schema_util::NumCol;

Workload MakeToyWorkload() {
  // Paper Figure 3: R(a, b), S(c, d) with two queries.
  auto db = std::make_shared<Database>("toy");
  {
    Table r("R", 1000000);
    r.AddColumn(IntCol("a", 100, 0, 100));
    r.AddColumn(IntCol("b", 50000, 0, 50000));
    BATI_CHECK_OK(db->AddTable(std::move(r)).status());
  }
  {
    Table s("S", 2000000);
    s.AddColumn(IntCol("c", 50000, 0, 50000));
    s.AddColumn(IntCol("d", 1000, 0, 1000));
    BATI_CHECK_OK(db->AddTable(std::move(s)).status());
  }
  std::vector<std::string> sqls = {
      "SELECT a, d FROM R, S WHERE R.b = S.c AND R.a = 5 AND S.d > 200",
      "SELECT a FROM R, S WHERE R.b = S.c AND R.a = 40",
  };
  return schema_util::BindAll("toy", std::move(db), sqls, {"Q1", "Q2"});
}

Workload MakeWorkloadByName(const std::string& name,
                            const WorkloadOptions& options) {
  if (name == "tpch") return MakeTpch(options);
  if (name == "tpcds") return MakeTpcds(options);
  if (name == "job") return MakeJob(options);
  if (name == "real-d") return MakeRealD(options);
  if (name == "real-d-bench") return MakeRealDBench(options);
  if (name == "real-m") return MakeRealM(options);
  if (name == "toy") return MakeToyWorkload();
  return Workload{};
}

}  // namespace bati
