#ifndef BATI_WORKLOAD_SCHEMA_UTIL_H_
#define BATI_WORKLOAD_SCHEMA_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "workload/query.h"

namespace bati::schema_util {

/// Integer column with the given distinct-value count over [min, max].
Column IntCol(const std::string& name, double ndv, double min_value,
              double max_value);

/// Integer key column: NDV == row domain [0, rows).
Column KeyCol(const std::string& name, double rows);

/// Decimal/double column.
Column NumCol(const std::string& name, double ndv, double min_value,
              double max_value);

/// Date column over `days` days starting at day 0.
Column DateCol(const std::string& name, double days);

/// Fixed-length string column with the given NDV.
Column StrCol(const std::string& name, int length, double ndv);

/// Binds each SQL text against `db` and assembles a Workload. Aborts on any
/// parse/bind failure (generator templates are trusted inputs); `names[i]`
/// labels query i.
Workload BindAll(std::string workload_name,
                 std::shared_ptr<const Database> db,
                 const std::vector<std::string>& sqls,
                 const std::vector<std::string>& names);

}  // namespace bati::schema_util

#endif  // BATI_WORKLOAD_SCHEMA_UTIL_H_
