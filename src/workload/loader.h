#ifndef BATI_WORKLOAD_LOADER_H_
#define BATI_WORKLOAD_LOADER_H_

#include <memory>
#include <string>
#include <string_view>

#include "catalog/catalog.h"
#include "common/status.h"
#include "workload/query.h"

namespace bati {

/// Builds a statistics-only Database from a DDL script of CREATE TABLE
/// statements (with NDV/RANGE/ROWS annotations; see sql/ddl.h). This is the
/// path for tuning a user's own schema without writing C++.
StatusOr<std::shared_ptr<Database>> LoadSchemaFromDdl(
    std::string database_name, std::string_view ddl_script);

/// Parses and binds a script of semicolon-separated SELECT statements into a
/// workload against `db`. Statements are named q1, q2, ... in order.
StatusOr<Workload> LoadWorkloadFromSql(std::string workload_name,
                                       std::shared_ptr<const Database> db,
                                       std::string_view sql_script);

/// Convenience: reads a file into a string. NotFound on I/O failure.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Inverse of LoadSchemaFromDdl: renders a database as an annotated DDL
/// script (CREATE TABLE ... NDV/RANGE ... WITH (ROWS = n)). Histograms are
/// not representable in the DDL dialect and are dropped; everything else
/// round-trips (see loader tests).
std::string DumpSchemaDdl(const Database& db);

/// Renders a workload as a ';'-separated SQL script (one statement per
/// query, preceded by a "-- name" comment). Round-trips through
/// LoadWorkloadFromSql.
std::string DumpWorkloadSql(const Workload& workload);

}  // namespace bati

#endif  // BATI_WORKLOAD_LOADER_H_
