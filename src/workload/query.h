#ifndef BATI_WORKLOAD_QUERY_H_
#define BATI_WORKLOAD_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace bati {

/// Filter-predicate shape as seen by the cost model. Equality predicates can
/// use any position of an index key prefix; range-like predicates can only
/// exploit the final key part (the classic B+-tree sargability rule).
enum class FilterKind {
  kEquality,
  kRange,
  kIn,
  kLike,
  kNotEqual,
  /// Comparison between two columns of the same scan (e.g.
  /// "l_commitdate < l_receiptdate"); never sargable.
  kColumnColumn,
  /// A disjunction "(p1 OR p2 ...)" over one scan, folded into a single
  /// filter with union selectivity; never sargable.
  kOr,
};

/// One table access in a query (a query may scan the same table twice under
/// different aliases; each gets its own scan id).
struct QueryScan {
  int table_id = -1;
  std::string alias;
};

/// A bound single-table filter conjunct with its bind-time selectivity.
struct BoundFilter {
  int scan_id = -1;
  ColumnRef column;
  FilterKind kind = FilterKind::kEquality;
  /// Estimated fraction of rows satisfying the conjunct, in (0, 1].
  double selectivity = 1.0;
};

/// A bound equi-join conjunct between two scans.
struct BoundJoin {
  int left_scan = -1;
  ColumnRef left_column;
  int right_scan = -1;
  ColumnRef right_column;
};

/// A column needed by the query output (projection), grouping or ordering.
struct BoundColumnUse {
  int scan_id = -1;
  ColumnRef column;
};

/// A fully bound analytic query: the IR consumed by candidate-index
/// generation and by the what-if optimizer. Produced by BindQuery from parsed
/// SQL, or directly by workload generators.
struct Query {
  /// Position of the query within its workload; also used in traces.
  int id = 0;
  /// Template name, e.g. "q17" or "job_03a".
  std::string name;
  /// Original SQL text (kept for tooling; not used by the cost model).
  std::string sql;

  std::vector<QueryScan> scans;
  std::vector<BoundFilter> filters;
  std::vector<BoundJoin> joins;
  /// Columns in the SELECT list (payload for covering indexes).
  std::vector<BoundColumnUse> projections;
  std::vector<BoundColumnUse> group_by;
  std::vector<BoundColumnUse> order_by;
  /// True if the select list is or contains '*' (all columns needed).
  bool select_star = false;
  bool has_aggregation = false;

  int num_scans() const { return static_cast<int>(scans.size()); }
  int num_joins() const { return static_cast<int>(joins.size()); }
  int num_filters() const { return static_cast<int>(filters.size()); }
};

/// A named workload over one database: the tuner's unit of input.
struct Workload {
  std::string name;
  std::shared_ptr<const Database> database;
  std::vector<Query> queries;

  int num_queries() const { return static_cast<int>(queries.size()); }
};

/// Summary statistics in the shape of the paper's Table 1.
struct WorkloadStats {
  std::string name;
  double size_gb = 0.0;
  int num_queries = 0;
  int num_tables = 0;
  double avg_joins = 0.0;
  double avg_filters = 0.0;
  double avg_scans = 0.0;
};

/// Computes Table-1-style statistics for a workload.
WorkloadStats ComputeWorkloadStats(const Workload& workload);

}  // namespace bati

#endif  // BATI_WORKLOAD_QUERY_H_
