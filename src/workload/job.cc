#include <memory>

#include "common/macros.h"
#include "workload/generators.h"
#include "workload/schema_util.h"

namespace bati {

namespace {

using schema_util::IntCol;
using schema_util::KeyCol;
using schema_util::NumCol;
using schema_util::StrCol;

/// IMDB schema used by the Join Order Benchmark (Leis et al.), 21 tables,
/// row counts from the published dataset (~9.2 GB with all columns).
std::shared_ptr<Database> MakeImdbDatabase(double scale) {
  auto db = std::make_shared<Database>("imdb");
  auto add = [&db](Table t) {
    BATI_CHECK_OK(db->AddTable(std::move(t)).status());
  };
  const double s = scale;

  {
    const double rows = 2528312 * s;
    Table t("title", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(StrCol("title", 100, rows * 0.9));
    t.AddColumn(IntCol("kind_id", 7, 1, 8));
    t.AddColumn(IntCol("production_year", 133, 1880, 2013));
    t.AddColumn(IntCol("imdb_id", rows, 0, rows));
    t.AddColumn(StrCol("phonetic_code", 5, 200000));
    t.AddColumn(IntCol("season_nr", 80, 1, 80));
    t.AddColumn(IntCol("episode_nr", 2000, 1, 2000));
    add(std::move(t));
  }
  {
    const double rows = 36244344 * s;
    Table t("cast_info", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(IntCol("person_id", 4167491 * s, 0, 4167491 * s));
    t.AddColumn(IntCol("movie_id", 2528312 * s, 0, 2528312 * s));
    t.AddColumn(IntCol("person_role_id", 3140339 * s, 0, 3140339 * s));
    t.AddColumn(StrCol("note", 30, 500000));
    t.AddColumn(IntCol("nr_order", 1000, 1, 1000));
    t.AddColumn(IntCol("role_id", 12, 1, 12));
    add(std::move(t));
  }
  {
    const double rows = 14835720 * s;
    Table t("movie_info", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(IntCol("movie_id", 2528312 * s, 0, 2528312 * s));
    t.AddColumn(IntCol("info_type_id", 113, 1, 113));
    t.AddColumn(StrCol("info", 50, 2720930));
    t.AddColumn(StrCol("note", 30, 133604));
    add(std::move(t));
  }
  {
    const double rows = 1380035 * s;
    Table t("movie_info_idx", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(IntCol("movie_id", 2528312 * s, 0, 2528312 * s));
    t.AddColumn(IntCol("info_type_id", 113, 1, 113));
    t.AddColumn(StrCol("info", 10, 11));
    add(std::move(t));
  }
  {
    const double rows = 4523930 * s;
    Table t("movie_keyword", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(IntCol("movie_id", 2528312 * s, 0, 2528312 * s));
    t.AddColumn(IntCol("keyword_id", 134170, 0, 134170));
    add(std::move(t));
  }
  {
    const double rows = 2609129 * s;
    Table t("movie_companies", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(IntCol("movie_id", 2528312 * s, 0, 2528312 * s));
    t.AddColumn(IntCol("company_id", 234997, 0, 234997));
    t.AddColumn(IntCol("company_type_id", 4, 1, 4));
    t.AddColumn(StrCol("note", 40, 1337140));
    add(std::move(t));
  }
  {
    const double rows = 4167491 * s;
    Table t("name", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(StrCol("name", 50, rows * 0.95));
    t.AddColumn(StrCol("gender", 1, 3));
    t.AddColumn(StrCol("name_pcode_cf", 5, 150000));
    add(std::move(t));
  }
  {
    const double rows = 3140339 * s;
    Table t("char_name", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(StrCol("name", 50, rows * 0.9));
    add(std::move(t));
  }
  {
    const double rows = 2963664 * s;
    Table t("person_info", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(IntCol("person_id", 4167491 * s, 0, 4167491 * s));
    t.AddColumn(IntCol("info_type_id", 113, 1, 113));
    t.AddColumn(StrCol("note", 30, 15007));
    add(std::move(t));
  }
  {
    const double rows = 901343 * s;
    Table t("aka_name", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(IntCol("person_id", 4167491 * s, 0, 4167491 * s));
    t.AddColumn(StrCol("name", 50, rows * 0.9));
    add(std::move(t));
  }
  {
    const double rows = 361472 * s;
    Table t("aka_title", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(IntCol("movie_id", 2528312 * s, 0, 2528312 * s));
    t.AddColumn(StrCol("title", 100, rows * 0.9));
    add(std::move(t));
  }
  {
    const double rows = 234997;
    Table t("company_name", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(StrCol("name", 60, rows * 0.95));
    t.AddColumn(StrCol("country_code", 6, 84));
    add(std::move(t));
  }
  {
    Table t("company_type", 4);
    t.AddColumn(KeyCol("id", 4));
    t.AddColumn(StrCol("kind", 32, 4));
    add(std::move(t));
  }
  {
    const double rows = 134170;
    Table t("keyword", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(StrCol("keyword", 30, rows));
    add(std::move(t));
  }
  {
    Table t("kind_type", 7);
    t.AddColumn(KeyCol("id", 7));
    t.AddColumn(StrCol("kind", 15, 7));
    add(std::move(t));
  }
  {
    Table t("link_type", 18);
    t.AddColumn(KeyCol("id", 18));
    t.AddColumn(StrCol("link", 32, 18));
    add(std::move(t));
  }
  {
    const double rows = 29997;
    Table t("movie_link", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(IntCol("movie_id", 2528312 * s, 0, 2528312 * s));
    t.AddColumn(IntCol("linked_movie_id", 2528312 * s, 0, 2528312 * s));
    t.AddColumn(IntCol("link_type_id", 18, 1, 18));
    add(std::move(t));
  }
  {
    Table t("info_type", 113);
    t.AddColumn(KeyCol("id", 113));
    t.AddColumn(StrCol("info", 32, 113));
    add(std::move(t));
  }
  {
    Table t("role_type", 12);
    t.AddColumn(KeyCol("id", 12));
    t.AddColumn(StrCol("role", 32, 12));
    add(std::move(t));
  }
  {
    Table t("comp_cast_type", 4);
    t.AddColumn(KeyCol("id", 4));
    t.AddColumn(StrCol("kind", 32, 4));
    add(std::move(t));
  }
  {
    const double rows = 135086;
    Table t("complete_cast", rows);
    t.AddColumn(KeyCol("id", rows));
    t.AddColumn(IntCol("movie_id", 2528312 * s, 0, 2528312 * s));
    t.AddColumn(IntCol("subject_id", 4, 1, 4));
    t.AddColumn(IntCol("status_id", 4, 1, 4));
    add(std::move(t));
  }
  return db;
}

/// 33 JOB templates (one instance per template, as the paper picks one
/// instance from each of JOB's 33 families). Structures follow the published
/// queries: star/chain joins around `title` with filters on dimension-like
/// tables; aggregates are MIN() as in JOB.
std::vector<std::string> JobQueries() {
  // clang-format off: SQL literals read best unwrapped.
  return {
      // 1
      "SELECT MIN(mc.note), MIN(t.title), MIN(t.production_year) "
      "FROM company_type ct, info_type it, movie_companies mc, movie_info_idx mi_idx, title t "
      "WHERE ct.kind = 'production companies' AND it.info = 'top 250 rank' "
      "AND mc.note LIKE '%(co-production)%' AND ct.id = mc.company_type_id "
      "AND t.id = mc.movie_id AND t.id = mi_idx.movie_id AND it.id = mi_idx.info_type_id",
      // 2
      "SELECT MIN(t.title) FROM company_name cn, keyword k, movie_companies mc, movie_keyword mk, title t "
      "WHERE cn.country_code = 'de' AND k.keyword = 'character-name-in-title' "
      "AND cn.id = mc.company_id AND mc.movie_id = t.id AND t.id = mk.movie_id AND mk.keyword_id = k.id",
      // 3
      "SELECT MIN(t.title) FROM keyword k, movie_info mi, movie_keyword mk, title t "
      "WHERE k.keyword LIKE '%sequel%' AND mi.info IN ('Sweden', 'Norway', 'Germany') "
      "AND t.production_year > 2005 AND t.id = mi.movie_id AND t.id = mk.movie_id AND mk.keyword_id = k.id",
      // 4
      "SELECT MIN(mi_idx.info), MIN(t.title) FROM info_type it, keyword k, movie_info_idx mi_idx, movie_keyword mk, title t "
      "WHERE it.info = 'rating' AND k.keyword LIKE '%sequel%' AND mi_idx.info > '5.0' "
      "AND t.production_year > 2005 AND t.id = mi_idx.movie_id AND t.id = mk.movie_id "
      "AND mk.keyword_id = k.id AND it.id = mi_idx.info_type_id",
      // 5
      "SELECT MIN(t.title) FROM company_type ct, info_type it, movie_companies mc, movie_info mi, title t "
      "WHERE ct.kind = 'production companies' AND mc.note LIKE '%(theatrical)%' "
      "AND mi.info IN ('Sweden', 'Germany') AND t.production_year > 2005 "
      "AND t.id = mi.movie_id AND t.id = mc.movie_id AND ct.id = mc.company_type_id AND it.id = mi.info_type_id",
      // 6
      "SELECT MIN(k.keyword), MIN(n.name), MIN(t.title) "
      "FROM cast_info ci, keyword k, movie_keyword mk, name n, title t "
      "WHERE k.keyword = 'marvel-cinematic-universe' AND n.name LIKE '%Downey%Robert%' "
      "AND t.production_year > 2010 AND k.id = mk.keyword_id AND t.id = mk.movie_id "
      "AND t.id = ci.movie_id AND ci.person_id = n.id",
      // 7
      "SELECT MIN(n.name), MIN(t.title) "
      "FROM aka_name an, cast_info ci, info_type it, link_type lt, movie_link ml, name n, person_info pi, title t "
      "WHERE an.name LIKE '%a%' AND it.info = 'mini biography' AND lt.link = 'features' "
      "AND n.name_pcode_cf BETWEEN 'A' AND 'F' AND n.gender = 'm' "
      "AND pi.note = 'Volker Boehm' AND t.production_year BETWEEN 1980 AND 1995 "
      "AND n.id = an.person_id AND n.id = pi.person_id AND ci.person_id = n.id "
      "AND t.id = ci.movie_id AND ml.linked_movie_id = t.id AND lt.id = ml.link_type_id "
      "AND it.id = pi.info_type_id",
      // 8
      "SELECT MIN(an.name), MIN(t.title) "
      "FROM aka_name an, cast_info ci, company_name cn, movie_companies mc, name n, role_type rt, title t "
      "WHERE ci.note = '(voice: English version)' AND cn.country_code = 'jp' "
      "AND mc.note LIKE '%(Japan)%' AND n.name LIKE '%Yo%' AND rt.role = 'actress' "
      "AND an.person_id = n.id AND n.id = ci.person_id AND ci.movie_id = t.id "
      "AND t.id = mc.movie_id AND mc.company_id = cn.id AND ci.role_id = rt.id",
      // 9
      "SELECT MIN(an.name), MIN(chn.name), MIN(t.title) "
      "FROM aka_name an, char_name chn, cast_info ci, company_name cn, movie_companies mc, name n, role_type rt, title t "
      "WHERE ci.note IN ('(voice)', '(voice: Japanese version)') AND cn.country_code = 'us' "
      "AND n.gender = 'f' AND rt.role = 'actress' AND t.production_year BETWEEN 2005 AND 2015 "
      "AND ci.movie_id = t.id AND t.id = mc.movie_id AND ci.person_id = n.id "
      "AND mc.company_id = cn.id AND ci.role_id = rt.id AND n.id = an.person_id "
      "AND chn.id = ci.person_role_id",
      // 10
      "SELECT MIN(chn.name), MIN(t.title) "
      "FROM char_name chn, cast_info ci, company_name cn, company_type ct, movie_companies mc, role_type rt, title t "
      "WHERE ci.note LIKE '%(producer)%' AND cn.country_code = 'ru' AND rt.role = 'actor' "
      "AND t.production_year > 2010 AND t.id = mc.movie_id AND t.id = ci.movie_id "
      "AND ci.person_role_id = chn.id AND mc.company_id = cn.id AND mc.company_type_id = ct.id "
      "AND ci.role_id = rt.id",
      // 11
      "SELECT MIN(cn.name), MIN(lt.link), MIN(t.title) "
      "FROM company_name cn, company_type ct, keyword k, link_type lt, movie_companies mc, movie_keyword mk, movie_link ml, title t "
      "WHERE cn.country_code <> 'pl' AND cn.name LIKE '%Film%' AND ct.kind = 'production companies' "
      "AND k.keyword = 'sequel' AND lt.link LIKE '%follow%' AND t.production_year BETWEEN 1950 AND 2000 "
      "AND lt.id = ml.link_type_id AND ml.movie_id = t.id AND t.id = mk.movie_id "
      "AND mk.keyword_id = k.id AND t.id = mc.movie_id AND mc.company_type_id = ct.id "
      "AND mc.company_id = cn.id",
      // 12
      "SELECT MIN(cn.name), MIN(mi_idx.info), MIN(t.title) "
      "FROM company_name cn, company_type ct, info_type it, movie_companies mc, movie_info mi, movie_info_idx mi_idx, title t "
      "WHERE cn.country_code = 'us' AND ct.kind = 'production companies' AND it.info = 'genres' "
      "AND mi.info IN ('Drama', 'Horror') AND mi_idx.info > '8.0' "
      "AND t.production_year BETWEEN 2005 AND 2008 AND t.id = mi.movie_id "
      "AND t.id = mi_idx.movie_id AND mi.info_type_id = it.id "
      "AND t.id = mc.movie_id AND ct.id = mc.company_type_id AND cn.id = mc.company_id",
      // 13
      "SELECT MIN(mi.info), MIN(mi_idx.info), MIN(t.title) "
      "FROM company_name cn, company_type ct, info_type it, info_type it2, kind_type kt, movie_companies mc, movie_info mi, movie_info_idx mi_idx, title t "
      "WHERE cn.country_code = 'de' AND ct.kind = 'production companies' AND it.info = 'rating' "
      "AND it2.info = 'release dates' AND kt.kind = 'movie' "
      "AND mi.movie_id = t.id AND it2.id = mi.info_type_id AND kt.id = t.kind_id "
      "AND mc.movie_id = t.id AND cn.id = mc.company_id AND ct.id = mc.company_type_id "
      "AND mi_idx.movie_id = t.id AND it.id = mi_idx.info_type_id",
      // 14
      "SELECT MIN(mi_idx.info), MIN(t.title) "
      "FROM info_type it, keyword k, kind_type kt, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t "
      "WHERE it.info = 'rating' AND k.keyword IN ('murder', 'blood', 'gore') "
      "AND kt.kind = 'movie' AND mi.info IN ('Sweden', 'Germany', 'Denmark') "
      "AND mi_idx.info < '8.5' AND t.production_year > 2010 "
      "AND kt.id = t.kind_id AND t.id = mi.movie_id AND t.id = mk.movie_id "
      "AND t.id = mi_idx.movie_id AND k.id = mk.keyword_id AND it.id = mi_idx.info_type_id",
      // 15
      "SELECT MIN(mi.info), MIN(t.title) "
      "FROM aka_title at, company_name cn, company_type ct, info_type it, keyword k, movie_companies mc, movie_info mi, movie_keyword mk, title t "
      "WHERE cn.country_code = 'us' AND it.info = 'release dates' AND mc.note LIKE '%(VHS)%' "
      "AND mi.note LIKE '%internet%' AND t.production_year > 2000 "
      "AND t.id = at.movie_id AND t.id = mi.movie_id AND t.id = mk.movie_id "
      "AND t.id = mc.movie_id AND mk.keyword_id = k.id AND it.id = mi.info_type_id "
      "AND cn.id = mc.company_id AND ct.id = mc.company_type_id",
      // 16
      "SELECT MIN(an.name), MIN(t.title) "
      "FROM aka_name an, cast_info ci, company_name cn, keyword k, movie_companies mc, movie_keyword mk, name n, title t "
      "WHERE cn.country_code = 'us' AND k.keyword = 'character-name-in-title' "
      "AND t.episode_nr BETWEEN 50 AND 100 AND an.person_id = n.id AND n.id = ci.person_id "
      "AND ci.movie_id = t.id AND t.id = mk.movie_id AND mk.keyword_id = k.id "
      "AND t.id = mc.movie_id AND mc.company_id = cn.id",
      // 17
      "SELECT MIN(n.name) "
      "FROM cast_info ci, company_name cn, keyword k, movie_companies mc, movie_keyword mk, name n, title t "
      "WHERE cn.country_code = 'us' AND k.keyword = 'character-name-in-title' AND n.name LIKE 'B%' "
      "AND n.id = ci.person_id AND ci.movie_id = t.id AND t.id = mk.movie_id "
      "AND mk.keyword_id = k.id AND t.id = mc.movie_id AND mc.company_id = cn.id",
      // 18
      "SELECT MIN(mi.info), MIN(t.title) "
      "FROM cast_info ci, info_type it, info_type it2, movie_info mi, movie_info_idx mi_idx, name n, title t "
      "WHERE ci.note IN ('(producer)', '(executive producer)') AND it.info = 'budget' "
      "AND it2.info = 'votes' AND n.gender = 'm' AND n.name LIKE '%Tim%' "
      "AND t.id = mi.movie_id AND t.id = mi_idx.movie_id AND t.id = ci.movie_id "
      "AND ci.person_id = n.id AND it.id = mi.info_type_id AND it2.id = mi_idx.info_type_id",
      // 19
      "SELECT MIN(n.name), MIN(t.title) "
      "FROM aka_name an, char_name chn, cast_info ci, company_name cn, info_type it, movie_companies mc, movie_info mi, name n, role_type rt, title t "
      "WHERE ci.note = '(voice)' AND cn.country_code = 'us' AND it.info = 'release dates' "
      "AND n.gender = 'f' AND rt.role = 'actress' AND t.production_year BETWEEN 2000 AND 2010 "
      "AND t.id = mi.movie_id AND t.id = mc.movie_id AND t.id = ci.movie_id "
      "AND mc.company_id = cn.id AND it.id = mi.info_type_id AND n.id = ci.person_id "
      "AND ci.role_id = rt.id AND an.person_id = n.id AND chn.id = ci.person_role_id",
      // 20
      "SELECT MIN(t.title) "
      "FROM complete_cast cc, comp_cast_type cct, char_name chn, cast_info ci, keyword k, kind_type kt, movie_keyword mk, name n, title t "
      "WHERE cct.kind = 'cast' AND chn.name LIKE '%man%' AND k.keyword IN ('superhero', 'sequel') "
      "AND kt.kind = 'movie' AND t.production_year > 1950 "
      "AND kt.id = t.kind_id AND t.id = mk.movie_id AND t.id = ci.movie_id "
      "AND t.id = cc.movie_id AND mk.keyword_id = k.id AND ci.person_role_id = chn.id "
      "AND n.id = ci.person_id AND cct.id = cc.subject_id",
      // 21
      "SELECT MIN(cn.name), MIN(mi.info), MIN(t.title) "
      "FROM company_name cn, company_type ct, keyword k, link_type lt, movie_companies mc, movie_info mi, movie_keyword mk, movie_link ml, title t "
      "WHERE cn.country_code <> 'pl' AND cn.name LIKE '%Film%' AND ct.kind = 'production companies' "
      "AND k.keyword = 'sequel' AND lt.link LIKE '%follow%' AND mi.info IN ('Sweden', 'Germany') "
      "AND t.production_year BETWEEN 1950 AND 2000 AND lt.id = ml.link_type_id "
      "AND ml.movie_id = t.id AND t.id = mk.movie_id AND mk.keyword_id = k.id "
      "AND t.id = mc.movie_id AND mc.company_type_id = ct.id AND mc.company_id = cn.id "
      "AND mi.movie_id = t.id",
      // 22
      "SELECT MIN(cn.name), MIN(mi_idx.info), MIN(t.title) "
      "FROM company_name cn, company_type ct, info_type it, info_type it2, keyword k, kind_type kt, movie_companies mc, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t "
      "WHERE cn.country_code <> 'us' AND it.info = 'countries' AND it2.info = 'rating' "
      "AND k.keyword IN ('murder', 'violence') AND kt.kind IN ('movie', 'episode') "
      "AND mc.note LIKE '%(200%)%' AND mi.info IN ('Germany', 'Swedish') "
      "AND mi_idx.info < '8.5' AND t.production_year > 2008 "
      "AND kt.id = t.kind_id AND t.id = mi.movie_id AND t.id = mk.movie_id "
      "AND t.id = mi_idx.movie_id AND t.id = mc.movie_id AND k.id = mk.keyword_id "
      "AND it.id = mi.info_type_id AND it2.id = mi_idx.info_type_id "
      "AND ct.id = mc.company_type_id AND cn.id = mc.company_id",
      // 23
      "SELECT MIN(kt.kind), MIN(t.title) "
      "FROM complete_cast cc, comp_cast_type cct, company_name cn, company_type ct, info_type it, keyword k, kind_type kt, movie_companies mc, movie_info mi, movie_keyword mk, title t "
      "WHERE cct.kind = 'complete+verified' AND cn.country_code = 'us' AND it.info = 'release dates' "
      "AND kt.kind IN ('movie') AND mi.note LIKE '%internet%' AND t.production_year > 2000 "
      "AND kt.id = t.kind_id AND t.id = mi.movie_id AND t.id = mk.movie_id "
      "AND t.id = mc.movie_id AND t.id = cc.movie_id AND mk.keyword_id = k.id "
      "AND it.id = mi.info_type_id AND cn.id = mc.company_id AND ct.id = mc.company_type_id "
      "AND cct.id = cc.status_id",
      // 24
      "SELECT MIN(chn.name), MIN(t.title) "
      "FROM aka_name an, char_name chn, cast_info ci, company_name cn, info_type it, keyword k, movie_companies mc, movie_info mi, movie_keyword mk, name n, role_type rt, title t "
      "WHERE ci.note IN ('(voice)', '(voice: English version)') AND cn.country_code = 'us' "
      "AND it.info = 'release dates' AND k.keyword IN ('hero', 'martial-arts') "
      "AND n.gender = 'f' AND rt.role = 'actress' AND t.production_year > 2010 "
      "AND t.id = mi.movie_id AND t.id = mc.movie_id AND t.id = ci.movie_id "
      "AND t.id = mk.movie_id AND mc.company_id = cn.id AND it.id = mi.info_type_id "
      "AND n.id = ci.person_id AND ci.role_id = rt.id AND an.person_id = n.id "
      "AND chn.id = ci.person_role_id AND mk.keyword_id = k.id",
      // 25
      "SELECT MIN(mi.info), MIN(n.name), MIN(t.title) "
      "FROM cast_info ci, info_type it, info_type it2, keyword k, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, name n, title t "
      "WHERE ci.note = '(writer)' AND it.info = 'genres' AND it2.info = 'votes' "
      "AND k.keyword IN ('murder', 'blood') AND mi.info = 'Horror' AND n.gender = 'm' "
      "AND t.id = mi.movie_id AND t.id = mi_idx.movie_id AND t.id = ci.movie_id "
      "AND t.id = mk.movie_id AND ci.person_id = n.id AND it.id = mi.info_type_id "
      "AND it2.id = mi_idx.info_type_id AND k.id = mk.keyword_id",
      // 26
      "SELECT MIN(chn.name), MIN(mi_idx.info), MIN(t.title) "
      "FROM complete_cast cc, comp_cast_type cct, char_name chn, cast_info ci, info_type it, keyword k, kind_type kt, movie_info_idx mi_idx, movie_keyword mk, name n, title t "
      "WHERE cct.kind = 'cast' AND chn.name LIKE '%man%' AND it.info = 'rating' "
      "AND k.keyword IN ('superhero', 'marvel-comics') AND kt.kind = 'movie' "
      "AND mi_idx.info > '7.0' AND t.production_year > 2000 "
      "AND kt.id = t.kind_id AND t.id = mk.movie_id AND t.id = ci.movie_id "
      "AND t.id = cc.movie_id AND t.id = mi_idx.movie_id AND mk.keyword_id = k.id "
      "AND ci.person_role_id = chn.id AND n.id = ci.person_id AND it.id = mi_idx.info_type_id "
      "AND cct.id = cc.subject_id",
      // 27
      "SELECT MIN(cn.name), MIN(lt.link), MIN(t.title) "
      "FROM complete_cast cc, comp_cast_type cct, company_name cn, company_type ct, keyword k, link_type lt, movie_companies mc, movie_keyword mk, movie_link ml, title t "
      "WHERE cct.kind = 'cast' AND cn.country_code <> 'pl' AND ct.kind = 'production companies' "
      "AND k.keyword = 'sequel' AND lt.link LIKE '%follow%' AND t.production_year BETWEEN 1950 AND 2000 "
      "AND lt.id = ml.link_type_id AND ml.movie_id = t.id AND t.id = mk.movie_id "
      "AND mk.keyword_id = k.id AND t.id = mc.movie_id AND mc.company_type_id = ct.id "
      "AND mc.company_id = cn.id AND t.id = cc.movie_id AND cct.id = cc.subject_id",
      // 28
      "SELECT MIN(cn.name), MIN(mi_idx.info), MIN(t.title) "
      "FROM complete_cast cc, comp_cast_type cct, company_name cn, company_type ct, info_type it, info_type it2, keyword k, kind_type kt, movie_companies mc, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t "
      "WHERE cct.kind = 'crew' AND cn.country_code <> 'us' AND it.info = 'countries' "
      "AND it2.info = 'rating' AND k.keyword IN ('murder', 'violence') AND kt.kind = 'movie' "
      "AND mi.info IN ('Sweden', 'Germany') AND mi_idx.info < '8.5' AND t.production_year > 2000 "
      "AND kt.id = t.kind_id AND t.id = mi.movie_id AND t.id = mk.movie_id "
      "AND t.id = mi_idx.movie_id AND t.id = mc.movie_id AND t.id = cc.movie_id "
      "AND k.id = mk.keyword_id AND it.id = mi.info_type_id AND it2.id = mi_idx.info_type_id "
      "AND ct.id = mc.company_type_id AND cn.id = mc.company_id AND cct.id = cc.subject_id",
      // 29
      "SELECT MIN(chn.name), MIN(n.name), MIN(t.title) "
      "FROM aka_name an, complete_cast cc, comp_cast_type cct, char_name chn, cast_info ci, company_name cn, info_type it, keyword k, movie_companies mc, movie_info mi, movie_keyword mk, name n, role_type rt, title t "
      "WHERE cct.kind = 'cast' AND chn.name = 'Queen' AND ci.note IN ('(voice)', '(voice) (uncredited)') "
      "AND cn.country_code = 'us' AND it.info = 'release dates' AND k.keyword = 'computer-animation' "
      "AND n.gender = 'f' AND rt.role = 'actress' AND t.title = 'Shrek 2' "
      "AND t.production_year BETWEEN 2000 AND 2010 AND t.id = mi.movie_id "
      "AND t.id = mc.movie_id AND t.id = ci.movie_id AND t.id = mk.movie_id "
      "AND t.id = cc.movie_id AND mc.company_id = cn.id AND it.id = mi.info_type_id "
      "AND n.id = ci.person_id AND ci.role_id = rt.id AND an.person_id = n.id "
      "AND chn.id = ci.person_role_id AND mk.keyword_id = k.id AND cct.id = cc.subject_id",
      // 30
      "SELECT MIN(mi.info), MIN(t.title) "
      "FROM complete_cast cc, comp_cast_type cct, cast_info ci, info_type it, info_type it2, keyword k, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, name n, title t "
      "WHERE cct.kind = 'cast' AND ci.note = '(writer)' AND it.info = 'genres' "
      "AND it2.info = 'votes' AND k.keyword IN ('murder', 'violence') AND mi.info = 'Horror' "
      "AND n.gender = 'm' AND t.id = mi.movie_id AND t.id = mi_idx.movie_id "
      "AND t.id = ci.movie_id AND t.id = mk.movie_id AND t.id = cc.movie_id "
      "AND ci.person_id = n.id AND it.id = mi.info_type_id AND it2.id = mi_idx.info_type_id "
      "AND k.id = mk.keyword_id AND cct.id = cc.subject_id",
      // 31
      "SELECT MIN(mi.info), MIN(t.title) "
      "FROM cast_info ci, company_name cn, info_type it, info_type it2, keyword k, movie_companies mc, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, name n, title t "
      "WHERE ci.note = '(writer)' AND cn.name LIKE 'Lionsgate%' AND it.info = 'genres' "
      "AND it2.info = 'votes' AND k.keyword IN ('murder', 'blood') AND mi.info = 'Horror' "
      "AND t.id = mi.movie_id AND t.id = mi_idx.movie_id AND t.id = ci.movie_id "
      "AND t.id = mk.movie_id AND t.id = mc.movie_id AND ci.person_id = n.id "
      "AND it.id = mi.info_type_id AND it2.id = mi_idx.info_type_id AND k.id = mk.keyword_id "
      "AND cn.id = mc.company_id",
      // 32
      "SELECT MIN(lt.link), MIN(t1.title), MIN(t2.title) "
      "FROM keyword k, link_type lt, movie_keyword mk, movie_link ml, title t1, title t2 "
      "WHERE k.keyword = '10,000-mile-club' AND mk.keyword_id = k.id AND t1.id = mk.movie_id "
      "AND ml.movie_id = t1.id AND ml.linked_movie_id = t2.id AND lt.id = ml.link_type_id",
      // 33
      "SELECT MIN(cn.name), MIN(mi_idx.info), MIN(t.title) "
      "FROM company_name cn, info_type it, keyword k, link_type lt, movie_companies mc, movie_info_idx mi_idx, movie_keyword mk, movie_link ml, title t "
      "WHERE cn.country_code <> 'us' AND it.info = 'rating' AND k.keyword = 'sequel' "
      "AND lt.link LIKE '%follow%' AND mi_idx.info < '3.5' "
      "AND t.production_year BETWEEN 2000 AND 2010 AND lt.id = ml.link_type_id "
      "AND t.id = ml.movie_id AND t.id = mk.movie_id AND mk.keyword_id = k.id "
      "AND t.id = mi_idx.movie_id AND it.id = mi_idx.info_type_id "
      "AND t.id = mc.movie_id AND cn.id = mc.company_id",
  };
  // clang-format on
}

}  // namespace

Workload MakeJob(const WorkloadOptions& options) {
  auto db = MakeImdbDatabase(options.scale);
  std::vector<std::string> sqls = JobQueries();
  std::vector<std::string> names;
  for (size_t i = 0; i < sqls.size(); ++i) {
    names.push_back("job_" + std::to_string(i + 1));
  }
  return schema_util::BindAll("job", std::move(db), sqls, names);
}

}  // namespace bati
