#include "workload/compression.h"

#include <algorithm>
#include <map>

#include "common/macros.h"

namespace bati {

namespace {

void Mix(uint64_t& h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
}

}  // namespace

uint64_t TemplateSignature(const Query& query) {
  uint64_t h = 0xCBF29CE484222325ULL;

  // Scanned tables as a sorted multiset.
  std::vector<int> tables;
  for (const QueryScan& s : query.scans) tables.push_back(s.table_id);
  std::sort(tables.begin(), tables.end());
  for (int t : tables) Mix(h, static_cast<uint64_t>(t) + 1);
  Mix(h, 0x5CA25ULL);

  // Join column pairs, direction-normalized, sorted.
  std::vector<std::pair<uint64_t, uint64_t>> joins;
  for (const BoundJoin& j : query.joins) {
    uint64_t a = (static_cast<uint64_t>(j.left_column.table_id) << 20) |
                 static_cast<uint64_t>(j.left_column.column_id);
    uint64_t b = (static_cast<uint64_t>(j.right_column.table_id) << 20) |
                 static_cast<uint64_t>(j.right_column.column_id);
    joins.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(joins.begin(), joins.end());
  for (const auto& [a, b] : joins) {
    Mix(h, a);
    Mix(h, b);
  }
  Mix(h, 0x101A5ULL);

  // Filtered columns with their predicate kinds (literals ignored), sorted.
  std::vector<uint64_t> filters;
  for (const BoundFilter& f : query.filters) {
    filters.push_back((static_cast<uint64_t>(f.column.table_id) << 24) |
                      (static_cast<uint64_t>(f.column.column_id) << 4) |
                      static_cast<uint64_t>(f.kind));
  }
  std::sort(filters.begin(), filters.end());
  for (uint64_t f : filters) Mix(h, f);
  Mix(h, 0xF111ULL);

  // Output shape: grouped / ordered / aggregated flags and column sets.
  std::vector<uint64_t> outs;
  for (const BoundColumnUse& u : query.group_by) {
    outs.push_back((static_cast<uint64_t>(u.column.table_id) << 20) |
                   static_cast<uint64_t>(u.column.column_id));
  }
  std::sort(outs.begin(), outs.end());
  for (uint64_t o : outs) Mix(h, o);
  Mix(h, query.has_aggregation ? 0xA66ULL : 0x0ULL);
  Mix(h, query.order_by.empty() ? 0x0ULL : 0x0DDE2ULL);
  return h;
}

CompressedWorkload CompressWorkload(const Workload& input,
                                    const CompressionOptions& options) {
  // Group query ids by signature, preserving first-seen order.
  std::map<uint64_t, size_t> cluster_of;
  std::vector<std::vector<int>> clusters;
  for (const Query& q : input.queries) {
    uint64_t sig = TemplateSignature(q);
    auto [it, inserted] = cluster_of.emplace(sig, clusters.size());
    if (inserted) clusters.emplace_back();
    clusters[it->second].push_back(q.id);
  }

  // Optional cap: keep the heaviest clusters.
  std::vector<size_t> keep(clusters.size());
  for (size_t i = 0; i < clusters.size(); ++i) keep[i] = i;
  if (options.max_queries > 0 &&
      static_cast<int>(clusters.size()) > options.max_queries) {
    std::stable_sort(keep.begin(), keep.end(), [&](size_t a, size_t b) {
      return clusters[a].size() > clusters[b].size();
    });
    keep.resize(static_cast<size_t>(options.max_queries));
    std::sort(keep.begin(), keep.end());  // restore stable order
  }

  CompressedWorkload out;
  out.workload.name = input.name + "-compressed";
  out.workload.database = input.database;
  for (size_t c : keep) {
    const std::vector<int>& members = clusters[c];
    BATI_CHECK(!members.empty());
    Query rep = input.queries[static_cast<size_t>(members.front())];
    rep.id = static_cast<int>(out.workload.queries.size());
    out.workload.queries.push_back(std::move(rep));
    out.weights.push_back(static_cast<double>(members.size()));
    out.members.push_back(members);
  }
  return out;
}

}  // namespace bati
