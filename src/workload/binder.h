#ifndef BATI_WORKLOAD_BINDER_H_
#define BATI_WORKLOAD_BINDER_H_

#include <string_view>

#include "catalog/catalog.h"
#include "common/status.h"
#include "sql/ast.h"
#include "workload/query.h"

namespace bati {

/// Binds a parsed statement against a database: resolves table/column names,
/// classifies conjuncts into filters vs equi-joins, and estimates per-filter
/// selectivities from catalog statistics. Fails on unknown names, ambiguous
/// bare columns, or non-equality column-column comparisons.
StatusOr<Query> BindStatement(const sql::SelectStatement& stmt,
                              const Database& db);

/// Convenience: parse + bind one SQL string.
StatusOr<Query> BindSql(std::string_view sql_text, const Database& db);

/// Selectivity of a literal comparison against a column, given its stats.
/// Exposed for testing; used by the binder and by workload generators.
double LiteralSelectivity(const Column& column, sql::CmpOp op, double value);

/// Selectivity of a BETWEEN over [lo, hi].
double BetweenSelectivity(const Column& column, double lo, double hi);

/// Selectivity of an IN list with `list_size` distinct values.
double InListSelectivity(const Column& column, int list_size);

/// Heuristic selectivity of a LIKE pattern (prefix patterns are more
/// selective than substring patterns).
double LikeSelectivity(std::string_view pattern);

}  // namespace bati

#endif  // BATI_WORKLOAD_BINDER_H_
