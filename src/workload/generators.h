#ifndef BATI_WORKLOAD_GENERATORS_H_
#define BATI_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "workload/query.h"

namespace bati {

/// Options shared by the workload generators.
struct WorkloadOptions {
  /// Scale factor: 1.0 reproduces the paper's sizes (sf=10 for TPC-H/DS,
  /// 587 GB Real-D, 26 GB Real-M). Smaller values shrink row counts
  /// proportionally (costs scale; search behaviour is preserved).
  double scale = 1.0;
  /// Seed for the deterministic literal/value synthesis inside queries.
  uint64_t seed = 42;
};

/// TPC-H-like workload: the 8-table TPC-H schema at sf=10*scale with 22
/// simplified-but-structurally-faithful query templates (one instance per
/// template, matching the paper's protocol).
Workload MakeTpch(const WorkloadOptions& options = WorkloadOptions());

/// TPC-DS-like workload: 24-table retail schema at sf=10*scale with 99
/// query templates.
Workload MakeTpcds(const WorkloadOptions& options = WorkloadOptions());

/// Join-Order-Benchmark-like workload: 21-table IMDB schema, 33 templates
/// (one instance per template, as in the paper).
Workload MakeJob(const WorkloadOptions& options = WorkloadOptions());

/// Synthetic stand-in for the paper's Real-D: 7,912 tables, 32 queries,
/// ~15.6 joins per query, 587 GB. See DESIGN.md substitution table.
Workload MakeRealD(const WorkloadOptions& options = WorkloadOptions());

/// Synthetic stand-in for the paper's Real-M: 474 tables, 317 queries,
/// ~20.2 joins per query, 26 GB.
Workload MakeRealM(const WorkloadOptions& options = WorkloadOptions());

/// Real-D at full scale with a benchmark-sized query set: the same 7,912
/// tables / 587 GB / ~15.6 joins-per-query shape as Real-D, but 64 queries
/// from an independent seed — enough work for WhatIfCostMany() to engage
/// the executor thread pool. Registered as a bundle ("real-d-bench") for
/// bati_tune / bati_batch and driven by bench_whatif.
Workload MakeRealDBench(const WorkloadOptions& options = WorkloadOptions());

/// Tiny two-table workload mirroring the paper's running example (Figure 3:
/// tables R(a,b), S(c,d) and queries Q1, Q2). Used by tests and examples.
Workload MakeToyWorkload();

/// Dispatch by name: "tpch", "tpcds", "job", "real-d", "real-m",
/// "real-d-bench", "toy".
/// Returns an empty workload (no database) for unknown names.
Workload MakeWorkloadByName(const std::string& name,
                            const WorkloadOptions& options = WorkloadOptions());

}  // namespace bati

#endif  // BATI_WORKLOAD_GENERATORS_H_
