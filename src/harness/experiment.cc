#include "harness/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "bandit/dba_bandits.h"
#include "common/macros.h"
#include "common/stats.h"
#include "dqn/nodba.h"
#include "dta/dta_tuner.h"
#include "mcts/mcts_tuner.h"
#include "tuner/greedy.h"
#include "tuner/relaxation.h"
#include "whatif/cost_service.h"

namespace bati {

namespace {

/// Simulated non-what-if tuning overhead: per-call bookkeeping plus a fixed
/// setup term (parsing, candidate generation). Chosen so what-if time is
/// 75-93% of the total, as the paper measures (Figure 2).
constexpr double kOtherSecondsPerCall = 0.12;
constexpr double kOtherSecondsFixed = 30.0;

}  // namespace

const WorkloadBundle& LoadBundle(const std::string& name) {
  static std::map<std::string, std::unique_ptr<WorkloadBundle>>& cache =
      *new std::map<std::string, std::unique_ptr<WorkloadBundle>>();
  auto it = cache.find(name);
  if (it != cache.end()) return *it->second;

  auto bundle = std::make_unique<WorkloadBundle>();
  bundle->workload = MakeWorkloadByName(name);
  BATI_CHECK(bundle->workload.database != nullptr &&
             "unknown workload name");
  bundle->optimizer =
      std::make_shared<WhatIfOptimizer>(bundle->workload.database);
  bundle->candidates = GenerateCandidates(bundle->workload);
  auto [pos, inserted] = cache.emplace(name, std::move(bundle));
  BATI_CHECK(inserted);
  return *pos->second;
}

std::unique_ptr<Tuner> MakeTuner(const std::string& algorithm,
                                 TuningContext ctx, uint64_t seed) {
  if (algorithm == "vanilla-greedy") {
    return std::make_unique<GreedyTuner>(std::move(ctx));
  }
  if (algorithm == "two-phase-greedy") {
    return std::make_unique<TwoPhaseGreedyTuner>(std::move(ctx));
  }
  if (algorithm == "autoadmin-greedy") {
    return std::make_unique<AutoAdminGreedyTuner>(std::move(ctx));
  }
  if (algorithm == "dba-bandits") {
    DbaBanditsOptions opt;
    opt.seed = seed;
    return std::make_unique<DbaBanditsTuner>(std::move(ctx), opt);
  }
  if (algorithm == "no-dba") {
    NoDbaOptions opt;
    opt.seed = seed;
    return std::make_unique<NoDbaTuner>(std::move(ctx), opt);
  }
  if (algorithm == "dta") {
    return std::make_unique<DtaTuner>(std::move(ctx));
  }
  if (algorithm == "relaxation") {
    return std::make_unique<RelaxationTuner>(std::move(ctx));
  }
  if (algorithm.rfind("mcts", 0) == 0) {
    MctsOptions opt;  // defaults = paper's recommended setting
    opt.seed = seed;
    if (algorithm.find("-uct") != std::string::npos) {
      opt.action_policy = MctsOptions::ActionPolicy::kUct;
    }
    if (algorithm.find("-prior") != std::string::npos) {
      opt.action_policy = MctsOptions::ActionPolicy::kEpsGreedyPrior;
    }
    if (algorithm.find("-boltz") != std::string::npos) {
      opt.action_policy = MctsOptions::ActionPolicy::kBoltzmann;
    }
    if (algorithm.find("-bce") != std::string::npos) {
      opt.extraction = MctsOptions::Extraction::kBce;
    }
    if (algorithm.find("-bg") != std::string::npos) {
      opt.extraction = MctsOptions::Extraction::kBestGreedy;
    }
    if (algorithm.find("-hybrid") != std::string::npos) {
      opt.extraction = MctsOptions::Extraction::kHybrid;
    }
    if (algorithm.find("-rave") != std::string::npos) {
      opt.use_rave = true;
    }
    if (algorithm.find("-feat") != std::string::npos) {
      opt.featurized_priors = true;
    }
    if (algorithm.find("-rnd") != std::string::npos) {
      opt.rollout_policy = MctsOptions::RolloutPolicy::kRandomStep;
    }
    if (algorithm.find("-fix0") != std::string::npos) {
      opt.rollout_policy = MctsOptions::RolloutPolicy::kFixedStep;
      opt.fixed_rollout_step = 0;
    }
    if (algorithm.find("-fix1") != std::string::npos) {
      opt.rollout_policy = MctsOptions::RolloutPolicy::kFixedStep;
      opt.fixed_rollout_step = 1;
    }
    return std::make_unique<MctsTuner>(std::move(ctx), opt);
  }
  BATI_CHECK(false && "unknown algorithm name");
  return nullptr;
}

std::string RunIdentity(const RunSpec& spec) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "workload=%s,algorithm=%s,budget=%lld,k=%d,storage=%g,seed=%llu,"
      "governor=%d/%d/%d",
      spec.workload.c_str(), spec.algorithm.c_str(),
      static_cast<long long>(spec.budget), spec.max_indexes,
      spec.max_storage_bytes, static_cast<unsigned long long>(spec.seed),
      spec.governor.enabled ? 1 : 0, spec.governor.skip_what_if ? 1 : 0,
      spec.governor.early_stop ? 1 : 0);
  std::string id = buf;
  id += "," + spec.faults.ToIdentityString();
  id += "," + spec.retry.ToIdentityString();
  return id;
}

RunOutcome RunOnce(const WorkloadBundle& bundle, const RunSpec& spec) {
  TuningContext ctx;
  ctx.workload = &bundle.workload;
  ctx.candidates = &bundle.candidates;
  ctx.constraints.max_indexes = spec.max_indexes;
  ctx.constraints.max_storage_bytes = spec.max_storage_bytes;

  CostEngineOptions engine_options;
  engine_options.governor = spec.governor;
  engine_options.faults = spec.faults;
  engine_options.retry = spec.retry;
  engine_options.checkpoint_path = spec.checkpoint_path;
  engine_options.run_identity = RunIdentity(spec);
  // Observability sinks live on this frame and outlive the service; when
  // the spec asks for neither, the engine runs fully unobserved.
  std::unique_ptr<MetricsRegistry> registry;
  if (spec.collect_metrics) {
    registry = std::make_unique<MetricsRegistry>();
    engine_options.metrics = registry.get();
  }
  std::unique_ptr<Tracer> tracer;
  if (!spec.trace_path.empty() || spec.trace_buffer > 0) {
    tracer = std::make_unique<Tracer>(spec.trace_buffer == 0
                                          ? Tracer::kDefaultCapacity
                                          : spec.trace_buffer);
    engine_options.tracer = tracer.get();
  }
  CostService service(bundle.optimizer.get(), &bundle.workload,
                      &bundle.candidates.indexes, spec.budget,
                      engine_options);
  if (!spec.resume_path.empty()) {
    const Status st = service.ResumeFromFile(spec.resume_path);
    if (!st.ok()) {
      std::fprintf(stderr, "resume failed: %s\n", st.ToString().c_str());
    }
    BATI_CHECK(st.ok() && "resume from checkpoint failed");
  }
  std::unique_ptr<Tuner> tuner = MakeTuner(spec.algorithm, ctx, spec.seed);
  TuningResult result = tuner->Tune(service);
  service.FinishObservability();

  RunOutcome outcome;
  outcome.true_improvement = service.TrueImprovement(result.best_config);
  outcome.derived_improvement = result.derived_improvement;
  outcome.calls_used = service.calls_made();
  outcome.config_size = result.best_config.count();
  outcome.whatif_seconds = service.SimulatedWhatIfSeconds();
  outcome.other_seconds =
      kOtherSecondsFixed +
      kOtherSecondsPerCall * static_cast<double>(service.calls_made());
  if (const std::vector<double>* trace = tuner->progress_trace()) {
    outcome.trace = *trace;
  }
  outcome.engine = service.EngineStats();
  outcome.governor_skipped = outcome.engine.governor_skipped_calls;
  outcome.governor_banked = outcome.engine.governor_banked_calls;
  outcome.governor_reallocated = outcome.engine.governor_reallocated_calls;
  outcome.governor_stop_round = outcome.engine.governor_stop_round;
  outcome.degraded_cells = outcome.engine.degraded_cells;
  if (registry != nullptr) {
    outcome.has_metrics = true;
    outcome.metrics = registry->Snapshot();
  }
  if (tracer != nullptr) {
    outcome.trace_events = tracer->size();
    outcome.trace_dropped = tracer->dropped();
    if (!spec.trace_path.empty()) {
      const Status st = tracer->WriteChromeJson(spec.trace_path);
      if (!st.ok()) {
        std::fprintf(stderr, "trace write failed: %s\n",
                     st.ToString().c_str());
      }
    }
  }
  return outcome;
}

CellStats RunSeeds(const WorkloadBundle& bundle, RunSpec spec,
                   const std::vector<uint64_t>& seeds) {
  RunningStats stats;
  for (uint64_t seed : seeds) {
    spec.seed = seed;
    stats.Add(RunOnce(bundle, spec).true_improvement);
  }
  return CellStats{stats.mean(), stats.stddev()};
}

BenchScale GetBenchScale() {
  const char* env = std::getenv("BATI_SCALE");
  bool full = env != nullptr && std::string(env) == "full";
  BenchScale scale;
  if (full) {
    scale.large_budgets = {1000, 2000, 3000, 4000, 5000};
    scale.small_budgets = {50, 100, 200, 500, 1000};
    scale.cardinalities = {5, 10, 20};
    scale.seeds = {1, 2, 3, 4, 5};
  } else {
    scale.large_budgets = {1000, 3000, 5000};
    scale.small_budgets = {50, 200, 1000};
    scale.cardinalities = {5, 10, 20};
    scale.seeds = {1, 2};
  }
  return scale;
}

void PrintSeriesTable(const std::string& title, const WorkloadBundle& bundle,
                      const std::vector<std::string>& algorithms,
                      const std::vector<int64_t>& budgets, int k,
                      double storage_bytes,
                      const std::vector<uint64_t>& seeds) {
  std::printf("# %s\n", title.c_str());
  std::printf("%-8s", "budget");
  for (const std::string& algo : algorithms) {
    std::printf("  %18s %6s", algo.c_str(), "sd");
  }
  std::printf("\n");
  for (int64_t budget : budgets) {
    std::printf("%-8lld", static_cast<long long>(budget));
    for (const std::string& algo : algorithms) {
      RunSpec spec;
      spec.workload = bundle.workload.name;
      spec.algorithm = algo;
      spec.budget = budget;
      spec.max_indexes = k;
      spec.max_storage_bytes = storage_bytes;
      // Deterministic algorithms need only one run.
      bool randomized = algo.rfind("mcts", 0) == 0 || algo == "dba-bandits" ||
                        algo == "no-dba";
      CellStats cell =
          RunSeeds(bundle, spec,
                   randomized ? seeds : std::vector<uint64_t>{seeds.front()});
      std::printf("  %18.2f %6.2f", cell.mean, cell.stddev);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace bati
