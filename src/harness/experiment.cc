#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/stats.h"

namespace bati {

namespace {

/// Session parallelism for harness sweeps: BATI_SESSION_PARALLELISM when
/// set (values < 1 mean sequential), otherwise hardware concurrency capped
/// at 8 — figure sweeps are memory-light but each session holds its own
/// what-if cache, so an unbounded fan-out buys nothing.
int SweepParallelism() {
  const char* env = std::getenv("BATI_SESSION_PARALLELISM");
  if (env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed >= 1 ? static_cast<int>(parsed) : 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

/// Specs with file side effects must not run concurrently with siblings
/// (checkpoints and traces would collide on their paths).
bool SpecWritesFiles(const RunSpec& spec) {
  return !spec.checkpoint_path.empty() || !spec.resume_path.empty() ||
         !spec.trace_path.empty();
}

}  // namespace

std::vector<double> RunSpecsTrueImprovements(
    const WorkloadBundle& bundle, const std::vector<RunSpec>& specs) {
  std::vector<double> improvements(specs.size(), 0.0);
  const int parallelism =
      std::min<int>(SweepParallelism(), static_cast<int>(specs.size()));
  // The manager resolves workloads through the global registry, so the
  // concurrent path requires `bundle` to be the registry's own (ad-hoc
  // bundles — e.g. loaded from user SQL files — run sequentially, as do
  // specs that write files).
  bool concurrent = specs.size() > 1 && parallelism > 1;
  if (concurrent) {
    for (const RunSpec& spec : specs) {
      if (SpecWritesFiles(spec) ||
          BundleRegistry::Global().TryGet(spec.workload) != &bundle) {
        concurrent = false;
        break;
      }
    }
  }
  if (!concurrent) {
    for (size_t i = 0; i < specs.size(); ++i) {
      improvements[i] = RunOnce(bundle, specs[i]).true_improvement;
    }
    return improvements;
  }
  SessionManagerOptions options;
  options.parallelism = parallelism;
  SessionManager manager(options);
  for (const RunSpec& spec : specs) manager.Submit(spec);
  const std::vector<SessionResult> results = manager.Drain();
  // Drain() sorts by submission id, which is exactly input order.
  for (size_t i = 0; i < results.size(); ++i) {
    improvements[i] = results[i].outcome.true_improvement;
  }
  return improvements;
}

CellStats RunSeeds(const WorkloadBundle& bundle, RunSpec spec,
                   const std::vector<uint64_t>& seeds) {
  std::vector<RunSpec> specs;
  specs.reserve(seeds.size());
  for (uint64_t seed : seeds) {
    spec.seed = seed;
    specs.push_back(spec);
  }
  RunningStats stats;
  for (double improvement : RunSpecsTrueImprovements(bundle, specs)) {
    stats.Add(improvement);
  }
  return CellStats{stats.mean(), stats.stddev()};
}

BenchScale GetBenchScale() {
  const char* env = std::getenv("BATI_SCALE");
  bool full = env != nullptr && std::string(env) == "full";
  BenchScale scale;
  if (full) {
    scale.large_budgets = {1000, 2000, 3000, 4000, 5000};
    scale.small_budgets = {50, 100, 200, 500, 1000};
    scale.cardinalities = {5, 10, 20};
    scale.seeds = {1, 2, 3, 4, 5};
  } else {
    scale.large_budgets = {1000, 3000, 5000};
    scale.small_budgets = {50, 200, 1000};
    scale.cardinalities = {5, 10, 20};
    scale.seeds = {1, 2};
  }
  return scale;
}

void PrintSeriesTable(const std::string& title, const WorkloadBundle& bundle,
                      const std::vector<std::string>& algorithms,
                      const std::vector<int64_t>& budgets, int k,
                      double storage_bytes,
                      const std::vector<uint64_t>& seeds) {
  // Build the whole (budget, algorithm, seed) grid up front so every run
  // of the table shares one session batch; cell boundaries are recorded so
  // aggregation can walk the flat result vector in print order.
  std::vector<RunSpec> specs;
  std::vector<size_t> cell_sizes;
  for (int64_t budget : budgets) {
    for (const std::string& algo : algorithms) {
      RunSpec spec;
      spec.workload = bundle.workload.name;
      spec.algorithm = algo;
      spec.budget = budget;
      spec.max_indexes = k;
      spec.max_storage_bytes = storage_bytes;
      // Deterministic algorithms need only one run.
      bool randomized = algo.rfind("mcts", 0) == 0 || algo == "dba-bandits" ||
                        algo == "no-dba";
      const std::vector<uint64_t> cell_seeds =
          randomized ? seeds : std::vector<uint64_t>{seeds.front()};
      for (uint64_t seed : cell_seeds) {
        spec.seed = seed;
        specs.push_back(spec);
      }
      cell_sizes.push_back(cell_seeds.size());
    }
  }
  const std::vector<double> improvements =
      RunSpecsTrueImprovements(bundle, specs);

  std::printf("# %s\n", title.c_str());
  std::printf("%-8s", "budget");
  for (const std::string& algo : algorithms) {
    std::printf("  %18s %6s", algo.c_str(), "sd");
  }
  std::printf("\n");
  size_t cell = 0;
  size_t offset = 0;
  for (int64_t budget : budgets) {
    std::printf("%-8lld", static_cast<long long>(budget));
    for (size_t a = 0; a < algorithms.size(); ++a) {
      RunningStats stats;
      for (size_t s = 0; s < cell_sizes[cell]; ++s) {
        stats.Add(improvements[offset + s]);
      }
      offset += cell_sizes[cell];
      ++cell;
      std::printf("  %18.2f %6.2f", stats.mean(), stats.stddev());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace bati
