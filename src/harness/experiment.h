#ifndef BATI_HARNESS_EXPERIMENT_H_
#define BATI_HARNESS_EXPERIMENT_H_

#include <string>
#include <vector>

#include "session/bundle_registry.h"
#include "session/session_manager.h"
#include "session/tuning_session.h"

namespace bati {

// The experiment harness is a thin layer over the session subsystem
// (src/session/): WorkloadBundle/LoadBundle live in
// session/bundle_registry.h (backed by the thread-safe process-wide
// BundleRegistry), and RunSpec/RunOutcome/RunOnce/MakeTuner live in
// session/tuning_session.h (RunOnce constructs and runs one
// TuningSession). This header re-exports them for the benches, tests, and
// tools, and adds the figure-sweep helpers below.

/// Mean/stddev of true improvement across seeds for one cell of a figure.
struct CellStats {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Runs every spec and returns the true improvement of each, in input
/// order. When the bundle is registry-backed and more than one spec is
/// given, the runs execute as concurrent sessions on a SessionManager
/// (bounded by BATI_SESSION_PARALLELISM, default: hardware concurrency
/// capped at 8); results are identical to the sequential loop because
/// sessions share no mutable state and aggregation follows input order.
/// Specs that write files (checkpoint/resume/trace paths) force the
/// sequential path.
std::vector<double> RunSpecsTrueImprovements(const WorkloadBundle& bundle,
                                             const std::vector<RunSpec>& specs);

/// Runs `spec` once per seed (concurrently, see RunSpecsTrueImprovements)
/// and aggregates the true improvements in seed order, so the printed
/// tables are bit-identical to sequential execution.
CellStats RunSeeds(const WorkloadBundle& bundle, RunSpec spec,
                   const std::vector<uint64_t>& seeds);

/// Reduced-vs-full experiment scale, controlled by the BATI_SCALE
/// environment variable ("full" selects the paper-scale sweeps).
struct BenchScale {
  std::vector<int64_t> large_budgets;  // TPC-DS / Real-D / Real-M x-axis
  std::vector<int64_t> small_budgets;  // JOB / TPC-H x-axis
  std::vector<int> cardinalities;      // K values
  std::vector<uint64_t> seeds;         // RNG seeds for randomized tuners
};
BenchScale GetBenchScale();

/// Prints a figure header plus one row per budget with mean/stddev columns
/// per algorithm, in the layout of the paper's plots. All (budget,
/// algorithm, seed) runs of the table execute as one concurrent session
/// batch; aggregation and printing stay in row order, so the table bytes
/// match the historical sequential sweep exactly.
void PrintSeriesTable(const std::string& title, const WorkloadBundle& bundle,
                      const std::vector<std::string>& algorithms,
                      const std::vector<int64_t>& budgets, int k,
                      double storage_bytes, const std::vector<uint64_t>& seeds);

}  // namespace bati

#endif  // BATI_HARNESS_EXPERIMENT_H_
