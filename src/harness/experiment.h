#ifndef BATI_HARNESS_EXPERIMENT_H_
#define BATI_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "budget/governor.h"
#include "common/status.h"
#include "faults/fault_injector.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "optimizer/what_if.h"
#include "tuner/tuner.h"
#include "whatif/cost_engine_stats.h"
#include "whatif/whatif_executor.h"
#include "workload/generators.h"

namespace bati {

/// A workload plus everything derived from it that is shared across runs:
/// the simulated what-if optimizer and the candidate-index universe.
struct WorkloadBundle {
  Workload workload;
  std::shared_ptr<WhatIfOptimizer> optimizer;
  CandidateSet candidates;
};

/// Builds (and caches within the process) a bundle for a named workload
/// ("tpch", "tpcds", "job", "real-d", "real-m", "toy").
const WorkloadBundle& LoadBundle(const std::string& name);

/// Creates a tuner by algorithm name. Recognized names:
///   "vanilla-greedy" | "two-phase-greedy" | "autoadmin-greedy" |
///   "dba-bandits" | "no-dba" | "dta" | "mcts" (paper default setting) |
///   "mcts-{uct,prior}-{bce,bg}-{fix0,fix1,rnd}" (ablation variants).
std::unique_ptr<Tuner> MakeTuner(const std::string& algorithm,
                                 TuningContext ctx, uint64_t seed);

/// One tuning run's specification.
struct RunSpec {
  std::string workload;
  std::string algorithm;
  int64_t budget = 1000;
  int max_indexes = 10;
  double max_storage_bytes = 0.0;
  uint64_t seed = 1;
  /// Budget-governor configuration (src/budget/); disabled by default, in
  /// which case the run is bit-identical to the pre-governor harness.
  BudgetGovernorOptions governor;
  /// Injected what-if fault model (src/faults/); off by default, in which
  /// case the run is bit-identical to the fault-free harness.
  FaultOptions faults;
  /// Retry/backoff policy around faulted what-if calls.
  RetryPolicy retry;
  /// When non-empty, the engine writes a crash-consistent checkpoint here
  /// at every round boundary.
  std::string checkpoint_path;
  /// When non-empty, the run resumes from this checkpoint file (the tuner
  /// replays deterministically from its seed; the engine answers the
  /// journaled prefix instead of re-invoking the optimizer).
  std::string resume_path;
  /// When true, the run records engine metrics (histograms, counters) and
  /// the outcome carries a MetricsSnapshot. Off by default: an unobserved
  /// run is bit-identical to the pre-observability harness.
  bool collect_metrics = false;
  /// When non-empty, the run records a structured trace and writes it here
  /// as Chrome trace_event JSON (Perfetto-loadable).
  std::string trace_path;
  /// Trace ring-buffer capacity in events; 0 means Tracer::kDefaultCapacity.
  /// Setting this non-zero enables tracing even without a trace_path (the
  /// trace is then only reachable programmatically).
  size_t trace_buffer = 0;
};

/// The canonical identity string for a spec — everything that must match
/// for a checkpoint to be resumable: workload, algorithm, constraints,
/// seed, governor switches, fault model, and retry policy.
std::string RunIdentity(const RunSpec& spec);

/// One tuning run's measured outcome.
struct RunOutcome {
  /// eta(W, C) with ground-truth what-if costs (how the paper reports
  /// improvements), percent.
  double true_improvement = 0.0;
  /// eta(W, C) with derived costs at the end of the run, percent.
  double derived_improvement = 0.0;
  int64_t calls_used = 0;
  size_t config_size = 0;
  /// Simulated seconds spent in what-if calls (Figure 2's orange bars).
  double whatif_seconds = 0.0;
  /// Simulated seconds spent elsewhere in tuning (Figure 2's blue bars).
  double other_seconds = 0.0;
  /// Best-so-far improvement after each episode/round, if the algorithm
  /// exposes one (greedy family, MCTS, DBA-bandits, No-DBA). When present,
  /// the last point equals `derived_improvement`.
  std::vector<double> trace;
  /// Cost-engine observability counters for the run (cache hits, derived
  /// and delta lookups, posting-list pruning, batched cells, wall time).
  CostEngineStats engine;
  /// Governor decisions, mirrored from `engine` for convenience: what-if
  /// calls skipped with the saving banked or reallocated, and where early
  /// stopping fired (-1 = never). All zero / -1 on ungoverned runs.
  int64_t governor_skipped = 0;
  int64_t governor_banked = 0;
  int64_t governor_reallocated = 0;
  int governor_stop_round = -1;
  /// Cells answered with the derived cost after exhausting their retries,
  /// mirrored from `engine`. Zero when fault injection is off.
  int64_t degraded_cells = 0;
  /// Metrics snapshot of the run; populated iff spec.collect_metrics.
  bool has_metrics = false;
  MetricsSnapshot metrics;
  /// Events retained/dropped by the trace ring; meaningful only when the
  /// spec enabled tracing.
  size_t trace_events = 0;
  uint64_t trace_dropped = 0;
};

/// Executes one tuning run against a bundle.
RunOutcome RunOnce(const WorkloadBundle& bundle, const RunSpec& spec);

/// Mean/stddev of true improvement across seeds for one cell of a figure.
struct CellStats {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Runs `spec` once per seed and aggregates the true improvements.
CellStats RunSeeds(const WorkloadBundle& bundle, RunSpec spec,
                   const std::vector<uint64_t>& seeds);

/// Reduced-vs-full experiment scale, controlled by the BATI_SCALE
/// environment variable ("full" selects the paper-scale sweeps).
struct BenchScale {
  std::vector<int64_t> large_budgets;  // TPC-DS / Real-D / Real-M x-axis
  std::vector<int64_t> small_budgets;  // JOB / TPC-H x-axis
  std::vector<int> cardinalities;      // K values
  std::vector<uint64_t> seeds;         // RNG seeds for randomized tuners
};
BenchScale GetBenchScale();

/// Prints a figure header plus one row per budget with mean/stddev columns
/// per algorithm, in the layout of the paper's plots.
void PrintSeriesTable(const std::string& title, const WorkloadBundle& bundle,
                      const std::vector<std::string>& algorithms,
                      const std::vector<int64_t>& budgets, int k,
                      double storage_bytes, const std::vector<uint64_t>& seeds);

}  // namespace bati

#endif  // BATI_HARNESS_EXPERIMENT_H_
