#ifndef BATI_SQL_AST_H_
#define BATI_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

namespace bati::sql {

/// Unresolved column reference as written in the query ("alias.column" or a
/// bare "column" to be resolved by the binder).
struct ColumnName {
  std::string qualifier;  // table name or alias; may be empty
  std::string column;

  std::string ToString() const {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
};

/// Aggregate functions supported in the SELECT list.
enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

/// One SELECT-list item: a column, an aggregate over a column, or COUNT(*).
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  bool star = false;                  // COUNT(*) or bare '*'
  std::optional<ColumnName> column;   // absent for '*'
};

/// FROM-list entry: a base table with an optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // empty => table name itself

  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

/// Comparison operators for scalar predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Literal value: number or string.
struct Literal {
  bool is_string = false;
  double number = 0.0;
  std::string text;
};

/// One conjunct of the WHERE clause: column-op-literal filters,
/// column-op-column joins, BETWEEN, IN and LIKE. A conjunct may also be a
/// parenthesized disjunction "(p1 OR p2 OR ...)": the first disjunct lives
/// in this Predicate and the rest in `or_disjuncts` (only simple predicates
/// may appear inside a disjunction; nesting is not supported).
struct Predicate {
  enum class Kind { kCompareLiteral, kCompareColumn, kBetween, kIn, kLike };

  Kind kind = Kind::kCompareLiteral;
  ColumnName left;

  // kCompareLiteral
  CmpOp op = CmpOp::kEq;
  Literal literal;

  // kCompareColumn (join predicate; op is always equality in the subset)
  ColumnName right;

  // kBetween
  Literal between_lo;
  Literal between_hi;

  // kIn
  std::vector<Literal> in_list;

  // kLike
  std::string like_pattern;

  // Further disjuncts of a "(p1 OR p2 ...)" group; empty for plain
  // conjuncts. Disjuncts themselves never carry nested or_disjuncts.
  std::vector<Predicate> or_disjuncts;
};

/// ORDER BY item.
struct OrderItem {
  ColumnName column;
  bool descending = false;
};

/// A parsed SELECT statement (unbound).
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;
  std::vector<Predicate> where;  // conjunction
  std::vector<ColumnName> group_by;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
};

}  // namespace bati::sql

#endif  // BATI_SQL_AST_H_
