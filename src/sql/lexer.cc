#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace bati::sql {

namespace {

const char* const kKeywords[] = {
    "SELECT", "FROM", "WHERE",  "AND",   "OR",    "GROUP", "BY",
    "ORDER",  "ASC",  "DESC",   "LIMIT", "AS",    "IN",    "BETWEEN",
    "LIKE",   "NOT",  "COUNT",  "SUM",   "AVG",   "MIN",   "MAX",
    "JOIN",   "ON",   "INNER",  "DISTINCT", "HAVING", "NULL", "IS",
};

bool IsIdentifierStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentifierChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsKeyword(std::string_view word) {
  for (const char* kw : kKeywords) {
    if (EqualsIgnoreCase(word, kw)) return true;
  }
  return false;
}

StatusOr<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: -- ... \n
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    // Unary minus starting a numeric literal: valid only where a value is
    // expected (after an operator, keyword, '(' or ',').
    bool negative_number = false;
    if (c == '-' && i + 1 < n &&
        (std::isdigit(static_cast<unsigned char>(input[i + 1])) ||
         input[i + 1] == '.')) {
      bool value_position = tokens.empty();
      if (!tokens.empty()) {
        const Token& prev = tokens.back();
        value_position = prev.type == TokenType::kOperator ||
                         prev.type == TokenType::kKeyword ||
                         (prev.type == TokenType::kSymbol &&
                          (prev.text == "(" || prev.text == ","));
      }
      if (value_position) {
        negative_number = true;
        ++i;
        c = input[i];
      }
    }
    // Consumes digits, an optional decimal point, and an optional exponent
    // ("1.5e+06"), starting at i.
    auto consume_number_body = [&]() {
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t peek = i + 1;
        if (peek < n && (input[peek] == '+' || input[peek] == '-')) ++peek;
        if (peek < n && std::isdigit(static_cast<unsigned char>(input[peek]))) {
          i = peek;
          while (i < n &&
                 std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        }
      }
    };
    if (negative_number) {
      size_t start = i;
      consume_number_body();
      tok.type = TokenType::kNumber;
      tok.text = "-" + std::string(input.substr(start, i - start));
      tok.number = std::strtod(tok.text.c_str(), nullptr);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (IsIdentifierStart(c)) {
      size_t start = i;
      while (i < n && IsIdentifierChar(input[i])) ++i;
      std::string_view word = input.substr(start, i - start);
      if (IsKeyword(word)) {
        tok.type = TokenType::kKeyword;
        tok.text = ToUpper(word);
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = std::string(word);
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      consume_number_body();
      tok.type = TokenType::kNumber;
      tok.text = std::string(input.substr(start, i - start));
      tok.number = std::strtod(tok.text.c_str(), nullptr);
    } else if (c == '\'') {
      size_t start = ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += input[i];
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " + std::to_string(start));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
    } else if (c == '<' || c == '>' || c == '=' || c == '!') {
      tok.type = TokenType::kOperator;
      if (i + 1 < n && (input[i + 1] == '=' ||
                        (c == '<' && input[i + 1] == '>'))) {
        tok.text = std::string(input.substr(i, 2));
        i += 2;
      } else {
        tok.text = std::string(1, c);
        ++i;
      }
      if (tok.text == "!") {
        return Status::InvalidArgument("unexpected '!' at offset " +
                                       std::to_string(tok.offset));
      }
    } else if (c == '(' || c == ')' || c == ',' || c == ';' || c == '*' ||
               c == '.' || c == '%') {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
    } else {
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at offset " +
                                     std::to_string(i));
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace bati::sql
