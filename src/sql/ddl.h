#ifndef BATI_SQL_DDL_H_
#define BATI_SQL_DDL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace bati::sql {

/// A column definition from CREATE TABLE, with the optional statistics
/// annotations this library adds to standard DDL (a statistics-only catalog
/// needs NDVs and domains, which plain SQL does not carry):
///
///   CREATE TABLE orders (
///     o_id       BIGINT   NDV 5000000 RANGE (0, 5000000),
///     o_status   VARCHAR(10) NDV 4,
///     o_total    DOUBLE   RANGE (1, 10000)
///   ) WITH (ROWS = 5000000);
///
/// Unannotated columns default to NDV = table rows (key-like) and a
/// [0, rows) domain.
struct ColumnDef {
  std::string name;
  std::string type_name;  // upper-cased: INT, BIGINT, DOUBLE, DECIMAL,
                          // DATE, VARCHAR, CHAR, STRING
  int length = 0;         // VARCHAR(n) / CHAR(n)
  std::optional<double> ndv;
  std::optional<std::pair<double, double>> range;
};

/// A parsed CREATE TABLE statement.
struct CreateTableStmt {
  std::string table_name;
  double rows = 1000.0;  // WITH (ROWS = n); defaults to 1000
  std::vector<ColumnDef> columns;
};

/// Parses a script of semicolon-separated CREATE TABLE statements.
/// Type names and annotation words are matched contextually (they are not
/// reserved), so workload queries may still use them as identifiers.
StatusOr<std::vector<CreateTableStmt>> ParseDdl(std::string_view script);

}  // namespace bati::sql

#endif  // BATI_SQL_DDL_H_
