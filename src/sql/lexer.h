#ifndef BATI_SQL_LEXER_H_
#define BATI_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace bati::sql {

/// Token kinds for the analytic SQL subset.
enum class TokenType {
  kIdentifier,   // table / column / alias names
  kKeyword,      // SELECT, FROM, WHERE, ... (normalized upper-case in text)
  kNumber,       // integer or decimal literal
  kString,       // 'quoted literal'
  kSymbol,       // ( ) , ; * .
  kOperator,     // = <> != < <= > >=
  kEnd,          // end of input
};

/// One lexical token with source position for error reporting.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // normalized: keywords upper-cased, strings unquoted
  double number = 0;  // valid when type == kNumber
  size_t offset = 0;  // byte offset in the input
};

/// True if `word` (case-insensitive) is a reserved keyword of the subset.
bool IsKeyword(std::string_view word);

/// Tokenizes `input`. Fails with InvalidArgument on unterminated strings or
/// unexpected characters.
StatusOr<std::vector<Token>> Lex(std::string_view input);

}  // namespace bati::sql

#endif  // BATI_SQL_LEXER_H_
