#include "sql/parser.h"

#include <utility>

#include "common/strings.h"
#include "sql/lexer.h"

namespace bati::sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SelectStatement> ParseSelect() {
    SelectStatement stmt;
    if (auto s = ExpectKeyword("SELECT"); !s.ok()) return s;
    if (MatchKeyword("DISTINCT")) stmt.distinct = true;

    // Select list.
    while (true) {
      auto item = ParseSelectItem();
      if (!item.ok()) return item.status();
      stmt.select_list.push_back(std::move(item.value()));
      if (!MatchSymbol(",")) break;
    }

    if (auto s = ExpectKeyword("FROM"); !s.ok()) return s;

    // FROM list; accepts comma-joins and INNER JOIN ... ON ....
    {
      auto first = ParseTableRef();
      if (!first.ok()) return first.status();
      stmt.from.push_back(std::move(first.value()));
    }
    while (true) {
      if (MatchSymbol(",")) {
        auto tref = ParseTableRef();
        if (!tref.ok()) return tref.status();
        stmt.from.push_back(std::move(tref.value()));
        continue;
      }
      if (MatchKeyword("INNER")) {
        if (auto s = ExpectKeyword("JOIN"); !s.ok()) return s;
      } else if (!MatchKeyword("JOIN")) {
        break;
      }
      auto joined = ParseTableRef();
      if (!joined.ok()) return joined.status();
      stmt.from.push_back(std::move(joined.value()));
      if (auto s = ExpectKeyword("ON"); !s.ok()) return s;
      auto pred = ParsePredicate();
      if (!pred.ok()) return pred.status();
      stmt.where.push_back(std::move(pred.value()));
      // Allow additional AND-ed conjuncts in the ON clause.
      while (MatchKeyword("AND")) {
        auto extra = ParsePredicate();
        if (!extra.ok()) return extra.status();
        stmt.where.push_back(std::move(extra.value()));
      }
    }

    if (MatchKeyword("WHERE")) {
      while (true) {
        auto pred = ParseConjunct();
        if (!pred.ok()) return pred.status();
        stmt.where.push_back(std::move(pred.value()));
        if (!MatchKeyword("AND")) break;
      }
    }

    if (MatchKeyword("GROUP")) {
      if (auto s = ExpectKeyword("BY"); !s.ok()) return s;
      while (true) {
        auto col = ParseColumnName();
        if (!col.ok()) return col.status();
        stmt.group_by.push_back(std::move(col.value()));
        if (!MatchSymbol(",")) break;
      }
    }

    if (MatchKeyword("ORDER")) {
      if (auto s = ExpectKeyword("BY"); !s.ok()) return s;
      while (true) {
        auto col = ParseColumnName();
        if (!col.ok()) return col.status();
        OrderItem item;
        item.column = std::move(col.value());
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
        if (!MatchSymbol(",")) break;
      }
    }

    if (MatchKeyword("LIMIT")) {
      const Token& t = Peek();
      if (t.type != TokenType::kNumber) {
        return Fail("expected number after LIMIT");
      }
      stmt.limit = static_cast<int64_t>(t.number);
      Advance();
    }

    MatchSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Fail("unexpected trailing input: '" + Peek().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t lookahead = 0) const {
    size_t i = pos_ + lookahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd sentinel
    return tokens_[i];
  }

  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool PeekKeyword(std::string_view kw) const {
    const Token& t = Peek();
    return t.type == TokenType::kKeyword && t.text == kw;
  }

  bool MatchKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  bool MatchSymbol(std::string_view sym) {
    const Token& t = Peek();
    if (t.type == TokenType::kSymbol && t.text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::Ok();
    return Status::InvalidArgument("expected " + std::string(kw) + " near '" +
                                   Peek().text + "' at offset " +
                                   std::to_string(Peek().offset));
  }

  Status ExpectSymbol(std::string_view sym) {
    if (MatchSymbol(sym)) return Status::Ok();
    return Status::InvalidArgument("expected '" + std::string(sym) +
                                   "' near '" + Peek().text + "' at offset " +
                                   std::to_string(Peek().offset));
  }

  Status Fail(std::string msg) const {
    return Status::InvalidArgument(msg + " at offset " +
                                   std::to_string(Peek().offset));
  }

  StatusOr<ColumnName> ParseColumnName() {
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier) {
      return Fail("expected column name, found '" + t.text + "'");
    }
    ColumnName name;
    name.column = t.text;
    Advance();
    if (Peek().type == TokenType::kSymbol && Peek().text == ".") {
      Advance();
      const Token& c = Peek();
      if (c.type != TokenType::kIdentifier) {
        return Fail("expected column after '.'");
      }
      name.qualifier = std::move(name.column);
      name.column = c.text;
      Advance();
    }
    return name;
  }

  StatusOr<SelectItem> ParseSelectItem() {
    SelectItem item;
    const Token& t = Peek();
    if (t.type == TokenType::kSymbol && t.text == "*") {
      item.star = true;
      Advance();
      return item;
    }
    if (t.type == TokenType::kKeyword &&
        (t.text == "COUNT" || t.text == "SUM" || t.text == "AVG" ||
         t.text == "MIN" || t.text == "MAX")) {
      if (t.text == "COUNT") item.agg = AggFunc::kCount;
      if (t.text == "SUM") item.agg = AggFunc::kSum;
      if (t.text == "AVG") item.agg = AggFunc::kAvg;
      if (t.text == "MIN") item.agg = AggFunc::kMin;
      if (t.text == "MAX") item.agg = AggFunc::kMax;
      Advance();
      if (auto s = ExpectSymbol("("); !s.ok()) return s;
      if (Peek().type == TokenType::kSymbol && Peek().text == "*") {
        item.star = true;
        Advance();
      } else {
        auto col = ParseColumnName();
        if (!col.ok()) return col.status();
        item.column = std::move(col.value());
      }
      if (auto s = ExpectSymbol(")"); !s.ok()) return s;
      // Optional "AS alias" — consumed and ignored (aliases of outputs do
      // not affect tuning).
      if (MatchKeyword("AS")) {
        if (Peek().type == TokenType::kIdentifier) Advance();
      }
      return item;
    }
    auto col = ParseColumnName();
    if (!col.ok()) return col.status();
    item.column = std::move(col.value());
    if (MatchKeyword("AS")) {
      if (Peek().type == TokenType::kIdentifier) Advance();
    }
    return item;
  }

  StatusOr<TableRef> ParseTableRef() {
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier) {
      return Fail("expected table name, found '" + t.text + "'");
    }
    TableRef ref;
    ref.table = t.text;
    Advance();
    if (MatchKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Fail("expected alias after AS");
      }
      ref.alias = Peek().text;
      Advance();
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Peek().text;
      Advance();
    }
    return ref;
  }

  StatusOr<Literal> ParseLiteral() {
    const Token& t = Peek();
    Literal lit;
    if (t.type == TokenType::kNumber) {
      lit.number = t.number;
      Advance();
      return lit;
    }
    if (t.type == TokenType::kString) {
      lit.is_string = true;
      lit.text = t.text;
      Advance();
      return lit;
    }
    return Fail("expected literal, found '" + t.text + "'");
  }

  /// One WHERE conjunct: a simple predicate, or a parenthesized disjunction
  /// "(p1 OR p2 OR ...)".
  StatusOr<Predicate> ParseConjunct() {
    if (Peek().type == TokenType::kSymbol && Peek().text == "(") {
      Advance();
      auto first = ParsePredicate();
      if (!first.ok()) return first.status();
      Predicate group = std::move(first.value());
      while (MatchKeyword("OR")) {
        auto next = ParsePredicate();
        if (!next.ok()) return next.status();
        group.or_disjuncts.push_back(std::move(next.value()));
      }
      if (auto s = ExpectSymbol(")"); !s.ok()) return s;
      if (group.or_disjuncts.empty()) {
        return Fail("parenthesized conjunct must contain OR");
      }
      return group;
    }
    return ParsePredicate();
  }

  StatusOr<Predicate> ParsePredicate() {
    Predicate pred;
    auto left = ParseColumnName();
    if (!left.ok()) return left.status();
    pred.left = std::move(left.value());

    if (MatchKeyword("BETWEEN")) {
      pred.kind = Predicate::Kind::kBetween;
      auto lo = ParseLiteral();
      if (!lo.ok()) return lo.status();
      pred.between_lo = std::move(lo.value());
      if (auto s = ExpectKeyword("AND"); !s.ok()) return s;
      auto hi = ParseLiteral();
      if (!hi.ok()) return hi.status();
      pred.between_hi = std::move(hi.value());
      return pred;
    }
    if (MatchKeyword("IN")) {
      pred.kind = Predicate::Kind::kIn;
      if (auto s = ExpectSymbol("("); !s.ok()) return s;
      while (true) {
        auto lit = ParseLiteral();
        if (!lit.ok()) return lit.status();
        pred.in_list.push_back(std::move(lit.value()));
        if (!MatchSymbol(",")) break;
      }
      if (auto s = ExpectSymbol(")"); !s.ok()) return s;
      return pred;
    }
    if (MatchKeyword("LIKE")) {
      pred.kind = Predicate::Kind::kLike;
      const Token& t = Peek();
      if (t.type != TokenType::kString) {
        return Fail("expected string pattern after LIKE");
      }
      pred.like_pattern = t.text;
      Advance();
      return pred;
    }

    const Token& op = Peek();
    if (op.type != TokenType::kOperator) {
      return Fail("expected comparison operator, found '" + op.text + "'");
    }
    if (op.text == "=") {
      pred.op = CmpOp::kEq;
    } else if (op.text == "<>" || op.text == "!=") {
      pred.op = CmpOp::kNe;
    } else if (op.text == "<") {
      pred.op = CmpOp::kLt;
    } else if (op.text == "<=") {
      pred.op = CmpOp::kLe;
    } else if (op.text == ">") {
      pred.op = CmpOp::kGt;
    } else if (op.text == ">=") {
      pred.op = CmpOp::kGe;
    } else {
      return Fail("unsupported operator '" + op.text + "'");
    }
    Advance();

    // Right side: column (join) or literal (filter).
    const Token& rhs = Peek();
    if (rhs.type == TokenType::kIdentifier) {
      auto right = ParseColumnName();
      if (!right.ok()) return right.status();
      pred.kind = Predicate::Kind::kCompareColumn;
      pred.right = std::move(right.value());
      return pred;
    }
    auto lit = ParseLiteral();
    if (!lit.ok()) return lit.status();
    pred.kind = Predicate::Kind::kCompareLiteral;
    pred.literal = std::move(lit.value());
    return pred;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

std::string LiteralToSql(const Literal& lit) {
  if (lit.is_string) {
    std::string out = "'";
    for (char c : lit.text) {
      out += c;
      if (c == '\'') out += c;  // escape embedded quotes by doubling
    }
    out += "'";
    return out;
  }
  // Emit integers without a trailing ".000000".
  if (lit.number == static_cast<double>(static_cast<int64_t>(lit.number))) {
    return std::to_string(static_cast<int64_t>(lit.number));
  }
  return std::to_string(lit.number);
}

std::string CmpOpToSql(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "=";
}

std::string SimplePredicateToSql(const Predicate& p);

std::string PredicateToSql(const Predicate& p) {
  if (!p.or_disjuncts.empty()) {
    std::string out = "(" + SimplePredicateToSql(p);
    for (const Predicate& d : p.or_disjuncts) {
      out += " OR " + SimplePredicateToSql(d);
    }
    out += ")";
    return out;
  }
  return SimplePredicateToSql(p);
}

std::string SimplePredicateToSql(const Predicate& p) {
  std::string out = p.left.ToString();
  switch (p.kind) {
    case Predicate::Kind::kCompareLiteral:
      out += " " + CmpOpToSql(p.op) + " " + LiteralToSql(p.literal);
      break;
    case Predicate::Kind::kCompareColumn:
      out += " " + CmpOpToSql(p.op) + " " + p.right.ToString();
      break;
    case Predicate::Kind::kBetween:
      out += " BETWEEN " + LiteralToSql(p.between_lo) + " AND " +
             LiteralToSql(p.between_hi);
      break;
    case Predicate::Kind::kIn: {
      out += " IN (";
      for (size_t i = 0; i < p.in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += LiteralToSql(p.in_list[i]);
      }
      out += ")";
      break;
    }
    case Predicate::Kind::kLike: {
      Literal lit;
      lit.is_string = true;
      lit.text = p.like_pattern;
      out += " LIKE " + LiteralToSql(lit);
      break;
    }
  }
  return out;
}

std::string SelectItemToSql(const SelectItem& item) {
  const char* agg = nullptr;
  switch (item.agg) {
    case AggFunc::kNone:
      break;
    case AggFunc::kCount:
      agg = "COUNT";
      break;
    case AggFunc::kSum:
      agg = "SUM";
      break;
    case AggFunc::kAvg:
      agg = "AVG";
      break;
    case AggFunc::kMin:
      agg = "MIN";
      break;
    case AggFunc::kMax:
      agg = "MAX";
      break;
  }
  std::string inner = item.star ? "*" : item.column->ToString();
  if (agg == nullptr) return inner;
  return std::string(agg) + "(" + inner + ")";
}

}  // namespace

StatusOr<SelectStatement> Parse(std::string_view sql) {
  auto tokens = Lex(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens.value()));
  return parser.ParseSelect();
}

std::string ToSql(const SelectStatement& stmt) {
  std::string out = "SELECT ";
  if (stmt.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < stmt.select_list.size(); ++i) {
    if (i > 0) out += ", ";
    out += SelectItemToSql(stmt.select_list[i]);
  }
  out += " FROM ";
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i > 0) out += ", ";
    out += stmt.from[i].table;
    if (!stmt.from[i].alias.empty()) out += " " + stmt.from[i].alias;
  }
  if (!stmt.where.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < stmt.where.size(); ++i) {
      if (i > 0) out += " AND ";
      out += PredicateToSql(stmt.where[i]);
    }
  }
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt.group_by[i].ToString();
    }
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt.order_by[i].column.ToString();
      if (stmt.order_by[i].descending) out += " DESC";
    }
  }
  if (stmt.limit.has_value()) {
    out += " LIMIT " + std::to_string(*stmt.limit);
  }
  return out;
}

}  // namespace bati::sql
