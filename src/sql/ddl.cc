#include "sql/ddl.h"

#include "common/strings.h"
#include "sql/lexer.h"

namespace bati::sql {

namespace {

/// Cursor over the token stream with contextual (non-reserved) word
/// matching: DDL words like CREATE or BIGINT arrive as identifiers.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const {
    return tokens_[std::min(pos_, tokens_.size() - 1)];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool MatchWord(std::string_view word) {
    const Token& t = Peek();
    if ((t.type == TokenType::kIdentifier || t.type == TokenType::kKeyword) &&
        EqualsIgnoreCase(t.text, word)) {
      Advance();
      return true;
    }
    return false;
  }

  bool MatchSymbol(std::string_view sym) {
    const Token& t = Peek();
    if (t.type == TokenType::kSymbol && t.text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  bool MatchOperator(std::string_view op) {
    const Token& t = Peek();
    if (t.type == TokenType::kOperator && t.text == op) {
      Advance();
      return true;
    }
    return false;
  }

  StatusOr<std::string> ExpectIdentifier(const char* what) {
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     " near '" + t.text + "' at offset " +
                                     std::to_string(t.offset));
    }
    std::string name = t.text;
    Advance();
    return name;
  }

  StatusOr<double> ExpectNumber(const char* what) {
    const Token& t = Peek();
    if (t.type != TokenType::kNumber) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     " near '" + t.text + "' at offset " +
                                     std::to_string(t.offset));
    }
    double v = t.number;
    Advance();
    return v;
  }

  Status Fail(const std::string& msg) const {
    return Status::InvalidArgument(msg + " near '" + Peek().text +
                                   "' at offset " +
                                   std::to_string(Peek().offset));
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

const char* const kTypeNames[] = {"INT",     "INTEGER", "BIGINT", "DOUBLE",
                                  "DECIMAL", "DATE",    "VARCHAR", "CHAR",
                                  "STRING"};

bool IsTypeName(const std::string& word) {
  for (const char* t : kTypeNames) {
    if (EqualsIgnoreCase(word, t)) return true;
  }
  return false;
}

StatusOr<ColumnDef> ParseColumnDef(Cursor& cur) {
  ColumnDef col;
  auto name = cur.ExpectIdentifier("column name");
  if (!name.ok()) return name.status();
  col.name = std::move(name.value());

  auto type = cur.ExpectIdentifier("column type");
  if (!type.ok()) return type.status();
  if (!IsTypeName(type.value())) {
    return Status::InvalidArgument("unknown column type: " + type.value());
  }
  col.type_name = ToUpper(type.value());

  if (cur.MatchSymbol("(")) {
    auto len = cur.ExpectNumber("type length");
    if (!len.ok()) return len.status();
    col.length = static_cast<int>(len.value());
    // DECIMAL(p, s): ignore the scale.
    if (cur.MatchSymbol(",")) {
      auto scale = cur.ExpectNumber("type scale");
      if (!scale.ok()) return scale.status();
    }
    if (!cur.MatchSymbol(")")) return cur.Fail("expected ')' after length");
  }

  // Statistics annotations in any order: NDV n, RANGE (lo, hi).
  while (true) {
    if (cur.MatchWord("NDV")) {
      cur.MatchOperator("=");  // optional '='
      auto ndv = cur.ExpectNumber("NDV value");
      if (!ndv.ok()) return ndv.status();
      col.ndv = ndv.value();
      continue;
    }
    if (cur.MatchWord("RANGE")) {
      if (!cur.MatchSymbol("(")) return cur.Fail("expected '(' after RANGE");
      auto lo = cur.ExpectNumber("range low");
      if (!lo.ok()) return lo.status();
      if (!cur.MatchSymbol(",")) return cur.Fail("expected ',' in RANGE");
      auto hi = cur.ExpectNumber("range high");
      if (!hi.ok()) return hi.status();
      if (!cur.MatchSymbol(")")) return cur.Fail("expected ')' after RANGE");
      col.range = std::make_pair(lo.value(), hi.value());
      continue;
    }
    break;
  }
  return col;
}

StatusOr<CreateTableStmt> ParseCreateTable(Cursor& cur) {
  CreateTableStmt stmt;
  if (!cur.MatchWord("CREATE") || !cur.MatchWord("TABLE")) {
    return cur.Fail("expected CREATE TABLE");
  }
  auto name = cur.ExpectIdentifier("table name");
  if (!name.ok()) return name.status();
  stmt.table_name = std::move(name.value());

  if (!cur.MatchSymbol("(")) return cur.Fail("expected '('");
  while (true) {
    auto col = ParseColumnDef(cur);
    if (!col.ok()) return col.status();
    stmt.columns.push_back(std::move(col.value()));
    if (cur.MatchSymbol(",")) continue;
    if (cur.MatchSymbol(")")) break;
    return cur.Fail("expected ',' or ')' in column list");
  }

  if (cur.MatchWord("WITH")) {
    if (!cur.MatchSymbol("(")) return cur.Fail("expected '(' after WITH");
    if (!cur.MatchWord("ROWS")) return cur.Fail("expected ROWS");
    cur.MatchOperator("=");
    auto rows = cur.ExpectNumber("row count");
    if (!rows.ok()) return rows.status();
    stmt.rows = rows.value();
    if (!cur.MatchSymbol(")")) return cur.Fail("expected ')' after ROWS");
  }
  cur.MatchSymbol(";");
  if (stmt.columns.empty()) {
    return Status::InvalidArgument("table " + stmt.table_name +
                                   " has no columns");
  }
  return stmt;
}

}  // namespace

StatusOr<std::vector<CreateTableStmt>> ParseDdl(std::string_view script) {
  auto tokens = Lex(script);
  if (!tokens.ok()) return tokens.status();
  Cursor cur(std::move(tokens.value()));
  std::vector<CreateTableStmt> out;
  while (!cur.AtEnd()) {
    auto stmt = ParseCreateTable(cur);
    if (!stmt.ok()) return stmt.status();
    out.push_back(std::move(stmt.value()));
  }
  if (out.empty()) {
    return Status::InvalidArgument("no CREATE TABLE statements found");
  }
  return out;
}

}  // namespace bati::sql
