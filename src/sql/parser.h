#ifndef BATI_SQL_PARSER_H_
#define BATI_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace bati::sql {

/// Parses one SELECT statement of the analytic subset:
///
///   SELECT [DISTINCT] item, ... FROM table [alias], ...
///   [WHERE conjunct AND conjunct ...]
///   [GROUP BY col, ...] [ORDER BY col [ASC|DESC], ...] [LIMIT n] [;]
///
/// Conjuncts: col op literal | col = col | col BETWEEN a AND b |
///            col IN (v, ...) | col LIKE 'pattern'.
/// Explicit "JOIN t ON a = b" syntax is also accepted and normalized into the
/// FROM list plus an equality conjunct.
StatusOr<SelectStatement> Parse(std::string_view sql);

/// Renders a statement back to SQL text (canonical form). Round-trips through
/// Parse for all statements the subset can express.
std::string ToSql(const SelectStatement& stmt);

}  // namespace bati::sql

#endif  // BATI_SQL_PARSER_H_
