#include "faults/fault_injector.h"

#include <cstdio>

#include "common/macros.h"

namespace bati {

namespace {

/// SplitMix64 finalizer: a strong 64-bit mixer, the same construction the
/// library's Rng uses for seeding.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double ToUnit(uint64_t h) {
  // 53 high bits -> [0, 1), the standard double construction.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::string FaultOptions::ToIdentityString() const {
  if (!enabled) return "faults=off";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "faults=seed:%llu,transient:%g,sticky:%g,spike:%g,factor:%g",
                static_cast<unsigned long long>(seed), transient_rate,
                sticky_rate, spike_rate, spike_factor);
  return buf;
}

FaultInjector::FaultInjector(const FaultOptions& options)
    : options_(options) {
  BATI_CHECK(options_.enabled);
  BATI_CHECK(options_.transient_rate >= 0.0 && options_.transient_rate <= 1.0);
  BATI_CHECK(options_.sticky_rate >= 0.0 && options_.sticky_rate <= 1.0);
  BATI_CHECK(options_.spike_rate >= 0.0 && options_.spike_rate <= 1.0);
  BATI_CHECK(options_.spike_factor >= 1.0);
}

double FaultInjector::Draw(uint64_t salt, int query_id, uint64_t config_hash,
                           int attempt) const {
  uint64_t h = Mix(options_.seed ^ salt);
  h = Mix(h ^ static_cast<uint64_t>(query_id));
  h = Mix(h ^ config_hash);
  h = Mix(h ^ static_cast<uint64_t>(attempt));
  return ToUnit(h);
}

FaultDecision FaultInjector::Decide(int query_id, uint64_t config_hash,
                                    int attempt) const {
  BATI_CHECK(attempt >= 1);
  FaultDecision d;
  // Sticky failure is a property of the cell, not the attempt.
  if (options_.sticky_rate > 0.0 &&
      Draw(/*salt=*/0x571c4fULL, query_id, config_hash, /*attempt=*/0) <
          options_.sticky_rate) {
    d.kind = FaultKind::kSticky;
    return d;
  }
  if (options_.spike_rate > 0.0 &&
      Draw(/*salt=*/0x1a7e2c5ULL, query_id, config_hash, attempt) <
          options_.spike_rate) {
    d.latency_multiplier = options_.spike_factor;
  }
  if (options_.transient_rate > 0.0 &&
      Draw(/*salt=*/0x7a2b51e47ULL, query_id, config_hash, attempt) <
          options_.transient_rate) {
    d.kind = FaultKind::kTransient;
  }
  return d;
}

}  // namespace bati
