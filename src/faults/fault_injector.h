#ifndef BATI_FAULTS_FAULT_INJECTOR_H_
#define BATI_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

namespace bati {

/// Configuration of the what-if fault model. All rates are probabilities in
/// [0, 1]; with `enabled == false` (the default) the injector is never
/// constructed and the cost engine is bit-identical to the fault-free
/// engine.
///
/// The model mirrors how a real DBMS what-if API misbehaves:
///  * transient errors — an individual call fails (connection drop,
///    throttling); an immediate retry may succeed;
///  * latency spikes — a call takes `spike_factor` times its usual
///    simulated latency, which trips the executor's per-call timeout when
///    one is configured;
///  * sticky cells — a (query, configuration) pair that fails on every
///    attempt (a plan the hypothetical-index interface cannot cost), so
///    retrying is futile and the engine must degrade to the derived cost.
struct FaultOptions {
  /// Master switch; everything below is ignored when false.
  bool enabled = false;
  /// Seed of the fault schedule. The schedule is a pure function of
  /// (seed, query, configuration, attempt): deterministic, independent of
  /// evaluation order and thread interleaving, and exactly reproducible
  /// across checkpoint/resume.
  uint64_t seed = 1;
  /// Per-attempt probability of a transient error.
  double transient_rate = 0.0;
  /// Per-cell probability that the cell fails on every attempt.
  double sticky_rate = 0.0;
  /// Per-attempt probability of a latency spike.
  double spike_rate = 0.0;
  /// Simulated-latency multiplier during a spike.
  double spike_factor = 20.0;
  /// Named crash point "round-N": the engine writes its checkpoint at the
  /// BeginRound(N) boundary and then terminates the process (exit code 42),
  /// simulating a crash for kill-and-resume testing. 0 disables.
  int crash_at_round = 0;

  /// One-line rendering of the fault model, stamped into run identities.
  std::string ToIdentityString() const;
};

/// What the injector decided for one evaluation attempt.
enum class FaultKind {
  kNone,       // the attempt may proceed (possibly with spiked latency)
  kTransient,  // the attempt fails; a retry may succeed
  kSticky,     // the cell fails on every attempt
};

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// Simulated-latency multiplier for this attempt (>= 1).
  double latency_multiplier = 1.0;
};

/// Deterministic, seeded fault source wrapping the what-if optimizer. The
/// injector is stateless: Decide() is a pure function of its arguments and
/// the seed, so concurrent workers need no synchronization, batched and
/// sequential evaluation see the identical fault schedule, and a resumed
/// run replays the exact faults of the original. Fault *counters* live with
/// the executor (which observes outcomes), not here.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultOptions& options);

  const FaultOptions& options() const { return options_; }

  /// The fault decision for attempt `attempt` (1-based) of evaluating cell
  /// (query_id, config), where `config_hash` is Config::Hash() of the
  /// configuration. Pure and thread-safe.
  FaultDecision Decide(int query_id, uint64_t config_hash, int attempt) const;

 private:
  /// Uniform [0, 1) draw from the per-cell stream salted by `salt`.
  double Draw(uint64_t salt, int query_id, uint64_t config_hash,
              int attempt) const;

  FaultOptions options_;
};

}  // namespace bati

#endif  // BATI_FAULTS_FAULT_INJECTOR_H_
