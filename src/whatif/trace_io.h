#ifndef BATI_WHATIF_TRACE_IO_H_
#define BATI_WHATIF_TRACE_IO_H_

#include <string>

#include "common/status.h"
#include "whatif/cost_service.h"

namespace bati {

/// Serializes the budget-allocation layout (the what-if call trace) to CSV:
/// one row per counted call with columns
///   call, query_id, query_name, config_size, config (semicolon-separated
///   candidate positions), what_if_cost
/// so the budget allocation matrix of a run can be analyzed or re-plotted
/// outside the library (paper Figure 5's visualizations come from exactly
/// this data).
std::string LayoutToCsv(const CostService& service, const Workload& workload);

/// Writes LayoutToCsv to a file. Fails with NotFound on I/O errors.
Status WriteLayoutCsv(const CostService& service, const Workload& workload,
                      const std::string& path);

/// One-line run summary as a single JSON object (machine-readable tuning
/// result):
/// {"workload":..., "algorithm":..., "budget":..., "calls":...,
///  "improvement":..., "derived_improvement":..., "indexes":[...names...],
///  "engine_stats":{...CostEngineStats::ToJson()...}}.
/// With a non-null `metrics` the object additionally carries
/// "metrics":{...MetricsSnapshot::ToJson()...}.
/// With `canonical` set, wall-clock noise (engine_stats.executor_wall_seconds
/// — the only nondeterministic field of the object) is zeroed, making the
/// line a pure function of the run spec. The fleet's byte-identity property
/// (`bati_fleet` output == sequential `bati_batch --canonical` output, no
/// matter which workers died) is defined over this form.
std::string ResultToJson(const CostService& service, const Workload& workload,
                         const std::string& algorithm, const Config& config,
                         double true_improvement,
                         const MetricsSnapshot* metrics = nullptr,
                         bool canonical = false);

}  // namespace bati

#endif  // BATI_WHATIF_TRACE_IO_H_
