#ifndef BATI_WHATIF_WHATIF_EXECUTOR_H_
#define BATI_WHATIF_WHATIF_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "optimizer/what_if.h"
#include "whatif/budget_meter.h"

namespace bati {

/// The execution layer of the cost engine: wraps the what-if optimizer and
/// owns configuration materialization, simulated-latency accounting (the
/// paper's Figure 2 "time spent on what-if calls"), and real wall-clock
/// accounting for observability.
///
/// The executor never meters anything itself — callers (the CostService
/// façade) charge the BudgetMeter *before* a cell reaches the executor.
/// That contract is what keeps the batched EvaluateCells() path, which fans
/// independent cells out over a lazily started thread pool, inside the
/// budget: charging is sequential and deterministic, only the pure
/// optimizer invocations run concurrently.
class WhatIfExecutor {
 public:
  /// A (query, configuration) cell to evaluate. `config` must outlive the
  /// EvaluateCells() call.
  struct CellRef {
    int query_id = -1;
    const Config* config = nullptr;
  };

  /// `optimizer`, `workload`, `candidates` must outlive the executor.
  WhatIfExecutor(const WhatIfOptimizer* optimizer, const Workload* workload,
                 const std::vector<Index>* candidates);
  ~WhatIfExecutor();

  WhatIfExecutor(const WhatIfExecutor&) = delete;
  WhatIfExecutor& operator=(const WhatIfExecutor&) = delete;

  /// Materializes a configuration into concrete index definitions.
  std::vector<Index> Materialize(const Config& config) const;

  /// Evaluates one cell given the configuration's member positions — the
  /// caller already computed ToIndices(), so the index list is materialized
  /// exactly once. Accumulates simulated and wall-clock seconds.
  double EvaluateCell(int query_id, const std::vector<size_t>& positions);

  /// Evaluates a batch of independent cells, returning costs in input
  /// order. Batches of kParallelThreshold cells or more run on the thread
  /// pool; smaller ones inline. Results and every accumulated statistic are
  /// identical to evaluating the cells sequentially (the optimizer is pure
  /// and simulated seconds are summed in input order).
  std::vector<double> EvaluateCells(const std::vector<CellRef>& cells);

  /// Uncounted ground-truth cost of one query (evaluation only).
  double TrueCost(const Query& query,
                  const std::vector<Index>& materialized) const;

  /// Simulated seconds spent inside counted what-if calls so far.
  double simulated_seconds() const { return simulated_seconds_; }

  /// Real wall-clock seconds spent inside the executor so far.
  double wall_seconds() const { return wall_seconds_; }

  /// Cells that went through the batched EvaluateCells() entry point.
  int64_t batched_cells() const { return batched_cells_; }

  /// Minimum batch size that engages the thread pool.
  static constexpr size_t kParallelThreshold = 16;

 private:
  // One batch, self-contained. Workers hold the job through a shared_ptr,
  // so a worker that stalls between observing a job and claiming a ticket
  // can only ever drain *this* job's counter — by the time the batch has
  // completed the counter is exhausted, so a stale worker claims nothing,
  // touches no results, and cannot disturb a later batch. Every distinct
  // configuration in the batch is materialized exactly once, up front.
  struct Job {
    struct Cell {
      int query_id = -1;
      size_t config_idx = 0;  // into `materialized`
    };
    std::vector<Cell> cells;
    std::vector<std::vector<Index>> materialized;
    std::vector<double> results;
    std::atomic<size_t> next{0};
    size_t done = 0;  // guarded by the executor's mu_
  };

  std::shared_ptr<Job> BuildJob(const std::vector<CellRef>& cells) const;
  double CellCost(const Job& job, size_t i) const;
  void EnsurePool();
  void WorkerLoop();

  const WhatIfOptimizer* optimizer_;
  const Workload* workload_;
  const std::vector<Index>* candidates_;
  double simulated_seconds_ = 0.0;
  double wall_seconds_ = 0.0;
  int64_t batched_cells_ = 0;

  // Thread pool state. The current job is published under `mu_`; workers
  // copy the shared_ptr and then claim cell indices from the job's own
  // atomic counter, reporting completion through the job's `done`.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;      // guarded by mu_
  uint64_t job_generation_ = 0;   // guarded by mu_
  bool shutdown_ = false;         // guarded by mu_
};

}  // namespace bati

#endif  // BATI_WHATIF_WHATIF_EXECUTOR_H_
