#ifndef BATI_WHATIF_WHATIF_EXECUTOR_H_
#define BATI_WHATIF_WHATIF_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "faults/fault_injector.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "optimizer/what_if.h"
#include "whatif/budget_meter.h"

namespace bati {

/// How the executor retries a what-if call that an injected fault made
/// fail. Backoff and timeout run on the *simulated* clock (the paper's
/// Figure 2 "time spent on what-if calls"): failed attempts and the waits
/// between them burn simulated seconds but never real wall time, and —
/// crucially for the budget semantics — a cell is charged against the
/// what-if budget only when an attempt finally succeeds.
struct RetryPolicy {
  /// Total attempts per cell (first try included). Must be >= 1.
  int max_attempts = 4;
  /// Simulated backoff before the second attempt; doubles (capped) after.
  double initial_backoff_seconds = 0.25;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 4.0;
  /// Per-attempt timeout on the simulated clock: an attempt whose simulated
  /// latency exceeds this fails with DeadlineExceeded after burning exactly
  /// the timeout. 0 disables the timeout.
  double call_timeout_seconds = 8.0;

  /// Simulated backoff after failed attempt `attempt` (1-based).
  double BackoffSeconds(int attempt) const;
  /// One-line rendering, stamped into run identities.
  std::string ToIdentityString() const;
};

/// The final result of evaluating one cell through the retry loop.
struct CellOutcome {
  /// Ok, Unavailable (transient or sticky fault on the last attempt), or
  /// DeadlineExceeded (last attempt timed out).
  Status status;
  /// The what-if cost; meaningful only when status.ok().
  double cost = 0.0;
  /// Simulated seconds burned by every attempt (latency or timeout) plus
  /// the backoffs between them.
  double sim_seconds = 0.0;
  /// Attempts made (1 when the first try succeeded).
  int attempts = 0;
  /// Failed attempts by kind; attempts == transient + sticky + timeouts
  /// + (status.ok() ? 1 : 0).
  int transient_faults = 0;
  int sticky_faults = 0;
  int timeout_faults = 0;
};

/// The execution layer of the cost engine: wraps the what-if optimizer and
/// owns configuration materialization, simulated-latency accounting (the
/// paper's Figure 2 "time spent on what-if calls"), real wall-clock
/// accounting for observability, and — when a FaultInjector is configured —
/// the retry/backoff loop around every optimizer invocation.
///
/// The executor never meters anything itself — callers (the CostService
/// façade) charge the BudgetMeter around the executor: *before* dispatch on
/// the fault-free path, and *after* a successful outcome on the
/// fault-injected path (failed cells are never charged). Either way the
/// batched EvaluateCells()/EvaluateCellsWithRetry() paths, which fan
/// independent cells out over a lazily started thread pool, stay inside the
/// budget: charging is sequential and deterministic, only the pure
/// optimizer invocations (and the pure per-cell fault schedule) run
/// concurrently.
class WhatIfExecutor {
 public:
  /// A (query, configuration) cell to evaluate. `config` must outlive the
  /// EvaluateCells() call.
  struct CellRef {
    int query_id = -1;
    const Config* config = nullptr;
  };

  /// `optimizer`, `workload`, `candidates` must outlive the executor.
  WhatIfExecutor(const WhatIfOptimizer* optimizer, const Workload* workload,
                 const std::vector<Index>* candidates);
  ~WhatIfExecutor();

  WhatIfExecutor(const WhatIfExecutor&) = delete;
  WhatIfExecutor& operator=(const WhatIfExecutor&) = delete;

  /// Arms fault injection: every *WithRetry evaluation consults `injector`
  /// (which must outlive the executor) and retries per `policy`. Must be
  /// called before the first evaluation.
  void ConfigureFaults(const FaultInjector* injector,
                       const RetryPolicy& policy);

  /// Fixes the thread-pool size for batched evaluation. 0 (the default)
  /// picks min(hardware_concurrency, 8). Must be called before the first
  /// batched evaluation — the pool is started lazily and never resized.
  /// Pool size never affects results (cells are pure and accounting is
  /// input-ordered), only wall-clock speed.
  void SetPoolSize(size_t n) { pool_size_ = n; }

  /// Wires the executor's observability instruments (either argument may be
  /// null; both must outlive the executor). Evaluations then record per-cell
  /// and per-batch latency histograms and span/retry trace events — pure
  /// observation behind null-pointer guards, so an unwired executor runs the
  /// exact pre-observability code. Must be called before the first
  /// evaluation, like ConfigureFaults().
  void SetObservability(MetricsRegistry* metrics, Tracer* tracer);

  /// Materializes a configuration into concrete index definitions.
  std::vector<Index> Materialize(const Config& config) const;

  /// Evaluates one cell given the configuration's member positions — the
  /// caller already computed ToIndices(), so the index list is materialized
  /// exactly once. Accumulates simulated and wall-clock seconds. Fault-free
  /// path: never consults the injector.
  double EvaluateCell(int query_id, const std::vector<size_t>& positions);

  /// Evaluates a batch of independent cells, returning costs in input
  /// order. Batches of kParallelThreshold cells or more run on the thread
  /// pool; smaller ones inline. Results and every accumulated statistic are
  /// identical to evaluating the cells sequentially (the optimizer is pure
  /// and simulated seconds are summed in input order). Fault-free path.
  std::vector<double> EvaluateCells(const std::vector<CellRef>& cells);

  /// Evaluates one cell through the fault-injected retry loop.
  /// `config_hash` is Config::Hash() of the cell's configuration (the fault
  /// schedule's cell key). Burns the outcome's simulated seconds; never
  /// touches the budget.
  CellOutcome EvaluateCellWithRetry(int query_id,
                                    const std::vector<size_t>& positions,
                                    uint64_t config_hash);

  /// Batched equivalent of EvaluateCellWithRetry, concurrent for batches of
  /// kParallelThreshold cells or more. Because the fault schedule is a pure
  /// per-(cell, attempt) function, outcomes — costs, failures, attempt
  /// counts, and per-cell simulated seconds — are bit-identical to the
  /// sequential loop regardless of thread interleaving; all accounting is
  /// accumulated in input order.
  std::vector<CellOutcome> EvaluateCellsWithRetry(
      const std::vector<CellRef>& cells);

  /// Uncounted ground-truth cost of one query (evaluation only).
  double TrueCost(const Query& query,
                  const std::vector<Index>& materialized) const;

  /// Simulated seconds spent inside counted what-if calls so far.
  double simulated_seconds() const { return simulated_seconds_; }

  /// Credits simulated seconds recorded by a checkpoint's event journal
  /// while the cost engine replays a resumed run (the optimizer is not
  /// re-invoked, so the executor would otherwise lose the prefix's time).
  void AccumulateReplaySimSeconds(double seconds) {
    simulated_seconds_ += seconds;
  }

  /// Restores the fault counters recorded in a checkpoint. Replay never
  /// consults the fault injector, so a resumed run re-seeds the counters
  /// here and then accumulates live faults on top.
  void RestoreFaultCounters(int64_t transient, int64_t sticky,
                            int64_t timeouts, int64_t retries) {
    transient_faults_ = transient;
    sticky_faults_ = sticky;
    timeout_faults_ = timeouts;
    retry_attempts_ = retries;
  }

  /// Real wall-clock seconds spent inside the executor so far.
  double wall_seconds() const { return wall_seconds_; }

  /// Cells that went through a batched entry point.
  int64_t batched_cells() const { return batched_cells_; }

  /// Retry-loop observability: failed attempts by kind, and retries (every
  /// attempt after a cell's first).
  int64_t transient_faults() const { return transient_faults_; }
  int64_t sticky_faults() const { return sticky_faults_; }
  int64_t timeout_faults() const { return timeout_faults_; }
  int64_t retry_attempts() const { return retry_attempts_; }

  /// Minimum batch size that engages the thread pool.
  static constexpr size_t kParallelThreshold = 16;

  /// Per-cell wall timings and per-call trace spans are recorded for one
  /// cell in every (kObsSampleMask + 1): the clock reads and the tracer's
  /// mutex would otherwise dominate the micro-second simulated what-if call
  /// itself. Sampling is by an observation-only ticket counter, so it can
  /// never feed back into the run. Simulated-clock histograms and batch- and
  /// round-level spans are not sampled — they stay complete.
  static constexpr uint64_t kObsSampleMask = 15;

 private:
  // One batch, self-contained. Workers hold the job through a shared_ptr,
  // so a worker that stalls between observing a job and claiming a ticket
  // can only ever drain *this* job's counter — by the time the batch has
  // completed the counter is exhausted, so a stale worker claims nothing,
  // touches no results, and cannot disturb a later batch. Every distinct
  // configuration in the batch is materialized exactly once, up front.
  struct Job {
    /// Cells claimed per ticket: 8 doubles = one cache line of results per
    /// claim, and an 8x cut in ticket contention. Small enough that the
    /// worst-case imbalance (one worker stuck with a full chunk) is a few
    /// microseconds of what-if calls.
    static constexpr size_t kClaimChunk = 8;
    struct Cell {
      int query_id = -1;
      size_t config_idx = 0;  // into `materialized`
    };
    std::vector<Cell> cells;
    std::vector<std::vector<Index>> materialized;
    std::vector<uint64_t> config_hashes;  // parallel to `materialized`
    std::vector<double> results;
    /// Retry-loop outcomes; sized (and written) only when `with_retry`.
    std::vector<CellOutcome> outcomes;
    bool with_retry = false;
    std::atomic<size_t> next{0};
    /// Cells completed; lock-free so workers never take the executor mutex
    /// on the completion path (only the last finisher does, to notify).
    std::atomic<size_t> done{0};
  };

  std::shared_ptr<Job> BuildJob(const std::vector<CellRef>& cells) const;
  double CellCost(const Job& job, size_t i) const;
  /// CellCost plus the per-cell wall-latency histogram when one is wired
  /// (worker threads record through relaxed atomics, so this is pool-safe).
  double ObservedCellCost(const Job& job, size_t i) const;
  /// The retry loop for one cell: a pure function of the cell and the fault
  /// schedule (plus the stateless optimizer), safe to run on any worker.
  CellOutcome RunCellWithRetry(int query_id,
                               const std::vector<Index>& materialized,
                               uint64_t config_hash) const;
  void RunJob(const std::shared_ptr<Job>& job);
  /// Merges one outcome's counters into the executor totals (coordinator
  /// thread only, input order).
  void AccountOutcome(const CellOutcome& outcome);
  /// Batch-level observability (coordinator thread only): size/latency
  /// histograms plus a Complete span covering the whole batch.
  void ObserveBatch(const char* name, size_t cells, double wall,
                    double sim_start);
  void EnsurePool();
  void WorkerLoop();

  const WhatIfOptimizer* optimizer_;
  const Workload* workload_;
  const std::vector<Index>* candidates_;
  const FaultInjector* injector_ = nullptr;
  RetryPolicy retry_;
  // Observability instruments; all null (and every guard dead) until
  // SetObservability() wires them.
  Tracer* tracer_ = nullptr;
  LatencyHistogram* obs_cell_wall_us_ = nullptr;
  LatencyHistogram* obs_cell_sim_s_ = nullptr;
  LatencyHistogram* obs_batch_cells_ = nullptr;
  LatencyHistogram* obs_batch_wall_us_ = nullptr;
  LatencyHistogram* obs_retry_attempts_ = nullptr;
  /// Sampling ticket for per-cell wall timings/spans; mutable because cell
  /// evaluation is const on the worker path. Never read by engine logic.
  mutable std::atomic<uint64_t> obs_ticket_{0};
  double simulated_seconds_ = 0.0;
  double wall_seconds_ = 0.0;
  int64_t batched_cells_ = 0;
  int64_t transient_faults_ = 0;
  int64_t sticky_faults_ = 0;
  int64_t timeout_faults_ = 0;
  int64_t retry_attempts_ = 0;

  /// Fixed pool size (0 = pick from hardware concurrency); see SetPoolSize.
  size_t pool_size_ = 0;

  // Thread pool state. The current job is published under `mu_`; workers
  // copy the shared_ptr and then claim cell indices from the job's own
  // atomic counter, reporting completion through the job's `done`.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;  // guarded by mu_
  /// Atomic so idle workers can spin-poll for the next batch (and the
  /// coordinator for completion) without touching mu_: a what-if batch is
  /// worth ~100us of work, which a futex sleep/wake cycle per worker would
  /// otherwise eat whole. Writes still happen with mu_ held, keeping the
  /// condition-variable protocol race-free.
  std::atomic<uint64_t> job_generation_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace bati

#endif  // BATI_WHATIF_WHATIF_EXECUTOR_H_
