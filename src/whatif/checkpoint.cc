#include "whatif/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/crc32.h"
#include "common/file_util.h"

namespace bati {

void AppendHexDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", value);
  out->append(buf);
}

bool ParseHexDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0';
}

namespace {

// v2 added the `checksum <crc32> <bytes>` line right after the magic: the
// whole body (everything following that line, "identity" through "end") is
// length- and CRC-guarded, so a truncated or bit-flipped checkpoint is
// rejected with a clear Status instead of silently replaying a partial
// journal prefix. v1 files (no checksum) are rejected as unsupported; a
// resuming caller falls back to a fresh start.
constexpr char kMagic[] = "bati-checkpoint v2";
constexpr char kMagicV1[] = "bati-checkpoint v1";

bool ParseI64(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseInt(const std::string& token, int* out) {
  int64_t v = 0;
  if (!ParseI64(token, &v)) return false;
  if (v < static_cast<int64_t>(INT32_MIN) ||
      v > static_cast<int64_t>(INT32_MAX)) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed checkpoint: ") + what);
}

}  // namespace

std::string SerializeCheckpoint(const EngineCheckpoint& ckpt) {
  std::string out;
  out.reserve(160 + ckpt.events.size() * 48);
  // The guarded body is assembled first; the header's checksum line is a
  // pure function of its bytes.
  // The identity may contain spaces; it owns the rest of its line.
  out.append("identity ");
  out.append(ckpt.identity);
  out.push_back('\n');
  char buf[256];
  std::snprintf(buf, sizeof(buf), "shape %d %d\n", ckpt.num_queries,
                ckpt.num_candidates);
  out.append(buf);
  std::snprintf(buf, sizeof(buf), "budget %" PRId64 "\n", ckpt.budget);
  out.append(buf);
  std::snprintf(buf, sizeof(buf), "round %d\n", ckpt.round);
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                "counters %" PRId64 " %" PRId64 " %" PRId64 " %" PRId64 "\n",
                ckpt.calls_made, ckpt.cache_hits, ckpt.degraded_cells,
                ckpt.batched_cells);
  out.append(buf);
  out.append("sim ");
  AppendHexDouble(&out, ckpt.sim_seconds);
  out.push_back('\n');
  std::snprintf(buf, sizeof(buf),
                "faults %" PRId64 " %" PRId64 " %" PRId64 " %" PRId64 "\n",
                ckpt.fault_transient, ckpt.fault_sticky, ckpt.fault_timeouts,
                ckpt.retry_attempts);
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                "governor %" PRId64 " %" PRId64 " %" PRId64 " %d %" PRId64
                "\n",
                ckpt.governor_skipped, ckpt.governor_banked,
                ckpt.governor_reallocated, ckpt.governor_stop_round,
                ckpt.governor_stop_calls);
  out.append(buf);
  std::snprintf(buf, sizeof(buf), "events %zu\n", ckpt.events.size());
  out.append(buf);
  for (const CheckpointEvent& e : ckpt.events) {
    out.push_back(e.charged ? 'C' : 'D');
    std::snprintf(buf, sizeof(buf), " %d %d ", e.query_id, e.round);
    out.append(buf);
    AppendHexDouble(&out, e.sim_seconds);
    if (e.charged) {
      out.push_back(' ');
      AppendHexDouble(&out, e.cost);
    }
    for (size_t pos = 0; pos < e.positions.size(); ++pos) {
      std::snprintf(buf, sizeof(buf), "%s%zu", pos == 0 ? " " : ",",
                    e.positions[pos]);
      out.append(buf);
    }
    out.push_back('\n');
  }
  out.append("end\n");
  char header[96];
  std::snprintf(header, sizeof(header), "%s\nchecksum %s %zu\n", kMagic,
                Crc32Hex(Crc32(out)).c_str(), out.size());
  return header + out;
}

StatusOr<EngineCheckpoint> ParseCheckpoint(const std::string& text) {
  // Header: magic, then the checksum line guarding everything after it.
  const size_t magic_end = text.find('\n');
  if (magic_end == std::string::npos) {
    return Malformed("missing or unsupported header");
  }
  const std::string magic = text.substr(0, magic_end);
  if (magic != kMagic) {
    if (magic == kMagicV1) {
      return Malformed(
          "unsupported version v1 (no checksum); re-run to write a fresh v2 "
          "checkpoint");
    }
    return Malformed("missing or unsupported header");
  }
  const size_t checksum_end = text.find('\n', magic_end + 1);
  if (checksum_end == std::string::npos) {
    return Malformed("truncated before checksum line");
  }
  {
    const std::vector<std::string> toks = SplitTokens(
        text.substr(magic_end + 1, checksum_end - magic_end - 1));
    uint32_t declared_crc = 0;
    int64_t declared_size = 0;
    if (toks.size() != 3 || toks[0] != "checksum" ||
        !ParseCrc32Hex(toks[1], &declared_crc) ||
        !ParseI64(toks[2], &declared_size) || declared_size < 0) {
      return Malformed("bad checksum line");
    }
    const size_t body_size = text.size() - (checksum_end + 1);
    if (static_cast<int64_t>(body_size) != declared_size) {
      return Malformed("body size mismatch (truncated or padded file)");
    }
    if (Crc32(text.data() + checksum_end + 1, body_size) != declared_crc) {
      return Malformed("checksum mismatch (corrupted file)");
    }
  }
  std::istringstream in(text.substr(checksum_end + 1));
  std::string line;
  EngineCheckpoint ckpt;
  if (!std::getline(in, line) || line.rfind("identity ", 0) != 0) {
    return Malformed("missing identity line");
  }
  ckpt.identity = line.substr(std::strlen("identity "));

  auto next_tokens = [&](const char* keyword, size_t count,
                         std::vector<std::string>* toks) -> bool {
    if (!std::getline(in, line)) return false;
    *toks = SplitTokens(line);
    return toks->size() == count + 1 && (*toks)[0] == keyword;
  };

  std::vector<std::string> toks;
  if (!next_tokens("shape", 2, &toks) ||
      !ParseInt(toks[1], &ckpt.num_queries) ||
      !ParseInt(toks[2], &ckpt.num_candidates) || ckpt.num_queries <= 0 ||
      ckpt.num_candidates <= 0) {
    return Malformed("bad shape line");
  }
  if (!next_tokens("budget", 1, &toks) || !ParseI64(toks[1], &ckpt.budget) ||
      ckpt.budget < 0) {
    return Malformed("bad budget line");
  }
  if (!next_tokens("round", 1, &toks) || !ParseInt(toks[1], &ckpt.round) ||
      ckpt.round < 1) {
    return Malformed("bad round line");
  }
  if (!next_tokens("counters", 4, &toks) ||
      !ParseI64(toks[1], &ckpt.calls_made) ||
      !ParseI64(toks[2], &ckpt.cache_hits) ||
      !ParseI64(toks[3], &ckpt.degraded_cells) ||
      !ParseI64(toks[4], &ckpt.batched_cells) || ckpt.calls_made < 0 ||
      ckpt.cache_hits < 0 || ckpt.degraded_cells < 0 ||
      ckpt.batched_cells < 0) {
    return Malformed("bad counters line");
  }
  if (!next_tokens("sim", 1, &toks) ||
      !ParseHexDouble(toks[1], &ckpt.sim_seconds) || ckpt.sim_seconds < 0.0) {
    return Malformed("bad sim line");
  }
  if (!next_tokens("faults", 4, &toks) ||
      !ParseI64(toks[1], &ckpt.fault_transient) ||
      !ParseI64(toks[2], &ckpt.fault_sticky) ||
      !ParseI64(toks[3], &ckpt.fault_timeouts) ||
      !ParseI64(toks[4], &ckpt.retry_attempts) || ckpt.fault_transient < 0 ||
      ckpt.fault_sticky < 0 || ckpt.fault_timeouts < 0 ||
      ckpt.retry_attempts < 0) {
    return Malformed("bad faults line");
  }
  if (!next_tokens("governor", 5, &toks) ||
      !ParseI64(toks[1], &ckpt.governor_skipped) ||
      !ParseI64(toks[2], &ckpt.governor_banked) ||
      !ParseI64(toks[3], &ckpt.governor_reallocated) ||
      !ParseInt(toks[4], &ckpt.governor_stop_round) ||
      !ParseI64(toks[5], &ckpt.governor_stop_calls)) {
    return Malformed("bad governor line");
  }
  int64_t num_events = 0;
  if (!next_tokens("events", 1, &toks) || !ParseI64(toks[1], &num_events) ||
      num_events < 0) {
    return Malformed("bad events line");
  }
  ckpt.events.reserve(static_cast<size_t>(num_events));
  int64_t charged_count = 0;
  double sim_sum = 0.0;
  int prev_round = 0;
  for (int64_t i = 0; i < num_events; ++i) {
    if (!std::getline(in, line)) return Malformed("truncated event list");
    toks = SplitTokens(line);
    CheckpointEvent e;
    if (toks.empty() || (toks[0] != "C" && toks[0] != "D")) {
      return Malformed("bad event kind");
    }
    e.charged = toks[0] == "C";
    const size_t expect = e.charged ? 6 : 5;
    if (toks.size() != expect || !ParseInt(toks[1], &e.query_id) ||
        !ParseInt(toks[2], &e.round) ||
        !ParseHexDouble(toks[3], &e.sim_seconds)) {
      return Malformed("bad event line");
    }
    size_t pos_tok = 4;
    if (e.charged) {
      if (!ParseHexDouble(toks[4], &e.cost)) return Malformed("bad event cost");
      pos_tok = 5;
    }
    // Comma-separated member positions, strictly ascending.
    const std::string& plist = toks[pos_tok];
    size_t start = 0;
    while (start < plist.size()) {
      size_t comma = plist.find(',', start);
      if (comma == std::string::npos) comma = plist.size();
      int64_t p = 0;
      if (!ParseI64(plist.substr(start, comma - start), &p) || p < 0 ||
          p >= ckpt.num_candidates) {
        return Malformed("event position out of range");
      }
      if (!e.positions.empty() &&
          static_cast<size_t>(p) <= e.positions.back()) {
        return Malformed("event positions not ascending");
      }
      e.positions.push_back(static_cast<size_t>(p));
      start = comma + 1;
    }
    if (e.positions.empty()) return Malformed("event with empty configuration");
    if (e.query_id < 0 || e.query_id >= ckpt.num_queries) {
      return Malformed("event query out of range");
    }
    if (e.round < prev_round || e.round >= ckpt.round) {
      return Malformed("event round out of order");
    }
    prev_round = e.round;
    if (e.sim_seconds < 0.0) return Malformed("negative event time");
    if (e.charged) ++charged_count;
    sim_sum += e.sim_seconds;
    ckpt.events.push_back(std::move(e));
  }
  if (!std::getline(in, line) || line != "end") {
    return Malformed("missing end marker");
  }
  if (charged_count != ckpt.calls_made) {
    return Malformed("charged events disagree with calls_made");
  }
  if (static_cast<int64_t>(ckpt.events.size()) - charged_count !=
      ckpt.degraded_cells) {
    return Malformed("degraded events disagree with degraded counter");
  }
  if (ckpt.calls_made > ckpt.budget) {
    return Malformed("calls_made exceeds budget");
  }
  // Summed in journal order, the event times must rebuild the recorded
  // simulated clock bit-exactly — the same order replay will use.
  if (sim_sum != ckpt.sim_seconds) {
    return Malformed("event times disagree with simulated clock");
  }
  return ckpt;
}

Status SaveCheckpoint(const EngineCheckpoint& ckpt, const std::string& path) {
  return AtomicWriteFile(path, SerializeCheckpoint(ckpt));
}

StatusOr<EngineCheckpoint> LoadCheckpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open checkpoint: " + path);
  }
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("error reading checkpoint: " + path);
  }
  return ParseCheckpoint(text);
}

}  // namespace bati
