#include "whatif/whatif_executor.h"

#include <algorithm>
#include <chrono>

#include "common/macros.h"

namespace bati {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WhatIfExecutor::WhatIfExecutor(const WhatIfOptimizer* optimizer,
                               const Workload* workload,
                               const std::vector<Index>* candidates)
    : optimizer_(optimizer), workload_(workload), candidates_(candidates) {
  BATI_CHECK(optimizer_ != nullptr);
  BATI_CHECK(workload_ != nullptr);
  BATI_CHECK(candidates_ != nullptr);
}

WhatIfExecutor::~WhatIfExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::vector<Index> WhatIfExecutor::Materialize(const Config& config) const {
  BATI_CHECK(config.universe_size() == candidates_->size());
  std::vector<Index> out;
  std::vector<size_t> positions = config.ToIndices();
  out.reserve(positions.size());
  for (size_t pos : positions) {
    out.push_back((*candidates_)[pos]);
  }
  return out;
}

double WhatIfExecutor::CellCost(const CellRef& cell) const {
  const Query& query =
      workload_->queries[static_cast<size_t>(cell.query_id)];
  return optimizer_->Cost(query, Materialize(*cell.config));
}

double WhatIfExecutor::EvaluateCell(int query_id,
                                    const std::vector<size_t>& positions) {
  const double start = NowSeconds();
  std::vector<Index> materialized;
  materialized.reserve(positions.size());
  for (size_t pos : positions) {
    materialized.push_back((*candidates_)[pos]);
  }
  const Query& query = workload_->queries[static_cast<size_t>(query_id)];
  double cost = optimizer_->Cost(query, materialized);
  simulated_seconds_ += optimizer_->EstimateCallSeconds(query);
  wall_seconds_ += NowSeconds() - start;
  return cost;
}

std::vector<double> WhatIfExecutor::EvaluateCells(
    const std::vector<CellRef>& cells) {
  const double start = NowSeconds();
  std::vector<double> out(cells.size(), 0.0);
  if (cells.size() >= kParallelThreshold) {
    EnsurePool();
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cells_ = &cells;
      job_out_ = &out;
      next_cell_.store(0, std::memory_order_relaxed);
      cells_done_ = 0;
      ++job_generation_;
      work_cv_.notify_all();
      done_cv_.wait(lock, [&] { return cells_done_ == cells.size(); });
      job_cells_ = nullptr;
      job_out_ = nullptr;
    }
  } else {
    for (size_t i = 0; i < cells.size(); ++i) out[i] = CellCost(cells[i]);
  }
  // Simulated latency is summed in input order so batched accounting is
  // bit-identical to the sequential path.
  for (const CellRef& cell : cells) {
    simulated_seconds_ += optimizer_->EstimateCallSeconds(
        workload_->queries[static_cast<size_t>(cell.query_id)]);
  }
  batched_cells_ += static_cast<int64_t>(cells.size());
  wall_seconds_ += NowSeconds() - start;
  return out;
}

void WhatIfExecutor::EnsurePool() {
  if (!workers_.empty()) return;
  unsigned hw = std::thread::hardware_concurrency();
  size_t n = std::min<size_t>(hw == 0 ? 2 : hw, 8);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void WhatIfExecutor::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    const std::vector<CellRef>* cells = nullptr;
    std::vector<double>* out = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (job_cells_ != nullptr && job_generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      cells = job_cells_;
      out = job_out_;
    }
    size_t done_here = 0;
    while (true) {
      size_t i = next_cell_.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells->size()) break;
      (*out)[i] = CellCost((*cells)[i]);
      ++done_here;
    }
    if (done_here > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      cells_done_ += done_here;
      if (cells_done_ == cells->size()) done_cv_.notify_all();
    }
  }
}

double WhatIfExecutor::TrueCost(
    const Query& query, const std::vector<Index>& materialized) const {
  return optimizer_->Cost(query, materialized);
}

}  // namespace bati
