#include "whatif/whatif_executor.h"

#include <algorithm>
#include <chrono>

#include "common/macros.h"

namespace bati {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WhatIfExecutor::WhatIfExecutor(const WhatIfOptimizer* optimizer,
                               const Workload* workload,
                               const std::vector<Index>* candidates)
    : optimizer_(optimizer), workload_(workload), candidates_(candidates) {
  BATI_CHECK(optimizer_ != nullptr);
  BATI_CHECK(workload_ != nullptr);
  BATI_CHECK(candidates_ != nullptr);
}

WhatIfExecutor::~WhatIfExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::vector<Index> WhatIfExecutor::Materialize(const Config& config) const {
  BATI_CHECK(config.universe_size() == candidates_->size());
  std::vector<Index> out;
  std::vector<size_t> positions = config.ToIndices();
  out.reserve(positions.size());
  for (size_t pos : positions) {
    out.push_back((*candidates_)[pos]);
  }
  return out;
}

std::shared_ptr<WhatIfExecutor::Job> WhatIfExecutor::BuildJob(
    const std::vector<CellRef>& cells) const {
  auto job = std::make_shared<Job>();
  job->cells.reserve(cells.size());
  job->results.assign(cells.size(), 0.0);
  // Materialize each distinct configuration once per batch (in practice all
  // cells share a single one); distinctness is by pointer, matching how
  // CostService builds the batch.
  std::vector<const Config*> seen;
  for (const CellRef& cell : cells) {
    size_t idx = seen.size();
    for (size_t j = 0; j < seen.size(); ++j) {
      if (seen[j] == cell.config) {
        idx = j;
        break;
      }
    }
    if (idx == seen.size()) {
      seen.push_back(cell.config);
      job->materialized.push_back(Materialize(*cell.config));
    }
    job->cells.push_back(Job::Cell{cell.query_id, idx});
  }
  return job;
}

double WhatIfExecutor::CellCost(const Job& job, size_t i) const {
  const Job::Cell& cell = job.cells[i];
  const Query& query =
      workload_->queries[static_cast<size_t>(cell.query_id)];
  return optimizer_->Cost(query, job.materialized[cell.config_idx]);
}

double WhatIfExecutor::EvaluateCell(int query_id,
                                    const std::vector<size_t>& positions) {
  const double start = NowSeconds();
  std::vector<Index> materialized;
  materialized.reserve(positions.size());
  for (size_t pos : positions) {
    materialized.push_back((*candidates_)[pos]);
  }
  const Query& query = workload_->queries[static_cast<size_t>(query_id)];
  double cost = optimizer_->Cost(query, materialized);
  simulated_seconds_ += optimizer_->EstimateCallSeconds(query);
  wall_seconds_ += NowSeconds() - start;
  return cost;
}

std::vector<double> WhatIfExecutor::EvaluateCells(
    const std::vector<CellRef>& cells) {
  const double start = NowSeconds();
  std::vector<double> out(cells.size(), 0.0);
  if (!cells.empty()) {
    std::shared_ptr<Job> job = BuildJob(cells);
    if (cells.size() >= kParallelThreshold) {
      EnsurePool();
      std::unique_lock<std::mutex> lock(mu_);
      job_ = job;
      ++job_generation_;
      work_cv_.notify_all();
      done_cv_.wait(lock, [&] { return job->done == job->cells.size(); });
      job_.reset();
    } else {
      for (size_t i = 0; i < cells.size(); ++i) {
        job->results[i] = CellCost(*job, i);
      }
    }
    out = std::move(job->results);
  }
  // Simulated latency is summed in input order so batched accounting is
  // bit-identical to the sequential path.
  for (const CellRef& cell : cells) {
    simulated_seconds_ += optimizer_->EstimateCallSeconds(
        workload_->queries[static_cast<size_t>(cell.query_id)]);
  }
  batched_cells_ += static_cast<int64_t>(cells.size());
  wall_seconds_ += NowSeconds() - start;
  return out;
}

void WhatIfExecutor::EnsurePool() {
  if (!workers_.empty()) return;
  unsigned hw = std::thread::hardware_concurrency();
  size_t n = std::min<size_t>(hw == 0 ? 2 : hw, 8);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void WhatIfExecutor::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (job_ != nullptr && job_generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      job = job_;
    }
    // The shared_ptr keeps the job alive, and its ticket counter belongs to
    // this job alone: once the batch has finished, every remaining claim
    // overruns cells.size() and is a no-op, so arriving late here is safe.
    size_t done_here = 0;
    while (true) {
      size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job->cells.size()) break;
      job->results[i] = CellCost(*job, i);
      ++done_here;
    }
    if (done_here > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      job->done += done_here;
      if (job->done == job->cells.size()) done_cv_.notify_all();
    }
  }
}

double WhatIfExecutor::TrueCost(
    const Query& query, const std::vector<Index>& materialized) const {
  return optimizer_->Cost(query, materialized);
}

}  // namespace bati
