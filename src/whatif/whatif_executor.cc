#include "whatif/whatif_executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/macros.h"

namespace bati {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Bounded spin budgets (iterations of one relaxed atomic load each, roughly
// 1-2ns per iteration). A batch is worth ~30-150us of work and batches arrive
// back to back separated only by the service's serial accounting phase, so a
// worker that sleeps on the condition variable pays a futex wake (~10-50us)
// per batch — comparable to its whole share of the work. Spinning across the
// gap keeps workers hot; the condition variable remains as the fallback so
// idle pools still park. On a single-core machine spinning only steals the
// timeslice from whoever holds the work, so the budget drops to zero and
// every wait goes straight to the condition variable.
constexpr int kWorkerSpinIters = 60000;      // ~100us
constexpr int kCoordinatorSpinIters = 200000;  // ~300us, covers a full batch

int SpinBudget(int iters) {
  static const bool multicore = std::thread::hardware_concurrency() > 1;
  return multicore ? iters : 0;
}

}  // namespace

double RetryPolicy::BackoffSeconds(int attempt) const {
  double backoff = initial_backoff_seconds;
  for (int i = 1; i < attempt; ++i) backoff *= backoff_multiplier;
  return std::min(backoff, max_backoff_seconds);
}

std::string RetryPolicy::ToIdentityString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "retry=attempts:%d,backoff:%g*%g<=%g,timeout:%g",
                max_attempts, initial_backoff_seconds, backoff_multiplier,
                max_backoff_seconds, call_timeout_seconds);
  return buf;
}

WhatIfExecutor::WhatIfExecutor(const WhatIfOptimizer* optimizer,
                               const Workload* workload,
                               const std::vector<Index>* candidates)
    : optimizer_(optimizer), workload_(workload), candidates_(candidates) {
  BATI_CHECK(optimizer_ != nullptr);
  BATI_CHECK(workload_ != nullptr);
  BATI_CHECK(candidates_ != nullptr);
}

WhatIfExecutor::~WhatIfExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WhatIfExecutor::ConfigureFaults(const FaultInjector* injector,
                                     const RetryPolicy& policy) {
  BATI_CHECK(policy.max_attempts >= 1);
  BATI_CHECK(policy.initial_backoff_seconds >= 0.0);
  BATI_CHECK(policy.backoff_multiplier >= 1.0);
  BATI_CHECK(policy.call_timeout_seconds >= 0.0);
  injector_ = injector;
  retry_ = policy;
}

void WhatIfExecutor::SetObservability(MetricsRegistry* metrics,
                                      Tracer* tracer) {
  tracer_ = tracer;
  if (metrics == nullptr) return;
  // Instrument pointers are resolved once here so the hot path never takes
  // the registry mutex; recording is relaxed-atomic only.
  obs_cell_wall_us_ = metrics->GetHistogram(
      "whatif.cell_wall_us", ExponentialBuckets(0.25, 2.0, 32));
  obs_cell_sim_s_ = metrics->GetHistogram("whatif.cell_sim_s",
                                          ExponentialBuckets(1e-3, 2.0, 28));
  obs_batch_cells_ = metrics->GetHistogram("whatif.batch_cells",
                                           ExponentialBuckets(1.0, 2.0, 16));
  obs_batch_wall_us_ = metrics->GetHistogram(
      "whatif.batch_wall_us", ExponentialBuckets(1.0, 2.0, 32));
  obs_retry_attempts_ = metrics->GetHistogram(
      "whatif.retry_attempts", ExponentialBuckets(1.0, 2.0, 8));
}

std::vector<Index> WhatIfExecutor::Materialize(const Config& config) const {
  BATI_CHECK(config.universe_size() == candidates_->size());
  std::vector<Index> out;
  std::vector<size_t> positions = config.ToIndices();
  out.reserve(positions.size());
  for (size_t pos : positions) {
    out.push_back((*candidates_)[pos]);
  }
  return out;
}

std::shared_ptr<WhatIfExecutor::Job> WhatIfExecutor::BuildJob(
    const std::vector<CellRef>& cells) const {
  auto job = std::make_shared<Job>();
  job->cells.reserve(cells.size());
  job->results.assign(cells.size(), 0.0);
  // Materialize each distinct configuration once per batch (in practice all
  // cells share a single one); distinctness is by pointer, matching how
  // CostService builds the batch.
  std::vector<const Config*> seen;
  for (const CellRef& cell : cells) {
    size_t idx = seen.size();
    for (size_t j = 0; j < seen.size(); ++j) {
      if (seen[j] == cell.config) {
        idx = j;
        break;
      }
    }
    if (idx == seen.size()) {
      seen.push_back(cell.config);
      job->materialized.push_back(Materialize(*cell.config));
      job->config_hashes.push_back(cell.config->Hash());
    }
    job->cells.push_back(Job::Cell{cell.query_id, idx});
  }
  return job;
}

double WhatIfExecutor::CellCost(const Job& job, size_t i) const {
  const Job::Cell& cell = job.cells[i];
  const Query& query =
      workload_->queries[static_cast<size_t>(cell.query_id)];
  return optimizer_->Cost(query, job.materialized[cell.config_idx]);
}

double WhatIfExecutor::ObservedCellCost(const Job& job, size_t i) const {
  if (obs_cell_wall_us_ == nullptr) return CellCost(job, i);
  const uint64_t ticket =
      obs_ticket_.fetch_add(1, std::memory_order_relaxed);
  if ((ticket & kObsSampleMask) != 0) return CellCost(job, i);
  const double t0 = NowSeconds();
  const double cost = CellCost(job, i);
  obs_cell_wall_us_->Record((NowSeconds() - t0) * 1e6);
  return cost;
}

CellOutcome WhatIfExecutor::RunCellWithRetry(
    int query_id, const std::vector<Index>& materialized,
    uint64_t config_hash) const {
  const Query& query = workload_->queries[static_cast<size_t>(query_id)];
  const double base_latency = optimizer_->EstimateCallSeconds(query);
  CellOutcome out;
  if (injector_ == nullptr) {
    // No fault model configured: a single attempt that always succeeds.
    out.status = Status::Ok();
    out.cost = optimizer_->Cost(query, materialized);
    out.sim_seconds = base_latency;
    out.attempts = 1;
    return out;
  }
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    out.attempts = attempt;
    const FaultDecision d = injector_->Decide(query_id, config_hash, attempt);
    const double latency = base_latency * d.latency_multiplier;
    const bool timed_out = retry_.call_timeout_seconds > 0.0 &&
                           latency > retry_.call_timeout_seconds;
    if (timed_out) {
      out.sim_seconds += retry_.call_timeout_seconds;
      out.status = Status::DeadlineExceeded("what-if call timed out");
      ++out.timeout_faults;
    } else if (d.kind == FaultKind::kTransient) {
      out.sim_seconds += latency;
      out.status = Status::Unavailable("transient what-if fault");
      ++out.transient_faults;
    } else if (d.kind == FaultKind::kSticky) {
      out.sim_seconds += latency;
      out.status = Status::Unavailable("sticky what-if fault");
      ++out.sticky_faults;
    } else {
      out.sim_seconds += latency;
      out.status = Status::Ok();
      out.cost = optimizer_->Cost(query, materialized);
      return out;
    }
    if (attempt < retry_.max_attempts) {
      out.sim_seconds += retry_.BackoffSeconds(attempt);
    }
  }
  return out;
}

double WhatIfExecutor::EvaluateCell(int query_id,
                                    const std::vector<size_t>& positions) {
  const double start = NowSeconds();
  std::vector<Index> materialized;
  materialized.reserve(positions.size());
  for (size_t pos : positions) {
    materialized.push_back((*candidates_)[pos]);
  }
  const Query& query = workload_->queries[static_cast<size_t>(query_id)];
  const double sim_start = simulated_seconds_;
  double cost = optimizer_->Cost(query, materialized);
  const double sim = optimizer_->EstimateCallSeconds(query);
  simulated_seconds_ += sim;
  const double wall = NowSeconds() - start;
  wall_seconds_ += wall;
  if (obs_cell_sim_s_ != nullptr || obs_cell_wall_us_ != nullptr ||
      tracer_ != nullptr) {
    const uint64_t ticket =
        obs_ticket_.fetch_add(1, std::memory_order_relaxed);
    if ((ticket & kObsSampleMask) == 0) {
      if (obs_cell_sim_s_ != nullptr) obs_cell_sim_s_->Record(sim);
      if (obs_cell_wall_us_ != nullptr) obs_cell_wall_us_->Record(wall * 1e6);
      if (tracer_ != nullptr) {
        const double wall_us = wall * 1e6;
        tracer_->Complete("whatif.call", "whatif", tracer_->NowUs() - wall_us,
                          wall_us, sim_start, sim,
                          {{"query", static_cast<double>(query_id)},
                           {"indexes", static_cast<double>(positions.size())}});
      }
    }
  }
  return cost;
}

void WhatIfExecutor::RunJob(const std::shared_ptr<Job>& job) {
  if (job->cells.size() >= kParallelThreshold) {
    EnsurePool();
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = job;
      job_generation_.fetch_add(1, std::memory_order_release);
      work_cv_.notify_all();
    }
    // Completion fast path: spin on the lock-free counter — for a typical
    // batch the workers finish well inside the spin budget and the
    // coordinator never sleeps.
    const size_t total = job->cells.size();
    bool finished = false;
    const int coordinator_spins = SpinBudget(kCoordinatorSpinIters);
    for (int spin = 0; spin < coordinator_spins; ++spin) {
      if (job->done.load(std::memory_order_acquire) == total) {
        finished = true;
        break;
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (!finished) {
      done_cv_.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) == total;
      });
    }
    job_.reset();
  } else {
    for (size_t i = 0; i < job->cells.size(); ++i) {
      if (job->with_retry) {
        job->outcomes[i] =
            RunCellWithRetry(job->cells[i].query_id,
                             job->materialized[job->cells[i].config_idx],
                             job->config_hashes[job->cells[i].config_idx]);
      } else {
        job->results[i] = ObservedCellCost(*job, i);
      }
    }
  }
}

std::vector<double> WhatIfExecutor::EvaluateCells(
    const std::vector<CellRef>& cells) {
  const double start = NowSeconds();
  const double sim_start = simulated_seconds_;
  std::vector<double> out(cells.size(), 0.0);
  if (!cells.empty()) {
    std::shared_ptr<Job> job = BuildJob(cells);
    RunJob(job);
    out = std::move(job->results);
  }
  // Simulated latency is summed in input order so batched accounting is
  // bit-identical to the sequential path.
  for (size_t i = 0; i < cells.size(); ++i) {
    const double sim = optimizer_->EstimateCallSeconds(
        workload_->queries[static_cast<size_t>(cells[i].query_id)]);
    simulated_seconds_ += sim;
    if (obs_cell_sim_s_ != nullptr && (i & kObsSampleMask) == 0) {
      obs_cell_sim_s_->Record(sim);
    }
  }
  batched_cells_ += static_cast<int64_t>(cells.size());
  const double wall = NowSeconds() - start;
  wall_seconds_ += wall;
  ObserveBatch("whatif.batch", cells.size(), wall, sim_start);
  return out;
}

void WhatIfExecutor::ObserveBatch(const char* name, size_t cells, double wall,
                                  double sim_start) {
  if (obs_batch_cells_ != nullptr) {
    obs_batch_cells_->Record(static_cast<double>(cells));
  }
  if (obs_batch_wall_us_ != nullptr) obs_batch_wall_us_->Record(wall * 1e6);
  if (tracer_ != nullptr) {
    const double wall_us = wall * 1e6;
    tracer_->Complete(name, "whatif", tracer_->NowUs() - wall_us, wall_us,
                      sim_start, simulated_seconds_ - sim_start,
                      {{"cells", static_cast<double>(cells)},
                       {"pooled", cells >= kParallelThreshold ? 1.0 : 0.0}});
  }
}

void WhatIfExecutor::AccountOutcome(const CellOutcome& outcome) {
  simulated_seconds_ += outcome.sim_seconds;
  transient_faults_ += outcome.transient_faults;
  sticky_faults_ += outcome.sticky_faults;
  timeout_faults_ += outcome.timeout_faults;
  retry_attempts_ += outcome.attempts > 0 ? outcome.attempts - 1 : 0;
  if (obs_cell_sim_s_ != nullptr) obs_cell_sim_s_->Record(outcome.sim_seconds);
  if (obs_retry_attempts_ != nullptr) {
    obs_retry_attempts_->Record(static_cast<double>(outcome.attempts));
  }
  if (tracer_ != nullptr &&
      (outcome.attempts > 1 || !outcome.status.ok())) {
    tracer_->Instant(
        outcome.status.ok() ? "whatif.retry" : "whatif.cell_failed", "fault",
        simulated_seconds_,
        {{"attempts", static_cast<double>(outcome.attempts)},
         {"transient", static_cast<double>(outcome.transient_faults)},
         {"sticky", static_cast<double>(outcome.sticky_faults)},
         {"timeouts", static_cast<double>(outcome.timeout_faults)}});
  }
}

CellOutcome WhatIfExecutor::EvaluateCellWithRetry(
    int query_id, const std::vector<size_t>& positions,
    uint64_t config_hash) {
  const double start = NowSeconds();
  std::vector<Index> materialized;
  materialized.reserve(positions.size());
  for (size_t pos : positions) {
    materialized.push_back((*candidates_)[pos]);
  }
  CellOutcome out = RunCellWithRetry(query_id, materialized, config_hash);
  AccountOutcome(out);
  wall_seconds_ += NowSeconds() - start;
  return out;
}

std::vector<CellOutcome> WhatIfExecutor::EvaluateCellsWithRetry(
    const std::vector<CellRef>& cells) {
  const double start = NowSeconds();
  const double sim_start = simulated_seconds_;
  std::vector<CellOutcome> out(cells.size());
  if (!cells.empty()) {
    std::shared_ptr<Job> job = BuildJob(cells);
    job->with_retry = true;
    job->outcomes.assign(cells.size(), CellOutcome{});
    RunJob(job);
    out = std::move(job->outcomes);
  }
  // All accounting in input order: per-cell outcomes are pure, so the
  // totals are bit-identical to the sequential loop.
  for (const CellOutcome& outcome : out) AccountOutcome(outcome);
  batched_cells_ += static_cast<int64_t>(cells.size());
  const double wall = NowSeconds() - start;
  wall_seconds_ += wall;
  ObserveBatch("whatif.batch_retry", cells.size(), wall, sim_start);
  return out;
}

void WhatIfExecutor::EnsurePool() {
  if (!workers_.empty()) return;
  size_t n = pool_size_;
  if (n == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    n = std::min<size_t>(hw == 0 ? 2 : hw, 8);
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void WhatIfExecutor::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    // Spin briefly for the next batch before parking: batches arrive back to
    // back, and the publish is visible through the atomic generation without
    // touching mu_. Falls through to the condition variable when no work
    // shows up (idle pool, shutdown).
    const int worker_spins = SpinBudget(kWorkerSpinIters);
    for (int spin = 0; spin < worker_spins; ++spin) {
      if (job_generation_.load(std::memory_order_acquire) !=
              seen_generation ||
          shutdown_.load(std::memory_order_acquire)) {
        break;
      }
    }
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_.load(std::memory_order_relaxed) ||
               (job_ != nullptr &&
                job_generation_.load(std::memory_order_relaxed) !=
                    seen_generation);
      });
      if (shutdown_.load(std::memory_order_relaxed)) return;
      seen_generation = job_generation_.load(std::memory_order_relaxed);
      job = job_;
    }
    // The shared_ptr keeps the job alive, and its ticket counter belongs to
    // this job alone: once the batch has finished, every remaining claim
    // overruns cells.size() and is a no-op, so arriving late here is safe.
    size_t done_here = 0;
    while (true) {
      // Claim cells in chunks: one atomic RMW per kClaimChunk cells, and a
      // worker's result writes land on (mostly) whole cache lines instead of
      // interleaving double-width stores with its neighbours.
      size_t begin = job->next.fetch_add(Job::kClaimChunk,
                                         std::memory_order_relaxed);
      if (begin >= job->cells.size()) break;
      const size_t end =
          std::min(begin + Job::kClaimChunk, job->cells.size());
      for (size_t i = begin; i < end; ++i) {
        if (job->with_retry) {
          job->outcomes[i] =
              RunCellWithRetry(job->cells[i].query_id,
                               job->materialized[job->cells[i].config_idx],
                               job->config_hashes[job->cells[i].config_idx]);
        } else {
          job->results[i] = ObservedCellCost(*job, i);
        }
        ++done_here;
      }
    }
    if (done_here > 0) {
      // Lock-free completion: only the worker that finishes the batch takes
      // the mutex (to pair the notify with the coordinator's wait); the
      // coordinator usually observes the counter in its spin phase anyway.
      const size_t prev =
          job->done.fetch_add(done_here, std::memory_order_acq_rel);
      if (prev + done_here == job->cells.size()) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }
}

double WhatIfExecutor::TrueCost(
    const Query& query, const std::vector<Index>& materialized) const {
  return optimizer_->Cost(query, materialized);
}

}  // namespace bati
