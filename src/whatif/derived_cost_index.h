#ifndef BATI_WHATIF_DERIVED_COST_INDEX_H_
#define BATI_WHATIF_DERIVED_COST_INDEX_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "whatif/budget_meter.h"
#include "whatif/cost_engine_stats.h"

namespace bati {

/// The derivation layer of the cost engine: an incremental index over the
/// cached what-if cells that answers Equation-1 subset-minimum queries
///
///   d(q, C) = min over cached subsets S of C of c(q, S)
///
/// without the O(|cache|) linear scan of the monolithic implementation.
/// Results are bit-identical to that scan (the minimum is a comparison, not
/// an arithmetic combination), only the entries examined change.
///
/// Per query the index keeps:
///  * the exact-cell map (what-if cache);
///  * all entries in cost-ascending order, so a subset-minimum lookup stops
///    at the *first* entry that is a subset of C — every later entry costs
///    at least as much — and stops unconditionally once entry costs reach
///    the running best (the monotone best-so-far bound);
///  * per-candidate posting lists (entry ids containing that candidate,
///    cost-ascending), which make the incremental SubsetMinWithAdd() /
///    DeltaAdd() probes skip every entry that does not contain the added
///    candidate: an entry is newly eligible for C ∪ {z} iff it contains z
///    and its remaining members are inside C;
///  * known singleton costs (Equation 2).
///
/// Storage and synchronization are sharded by query hash (query_id modulo a
/// power-of-two shard count): each shard owns an independent slice of the
/// per-query structures, its own Add mutex, and its own cache-line-aligned
/// observability counters. Lookups on different shards therefore never
/// touch the same cache line, and mutations of different shards never
/// contend on one lock. Within a shard, Add() is serialized by the shard
/// mutex; const lookups only read immutable index structure plus the
/// shard's relaxed atomics, so they are race-free against each other.
/// Concurrent Add and lookup *on the same query's shard* remain
/// single-writer territory, exactly as before the sharding (the engine
/// issues Adds sequentially in input order).
class DerivedCostIndex {
 public:
  /// Shard count used when the constructor is passed `num_shards == 0`.
  static constexpr int kDefaultShards = 16;

  /// `num_shards` is rounded up to a power of two; 0 picks kDefaultShards.
  DerivedCostIndex(int num_queries, int num_candidates, int num_shards = 0);

  /// Power-of-two number of shards in use.
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The cached cost of an exact cell, or nullptr when unknown.
  const double* Find(int query_id, const Config& config) const;

  /// Inserts a freshly evaluated cell. `positions` must equal
  /// config.ToIndices(). A cell must not be inserted twice. Serialized per
  /// shard; Adds to different shards may run concurrently.
  void Add(int query_id, const Config& config,
           const std::vector<size_t>& positions, double cost);

  /// d(q, C) with `base` = c(q, {}) as the always-known fallback.
  double SubsetMin(int query_id, const Config& config, double base) const;

  /// d(q, C ∪ {pos}) given `current` = d(q, C): probes only the posting
  /// list of `pos`. Exact because every subset of C ∪ {pos} either omits
  /// pos (already accounted for by `current`) or contains it (in the
  /// posting list).
  double SubsetMinWithAdd(int query_id, const Config& config, size_t pos,
                          double current) const;

  /// The derived-cost change d(q, C ∪ {pos}) − d(q, C), a value <= 0.
  /// `base` = c(q, {}).
  double DeltaAdd(int query_id, const Config& config, size_t pos,
                  double base) const;

  /// Equation-2 singleton minimum over candidates in `config` with known
  /// singleton costs; `base` = c(q, {}).
  double SingletonMin(int query_id, const Config& config, double base) const;

  /// Lower bound on c(q, C) from cached *supersets*: by cost monotonicity
  /// (adding indexes never raises a query's cost) every cached S ⊇ C has
  /// c(q, S) <= c(q, C), so the maximum such cost bounds c(q, C) from
  /// below. Returns `floor` when no superset is cached. Scans entries in
  /// cost-descending order, so the first superset found is the maximum.
  double SupersetMaxLowerBound(int query_id, const Config& config,
                               double floor = 0.0) const;

  /// Heuristic lower bound on c(q, C) assuming per-index improvements are
  /// subadditive: base - sum over z in C of max(0, base - c(q, {z})).
  /// Requires every member's singleton cost to be known (returns `floor`
  /// otherwise — an unevaluated member could contribute arbitrarily much).
  /// Exact for independent scans; index interactions that make combined
  /// improvements superadditive can violate it, which is why the budget
  /// governor clamps lower bounds to the derived upper bound.
  double AdditiveLowerBound(int query_id, const Config& config, double base,
                            double floor = 0.0) const;

  /// Number of cached cells for one query / overall.
  int64_t entry_count(int query_id) const;
  int64_t total_entries() const;

  /// Adds one consistent snapshot of this layer's counters into `stats`:
  /// every shard's counters are read exactly once and summed, so no lookup
  /// is counted twice (or attributed to two shards) regardless of shard
  /// count or sampling. Also records the shard count.
  void AccumulateStats(CostEngineStats* stats) const;

  /// Wires scan-depth histograms and a deterministically sampled (1-in-64,
  /// keyed off the per-shard lookup counter) lookup wall-latency histogram.
  /// Null unwires. Pure observation: lookup results and the stats counters
  /// are unaffected.
  void SetObservability(MetricsRegistry* metrics);

 private:
  struct Entry {
    Config config;
    double cost = 0.0;
  };

  struct QueryIndex {
    std::unordered_map<Config, double, DynamicBitsetHash> exact;
    std::vector<Entry> entries;
    /// Entry ids sorted by ascending cost.
    std::vector<int32_t> by_cost;
    /// Per candidate position: ids of entries containing it, ascending cost.
    std::vector<std::vector<int32_t>> postings;
    /// Known singleton costs by candidate position (NaN when unknown).
    std::vector<double> singleton;
    /// Monotone best-so-far bound: the cheapest cached cost and its entry.
    double best_cost = std::numeric_limits<double>::infinity();
    int32_t best_entry = -1;
  };

  /// Observability counters, one cache line per shard so concurrent
  /// lookups on different shards never false-share. Mutable atomics so the
  /// read-only Equation-1/2 API stays const and race-free.
  struct alignas(64) ShardCounters {
    std::atomic<int64_t> derived_lookups{0};
    std::atomic<int64_t> delta_lookups{0};
    std::atomic<int64_t> scanned_entries{0};
    std::atomic<int64_t> pruned_entries{0};
    std::atomic<int64_t> lower_bound_lookups{0};
    std::atomic<int64_t> entries{0};
  };

  struct Shard {
    /// Queries with (id & shard_mask) == shard index, slot id >> shard_bits.
    std::vector<QueryIndex> queries;
    /// Serializes Add() within this shard.
    std::mutex add_mu;
  };

  size_t shard_of(int query_id) const {
    return static_cast<size_t>(query_id) & shard_mask_;
  }
  size_t slot_of(int query_id) const {
    return static_cast<size_t>(query_id) >> shard_bits_;
  }
  const QueryIndex& at(int query_id) const {
    return shards_[shard_of(query_id)].queries[slot_of(query_id)];
  }
  ShardCounters& counters_of(int query_id) const {
    return counters_[shard_of(query_id)];
  }

  std::vector<Shard> shards_;
  mutable std::vector<ShardCounters> counters_;
  size_t shard_mask_ = 0;
  unsigned shard_bits_ = 0;
  // Observability instruments (null when not wired); recording through them
  // is relaxed-atomic, keeping const lookups race-free.
  LatencyHistogram* obs_scan_depth_ = nullptr;
  LatencyHistogram* obs_delta_scan_depth_ = nullptr;
  LatencyHistogram* obs_lookup_wall_us_ = nullptr;
};

}  // namespace bati

#endif  // BATI_WHATIF_DERIVED_COST_INDEX_H_
