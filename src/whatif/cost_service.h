#ifndef BATI_WHATIF_COST_SERVICE_H_
#define BATI_WHATIF_COST_SERVICE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "optimizer/what_if.h"
#include "storage/index.h"
#include "workload/query.h"

namespace bati {

/// An index configuration: a subset of the candidate-index universe,
/// represented as a bitset over candidate positions.
using Config = DynamicBitset;

/// One what-if call in the order it was issued: an entry of the budget
/// allocation matrix layout (paper Definition 1). The trace of these entries
/// is the layout phi : [B] -> {B_ij}.
struct LayoutEntry {
  int query_id = -1;
  Config config;
};

/// Budget-metered access to the what-if optimizer, with caching and cost
/// derivation (paper Section 3.1). All tuners consume costs exclusively
/// through this service, which enforces the budget B on the number of
/// optimizer invocations:
///
///  * WhatIfCost() — a counted what-if call; served from cache for free,
///    otherwise consumes one unit of budget; fails (nullopt) when the budget
///    is exhausted.
///  * DerivedCost() — d(q, C) = min over cached subsets S of C of c(q, S)
///    (Equation 1); always available because c(q, {}) is known.
///  * SingletonDerivedCost() — the Equation-2 restriction to singleton
///    subsets, used by the theory (Theorems 1-2) and by priors.
///
/// Base costs c(q, {}) are computed up front and are not charged against the
/// budget, matching the paper's budget allocation matrix whose rows range
/// over the 2^|I| - 1 non-empty configurations.
class CostService {
 public:
  /// `optimizer`, `workload`, `candidates` must outlive the service.
  CostService(const WhatIfOptimizer* optimizer, const Workload* workload,
              const std::vector<Index>* candidates, int64_t budget);

  int num_queries() const { return workload_->num_queries(); }
  int num_candidates() const { return static_cast<int>(candidates_->size()); }
  int64_t budget() const { return budget_; }
  int64_t calls_made() const { return calls_made_; }
  int64_t remaining_budget() const { return budget_ - calls_made_; }
  bool HasBudget() const { return calls_made_ < budget_; }
  int64_t cache_hits() const { return cache_hits_; }

  /// An empty configuration over the candidate universe.
  Config EmptyConfig() const { return Config(candidates_->size()); }

  /// Materializes a configuration into concrete index definitions.
  std::vector<Index> Materialize(const Config& config) const;

  /// c(q, {}): the known base cost (never charged).
  double BaseCost(int query_id) const;

  /// Sum of base costs over the workload.
  double BaseWorkloadCost() const { return base_workload_cost_; }

  /// Counted what-if call for one (query, configuration) cell. Returns the
  /// cached cost for free if this cell was already evaluated; otherwise
  /// spends one budget unit. Returns nullopt iff the budget is exhausted and
  /// the cell is unknown.
  std::optional<double> WhatIfCost(int query_id, const Config& config);

  /// True if c(query_id, config) is cached (what-if cost "known").
  bool IsKnown(int query_id, const Config& config) const;

  /// The cached what-if cost for a cell, if known; free introspection that
  /// never spends budget (tooling, trace export).
  std::optional<double> CachedCost(int query_id, const Config& config) const;

  /// Derived cost d(q, C) per Equation 1 (min over cached subsets).
  double DerivedCost(int query_id, const Config& config) const;

  /// Derived workload cost d(W, C) = sum_q d(q, C).
  double DerivedWorkloadCost(const Config& config) const;

  /// Equation-2 derived cost: min over singletons {z} subset of C with known
  /// singleton what-if costs (and the base cost).
  double SingletonDerivedCost(int query_id, const Config& config) const;

  /// Percentage improvement eta(W, C) in [0, 100] computed with derived
  /// costs (Equation 4 with d() in place of cost()).
  double DerivedImprovement(const Config& config) const;

  /// Ground-truth improvement using real (uncounted) what-if costs; used
  /// only for *evaluating* final configurations, mirroring how the paper
  /// reports improvements in actual what-if cost.
  double TrueImprovement(const Config& config) const;

  /// Ground-truth workload cost (uncounted); evaluation only.
  double TrueWorkloadCost(const Config& config) const;

  /// The layout trace: every counted what-if call in issue order.
  const std::vector<LayoutEntry>& layout() const { return layout_; }

  /// Simulated seconds spent inside counted what-if calls so far (the
  /// paper's Figure 2 "time spent on what-if calls").
  double SimulatedWhatIfSeconds() const { return whatif_seconds_; }

 private:
  struct QueryCache {
    /// Exact-config lookup.
    std::unordered_map<Config, double, DynamicBitsetHash> exact;
    /// Same entries as a flat list for subset-minimum scans.
    std::vector<std::pair<Config, double>> entries;
    /// Known singleton costs by candidate position (NaN when unknown).
    std::vector<double> singleton;
  };

  const WhatIfOptimizer* optimizer_;
  const Workload* workload_;
  const std::vector<Index>* candidates_;
  int64_t budget_;
  int64_t calls_made_ = 0;
  int64_t cache_hits_ = 0;
  double whatif_seconds_ = 0.0;
  std::vector<double> base_costs_;
  double base_workload_cost_ = 0.0;
  std::vector<QueryCache> cache_;
  std::vector<LayoutEntry> layout_;
};

}  // namespace bati

#endif  // BATI_WHATIF_COST_SERVICE_H_
