#ifndef BATI_WHATIF_COST_SERVICE_H_
#define BATI_WHATIF_COST_SERVICE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "budget/governor.h"
#include "common/bitset.h"
#include "common/status.h"
#include "faults/fault_injector.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "optimizer/what_if.h"
#include "storage/index.h"
#include "whatif/budget_meter.h"
#include "whatif/checkpoint.h"
#include "whatif/cost_engine_stats.h"
#include "whatif/derived_cost_index.h"
#include "whatif/whatif_executor.h"
#include "workload/query.h"

namespace bati {

/// Everything configurable about the cost engine beyond its required
/// collaborators. All defaults off: a CostEngineOptions{}-constructed
/// service is bit-identical to the pre-fault-tolerance engine.
struct CostEngineOptions {
  /// Budget governor (skipping / early stopping), src/budget/.
  BudgetGovernorOptions governor;
  /// Injected what-if failures, src/faults/. With `faults.enabled` the
  /// engine evaluates every uncached cell through the executor's
  /// retry/backoff loop, charges the budget only on success, and answers a
  /// cell that exhausted its retries with the derived cost d(q, C) — the
  /// same degradation a governor skip uses — so tuners run unmodified.
  FaultOptions faults;
  /// Retry/backoff parameters; consulted only when faults are enabled.
  RetryPolicy retry;
  /// When non-empty, the engine writes a crash-consistent checkpoint to
  /// this path at every BeginRound() boundary (write-temp-then-rename).
  std::string checkpoint_path;
  /// When true, the engine additionally keeps every round checkpoint
  /// serialized in memory (captured_checkpoints()) — the property tests'
  /// way of visiting all crash points without touching the filesystem.
  bool capture_checkpoints = false;
  /// Free-form identity of the run (workload, algorithm, seed, budget,
  /// fault and retry options...). Stamped into checkpoints and verified on
  /// resume, so a checkpoint cannot silently resume a different run.
  std::string run_identity;
  /// Observability sinks (non-owning; must outlive the service). When wired
  /// the engine records latency histograms, counters, and structured spans
  /// across every layer; when null (the default) every instrumentation site
  /// is a dead pointer guard and runs are bit-identical to an unobserved
  /// engine — observation never feeds back into costs, clocks, or
  /// decisions.
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  /// Shard count for the DerivedCostIndex (rounded up to a power of two);
  /// 0 picks DerivedCostIndex::kDefaultShards. Sharding changes contention
  /// and counter attribution, never lookup results.
  int index_shards = 0;
  /// Thread-pool size for the executor's batched WhatIfCostMany() path;
  /// 0 picks min(hardware_concurrency, 8). Never affects results.
  int whatif_pool_size = 0;
};

/// Budget-metered access to the what-if optimizer, with caching and cost
/// derivation (paper Section 3.1). All tuners consume costs exclusively
/// through this service, which is a thin façade over the layered cost
/// engine:
///
///  * BudgetMeter — counting, exhaustion, and the layout trace (paper
///    Definition 1);
///  * WhatIfExecutor — optimizer invocation, materialization, simulated
///    latency, and the batched (thread-pooled) CostMany() path;
///  * DerivedCostIndex — the what-if cache plus posting lists answering
///    Equation-1 subset minima incrementally;
///  * BudgetGovernor (optional, src/budget/) — a policy layer between the
///    tuners and the meter that may skip provably-bounded what-if calls
///    (answering with the derived cost, for free) and halt tuning early
///    once the projected remaining improvement is negligible. Disabled by
///    default; an ungoverned run is bit-identical to the pre-governor
///    engine.
///
/// The classic entry points:
///
///  * WhatIfCost() — a counted what-if call; served from cache for free,
///    otherwise consumes one unit of budget; fails (nullopt) when the budget
///    is exhausted.
///  * DerivedCost() — d(q, C) = min over cached subsets S of C of c(q, S)
///    (Equation 1); always available because c(q, {}) is known.
///  * SingletonDerivedCost() — the Equation-2 restriction to singleton
///    subsets, used by the theory (Theorems 1-2) and by priors.
///
/// Batched and incremental entry points for hot paths:
///
///  * WhatIfCostMany() — semantics of a WhatIfCost() loop (identical
///    charging order, caching, and results) with the uncached cells
///    evaluated concurrently by the executor's thread pool.
///  * DerivedCosts() — d(q, C) for every query at once.
///  * DerivedCostWithAdd() / DerivedCostDeltaAdd() — d(q, C ∪ {z}) through
///    the posting-list index, without rescanning the cache.
///
/// Base costs c(q, {}) are computed up front and are not charged against the
/// budget, matching the paper's budget allocation matrix whose rows range
/// over the 2^|I| - 1 non-empty configurations.
class CostService {
 public:
  /// `optimizer`, `workload`, `candidates` must outlive the service.
  CostService(const WhatIfOptimizer* optimizer, const Workload* workload,
              const std::vector<Index>* candidates, int64_t budget);

  /// As above, with a budget governor (src/budget/) between the tuner and
  /// the meter. With `governor.enabled == false` this is exactly the plain
  /// constructor; with it enabled, uncached cells are quoted to the
  /// governor before charging (it may skip them, answering with the
  /// derived cost for free) and HasBudget() additionally turns false once
  /// the governor's early-stopping checker fires — which every tuner
  /// already handles as ordinary budget exhaustion.
  CostService(const WhatIfOptimizer* optimizer, const Workload* workload,
              const std::vector<Index>* candidates, int64_t budget,
              const BudgetGovernorOptions& governor);

  /// Full-options constructor: governor, fault injection, retry policy, and
  /// checkpointing. With default options this is exactly the plain
  /// constructor.
  CostService(const WhatIfOptimizer* optimizer, const Workload* workload,
              const std::vector<Index>* candidates, int64_t budget,
              const CostEngineOptions& options);

  int num_queries() const { return workload_->num_queries(); }
  int num_candidates() const { return static_cast<int>(candidates_->size()); }
  int64_t budget() const { return meter_.budget(); }
  int64_t calls_made() const { return meter_.calls_made(); }
  int64_t remaining_budget() const { return meter_.remaining(); }
  bool HasBudget() const { return meter_.HasBudget() && !GovernorStopped(); }
  int64_t cache_hits() const { return meter_.cache_hits(); }

  /// Declares the start of the next tuner round (greedy iteration, MCTS
  /// episode, bandit/DQN round, DTA slice, relaxation step). Subsequent
  /// charged calls carry the new round tag in the layout trace, and the
  /// governor — when present — updates its improvement curve and evaluates
  /// early stopping at exactly these boundaries. Returns the 1-based round
  /// number. Behaviour-neutral for ungoverned runs.
  int BeginRound();

  /// As BeginRound(), additionally labelling the round for observability:
  /// when a tracer is wired, the span covering this round (closed at the
  /// next boundary or at FinishObservability()) carries `phase` as its name
  /// — e.g. "greedy.argmax_sweep", "mcts.episode". `phase` must be a string
  /// literal. Identical to BeginRound() when nothing is wired.
  int BeginRound(const char* phase);

  /// Closes the open round span and synchronizes the engine's cross-layer
  /// counters (EngineStats()) into the metrics registry. Idempotent; no-op
  /// when nothing is wired. Callers snapshotting the registry or exporting
  /// the trace should call this first.
  void FinishObservability();

  /// True once the governor's early-stopping checker has fired (always
  /// false for ungoverned runs).
  bool GovernorStopped() const {
    return governor_ != nullptr && governor_->ShouldStop();
  }

  /// The governor, when one was configured; nullptr otherwise.
  const BudgetGovernor* governor() const { return governor_.get(); }

  /// An empty configuration over the candidate universe.
  Config EmptyConfig() const { return Config(candidates_->size()); }

  /// Materializes a configuration into concrete index definitions.
  std::vector<Index> Materialize(const Config& config) const {
    return executor_.Materialize(config);
  }

  /// c(q, {}): the known base cost (never charged).
  double BaseCost(int query_id) const;

  /// Sum of base costs over the workload.
  double BaseWorkloadCost() const { return base_workload_cost_; }

  /// Counted what-if call for one (query, configuration) cell. Returns the
  /// cached cost for free if this cell was already evaluated; otherwise
  /// spends one budget unit. Returns nullopt iff the cell is unknown and
  /// the budget is exhausted (or the governor has stopped the run). A
  /// governed call the governor decides to skip returns the derived cost
  /// d(q, C) without charging — exactly the value the caller would fall
  /// back to on nullopt.
  std::optional<double> WhatIfCost(int query_id, const Config& config);

  /// Counted what-if calls for one configuration across many queries — the
  /// batched equivalent of calling WhatIfCost(query_ids[i], config) in
  /// order. Budget is charged sequentially in input order (a hard cap, same
  /// cells succeed/fail as the loop); uncached cells are evaluated
  /// concurrently by the executor. Results are identical to the loop, with
  /// one governed-run caveat: skip decisions quote the cache as of batch
  /// entry (a sequential loop would see cells cached earlier in the same
  /// batch). Decisions stay deterministic either way.
  std::vector<std::optional<double>> WhatIfCostMany(
      const std::vector<int>& query_ids, const Config& config);

  /// True if c(query_id, config) is cached (what-if cost "known").
  bool IsKnown(int query_id, const Config& config) const;

  /// The cached what-if cost for a cell, if known; free introspection that
  /// never spends budget (tooling, trace export).
  std::optional<double> CachedCost(int query_id, const Config& config) const;

  /// Derived cost d(q, C) per Equation 1 (min over cached subsets).
  double DerivedCost(int query_id, const Config& config) const;

  /// d(q, C) for every query of the workload at once.
  std::vector<double> DerivedCosts(const Config& config) const;

  /// Derived workload cost d(W, C) = sum_q d(q, C).
  double DerivedWorkloadCost(const Config& config) const;

  /// d(q, C ∪ {pos}) computed incrementally from `current_derived` =
  /// d(q, C) via the posting-list index: only cached entries containing
  /// `pos` are probed. Bit-identical to DerivedCost(q, C.With(pos)).
  double DerivedCostWithAdd(int query_id, const Config& config, size_t pos,
                            double current_derived) const;

  /// The derived-cost change d(q, C ∪ {pos}) − d(q, C), a value <= 0.
  double DerivedCostDeltaAdd(int query_id, const Config& config,
                             size_t pos) const;

  /// Equation-2 derived cost: min over singletons {z} subset of C with known
  /// singleton what-if costs (and the base cost).
  double SingletonDerivedCost(int query_id, const Config& config) const;

  /// Percentage improvement eta(W, C) in [0, 100] computed with derived
  /// costs (Equation 4 with d() in place of cost()).
  double DerivedImprovement(const Config& config) const;

  /// Ground-truth improvement using real (uncounted) what-if costs; used
  /// only for *evaluating* final configurations, mirroring how the paper
  /// reports improvements in actual what-if cost.
  double TrueImprovement(const Config& config) const;

  /// Ground-truth workload cost (uncounted); evaluation only.
  double TrueWorkloadCost(const Config& config) const;

  /// The layout trace: every counted what-if call in issue order.
  const std::vector<LayoutEntry>& layout() const { return meter_.layout(); }

  /// Simulated seconds spent inside counted what-if calls so far (the
  /// paper's Figure 2 "time spent on what-if calls").
  double SimulatedWhatIfSeconds() const {
    return executor_.simulated_seconds();
  }

  /// The counting layer, for callers needing budget introspection.
  const BudgetMeter& meter() const { return meter_; }

  /// Snapshot of the engine's observability counters across all layers.
  CostEngineStats EngineStats() const;

  // ---- Fault tolerance and checkpoint/resume. ----

  /// True when fault injection is armed (options.faults.enabled).
  bool FaultsEnabled() const { return injector_ != nullptr; }

  /// Cells that exhausted their retries and were answered with the derived
  /// cost instead (never charged).
  int64_t degraded_cells() const { return degraded_cells_; }

  /// Arms resume from a parsed checkpoint. Must be called on a fresh
  /// service (no calls made, no rounds declared) constructed with the same
  /// shape, budget, and run identity the checkpoint records — the caller
  /// then re-runs the tuner from its seed, and the engine answers the
  /// checkpoint's journaled attempts in order instead of invoking the
  /// optimizer, rebuilding cache/meter/governor state exactly as the
  /// original run did. When BeginRound() reaches the checkpointed round the
  /// engine verifies the replayed counters against the recorded ones and
  /// goes live; the continued run is bit-identical to an uninterrupted one.
  Status ResumeFromCheckpoint(const EngineCheckpoint& ckpt);

  /// Loads `path` and arms resume from it.
  Status ResumeFromFile(const std::string& path);

  /// True while journaled attempts remain to be replayed.
  bool replaying() const { return replay_pos_ < replay_end_; }

  /// Snapshot of the engine as a checkpoint (requires checkpointing to be
  /// enabled via checkpoint_path or capture_checkpoints, which arm the
  /// event journal).
  EngineCheckpoint MakeCheckpoint() const;

  /// Serialized per-round checkpoints (capture_checkpoints only), index i
  /// holding the checkpoint taken at BeginRound() number i + 1.
  const std::vector<std::string>& captured_checkpoints() const {
    return captured_checkpoints_;
  }

  /// First error encountered while writing checkpoint files (writing is
  /// best-effort: a failed write warns and the run continues).
  const Status& checkpoint_status() const { return checkpoint_status_; }

 private:
  /// Builds the governor's quote for one uncached cell: derived upper
  /// bound, clamped cost lower bound, and budget state.
  CellQuote MakeQuote(int query_id, const Config& config) const;

  /// Folds a freshly evaluated cell into the per-query optimistic floor
  /// (the governor's improvement-curve y axis).
  void NoteEvaluated(int query_id, double cost);

  /// Appends an attempt to the event journal (journaling runs only).
  void RecordEvent(bool charged, int query_id,
                   const std::vector<size_t>& positions, double cost,
                   double sim_seconds);

  /// Pops the next journaled attempt during replay, checking it matches the
  /// requested cell (any mismatch means the replayed tuner diverged from
  /// the original run — a corrupted checkpoint or a different binary) and
  /// crediting its simulated seconds to the executor.
  CheckpointEvent PopReplayEvent(int query_id,
                                 const std::vector<size_t>& positions);

  /// Answers one cell with the derived cost after retries were exhausted.
  double DegradeCell(int query_id, const Config& config);

  /// The fault-injected WhatIfCostMany() body: classify without charging,
  /// evaluate-then-commit in budget-sized chunks, resolve duplicates last.
  void WhatIfCostManyFaulted(const std::vector<int>& query_ids,
                             const Config& config,
                             std::vector<std::optional<double>>* out);

  /// Checks the replayed engine state against the checkpoint header when
  /// BeginRound() reaches the checkpointed round.
  void VerifyResumeState() const;

  /// Captures and persists a checkpoint at a BeginRound() boundary.
  void MaybeWriteCheckpoint();

  /// Round-boundary observability: closes the previous round's span and
  /// opens the next one under `phase` (nullptr defaults to "round").
  void ObserveRoundBoundary(const char* phase, int round);

  /// Emits the span for the currently open round, if any.
  void CloseRoundSpan();

  /// Records a governor skip decision into the trace.
  void TraceGovernorSkip(const CellQuote& quote);

  const WhatIfOptimizer* optimizer_;
  const Workload* workload_;
  const std::vector<Index>* candidates_;
  BudgetMeter meter_;
  WhatIfExecutor executor_;
  DerivedCostIndex index_;
  std::unique_ptr<BudgetGovernor> governor_;
  std::vector<double> base_costs_;
  double base_workload_cost_ = 0.0;
  /// Per-query minimum over cached cells (base cost before any), and its
  /// workload sum: the best workload cost the cache currently supports.
  std::vector<double> floor_costs_;
  double floor_workload_cost_ = 0.0;

  // ---- Fault tolerance and checkpoint/resume state. ----
  CostEngineOptions options_;
  std::unique_ptr<FaultInjector> injector_;
  int64_t degraded_cells_ = 0;
  /// Journaling is armed whenever checkpoints can be taken; during replay
  /// the journal holds the checkpoint's events and grows again after the
  /// flip to live execution.
  bool journal_enabled_ = false;
  std::vector<CheckpointEvent> journal_;
  /// Replay cursor over journal_[replay_pos_, replay_end_); empty range
  /// means live execution.
  size_t replay_pos_ = 0;
  size_t replay_end_ = 0;
  /// The checkpoint header being resumed from (events cleared), kept for
  /// the flip-to-live verification at BeginRound(resume round).
  EngineCheckpoint resume_header_;
  bool resumed_ = false;
  bool pending_resume_verify_ = false;
  Status checkpoint_status_;
  std::vector<std::string> captured_checkpoints_;

  // ---- Observability state (inert when metrics_/tracer_ are null). ----
  /// Round spans/histograms are recorded for every one of the first
  /// kRoundFullDetail rounds, then for one round in (kRoundSampleMask + 1):
  /// greedy-family runs keep full per-round detail while episode-per-round
  /// tuners (thousands of rounds) only pay the span cost on a sample.
  static constexpr int kRoundFullDetail = 64;
  static constexpr unsigned kRoundSampleMask = 7;
  MetricsRegistry* metrics_ = nullptr;
  Tracer* tracer_ = nullptr;
  Counter* obs_rounds_ = nullptr;
  LatencyHistogram* obs_round_wall_us_ = nullptr;
  LatencyHistogram* obs_round_sim_s_ = nullptr;
  LatencyHistogram* obs_checkpoint_wall_us_ = nullptr;
  /// The open round span: name (nullptr when none), start stamps, number.
  const char* round_phase_ = nullptr;
  double round_wall_start_s_ = 0.0;
  double round_sim_start_s_ = 0.0;
  int round_number_ = 0;
  /// The governor's stop transition is traced exactly once.
  bool stop_traced_ = false;
};

}  // namespace bati

#endif  // BATI_WHATIF_COST_SERVICE_H_
