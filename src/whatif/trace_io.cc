#include "whatif/trace_io.h"

#include <cstdio>

#include "common/file_util.h"

namespace bati {

std::string LayoutToCsv(const CostService& service,
                        const Workload& workload) {
  std::string out =
      "call,query_id,query_name,config_size,config,what_if_cost,round\n";
  char buf[64];
  for (size_t i = 0; i < service.layout().size(); ++i) {
    const LayoutEntry& e = service.layout()[i];
    out += std::to_string(i + 1) + ",";
    out += std::to_string(e.query_id) + ",";
    out += workload.queries[static_cast<size_t>(e.query_id)].name + ",";
    out += std::to_string(e.config.count()) + ",";
    bool first = true;
    for (size_t pos : e.config.ToIndices()) {
      if (!first) out += ";";
      out += std::to_string(pos);
      first = false;
    }
    out += ",";
    auto cost = service.CachedCost(e.query_id, e.config);
    std::snprintf(buf, sizeof(buf), "%.6g", cost.value_or(-1.0));
    out += buf;
    out += "," + std::to_string(e.round);
    out += "\n";
  }
  return out;
}

Status WriteLayoutCsv(const CostService& service, const Workload& workload,
                      const std::string& path) {
  // Shares the checkpoint writer's write-temp-then-rename helper: an
  // exported trace is either the old file or the complete new one.
  return AtomicWriteFile(path, LayoutToCsv(service, workload));
}

std::string ResultToJson(const CostService& service,
                         const Workload& workload,
                         const std::string& algorithm, const Config& config,
                         double true_improvement,
                         const MetricsSnapshot* metrics, bool canonical) {
  char buf[64];
  std::string out = "{";
  out += "\"workload\":\"" + workload.name + "\",";
  out += "\"algorithm\":\"" + algorithm + "\",";
  out += "\"budget\":" + std::to_string(service.budget()) + ",";
  out += "\"calls\":" + std::to_string(service.calls_made()) + ",";
  std::snprintf(buf, sizeof(buf), "%.4f", true_improvement);
  out += std::string("\"improvement\":") + buf + ",";
  std::snprintf(buf, sizeof(buf), "%.4f",
                service.DerivedImprovement(config));
  out += std::string("\"derived_improvement\":") + buf + ",";
  out += "\"indexes\":[";
  bool first = true;
  const Database& db = *workload.database;
  for (const Index& ix : service.Materialize(config)) {
    if (!first) out += ",";
    out += "\"" + ix.Name(db) + "\"";
    first = false;
  }
  out += "],";
  CostEngineStats stats = service.EngineStats();
  if (canonical) stats.executor_wall_seconds = 0.0;
  out += "\"engine_stats\":" + stats.ToJson();
  if (metrics != nullptr) {
    out += ",\"metrics\":" + metrics->ToJson();
  }
  out += "}";
  return out;
}

}  // namespace bati
