#include "whatif/derived_cost_index.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/macros.h"

namespace bati {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DerivedCostIndex::DerivedCostIndex(int num_queries, int num_candidates,
                                   int num_shards) {
  BATI_CHECK(num_queries >= 0 && num_candidates >= 0 && num_shards >= 0);
  if (num_shards == 0) num_shards = kDefaultShards;
  // Round up to a power of two so shard_of() is a mask, and never keep more
  // shards than queries (one query per shard is already fully spread).
  size_t shards = 1;
  unsigned bits = 0;
  const size_t cap = static_cast<size_t>(std::max(1, num_queries));
  while (static_cast<int>(shards) < num_shards && shards * 2 <= cap) {
    shards <<= 1;
    ++bits;
  }
  shard_mask_ = shards - 1;
  shard_bits_ = bits;
  shards_ = std::vector<Shard>(shards);
  counters_ = std::vector<ShardCounters>(shards);
  for (size_t s = 0; s < shards; ++s) {
    // Queries landing in shard s: ids with (id & mask) == s.
    const size_t count =
        (static_cast<size_t>(num_queries) + shards - 1 - s) / shards;
    shards_[s].queries.resize(count);
    for (QueryIndex& qi : shards_[s].queries) {
      qi.postings.resize(static_cast<size_t>(num_candidates));
      qi.singleton.assign(static_cast<size_t>(num_candidates),
                          std::numeric_limits<double>::quiet_NaN());
    }
  }
}

const double* DerivedCostIndex::Find(int query_id,
                                     const Config& config) const {
  const QueryIndex& qi = at(query_id);
  auto it = qi.exact.find(config);
  return it == qi.exact.end() ? nullptr : &it->second;
}

void DerivedCostIndex::Add(int query_id, const Config& config,
                           const std::vector<size_t>& positions,
                           double cost) {
  Shard& shard = shards_[shard_of(query_id)];
  std::lock_guard<std::mutex> lock(shard.add_mu);
  QueryIndex& qi = shard.queries[slot_of(query_id)];
  auto [it, inserted] = qi.exact.emplace(config, cost);
  BATI_CHECK(inserted && "cell inserted twice");
  const int32_t id = static_cast<int32_t>(qi.entries.size());
  qi.entries.push_back(Entry{config, cost});
  counters_of(query_id).entries.fetch_add(1, std::memory_order_relaxed);

  // Keep the global ordering and every touched posting list cost-ascending.
  auto cost_less = [&qi](int32_t a, double c) {
    return qi.entries[static_cast<size_t>(a)].cost < c;
  };
  qi.by_cost.insert(
      std::lower_bound(qi.by_cost.begin(), qi.by_cost.end(), cost, cost_less),
      id);
  for (size_t pos : positions) {
    std::vector<int32_t>& list = qi.postings[pos];
    list.insert(std::lower_bound(list.begin(), list.end(), cost, cost_less),
                id);
  }

  if (cost < qi.best_cost) {
    qi.best_cost = cost;
    qi.best_entry = id;
  }
  if (positions.size() == 1) {
    qi.singleton[positions.front()] = cost;
  }
}

double DerivedCostIndex::SubsetMin(int query_id, const Config& config,
                                   double base) const {
  ShardCounters& counters = counters_of(query_id);
  const int64_t lookup_no =
      counters.derived_lookups.fetch_add(1, std::memory_order_relaxed);
  // Deterministic 1-in-64 sampling keyed off the shard's lookup counter:
  // this is the hottest path in the engine (rollout-heavy tuners issue tens
  // of derived lookups per counted call), so both the wall clock and the
  // histogram stay out of 63/64 of the lookups, and whether a lookup is
  // observed never depends on prior observations.
  const bool sampled = (lookup_no & 63) == 0;
  const bool timed = sampled && obs_lookup_wall_us_ != nullptr;
  const double t0 = timed ? NowSeconds() : 0.0;
  const QueryIndex& qi = at(query_id);
  const int64_t total = static_cast<int64_t>(qi.by_cost.size());
  double best = base;
  int64_t scanned = 0;
  // Monotone bound: if even the cheapest cached cell is a subset of C, no
  // other entry can beat it.
  if (qi.best_entry >= 0 && qi.best_cost < base &&
      qi.entries[static_cast<size_t>(qi.best_entry)].config.IsSubsetOf(
          config)) {
    scanned = 1;
    best = qi.best_cost;
  } else {
    for (int32_t id : qi.by_cost) {
      const Entry& e = qi.entries[static_cast<size_t>(id)];
      // Cost-ascending order: once entry costs reach the running best there
      // is nothing left to gain.
      if (e.cost >= best) break;
      ++scanned;
      if (e.config.IsSubsetOf(config)) {
        best = e.cost;
        break;  // first eligible entry in ascending order is the minimum
      }
    }
  }
  counters.scanned_entries.fetch_add(scanned, std::memory_order_relaxed);
  counters.pruned_entries.fetch_add(total - scanned,
                                    std::memory_order_relaxed);
  if (sampled && obs_scan_depth_ != nullptr) {
    obs_scan_depth_->Record(static_cast<double>(scanned));
  }
  if (timed) obs_lookup_wall_us_->Record((NowSeconds() - t0) * 1e6);
  return best;
}

double DerivedCostIndex::SubsetMinWithAdd(int query_id, const Config& config,
                                          size_t pos, double current) const {
  ShardCounters& counters = counters_of(query_id);
  const int64_t lookup_no =
      counters.delta_lookups.fetch_add(1, std::memory_order_relaxed);
  const QueryIndex& qi = at(query_id);
  const std::vector<int32_t>& list = qi.postings[pos];
  double best = current;
  int64_t scanned = 0;
  for (int32_t id : list) {
    const Entry& e = qi.entries[static_cast<size_t>(id)];
    if (e.cost >= best) break;  // cost-ascending posting list
    ++scanned;
    if (e.config.IsSubsetOfWith(config, pos)) {
      best = e.cost;
      break;
    }
  }
  counters.scanned_entries.fetch_add(scanned, std::memory_order_relaxed);
  counters.pruned_entries.fetch_add(
      static_cast<int64_t>(list.size()) - scanned, std::memory_order_relaxed);
  // Same 1-in-64 sampling as SubsetMin, keyed off the shard's delta counter.
  if (obs_delta_scan_depth_ != nullptr && (lookup_no & 63) == 0) {
    obs_delta_scan_depth_->Record(static_cast<double>(scanned));
  }
  return best;
}

double DerivedCostIndex::DeltaAdd(int query_id, const Config& config,
                                  size_t pos, double base) const {
  double current = SubsetMin(query_id, config, base);
  return SubsetMinWithAdd(query_id, config, pos, current) - current;
}

double DerivedCostIndex::SingletonMin(int query_id, const Config& config,
                                      double base) const {
  const QueryIndex& qi = at(query_id);
  double best = base;
  for (size_t pos : config.ToIndices()) {
    double c = qi.singleton[pos];
    if (!std::isnan(c) && c < best) best = c;
  }
  return best;
}

double DerivedCostIndex::SupersetMaxLowerBound(int query_id,
                                               const Config& config,
                                               double floor) const {
  ShardCounters& counters = counters_of(query_id);
  counters.lower_bound_lookups.fetch_add(1, std::memory_order_relaxed);
  const QueryIndex& qi = at(query_id);
  const size_t members = config.count();
  int64_t scanned = 0;
  double bound = floor;
  // Cost-descending: the first superset found carries the maximum cost.
  for (auto it = qi.by_cost.rbegin(); it != qi.by_cost.rend(); ++it) {
    const Entry& e = qi.entries[static_cast<size_t>(*it)];
    ++scanned;
    if (e.config.count() < members) continue;  // cannot contain config
    if (config.IsSubsetOf(e.config)) {
      bound = std::max(bound, e.cost);
      break;
    }
  }
  counters.scanned_entries.fetch_add(scanned, std::memory_order_relaxed);
  counters.pruned_entries.fetch_add(
      static_cast<int64_t>(qi.by_cost.size()) - scanned,
      std::memory_order_relaxed);
  return bound;
}

double DerivedCostIndex::AdditiveLowerBound(int query_id, const Config& config,
                                            double base, double floor) const {
  counters_of(query_id).lower_bound_lookups.fetch_add(
      1, std::memory_order_relaxed);
  const QueryIndex& qi = at(query_id);
  double bound = base;
  for (size_t pos : config.ToIndices()) {
    const double c = qi.singleton[pos];
    if (std::isnan(c)) return floor;  // unknown member: no usable bound
    bound -= std::max(0.0, base - c);
  }
  return std::max(bound, floor);
}

int64_t DerivedCostIndex::entry_count(int query_id) const {
  return static_cast<int64_t>(at(query_id).entries.size());
}

int64_t DerivedCostIndex::total_entries() const {
  int64_t total = 0;
  for (const ShardCounters& c : counters_) {
    total += c.entries.load(std::memory_order_relaxed);
  }
  return total;
}

void DerivedCostIndex::AccumulateStats(CostEngineStats* stats) const {
  // One pass over the shards, each counter read exactly once: the sums form
  // a single consistent snapshot whatever the shard count, so no lookup can
  // be double-counted into the engine stats.
  int64_t derived = 0, delta = 0, scanned = 0, pruned = 0, lower = 0,
          entries = 0;
  for (const ShardCounters& c : counters_) {
    derived += c.derived_lookups.load(std::memory_order_relaxed);
    delta += c.delta_lookups.load(std::memory_order_relaxed);
    scanned += c.scanned_entries.load(std::memory_order_relaxed);
    pruned += c.pruned_entries.load(std::memory_order_relaxed);
    lower += c.lower_bound_lookups.load(std::memory_order_relaxed);
    entries += c.entries.load(std::memory_order_relaxed);
  }
  stats->derived_lookups += derived;
  stats->delta_lookups += delta;
  stats->index_entries += entries;
  stats->index_scanned_entries += scanned;
  stats->index_pruned_entries += pruned;
  stats->lower_bound_lookups += lower;
  stats->index_shards = num_shards();
}

void DerivedCostIndex::SetObservability(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    obs_scan_depth_ = nullptr;
    obs_delta_scan_depth_ = nullptr;
    obs_lookup_wall_us_ = nullptr;
    return;
  }
  obs_scan_depth_ = metrics->GetHistogram("index.scan_depth",
                                          ExponentialBuckets(1.0, 2.0, 20));
  obs_delta_scan_depth_ = metrics->GetHistogram(
      "index.delta_scan_depth", ExponentialBuckets(1.0, 2.0, 20));
  obs_lookup_wall_us_ = metrics->GetHistogram(
      "index.lookup_wall_us", ExponentialBuckets(0.125, 2.0, 24));
}

}  // namespace bati
