#ifndef BATI_WHATIF_BUDGET_METER_H_
#define BATI_WHATIF_BUDGET_METER_H_

#include <cstdint>
#include <vector>

#include "common/bitset.h"

namespace bati {

/// An index configuration: a subset of the candidate-index universe,
/// represented as a bitset over candidate positions.
using Config = DynamicBitset;

/// One what-if call in the order it was issued: an entry of the budget
/// allocation matrix layout (paper Definition 1). The trace of these entries
/// is the layout phi : [B] -> {B_ij}.
struct LayoutEntry {
  int query_id = -1;
  Config config;
  /// Tuner round this call was charged in: 0 before the first BeginRound()
  /// declaration, then the 1-based round counter. Lets spend be attributed
  /// per round (the budget governor's reallocation unit); runs that never
  /// declare rounds simply leave every entry at 0.
  int round = 0;
};

/// The counting layer of the cost engine: owns the what-if call budget B,
/// the number of calls made, the cache-hit counter, and the layout trace.
/// Charging is the single gate every counted optimizer invocation must pass
/// through — the executor never runs a cell the meter did not approve, which
/// is what makes the budget a hard cap even on the batched (multi-threaded)
/// evaluation path: cells are charged sequentially before dispatch.
class BudgetMeter {
 public:
  explicit BudgetMeter(int64_t budget);

  int64_t budget() const { return budget_; }
  int64_t calls_made() const { return calls_made_; }
  int64_t remaining() const { return budget_ - calls_made_; }
  bool HasBudget() const { return calls_made_ < budget_; }
  int64_t cache_hits() const { return cache_hits_; }

  /// Attempts to spend one budget unit on cell (query_id, config). On
  /// success the call is appended to the layout trace and true is returned;
  /// when the budget is exhausted nothing changes and false is returned.
  bool TryCharge(int query_id, const Config& config);

  /// Records a WhatIfCost() request served from cache (free).
  void RecordCacheHit() { ++cache_hits_; }

  /// Declares the start of the next tuner round; subsequent charges carry
  /// the new round tag. Returns the new 1-based round number.
  int BeginRound() { return ++round_; }

  /// The round tag charges are currently stamped with (0 before the first
  /// BeginRound()).
  int current_round() const { return round_; }

  /// The layout trace: every counted what-if call in issue order.
  const std::vector<LayoutEntry>& layout() const { return layout_; }

 private:
  int64_t budget_;
  int64_t calls_made_ = 0;
  int64_t cache_hits_ = 0;
  int round_ = 0;
  std::vector<LayoutEntry> layout_;
};

}  // namespace bati

#endif  // BATI_WHATIF_BUDGET_METER_H_
