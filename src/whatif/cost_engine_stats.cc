#include "whatif/cost_engine_stats.h"

#include <cstdio>

namespace bati {

std::string CostEngineStats::ToString() const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "what-if calls=%lld (cache hits=%lld, batched=%lld), derived "
      "lookups=%lld (+%lld delta), index entries=%lld "
      "(scanned=%lld, pruned=%lld, shards=%d), executor wall=%.3fs, "
      "simulated what-if=%.1fs",
      static_cast<long long>(what_if_calls),
      static_cast<long long>(cache_hits),
      static_cast<long long>(batched_cells),
      static_cast<long long>(derived_lookups),
      static_cast<long long>(delta_lookups),
      static_cast<long long>(index_entries),
      static_cast<long long>(index_scanned_entries),
      static_cast<long long>(index_pruned_entries), index_shards,
      executor_wall_seconds, simulated_whatif_seconds);
  std::string out = buf;
  if (replayed_calls > 0) {
    std::snprintf(buf, sizeof(buf),
                  ", resumed: %lld budget units recovered from checkpoint",
                  static_cast<long long>(replayed_calls));
    out += buf;
  }
  if (degraded_cells > 0 || fault_transient_errors > 0 ||
      fault_sticky_failures > 0 || fault_timeouts > 0 || retry_attempts > 0) {
    std::snprintf(buf, sizeof(buf),
                  ", faults: degraded=%lld, transient=%lld, sticky=%lld, "
                  "timeout=%lld, retries=%lld",
                  static_cast<long long>(degraded_cells),
                  static_cast<long long>(fault_transient_errors),
                  static_cast<long long>(fault_sticky_failures),
                  static_cast<long long>(fault_timeouts),
                  static_cast<long long>(retry_attempts));
    out += buf;
  }
  if (governor_skipped_calls > 0 || governor_stop_round >= 0) {
    std::snprintf(buf, sizeof(buf),
                  ", governor: skipped=%lld (banked=%lld, realloc=%lld)",
                  static_cast<long long>(governor_skipped_calls),
                  static_cast<long long>(governor_banked_calls),
                  static_cast<long long>(governor_reallocated_calls));
    out += buf;
    if (governor_stop_round >= 0) {
      std::snprintf(buf, sizeof(buf), ", stopped at round %d (call %lld)",
                    governor_stop_round,
                    static_cast<long long>(governor_stop_calls));
      out += buf;
    }
  }
  return out;
}

std::string CostEngineStats::ToJson() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"what_if_calls\":%lld,\"cache_hits\":%lld,\"batched_cells\":%lld,"
      "\"derived_lookups\":%lld,\"delta_lookups\":%lld,"
      "\"index_entries\":%lld,\"index_scanned_entries\":%lld,"
      "\"index_pruned_entries\":%lld,\"lower_bound_lookups\":%lld,"
      "\"index_shards\":%d,"
      "\"executor_wall_seconds\":%.6f,"
      "\"simulated_whatif_seconds\":%.3f,"
      "\"degraded_cells\":%lld,\"fault_transient_errors\":%lld,"
      "\"fault_sticky_failures\":%lld,\"fault_timeouts\":%lld,"
      "\"retry_attempts\":%lld,"
      "\"governor_skipped_calls\":%lld,\"governor_banked_calls\":%lld,"
      "\"governor_reallocated_calls\":%lld,\"governor_stop_round\":%d,"
      "\"governor_stop_calls\":%lld}",
      static_cast<long long>(what_if_calls),
      static_cast<long long>(cache_hits),
      static_cast<long long>(batched_cells),
      static_cast<long long>(derived_lookups),
      static_cast<long long>(delta_lookups),
      static_cast<long long>(index_entries),
      static_cast<long long>(index_scanned_entries),
      static_cast<long long>(index_pruned_entries),
      static_cast<long long>(lower_bound_lookups), index_shards,
      executor_wall_seconds, simulated_whatif_seconds,
      static_cast<long long>(degraded_cells),
      static_cast<long long>(fault_transient_errors),
      static_cast<long long>(fault_sticky_failures),
      static_cast<long long>(fault_timeouts),
      static_cast<long long>(retry_attempts),
      static_cast<long long>(governor_skipped_calls),
      static_cast<long long>(governor_banked_calls),
      static_cast<long long>(governor_reallocated_calls),
      governor_stop_round, static_cast<long long>(governor_stop_calls));
  return buf;
}

}  // namespace bati
