#include "whatif/cost_engine_stats.h"

#include <cstdio>

namespace bati {

std::string CostEngineStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "what-if calls=%lld (cache hits=%lld, batched=%lld), derived "
      "lookups=%lld (+%lld delta), index entries=%lld "
      "(scanned=%lld, pruned=%lld), executor wall=%.3fs, simulated "
      "what-if=%.1fs",
      static_cast<long long>(what_if_calls),
      static_cast<long long>(cache_hits),
      static_cast<long long>(batched_cells),
      static_cast<long long>(derived_lookups),
      static_cast<long long>(delta_lookups),
      static_cast<long long>(index_entries),
      static_cast<long long>(index_scanned_entries),
      static_cast<long long>(index_pruned_entries), executor_wall_seconds,
      simulated_whatif_seconds);
  return buf;
}

std::string CostEngineStats::ToJson() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"what_if_calls\":%lld,\"cache_hits\":%lld,\"batched_cells\":%lld,"
      "\"derived_lookups\":%lld,\"delta_lookups\":%lld,"
      "\"index_entries\":%lld,\"index_scanned_entries\":%lld,"
      "\"index_pruned_entries\":%lld,\"executor_wall_seconds\":%.6f,"
      "\"simulated_whatif_seconds\":%.3f}",
      static_cast<long long>(what_if_calls),
      static_cast<long long>(cache_hits),
      static_cast<long long>(batched_cells),
      static_cast<long long>(derived_lookups),
      static_cast<long long>(delta_lookups),
      static_cast<long long>(index_entries),
      static_cast<long long>(index_scanned_entries),
      static_cast<long long>(index_pruned_entries), executor_wall_seconds,
      simulated_whatif_seconds);
  return buf;
}

}  // namespace bati
