#ifndef BATI_WHATIF_COST_ENGINE_STATS_H_
#define BATI_WHATIF_COST_ENGINE_STATS_H_

#include <cstdint>
#include <string>

namespace bati {

/// Observability counters for the layered cost engine (BudgetMeter,
/// WhatIfExecutor, DerivedCostIndex behind the CostService façade). Cheap to
/// copy; assembled on demand by CostService::EngineStats() and surfaced by
/// the harness and the CLI tools.
struct CostEngineStats {
  /// Counted what-if optimizer invocations (budget units spent).
  int64_t what_if_calls = 0;
  /// WhatIfCost() requests answered from the exact-cell cache.
  int64_t cache_hits = 0;
  /// Cells evaluated through the batched CostMany() entry point (subset of
  /// what_if_calls).
  int64_t batched_cells = 0;
  /// Full subset-minimum derived-cost lookups (Equation 1 evaluations).
  int64_t derived_lookups = 0;
  /// Incremental delta lookups (DeltaAdd / posting-list probes).
  int64_t delta_lookups = 0;
  /// Cached cells currently indexed (sum over queries).
  int64_t index_entries = 0;
  /// Entries a linear Equation-1 scan would have visited but the index
  /// skipped via the cost-ascending order and the monotone best-so-far
  /// bound.
  int64_t index_pruned_entries = 0;
  /// Entries actually examined by subset-minimum lookups.
  int64_t index_scanned_entries = 0;
  /// Cost lower-bound lookups (superset-max / additive probes issued on
  /// behalf of the budget governor).
  int64_t lower_bound_lookups = 0;
  /// Power-of-two shard count of the DerivedCostIndex that produced these
  /// counters (0 when no index contributed a snapshot).
  int index_shards = 0;
  /// Real wall-clock seconds spent inside the executor (optimizer calls,
  /// including the parallel CostMany() path).
  double executor_wall_seconds = 0.0;
  /// Simulated server-side what-if seconds (paper Figure 2 accounting).
  double simulated_whatif_seconds = 0.0;

  // ---- Crash recovery (zero unless the run resumed from a checkpoint).
  /// Budget units recovered by resuming: charged what-if calls answered
  /// from the checkpoint journal instead of re-spending the optimizer.
  /// Deliberately absent from ToJson(): a resumed run's result line must
  /// stay byte-identical to the uninterrupted run's (the fleet's recovery
  /// property), so recovery accounting lives in ToString(), the fleet
  /// coordinator's summary, and programmatic consumers only.
  int64_t replayed_calls = 0;

  // ---- Fault tolerance (all zero when fault injection is off). ----
  /// Cells that exhausted their retries and were answered with the derived
  /// cost d(q, C) instead of a what-if evaluation (never charged).
  int64_t degraded_cells = 0;
  /// Failed what-if attempts by kind, as observed by the retry loop.
  int64_t fault_transient_errors = 0;
  int64_t fault_sticky_failures = 0;
  int64_t fault_timeouts = 0;
  /// Retries issued (every attempt after a cell's first).
  int64_t retry_attempts = 0;

  // ---- Budget-governor decisions (all zero / -1 when ungoverned). ----
  /// What-if calls the governor skipped (budget units banked at the time).
  int64_t governor_skipped_calls = 0;
  /// Banked units still unspent at the end of the run.
  int64_t governor_banked_calls = 0;
  /// Banked units re-spent on calls an ungoverned FCFS run could not have
  /// afforded (skipped == banked + reallocated).
  int64_t governor_reallocated_calls = 0;
  /// Tuner round at which early stopping fired; -1 when it never did.
  int governor_stop_round = -1;
  /// Charged calls at the moment early stopping fired; -1 when it never
  /// did.
  int64_t governor_stop_calls = -1;

  /// One-line human-readable rendering, e.g. for CLI output. Governor and
  /// fault counters are appended only when they are nonzero.
  std::string ToString() const;
  /// Machine-readable JSON object with one field per counter (governor
  /// fields always present, so the schema is stable).
  std::string ToJson() const;
};

}  // namespace bati

#endif  // BATI_WHATIF_COST_ENGINE_STATS_H_
