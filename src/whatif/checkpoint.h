#ifndef BATI_WHATIF_CHECKPOINT_H_
#define BATI_WHATIF_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace bati {

/// One entry of the cost engine's event journal: a what-if cell the engine
/// *attempted* — either charged against the budget and cached (`charged`)
/// or degraded to the derived cost after exhausting its retries. Cache
/// hits, governor skips, and budget-exhausted refusals are not journaled:
/// they are deterministic functions of the replayed state.
struct CheckpointEvent {
  bool charged = true;
  int query_id = -1;
  /// Round tag at attempt time (0 before the first BeginRound()).
  int round = 0;
  /// The evaluated what-if cost; meaningful only when `charged`.
  double cost = 0.0;
  /// Simulated seconds the attempt(s) burned, retries and backoff included.
  double sim_seconds = 0.0;
  /// The configuration's member positions, ascending (never empty: empty
  /// configurations are answered by the base cost, uncharged).
  std::vector<size_t> positions;

  bool operator==(const CheckpointEvent& other) const = default;
};

/// A crash-consistent snapshot of the cost engine at a BeginRound()
/// boundary. Resume rebuilds the engine by *deterministic replay*: the
/// tuner re-runs from its seed while the engine answers the journaled
/// attempts from the checkpoint instead of invoking the optimizer, so the
/// derived-cost cache, budget meter, governor, and improvement curve all
/// evolve exactly as in the original run — the head-of-line counters below
/// are the integrity check that the replay converged on the recorded state.
struct EngineCheckpoint {
  std::string identity;  ///< caller-supplied run identity, verified on resume
  int num_queries = 0;
  int num_candidates = 0;
  int64_t budget = 0;
  int round = 0;  ///< the BeginRound() value at capture (>= 1)
  int64_t calls_made = 0;
  int64_t cache_hits = 0;
  int64_t degraded_cells = 0;
  /// Cells that went through live batch execution up to the capture point.
  /// Replay answers journaled cells without the executor, so resume must
  /// restore this directly for a resumed run's stats (and result line) to
  /// match the clean run's byte for byte.
  int64_t batched_cells = 0;
  double sim_seconds = 0.0;
  // Fault-tolerance counters (all zero for fault-free runs). Replay never
  // consults the fault injector, so resume restores these directly.
  int64_t fault_transient = 0;
  int64_t fault_sticky = 0;
  int64_t fault_timeouts = 0;
  int64_t retry_attempts = 0;
  // Governor counters (all zero / -1 for ungoverned runs).
  int64_t governor_skipped = 0;
  int64_t governor_banked = 0;
  int64_t governor_reallocated = 0;
  int governor_stop_round = -1;
  int64_t governor_stop_calls = -1;
  /// Every attempted cell up to the capture point, in attempt order.
  std::vector<CheckpointEvent> events;
};

/// Hex-float round-trip helpers, shared with the other checkpoint writers
/// (the serve daemon's state file): "%a" formatting parses back bit-exactly
/// through strtod, which is what makes text checkpoints resumable without
/// drift.
void AppendHexDouble(std::string* out, double value);
bool ParseHexDouble(const std::string& token, double* out);

/// Serializes a checkpoint to its line-based text form (format v2). Costs
/// and simulated seconds are written as hexadecimal floats, so parsing
/// round-trips every double bit-exactly — a requirement for bit-identical
/// resume. The header carries a `checksum <crc32> <bytes>` line covering
/// the whole body, so truncation or bit corruption anywhere in the file is
/// detected up front.
std::string SerializeCheckpoint(const EngineCheckpoint& ckpt);

/// Parses SerializeCheckpoint() output, validating the version + checksum
/// header first and then internal consistency (event counts against the
/// header counters, the simulated-seconds sum, position ordering and
/// ranges). Any truncated, garbled, or tampered input yields a clear
/// InvalidArgument — never a silently shortened journal.
StatusOr<EngineCheckpoint> ParseCheckpoint(const std::string& text);

/// Writes the checkpoint to `path` through the shared write-temp-then-
/// rename helper, so a crash mid-write never leaves a truncated file.
Status SaveCheckpoint(const EngineCheckpoint& ckpt, const std::string& path);

/// Reads and parses a checkpoint file.
StatusOr<EngineCheckpoint> LoadCheckpoint(const std::string& path);

}  // namespace bati

#endif  // BATI_WHATIF_CHECKPOINT_H_
