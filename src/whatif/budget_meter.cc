#include "whatif/budget_meter.h"

#include "common/macros.h"

namespace bati {

BudgetMeter::BudgetMeter(int64_t budget) : budget_(budget) {
  BATI_CHECK(budget_ >= 0);
}

bool BudgetMeter::TryCharge(int query_id, const Config& config) {
  if (!HasBudget()) return false;
  ++calls_made_;
  layout_.push_back(LayoutEntry{query_id, config, round_});
  return true;
}

}  // namespace bati
