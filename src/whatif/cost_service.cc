#include "whatif/cost_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/macros.h"

namespace bati {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CostService::CostService(const WhatIfOptimizer* optimizer,
                         const Workload* workload,
                         const std::vector<Index>* candidates, int64_t budget)
    : CostService(optimizer, workload, candidates, budget,
                  CostEngineOptions{}) {}

CostService::CostService(const WhatIfOptimizer* optimizer,
                         const Workload* workload,
                         const std::vector<Index>* candidates, int64_t budget,
                         const BudgetGovernorOptions& governor)
    : CostService(optimizer, workload, candidates, budget,
                  [&governor] {
                    CostEngineOptions o;
                    o.governor = governor;
                    return o;
                  }()) {}

CostService::CostService(const WhatIfOptimizer* optimizer,
                         const Workload* workload,
                         const std::vector<Index>* candidates, int64_t budget,
                         const CostEngineOptions& options)
    : optimizer_(optimizer),
      workload_(workload),
      candidates_(candidates),
      meter_(budget),
      executor_(optimizer, workload, candidates),
      index_(workload == nullptr ? 0 : workload->num_queries(),
             candidates == nullptr
                 ? 0
                 : static_cast<int>(candidates->size()),
             options.index_shards),
      options_(options) {
  BATI_CHECK(optimizer_ != nullptr);
  BATI_CHECK(workload_ != nullptr);
  BATI_CHECK(candidates_ != nullptr);
  BATI_CHECK(budget >= 0);
  const int m = workload_->num_queries();
  base_costs_.resize(static_cast<size_t>(m));
  const std::vector<Index> no_indexes;
  for (int q = 0; q < m; ++q) {
    base_costs_[static_cast<size_t>(q)] =
        optimizer_->Cost(workload_->queries[static_cast<size_t>(q)],
                         no_indexes);
    base_workload_cost_ += base_costs_[static_cast<size_t>(q)];
  }
  floor_costs_ = base_costs_;
  floor_workload_cost_ = base_workload_cost_;
  if (options_.governor.enabled) {
    governor_ = std::make_unique<BudgetGovernor>(options_.governor, budget,
                                                 base_workload_cost_);
  }
  if (options_.whatif_pool_size > 0) {
    executor_.SetPoolSize(static_cast<size_t>(options_.whatif_pool_size));
  }
  if (options_.faults.enabled) {
    injector_ = std::make_unique<FaultInjector>(options_.faults);
    executor_.ConfigureFaults(injector_.get(), options_.retry);
  }
  journal_enabled_ =
      !options_.checkpoint_path.empty() || options_.capture_checkpoints;
  metrics_ = options_.metrics;
  tracer_ = options_.tracer;
  if (metrics_ != nullptr || tracer_ != nullptr) {
    executor_.SetObservability(metrics_, tracer_);
    index_.SetObservability(metrics_);
    if (governor_ != nullptr) governor_->SetObservability(metrics_);
  }
  if (metrics_ != nullptr) {
    obs_rounds_ = metrics_->GetCounter("tuner.rounds");
    obs_round_wall_us_ = metrics_->GetHistogram(
        "tuner.round_wall_us", ExponentialBuckets(1.0, 2.0, 32));
    obs_round_sim_s_ = metrics_->GetHistogram(
        "tuner.round_sim_s", ExponentialBuckets(1e-3, 2.0, 28));
    obs_checkpoint_wall_us_ = metrics_->GetHistogram(
        "checkpoint.write_wall_us", ExponentialBuckets(1.0, 2.0, 28));
  }
}

int CostService::BeginRound() { return BeginRound(nullptr); }

int CostService::BeginRound(const char* phase) {
  const int round = meter_.BeginRound();
  if (metrics_ != nullptr || tracer_ != nullptr) {
    ObserveRoundBoundary(phase, round);
  }
  if (governor_ != nullptr) {
    governor_->OnRound(round, meter_.calls_made(), meter_.remaining(),
                       floor_workload_cost_);
    if (tracer_ != nullptr && governor_->ShouldStop() && !stop_traced_) {
      stop_traced_ = true;
      const GovernorStats g = governor_->stats();
      tracer_->Instant(
          "governor.stop", "governor", executor_.simulated_seconds(),
          {{"round", static_cast<double>(g.stop_round)},
           {"calls", static_cast<double>(g.stop_calls)},
           {"remaining_ub_pct", g.remaining_improvement_ub_pct}});
    }
  }
  if (pending_resume_verify_ && !replaying()) {
    // Resume flips to live execution at the checkpointed round boundary:
    // the replayed prefix must have consumed the whole journal by then, and
    // the rebuilt state must match the recorded counters exactly.
    BATI_CHECK(round <= resume_header_.round &&
               "replayed run overran the checkpointed round");
    if (round == resume_header_.round) {
      VerifyResumeState();
      pending_resume_verify_ = false;
      if (tracer_ != nullptr) {
        tracer_->Instant(
            "checkpoint.replay_complete", "checkpoint",
            executor_.simulated_seconds(),
            {{"round", static_cast<double>(round)},
             {"events", static_cast<double>(replay_pos_)}});
      }
    }
  }
  if (journal_enabled_ && !replaying() && !pending_resume_verify_) {
    MaybeWriteCheckpoint();
  }
  if (options_.faults.crash_at_round == round && !replaying() &&
      (!resumed_ || round > resume_header_.round)) {
    // Named crash point "round-N": the checkpoint for this boundary is on
    // disk; die abruptly, skipping destructors, like a real crash would.
    std::fprintf(stderr,
                 "bati: simulated crash at round %d (checkpoint written)\n",
                 round);
    std::fflush(stderr);
    std::_Exit(42);
  }
  return round;
}

CellQuote CostService::MakeQuote(int query_id, const Config& config) const {
  CellQuote quote;
  quote.query_id = query_id;
  quote.base_cost = BaseCost(query_id);
  quote.calls_made = meter_.calls_made();
  quote.remaining_budget = meter_.remaining();
  if (!governor_->WantsCostBounds()) {
    // Early-stop-only governor: OnCell never consults the bracket, so the
    // bound probes would be pure overhead.
    quote.derived_upper = quote.base_cost;
    quote.cost_lower = 0.0;
    return quote;
  }
  quote.derived_upper = index_.SubsetMin(query_id, config, quote.base_cost);
  const double lb =
      std::max(index_.SupersetMaxLowerBound(query_id, config),
               index_.AdditiveLowerBound(query_id, config, quote.base_cost));
  // Clamp: the additive bound is heuristic and must never invert the
  // bracket (a negative gap would make zero-threshold skipping fire).
  quote.cost_lower = std::min(std::max(lb, 0.0), quote.derived_upper);
  return quote;
}

void CostService::NoteEvaluated(int query_id, double cost) {
  double& floor = floor_costs_[static_cast<size_t>(query_id)];
  if (cost < floor) {
    floor_workload_cost_ -= floor - cost;
    floor = cost;
  }
}

void CostService::RecordEvent(bool charged, int query_id,
                              const std::vector<size_t>& positions,
                              double cost, double sim_seconds) {
  CheckpointEvent e;
  e.charged = charged;
  e.query_id = query_id;
  e.round = meter_.current_round();
  e.cost = cost;
  e.sim_seconds = sim_seconds;
  e.positions = positions;
  journal_.push_back(std::move(e));
}

CheckpointEvent CostService::PopReplayEvent(
    int query_id, const std::vector<size_t>& positions) {
  BATI_CHECK(replay_pos_ < replay_end_ &&
             "checkpoint journal exhausted before the checkpointed round");
  CheckpointEvent e = journal_[replay_pos_];
  if (e.query_id != query_id || e.positions != positions) {
    std::fprintf(stderr,
                 "bati: checkpoint replay diverged at event %zu: recorded "
                 "q%d, replayed q%d\n",
                 replay_pos_, e.query_id, query_id);
  }
  BATI_CHECK(e.query_id == query_id && e.positions == positions &&
             "checkpoint replay diverged from the recorded run");
  ++replay_pos_;
  executor_.AccumulateReplaySimSeconds(e.sim_seconds);
  return e;
}

double CostService::DegradeCell(int query_id, const Config& config) {
  ++degraded_cells_;
  if (tracer_ != nullptr) {
    tracer_->Instant("whatif.degraded", "fault",
                     executor_.simulated_seconds(),
                     {{"query", static_cast<double>(query_id)},
                      {"config_size", static_cast<double>(config.count())}});
  }
  return index_.SubsetMin(query_id, config, BaseCost(query_id));
}

double CostService::BaseCost(int query_id) const {
  return base_costs_.at(static_cast<size_t>(query_id));
}

std::optional<double> CostService::WhatIfCost(int query_id,
                                              const Config& config) {
  BATI_CHECK(query_id >= 0 && query_id < num_queries());
  if (config.empty()) return BaseCost(query_id);
  if (const double* cached = index_.Find(query_id, config)) {
    meter_.RecordCacheHit();
    return *cached;
  }
  CellQuote quote;
  if (governor_ != nullptr) {
    if (governor_->ShouldStop()) return std::nullopt;
    quote = MakeQuote(query_id, config);
    if (governor_->OnCell(quote) == CellDecision::kSkip) {
      if (tracer_ != nullptr) TraceGovernorSkip(quote);
      return quote.derived_upper;  // free: the budget unit is banked
    }
  }
  if (!FaultsEnabled()) {
    // Fault-free path, charge-then-evaluate: bit-identical to the
    // pre-fault engine. Replay substitutes only the evaluation.
    if (!meter_.TryCharge(query_id, config)) return std::nullopt;
    const std::vector<size_t> positions = config.ToIndices();
    double cost;
    if (replaying()) {
      const CheckpointEvent e = PopReplayEvent(query_id, positions);
      BATI_CHECK(e.charged);
      cost = e.cost;
    } else {
      cost = executor_.EvaluateCell(query_id, positions);
      if (journal_enabled_) {
        RecordEvent(/*charged=*/true, query_id, positions, cost,
                    optimizer_->EstimateCallSeconds(
                        workload_->queries[static_cast<size_t>(query_id)]));
      }
    }
    index_.Add(query_id, config, positions, cost);
    NoteEvaluated(query_id, cost);
    if (governor_ != nullptr) {
      governor_->OnCharged(quote, cost, floor_workload_cost_);
    }
    return cost;
  }
  // Fault-injected path, evaluate-then-charge: the retry loop burns
  // simulated time whether or not it succeeds, but the budget (and the
  // layout trace) records only successful cells. Exhausted retries degrade
  // to the derived cost — the same answer a governor skip gives — so the
  // caller never sees a failure.
  if (!meter_.HasBudget()) return std::nullopt;
  const std::vector<size_t> positions = config.ToIndices();
  bool success;
  double cost = 0.0;
  if (replaying()) {
    const CheckpointEvent e = PopReplayEvent(query_id, positions);
    success = e.charged;
    cost = e.cost;
  } else {
    const CellOutcome outcome =
        executor_.EvaluateCellWithRetry(query_id, positions, config.Hash());
    success = outcome.status.ok();
    cost = outcome.cost;
    if (journal_enabled_) {
      RecordEvent(success, query_id, positions, success ? cost : 0.0,
                  outcome.sim_seconds);
    }
  }
  if (!success) return DegradeCell(query_id, config);
  const bool charged = meter_.TryCharge(query_id, config);
  BATI_CHECK(charged);  // HasBudget() held and nothing charged in between
  index_.Add(query_id, config, positions, cost);
  NoteEvaluated(query_id, cost);
  if (governor_ != nullptr) {
    governor_->OnCharged(quote, cost, floor_workload_cost_);
  }
  return cost;
}

std::vector<std::optional<double>> CostService::WhatIfCostMany(
    const std::vector<int>& query_ids, const Config& config) {
  std::vector<std::optional<double>> out(query_ids.size());
  if (config.empty()) {
    for (size_t i = 0; i < query_ids.size(); ++i) {
      out[i] = BaseCost(query_ids[i]);
    }
    return out;
  }
  if (FaultsEnabled()) {
    WhatIfCostManyFaulted(query_ids, config, &out);
    return out;
  }
  // Charge sequentially in input order — exactly the cells a WhatIfCost()
  // loop would buy — and collect the uncached, affordable ones. Governed
  // runs consult the governor per cell before charging; skip decisions
  // quote the cache as of batch entry (see header).
  std::vector<WhatIfExecutor::CellRef> to_run;
  std::vector<size_t> run_slots;  // out[] slot of each cell in to_run
  std::vector<CellQuote> run_quotes;  // governed runs: quote per to_run cell
  // (duplicate slot, first-occurrence slot): a repeated query later in the
  // batch is a cache hit in loop semantics.
  std::vector<std::pair<size_t, size_t>> duplicates;
  for (size_t i = 0; i < query_ids.size(); ++i) {
    const int q = query_ids[i];
    BATI_CHECK(q >= 0 && q < num_queries());
    if (const double* cached = index_.Find(q, config)) {
      meter_.RecordCacheHit();
      out[i] = *cached;
      continue;
    }
    size_t first = to_run.size();
    for (size_t j = 0; j < to_run.size(); ++j) {
      if (to_run[j].query_id == q) {
        first = j;
        break;
      }
    }
    if (first < to_run.size()) {
      meter_.RecordCacheHit();
      duplicates.emplace_back(i, run_slots[first]);
      continue;
    }
    if (governor_ != nullptr) {
      if (governor_->ShouldStop()) continue;  // nullopt: stopped
      CellQuote quote = MakeQuote(q, config);
      if (governor_->OnCell(quote) == CellDecision::kSkip) {
        if (tracer_ != nullptr) TraceGovernorSkip(quote);
        out[i] = quote.derived_upper;
        continue;
      }
      if (!meter_.TryCharge(q, config)) continue;  // nullopt: exhausted
      to_run.push_back(WhatIfExecutor::CellRef{q, &config});
      run_slots.push_back(i);
      run_quotes.push_back(quote);
      continue;
    }
    if (!meter_.TryCharge(q, config)) continue;  // nullopt: exhausted
    to_run.push_back(WhatIfExecutor::CellRef{q, &config});
    run_slots.push_back(i);
  }
  if (!to_run.empty()) {
    const std::vector<size_t> positions = config.ToIndices();
    // Whether this batch is replayed is decided once: the journal can run
    // out only at the batch's last attempt, and the cells after the pop
    // loop must not re-journal a replayed batch.
    const bool replay_batch = replaying();
    std::vector<double> costs;
    if (replay_batch) {
      costs.reserve(to_run.size());
      for (const WhatIfExecutor::CellRef& cell : to_run) {
        const CheckpointEvent e = PopReplayEvent(cell.query_id, positions);
        BATI_CHECK(e.charged);
        costs.push_back(e.cost);
      }
    } else {
      costs = executor_.EvaluateCells(to_run);
    }
    for (size_t j = 0; j < to_run.size(); ++j) {
      index_.Add(to_run[j].query_id, config, positions, costs[j]);
      NoteEvaluated(to_run[j].query_id, costs[j]);
      if (governor_ != nullptr) {
        governor_->OnCharged(run_quotes[j], costs[j], floor_workload_cost_);
      }
      if (journal_enabled_ && !replay_batch) {
        RecordEvent(
            /*charged=*/true, to_run[j].query_id, positions, costs[j],
            optimizer_->EstimateCallSeconds(
                workload_->queries[static_cast<size_t>(to_run[j].query_id)]));
      }
      out[run_slots[j]] = costs[j];
    }
  }
  for (const auto& [slot, source] : duplicates) out[slot] = out[source];
  return out;
}

void CostService::WhatIfCostManyFaulted(
    const std::vector<int>& query_ids, const Config& config,
    std::vector<std::optional<double>>* out_ptr) {
  std::vector<std::optional<double>>& out = *out_ptr;
  // Stage 1 — classify, without charging: cache hits, duplicates, governor
  // skips/stops. Pending cells are the distinct uncached ones, in input
  // order.
  struct PendingCell {
    size_t slot = 0;  // out[] slot of the first occurrence
    int query_id = -1;
    CellQuote quote;
  };
  std::vector<PendingCell> pending;
  // (duplicate slot, pending index): resolved after evaluation from the
  // first occurrence's outcome.
  std::vector<std::pair<size_t, size_t>> duplicates;
  for (size_t i = 0; i < query_ids.size(); ++i) {
    const int q = query_ids[i];
    BATI_CHECK(q >= 0 && q < num_queries());
    if (const double* cached = index_.Find(q, config)) {
      meter_.RecordCacheHit();
      out[i] = *cached;
      continue;
    }
    size_t first = pending.size();
    for (size_t j = 0; j < pending.size(); ++j) {
      if (pending[j].query_id == q) {
        first = j;
        break;
      }
    }
    if (first < pending.size()) {
      duplicates.emplace_back(i, first);
      continue;
    }
    PendingCell cell;
    cell.slot = i;
    cell.query_id = q;
    if (governor_ != nullptr) {
      if (governor_->ShouldStop()) continue;  // nullopt: stopped
      cell.quote = MakeQuote(q, config);
      if (governor_->OnCell(cell.quote) == CellDecision::kSkip) {
        if (tracer_ != nullptr) TraceGovernorSkip(cell.quote);
        out[i] = cell.quote.derived_upper;
        continue;
      }
    }
    pending.push_back(std::move(cell));
  }
  // Stage 2 — evaluate-then-commit in budget-sized chunks. Budget is
  // charged only on success, so the batch attempts up to `remaining` cells
  // concurrently, commits in input order, and attempts the next chunk if
  // failures left budget unspent — reproducing exactly the attempt set of
  // the sequential WhatIfCost() loop (outcomes are per-cell pure).
  enum : char { kUnresolved = 0, kCharged = 1, kDegraded = 2 };
  std::vector<char> state(pending.size(), kUnresolved);
  if (!pending.empty()) {
    const std::vector<size_t> positions = config.ToIndices();
    const bool replay_batch = replaying();
    size_t next = 0;
    while (next < pending.size() && meter_.HasBudget()) {
      const size_t take =
          std::min(pending.size() - next,
                   static_cast<size_t>(meter_.remaining()));
      std::vector<CellOutcome> outcomes;
      if (!replay_batch) {
        std::vector<WhatIfExecutor::CellRef> refs;
        refs.reserve(take);
        for (size_t j = next; j < next + take; ++j) {
          refs.push_back(WhatIfExecutor::CellRef{pending[j].query_id,
                                                 &config});
        }
        outcomes = executor_.EvaluateCellsWithRetry(refs);
      }
      for (size_t j = 0; j < take; ++j) {
        PendingCell& cell = pending[next + j];
        bool success;
        double cost = 0.0;
        if (replay_batch) {
          const CheckpointEvent e = PopReplayEvent(cell.query_id, positions);
          success = e.charged;
          cost = e.cost;
        } else {
          const CellOutcome& o = outcomes[j];
          success = o.status.ok();
          cost = o.cost;
          if (journal_enabled_) {
            RecordEvent(success, cell.query_id, positions,
                        success ? cost : 0.0, o.sim_seconds);
          }
        }
        if (success) {
          const bool charged = meter_.TryCharge(cell.query_id, config);
          BATI_CHECK(charged);  // the chunk never exceeds remaining budget
          index_.Add(cell.query_id, config, positions, cost);
          NoteEvaluated(cell.query_id, cost);
          if (governor_ != nullptr) {
            governor_->OnCharged(cell.quote, cost, floor_workload_cost_);
          }
          out[cell.slot] = cost;
          state[next + j] = kCharged;
        } else {
          out[cell.slot] = DegradeCell(cell.query_id, config);
          state[next + j] = kDegraded;
        }
      }
      next += take;
    }
  }
  // Stage 3 — duplicates copy their first occurrence's answer: a cache hit
  // when it was charged, the same degraded answer when it degraded, nullopt
  // when the budget ran out before it was attempted.
  for (const auto& [slot, pidx] : duplicates) {
    if (state[pidx] == kCharged) {
      meter_.RecordCacheHit();
      out[slot] = out[pending[pidx].slot];
    } else if (state[pidx] == kDegraded) {
      out[slot] = out[pending[pidx].slot];
    }
  }
}

Status CostService::ResumeFromCheckpoint(const EngineCheckpoint& ckpt) {
  if (resumed_ || meter_.calls_made() != 0 || meter_.current_round() != 0 ||
      meter_.cache_hits() != 0 || !journal_.empty()) {
    return Status::FailedPrecondition(
        "resume requires a freshly constructed cost service");
  }
  if (ckpt.identity != options_.run_identity) {
    return Status::InvalidArgument(
        "checkpoint identity mismatch: checkpoint is \"" + ckpt.identity +
        "\", this run is \"" + options_.run_identity + "\"");
  }
  if (ckpt.budget != meter_.budget()) {
    return Status::InvalidArgument("checkpoint budget mismatch");
  }
  if (ckpt.num_queries != num_queries() ||
      ckpt.num_candidates != num_candidates()) {
    return Status::InvalidArgument("checkpoint workload shape mismatch");
  }
  if ((ckpt.governor_skipped > 0 || ckpt.governor_stop_round >= 0) &&
      governor_ == nullptr) {
    return Status::InvalidArgument(
        "checkpoint records governor activity but this run is ungoverned");
  }
  journal_ = ckpt.events;
  replay_pos_ = 0;
  replay_end_ = journal_.size();
  executor_.RestoreFaultCounters(ckpt.fault_transient, ckpt.fault_sticky,
                                 ckpt.fault_timeouts, ckpt.retry_attempts);
  resume_header_ = ckpt;
  resume_header_.events.clear();
  resumed_ = true;
  pending_resume_verify_ = true;
  return Status::Ok();
}

Status CostService::ResumeFromFile(const std::string& path) {
  StatusOr<EngineCheckpoint> ckpt = LoadCheckpoint(path);
  if (!ckpt.ok()) return ckpt.status();
  return ResumeFromCheckpoint(*ckpt);
}

EngineCheckpoint CostService::MakeCheckpoint() const {
  BATI_CHECK(journal_enabled_ &&
             "checkpointing requires an armed event journal");
  EngineCheckpoint ckpt;
  ckpt.identity = options_.run_identity;
  ckpt.num_queries = num_queries();
  ckpt.num_candidates = num_candidates();
  ckpt.budget = meter_.budget();
  ckpt.round = meter_.current_round();
  ckpt.calls_made = meter_.calls_made();
  ckpt.cache_hits = meter_.cache_hits();
  ckpt.degraded_cells = degraded_cells_;
  // Replay answers journaled cells without the executor, so a resumed run's
  // live batch count excludes everything before the resume point; carry the
  // header's count forward so checkpoint chains stay cumulative.
  ckpt.batched_cells =
      executor_.batched_cells() + (resumed_ ? resume_header_.batched_cells : 0);
  ckpt.sim_seconds = executor_.simulated_seconds();
  ckpt.fault_transient = executor_.transient_faults();
  ckpt.fault_sticky = executor_.sticky_faults();
  ckpt.fault_timeouts = executor_.timeout_faults();
  ckpt.retry_attempts = executor_.retry_attempts();
  if (governor_ != nullptr) {
    const GovernorStats g = governor_->stats();
    ckpt.governor_skipped = g.skipped_calls;
    ckpt.governor_banked = g.banked_calls;
    ckpt.governor_reallocated = g.reallocated_calls;
    ckpt.governor_stop_round = g.stop_round;
    ckpt.governor_stop_calls = g.stop_calls;
  }
  ckpt.events = journal_;
  return ckpt;
}

void CostService::VerifyResumeState() const {
  const EngineCheckpoint& c = resume_header_;
  bool ok = meter_.calls_made() == c.calls_made &&
            meter_.cache_hits() == c.cache_hits &&
            degraded_cells_ == c.degraded_cells &&
            executor_.simulated_seconds() == c.sim_seconds &&
            executor_.transient_faults() == c.fault_transient &&
            executor_.sticky_faults() == c.fault_sticky &&
            executor_.timeout_faults() == c.fault_timeouts &&
            executor_.retry_attempts() == c.retry_attempts;
  if (governor_ != nullptr) {
    const GovernorStats g = governor_->stats();
    ok = ok && g.skipped_calls == c.governor_skipped &&
         g.banked_calls == c.governor_banked &&
         g.reallocated_calls == c.governor_reallocated &&
         g.stop_round == c.governor_stop_round &&
         g.stop_calls == c.governor_stop_calls;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "bati: resumed state diverged from checkpoint at round %d "
                 "(calls %lld vs %lld, hits %lld vs %lld, degraded %lld vs "
                 "%lld)\n",
                 c.round, static_cast<long long>(meter_.calls_made()),
                 static_cast<long long>(c.calls_made),
                 static_cast<long long>(meter_.cache_hits()),
                 static_cast<long long>(c.cache_hits),
                 static_cast<long long>(degraded_cells_),
                 static_cast<long long>(c.degraded_cells));
  }
  BATI_CHECK(ok && "resumed state diverged from checkpoint");
}

void CostService::MaybeWriteCheckpoint() {
  const double start = NowSeconds();
  const EngineCheckpoint ckpt = MakeCheckpoint();
  if (options_.capture_checkpoints) {
    captured_checkpoints_.push_back(SerializeCheckpoint(ckpt));
  }
  if (!options_.checkpoint_path.empty()) {
    const Status st = SaveCheckpoint(ckpt, options_.checkpoint_path);
    if (!st.ok()) {
      std::fprintf(stderr, "bati: checkpoint write failed: %s\n",
                   st.ToString().c_str());
      if (checkpoint_status_.ok()) checkpoint_status_ = st;
    }
  }
  const double wall_us = (NowSeconds() - start) * 1e6;
  if (obs_checkpoint_wall_us_ != nullptr) {
    obs_checkpoint_wall_us_->Record(wall_us);
  }
  if (tracer_ != nullptr) {
    tracer_->Complete("checkpoint.write", "checkpoint",
                      tracer_->NowUs() - wall_us, wall_us,
                      executor_.simulated_seconds(), 0.0,
                      {{"round", static_cast<double>(ckpt.round)},
                       {"events", static_cast<double>(ckpt.events.size())},
                       {"calls", static_cast<double>(ckpt.calls_made)}});
  }
}

bool CostService::IsKnown(int query_id, const Config& config) const {
  if (config.empty()) return true;
  return index_.Find(query_id, config) != nullptr;
}

std::optional<double> CostService::CachedCost(int query_id,
                                              const Config& config) const {
  if (config.empty()) return BaseCost(query_id);
  const double* cached = index_.Find(query_id, config);
  if (cached == nullptr) return std::nullopt;
  return *cached;
}

double CostService::DerivedCost(int query_id, const Config& config) const {
  return index_.SubsetMin(query_id, config, BaseCost(query_id));
}

std::vector<double> CostService::DerivedCosts(const Config& config) const {
  std::vector<double> out(static_cast<size_t>(num_queries()));
  for (int q = 0; q < num_queries(); ++q) {
    out[static_cast<size_t>(q)] = index_.SubsetMin(q, config, BaseCost(q));
  }
  return out;
}

double CostService::DerivedWorkloadCost(const Config& config) const {
  double total = 0.0;
  for (int q = 0; q < num_queries(); ++q) total += DerivedCost(q, config);
  return total;
}

double CostService::DerivedCostWithAdd(int query_id, const Config& config,
                                       size_t pos,
                                       double current_derived) const {
  return index_.SubsetMinWithAdd(query_id, config, pos, current_derived);
}

double CostService::DerivedCostDeltaAdd(int query_id, const Config& config,
                                        size_t pos) const {
  return index_.DeltaAdd(query_id, config, pos, BaseCost(query_id));
}

double CostService::SingletonDerivedCost(int query_id,
                                         const Config& config) const {
  return index_.SingletonMin(query_id, config, BaseCost(query_id));
}

double CostService::DerivedImprovement(const Config& config) const {
  if (base_workload_cost_ <= 0.0) return 0.0;
  return (1.0 - DerivedWorkloadCost(config) / base_workload_cost_) * 100.0;
}

double CostService::TrueWorkloadCost(const Config& config) const {
  std::vector<Index> materialized = Materialize(config);
  double total = 0.0;
  for (const Query& q : workload_->queries) {
    total += executor_.TrueCost(q, materialized);
  }
  return total;
}

double CostService::TrueImprovement(const Config& config) const {
  if (base_workload_cost_ <= 0.0) return 0.0;
  return (1.0 - TrueWorkloadCost(config) / base_workload_cost_) * 100.0;
}

void CostService::ObserveRoundBoundary(const char* phase, int round) {
  CloseRoundSpan();
  if (obs_rounds_ != nullptr) obs_rounds_->Increment();
  // Episode-per-round tuners (MCTS, bandits) reach thousands of rounds; the
  // round span's clock reads and tracer mutex are too expensive to pay on
  // all of them. The first kRoundFullDetail rounds are always spanned —
  // covering the greedy family's entire run — and beyond that one round in
  // (kRoundSampleMask + 1) is, deterministically by round number.
  if (round > kRoundFullDetail &&
      (static_cast<unsigned>(round) & kRoundSampleMask) != 0) {
    return;
  }
  round_phase_ = phase == nullptr ? "round" : phase;
  round_number_ = round;
  round_wall_start_s_ = NowSeconds();
  round_sim_start_s_ = executor_.simulated_seconds();
}

void CostService::CloseRoundSpan() {
  if (round_phase_ == nullptr) return;
  const double wall_us = (NowSeconds() - round_wall_start_s_) * 1e6;
  const double sim = executor_.simulated_seconds() - round_sim_start_s_;
  if (obs_round_wall_us_ != nullptr) obs_round_wall_us_->Record(wall_us);
  if (obs_round_sim_s_ != nullptr) obs_round_sim_s_->Record(sim);
  if (tracer_ != nullptr) {
    tracer_->Complete(round_phase_, "tuner", tracer_->NowUs() - wall_us,
                      wall_us, round_sim_start_s_, sim,
                      {{"round", static_cast<double>(round_number_)}});
  }
  round_phase_ = nullptr;
}

void CostService::TraceGovernorSkip(const CellQuote& quote) {
  tracer_->Instant("governor.skip", "governor",
                   executor_.simulated_seconds(),
                   {{"query", static_cast<double>(quote.query_id)},
                    {"derived_upper", quote.derived_upper},
                    {"cost_lower", quote.cost_lower},
                    {"remaining", static_cast<double>(
                                      quote.remaining_budget)}});
}

void CostService::FinishObservability() {
  if (metrics_ == nullptr && tracer_ == nullptr) return;
  CloseRoundSpan();
  if (metrics_ == nullptr) return;
  // Synchronize the engine's cross-layer counters into the registry once,
  // at the end of the run, instead of paying per-call registry traffic on
  // hot paths that already count through EngineStats().
  const CostEngineStats s = EngineStats();
  auto sync = [this](const char* name, int64_t v) {
    Counter* c = metrics_->GetCounter(name);
    c->Add(v - c->value());
  };
  sync("engine.whatif_calls", s.what_if_calls);
  sync("engine.cache_hits", s.cache_hits);
  sync("engine.batched_cells", s.batched_cells);
  sync("engine.degraded_cells", s.degraded_cells);
  sync("engine.fault_transient_errors", s.fault_transient_errors);
  sync("engine.fault_sticky_failures", s.fault_sticky_failures);
  sync("engine.fault_timeouts", s.fault_timeouts);
  sync("engine.retry_attempts", s.retry_attempts);
  sync("index.derived_lookups", s.derived_lookups);
  sync("index.delta_lookups", s.delta_lookups);
  sync("index.entries", s.index_entries);
  sync("index.scanned_entries", s.index_scanned_entries);
  sync("index.pruned_entries", s.index_pruned_entries);
  sync("index.lower_bound_lookups", s.lower_bound_lookups);
  sync("checkpoint.replayed_events", static_cast<int64_t>(replay_pos_));
  metrics_->GetGauge("engine.executor_wall_seconds")
      ->Set(s.executor_wall_seconds);
  metrics_->GetGauge("engine.simulated_whatif_seconds")
      ->Set(s.simulated_whatif_seconds);
  if (governor_ != nullptr) {
    sync("governor.banked_calls", s.governor_banked_calls);
    sync("governor.reallocated_calls", s.governor_reallocated_calls);
    metrics_->GetGauge("governor.stop_round")
        ->Set(static_cast<double>(s.governor_stop_round));
  }
}

CostEngineStats CostService::EngineStats() const {
  CostEngineStats stats;
  stats.what_if_calls = meter_.calls_made();
  stats.cache_hits = meter_.cache_hits();
  stats.batched_cells =
      executor_.batched_cells() + (resumed_ ? resume_header_.batched_cells : 0);
  stats.executor_wall_seconds = executor_.wall_seconds();
  stats.simulated_whatif_seconds = executor_.simulated_seconds();
  stats.degraded_cells = degraded_cells_;
  stats.replayed_calls = resumed_ ? resume_header_.calls_made : 0;
  stats.fault_transient_errors = executor_.transient_faults();
  stats.fault_sticky_failures = executor_.sticky_faults();
  stats.fault_timeouts = executor_.timeout_faults();
  stats.retry_attempts = executor_.retry_attempts();
  index_.AccumulateStats(&stats);
  if (governor_ != nullptr) {
    const GovernorStats g = governor_->stats();
    stats.governor_skipped_calls = g.skipped_calls;
    stats.governor_banked_calls = g.banked_calls;
    stats.governor_reallocated_calls = g.reallocated_calls;
    stats.governor_stop_round = g.stop_round;
    stats.governor_stop_calls = g.stop_calls;
  }
  return stats;
}

}  // namespace bati
