#include "whatif/cost_service.h"

#include <algorithm>

#include "common/macros.h"

namespace bati {

CostService::CostService(const WhatIfOptimizer* optimizer,
                         const Workload* workload,
                         const std::vector<Index>* candidates, int64_t budget)
    : CostService(optimizer, workload, candidates, budget,
                  BudgetGovernorOptions{}) {}

CostService::CostService(const WhatIfOptimizer* optimizer,
                         const Workload* workload,
                         const std::vector<Index>* candidates, int64_t budget,
                         const BudgetGovernorOptions& governor)
    : optimizer_(optimizer),
      workload_(workload),
      candidates_(candidates),
      meter_(budget),
      executor_(optimizer, workload, candidates),
      index_(workload == nullptr ? 0 : workload->num_queries(),
             candidates == nullptr
                 ? 0
                 : static_cast<int>(candidates->size())) {
  BATI_CHECK(optimizer_ != nullptr);
  BATI_CHECK(workload_ != nullptr);
  BATI_CHECK(candidates_ != nullptr);
  const int m = workload_->num_queries();
  base_costs_.resize(static_cast<size_t>(m));
  const std::vector<Index> no_indexes;
  for (int q = 0; q < m; ++q) {
    base_costs_[static_cast<size_t>(q)] =
        optimizer_->Cost(workload_->queries[static_cast<size_t>(q)],
                         no_indexes);
    base_workload_cost_ += base_costs_[static_cast<size_t>(q)];
  }
  floor_costs_ = base_costs_;
  floor_workload_cost_ = base_workload_cost_;
  if (governor.enabled) {
    governor_ = std::make_unique<BudgetGovernor>(governor, budget,
                                                 base_workload_cost_);
  }
}

int CostService::BeginRound() {
  const int round = meter_.BeginRound();
  if (governor_ != nullptr) {
    governor_->OnRound(round, meter_.calls_made(), meter_.remaining(),
                       floor_workload_cost_);
  }
  return round;
}

CellQuote CostService::MakeQuote(int query_id, const Config& config) const {
  CellQuote quote;
  quote.query_id = query_id;
  quote.base_cost = BaseCost(query_id);
  quote.calls_made = meter_.calls_made();
  quote.remaining_budget = meter_.remaining();
  if (!governor_->WantsCostBounds()) {
    // Early-stop-only governor: OnCell never consults the bracket, so the
    // bound probes would be pure overhead.
    quote.derived_upper = quote.base_cost;
    quote.cost_lower = 0.0;
    return quote;
  }
  quote.derived_upper = index_.SubsetMin(query_id, config, quote.base_cost);
  const double lb =
      std::max(index_.SupersetMaxLowerBound(query_id, config),
               index_.AdditiveLowerBound(query_id, config, quote.base_cost));
  // Clamp: the additive bound is heuristic and must never invert the
  // bracket (a negative gap would make zero-threshold skipping fire).
  quote.cost_lower = std::min(std::max(lb, 0.0), quote.derived_upper);
  return quote;
}

void CostService::NoteEvaluated(int query_id, double cost) {
  double& floor = floor_costs_[static_cast<size_t>(query_id)];
  if (cost < floor) {
    floor_workload_cost_ -= floor - cost;
    floor = cost;
  }
}

double CostService::BaseCost(int query_id) const {
  return base_costs_.at(static_cast<size_t>(query_id));
}

std::optional<double> CostService::WhatIfCost(int query_id,
                                              const Config& config) {
  BATI_CHECK(query_id >= 0 && query_id < num_queries());
  if (config.empty()) return BaseCost(query_id);
  if (const double* cached = index_.Find(query_id, config)) {
    meter_.RecordCacheHit();
    return *cached;
  }
  if (governor_ != nullptr) {
    if (governor_->ShouldStop()) return std::nullopt;
    CellQuote quote = MakeQuote(query_id, config);
    if (governor_->OnCell(quote) == CellDecision::kSkip) {
      return quote.derived_upper;  // free: the budget unit is banked
    }
    if (!meter_.TryCharge(query_id, config)) return std::nullopt;
    const std::vector<size_t> positions = config.ToIndices();
    double cost = executor_.EvaluateCell(query_id, positions);
    index_.Add(query_id, config, positions, cost);
    NoteEvaluated(query_id, cost);
    governor_->OnCharged(quote, cost, floor_workload_cost_);
    return cost;
  }
  if (!meter_.TryCharge(query_id, config)) return std::nullopt;
  const std::vector<size_t> positions = config.ToIndices();
  double cost = executor_.EvaluateCell(query_id, positions);
  index_.Add(query_id, config, positions, cost);
  NoteEvaluated(query_id, cost);
  return cost;
}

std::vector<std::optional<double>> CostService::WhatIfCostMany(
    const std::vector<int>& query_ids, const Config& config) {
  std::vector<std::optional<double>> out(query_ids.size());
  if (config.empty()) {
    for (size_t i = 0; i < query_ids.size(); ++i) {
      out[i] = BaseCost(query_ids[i]);
    }
    return out;
  }
  // Charge sequentially in input order — exactly the cells a WhatIfCost()
  // loop would buy — and collect the uncached, affordable ones. Governed
  // runs consult the governor per cell before charging; skip decisions
  // quote the cache as of batch entry (see header).
  std::vector<WhatIfExecutor::CellRef> to_run;
  std::vector<size_t> run_slots;  // out[] slot of each cell in to_run
  std::vector<CellQuote> run_quotes;  // governed runs: quote per to_run cell
  // (duplicate slot, first-occurrence slot): a repeated query later in the
  // batch is a cache hit in loop semantics.
  std::vector<std::pair<size_t, size_t>> duplicates;
  for (size_t i = 0; i < query_ids.size(); ++i) {
    const int q = query_ids[i];
    BATI_CHECK(q >= 0 && q < num_queries());
    if (const double* cached = index_.Find(q, config)) {
      meter_.RecordCacheHit();
      out[i] = *cached;
      continue;
    }
    size_t first = to_run.size();
    for (size_t j = 0; j < to_run.size(); ++j) {
      if (to_run[j].query_id == q) {
        first = j;
        break;
      }
    }
    if (first < to_run.size()) {
      meter_.RecordCacheHit();
      duplicates.emplace_back(i, run_slots[first]);
      continue;
    }
    if (governor_ != nullptr) {
      if (governor_->ShouldStop()) continue;  // nullopt: stopped
      CellQuote quote = MakeQuote(q, config);
      if (governor_->OnCell(quote) == CellDecision::kSkip) {
        out[i] = quote.derived_upper;
        continue;
      }
      if (!meter_.TryCharge(q, config)) continue;  // nullopt: exhausted
      to_run.push_back(WhatIfExecutor::CellRef{q, &config});
      run_slots.push_back(i);
      run_quotes.push_back(quote);
      continue;
    }
    if (!meter_.TryCharge(q, config)) continue;  // nullopt: exhausted
    to_run.push_back(WhatIfExecutor::CellRef{q, &config});
    run_slots.push_back(i);
  }
  if (!to_run.empty()) {
    const std::vector<size_t> positions = config.ToIndices();
    std::vector<double> costs = executor_.EvaluateCells(to_run);
    for (size_t j = 0; j < to_run.size(); ++j) {
      index_.Add(to_run[j].query_id, config, positions, costs[j]);
      NoteEvaluated(to_run[j].query_id, costs[j]);
      if (governor_ != nullptr) {
        governor_->OnCharged(run_quotes[j], costs[j], floor_workload_cost_);
      }
      out[run_slots[j]] = costs[j];
    }
  }
  for (const auto& [slot, source] : duplicates) out[slot] = out[source];
  return out;
}

bool CostService::IsKnown(int query_id, const Config& config) const {
  if (config.empty()) return true;
  return index_.Find(query_id, config) != nullptr;
}

std::optional<double> CostService::CachedCost(int query_id,
                                              const Config& config) const {
  if (config.empty()) return BaseCost(query_id);
  const double* cached = index_.Find(query_id, config);
  if (cached == nullptr) return std::nullopt;
  return *cached;
}

double CostService::DerivedCost(int query_id, const Config& config) const {
  return index_.SubsetMin(query_id, config, BaseCost(query_id));
}

std::vector<double> CostService::DerivedCosts(const Config& config) const {
  std::vector<double> out(static_cast<size_t>(num_queries()));
  for (int q = 0; q < num_queries(); ++q) {
    out[static_cast<size_t>(q)] = index_.SubsetMin(q, config, BaseCost(q));
  }
  return out;
}

double CostService::DerivedWorkloadCost(const Config& config) const {
  double total = 0.0;
  for (int q = 0; q < num_queries(); ++q) total += DerivedCost(q, config);
  return total;
}

double CostService::DerivedCostWithAdd(int query_id, const Config& config,
                                       size_t pos,
                                       double current_derived) const {
  return index_.SubsetMinWithAdd(query_id, config, pos, current_derived);
}

double CostService::DerivedCostDeltaAdd(int query_id, const Config& config,
                                        size_t pos) const {
  return index_.DeltaAdd(query_id, config, pos, BaseCost(query_id));
}

double CostService::SingletonDerivedCost(int query_id,
                                         const Config& config) const {
  return index_.SingletonMin(query_id, config, BaseCost(query_id));
}

double CostService::DerivedImprovement(const Config& config) const {
  if (base_workload_cost_ <= 0.0) return 0.0;
  return (1.0 - DerivedWorkloadCost(config) / base_workload_cost_) * 100.0;
}

double CostService::TrueWorkloadCost(const Config& config) const {
  std::vector<Index> materialized = Materialize(config);
  double total = 0.0;
  for (const Query& q : workload_->queries) {
    total += executor_.TrueCost(q, materialized);
  }
  return total;
}

double CostService::TrueImprovement(const Config& config) const {
  if (base_workload_cost_ <= 0.0) return 0.0;
  return (1.0 - TrueWorkloadCost(config) / base_workload_cost_) * 100.0;
}

CostEngineStats CostService::EngineStats() const {
  CostEngineStats stats;
  stats.what_if_calls = meter_.calls_made();
  stats.cache_hits = meter_.cache_hits();
  stats.batched_cells = executor_.batched_cells();
  stats.executor_wall_seconds = executor_.wall_seconds();
  stats.simulated_whatif_seconds = executor_.simulated_seconds();
  index_.AccumulateStats(&stats);
  if (governor_ != nullptr) {
    const GovernorStats g = governor_->stats();
    stats.governor_skipped_calls = g.skipped_calls;
    stats.governor_banked_calls = g.banked_calls;
    stats.governor_reallocated_calls = g.reallocated_calls;
    stats.governor_stop_round = g.stop_round;
    stats.governor_stop_calls = g.stop_calls;
  }
  return stats;
}

}  // namespace bati
