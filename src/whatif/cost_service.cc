#include "whatif/cost_service.h"

#include <cmath>
#include <limits>

#include "common/macros.h"

namespace bati {

CostService::CostService(const WhatIfOptimizer* optimizer,
                         const Workload* workload,
                         const std::vector<Index>* candidates, int64_t budget)
    : optimizer_(optimizer),
      workload_(workload),
      candidates_(candidates),
      budget_(budget) {
  BATI_CHECK(optimizer_ != nullptr);
  BATI_CHECK(workload_ != nullptr);
  BATI_CHECK(candidates_ != nullptr);
  BATI_CHECK(budget_ >= 0);
  const int m = workload_->num_queries();
  base_costs_.resize(static_cast<size_t>(m));
  cache_.resize(static_cast<size_t>(m));
  const std::vector<Index> no_indexes;
  for (int q = 0; q < m; ++q) {
    base_costs_[static_cast<size_t>(q)] =
        optimizer_->Cost(workload_->queries[static_cast<size_t>(q)],
                         no_indexes);
    base_workload_cost_ += base_costs_[static_cast<size_t>(q)];
    cache_[static_cast<size_t>(q)].singleton.assign(
        candidates_->size(), std::numeric_limits<double>::quiet_NaN());
  }
}

std::vector<Index> CostService::Materialize(const Config& config) const {
  BATI_CHECK(config.universe_size() == candidates_->size());
  std::vector<Index> out;
  for (size_t pos : config.ToIndices()) {
    out.push_back((*candidates_)[pos]);
  }
  return out;
}

double CostService::BaseCost(int query_id) const {
  return base_costs_.at(static_cast<size_t>(query_id));
}

std::optional<double> CostService::WhatIfCost(int query_id,
                                              const Config& config) {
  BATI_CHECK(query_id >= 0 && query_id < num_queries());
  if (config.empty()) return BaseCost(query_id);
  QueryCache& qc = cache_[static_cast<size_t>(query_id)];
  auto it = qc.exact.find(config);
  if (it != qc.exact.end()) {
    ++cache_hits_;
    return it->second;
  }
  if (!HasBudget()) return std::nullopt;
  ++calls_made_;
  const Query& query = workload_->queries[static_cast<size_t>(query_id)];
  double cost = optimizer_->Cost(query, Materialize(config));
  whatif_seconds_ += optimizer_->EstimateCallSeconds(query);
  qc.exact.emplace(config, cost);
  qc.entries.emplace_back(config, cost);
  if (config.count() == 1) {
    qc.singleton[config.ToIndices().front()] = cost;
  }
  layout_.push_back(LayoutEntry{query_id, config});
  return cost;
}

bool CostService::IsKnown(int query_id, const Config& config) const {
  if (config.empty()) return true;
  const QueryCache& qc = cache_.at(static_cast<size_t>(query_id));
  return qc.exact.find(config) != qc.exact.end();
}

std::optional<double> CostService::CachedCost(int query_id,
                                              const Config& config) const {
  if (config.empty()) return BaseCost(query_id);
  const QueryCache& qc = cache_.at(static_cast<size_t>(query_id));
  auto it = qc.exact.find(config);
  if (it == qc.exact.end()) return std::nullopt;
  return it->second;
}

double CostService::DerivedCost(int query_id, const Config& config) const {
  const QueryCache& qc = cache_.at(static_cast<size_t>(query_id));
  double best = BaseCost(query_id);  // the empty set is a subset of any C
  for (const auto& [subset, cost] : qc.entries) {
    if (cost < best && subset.IsSubsetOf(config)) best = cost;
  }
  return best;
}

double CostService::DerivedWorkloadCost(const Config& config) const {
  double total = 0.0;
  for (int q = 0; q < num_queries(); ++q) total += DerivedCost(q, config);
  return total;
}

double CostService::SingletonDerivedCost(int query_id,
                                         const Config& config) const {
  const QueryCache& qc = cache_.at(static_cast<size_t>(query_id));
  double best = BaseCost(query_id);
  for (size_t pos : config.ToIndices()) {
    double c = qc.singleton[pos];
    if (!std::isnan(c) && c < best) best = c;
  }
  return best;
}

double CostService::DerivedImprovement(const Config& config) const {
  if (base_workload_cost_ <= 0.0) return 0.0;
  return (1.0 - DerivedWorkloadCost(config) / base_workload_cost_) * 100.0;
}

double CostService::TrueWorkloadCost(const Config& config) const {
  std::vector<Index> materialized = Materialize(config);
  double total = 0.0;
  for (const Query& q : workload_->queries) {
    total += optimizer_->Cost(q, materialized);
  }
  return total;
}

double CostService::TrueImprovement(const Config& config) const {
  if (base_workload_cost_ <= 0.0) return 0.0;
  return (1.0 - TrueWorkloadCost(config) / base_workload_cost_) * 100.0;
}

}  // namespace bati
