#include "dta/dta_tuner.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace bati {

DtaTuner::DtaTuner(TuningContext ctx, DtaOptions options)
    : ctx_(std::move(ctx)), options_(options) {}

TuningResult DtaTuner::Tune(CostService& service) {
  const int m = service.num_queries();

  // Cost-based priority queue: most expensive queries first (DTA tunes the
  // highest-impact queries in early slices).
  std::vector<int> queue(static_cast<size_t>(m));
  std::iota(queue.begin(), queue.end(), 0);
  std::sort(queue.begin(), queue.end(), [&](int a, int b) {
    double ca = service.BaseCost(a), cb = service.BaseCost(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });

  Config pool = service.EmptyConfig();      // per-query winners seen so far
  Config best = service.EmptyConfig();      // anytime recommendation
  double best_derived = 0.0;
  std::vector<int> tuned_queries;

  size_t cursor = 0;
  while (cursor < queue.size() && service.HasBudget()) {
    service.BeginRound("dta.slice");  // one time slice = one round
    // ---- One time slice: consume the next batch of queries. ----
    int64_t slice_budget = std::max<int64_t>(
        1, static_cast<int64_t>(
               static_cast<double>(service.remaining_budget()) *
               options_.slice_budget_fraction));
    int64_t slice_start_calls = service.calls_made();
    for (int b = 0; b < options_.queries_per_slice && cursor < queue.size();
         ++b, ++cursor) {
      int q = queue[cursor];
      tuned_queries.push_back(q);
      const std::vector<int>& mine =
          ctx_.candidates->per_query[static_cast<size_t>(q)];
      if (mine.empty()) continue;
      // Per-query greedy tuning with FCFS inside the slice budget.
      WhatIfFilter slice_filter = [&service, slice_start_calls,
                                   slice_budget](int, const Config&) {
        return service.calls_made() - slice_start_calls < slice_budget;
      };
      Config winner = GreedyEnumerate(ctx_, service, {q}, mine,
                                      service.EmptyConfig(), slice_filter);
      pool = pool | winner;
      if (service.calls_made() - slice_start_calls >= slice_budget) break;
    }

    // ---- Index merging: combine winners that share a table into merged
    // covering candidates already present in the universe (we approximate
    // DTA's merge step by admitting every candidate on tables touched by
    // the pool — merged indexes were generated up front by candidate
    // generation). ----
    Config refinement_pool = pool;
    if (options_.enable_index_merging) {
      std::vector<size_t> in_pool = pool.ToIndices();
      for (int candidate = 0; candidate < ctx_.candidates->size();
           ++candidate) {
        if (pool.test(static_cast<size_t>(candidate))) continue;
        const Index& cx =
            ctx_.candidates->indexes[static_cast<size_t>(candidate)];
        for (size_t p : in_pool) {
          const Index& px = ctx_.candidates->indexes[p];
          if (px.table_id == cx.table_id &&
              !px.key_columns.empty() && !cx.key_columns.empty() &&
              px.key_columns.front() == cx.key_columns.front()) {
            refinement_pool.set(static_cast<size_t>(candidate));
            break;
          }
        }
      }
    }

    // ---- Workload-level refinement over the queries seen so far. ----
    std::vector<int> refined;
    for (size_t pos : refinement_pool.ToIndices()) {
      refined.push_back(static_cast<int>(pos));
    }
    Config slice_best =
        GreedyEnumerate(ctx_, service, tuned_queries, refined,
                        service.EmptyConfig(), AllowAllWhatIf());

    // ---- Anytime property: keep the better of old and new, judged on the
    // whole workload with derived costs. ----
    double derived = service.DerivedImprovement(slice_best);
    if (derived >= best_derived) {
      best_derived = derived;
      best = slice_best;
    }
  }

  TuningResult result;
  result.algorithm = name();
  result.best_config = best;
  result.derived_improvement = service.DerivedImprovement(best);
  result.what_if_calls = service.calls_made();
  return result;
}

}  // namespace bati
