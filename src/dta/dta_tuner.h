#ifndef BATI_DTA_DTA_TUNER_H_
#define BATI_DTA_DTA_TUNER_H_

#include <string>
#include <vector>

#include "tuner/greedy.h"
#include "tuner/tuner.h"

namespace bati {

/// Options for the DTA-like tuner.
struct DtaOptions {
  /// Queries consumed per time slice.
  int queries_per_slice = 4;
  /// Fraction of the remaining budget a slice may spend on per-query tuning
  /// before the periodic workload-level refinement runs.
  double slice_budget_fraction = 0.5;
  /// Whether to attempt merged-index generation across per-query winners
  /// (DTA's index-merging optimization).
  bool enable_index_merging = true;
};

/// A Database-Tuning-Advisor-like anytime tuner (paper Section 7.3's
/// comparison point). Mirrors DTA's time-sliced architecture: queries are
/// consumed in batches ordered by a cost-based priority queue (most expensive
/// first); each slice tunes its batch at query level (greedy + FCFS), merges
/// candidate winners (index merging), and refreshes a workload-level greedy
/// recommendation over everything seen so far. The recommendation is anytime:
/// whenever the budget runs out, the best configuration found so far stands.
/// Because expensive queries are tuned first, budget can be exhausted on a
/// costly query before broadly useful indexes are found — reproducing the
/// non-monotonic quality-vs-budget behaviour the paper observes for DTA.
class DtaTuner : public Tuner {
 public:
  DtaTuner(TuningContext ctx, DtaOptions options = DtaOptions());

  TuningResult Tune(CostService& service) override;
  std::string name() const override { return "dta"; }

 private:
  TuningContext ctx_;
  DtaOptions options_;
};

}  // namespace bati

#endif  // BATI_DTA_DTA_TUNER_H_
