#include "exec/column_store.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace bati::exec {

namespace {

/// SplitMix64: the stateless mixer used repo-wide for deterministic
/// per-(entity, ordinal) hashing.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double Uniform01(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool IsIntegerLike(ColumnType type) {
  return type == ColumnType::kInt || type == ColumnType::kBigInt ||
         type == ColumnType::kDate;
}

}  // namespace

ColumnStore::ColumnStore(const Database& db, const StoreOptions& options) {
  tables_.resize(static_cast<size_t>(db.num_tables()));
  for (int t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    TableData& td = tables_[static_cast<size_t>(t)];
    td.rows = static_cast<int64_t>(std::llround(
        std::max(0.0, table.row_count())));
    BATI_CHECK(td.rows <= options.max_rows_per_table);
    td.num_cols = table.num_columns();
    total_rows_ += td.rows;

    td.pools.resize(static_cast<size_t>(td.num_cols));
    td.pool_cdf.resize(static_cast<size_t>(td.num_cols));
    td.heap.resize(static_cast<size_t>(td.rows) *
                   static_cast<size_t>(td.num_cols));

    for (int c = 0; c < td.num_cols; ++c) {
      const Column& col = table.column(c);
      const ColumnStats& s = col.stats;
      // NDV distinct values evenly spaced over the declared domain, capped
      // by the table's cardinality: a 200-row table cannot hold 100k
      // distinct balances. Equal (domain, NDV) endpoints of an equi-join
      // synthesize identical pools, so joins match under containment.
      const int64_t ndv = std::max<int64_t>(
          1, std::min(td.rows == 0 ? 1 : td.rows,
                      static_cast<int64_t>(std::llround(s.ndv))));
      std::vector<double>& pool = td.pools[static_cast<size_t>(c)];
      pool.reserve(static_cast<size_t>(ndv));
      const double span = s.max_value - s.min_value;
      double prev = -std::numeric_limits<double>::infinity();
      for (int64_t i = 0; i < ndv; ++i) {
        double v = s.min_value +
                   span * static_cast<double>(i) / static_cast<double>(ndv);
        if (IsIntegerLike(col.type)) v = std::round(v);
        if (v > prev) {  // rounding may collapse neighbours; keep distinct
          pool.push_back(v);
          prev = v;
        }
      }
      if (pool.empty()) pool.push_back(s.min_value);

      // Per-pool-value probability: histogram bucket mass split evenly
      // among the pool values the bucket spans; uniform otherwise.
      std::vector<double>& cdf = td.pool_cdf[static_cast<size_t>(c)];
      cdf.resize(pool.size());
      if (!s.histogram.empty()) {
        double cum = 0.0;
        for (size_t i = 0; i < pool.size(); ++i) {
          const double lo = i == 0
                                ? -std::numeric_limits<double>::infinity()
                                : (pool[i - 1] + pool[i]) / 2.0;
          const double hi = i + 1 == pool.size()
                                ? std::numeric_limits<double>::infinity()
                                : (pool[i] + pool[i + 1]) / 2.0;
          cum += s.histogram.RangeFraction(
              std::max(lo, s.histogram.min_value()),
              std::min(hi, s.histogram.max_value()));
          cdf[i] = cum;
        }
        // Normalize: clamped bucket edges can drop a little mass.
        const double total = cdf.back();
        if (total > 0.0) {
          for (double& v : cdf) v /= total;
        } else {
          for (size_t i = 0; i < cdf.size(); ++i) {
            cdf[i] = static_cast<double>(i + 1) /
                     static_cast<double>(cdf.size());
          }
        }
      } else {
        for (size_t i = 0; i < cdf.size(); ++i) {
          cdf[i] = static_cast<double>(i + 1) /
                   static_cast<double>(cdf.size());
        }
      }
      cdf.back() = 1.0;

      // Row values: inverse-CDF over the pool keyed by a per-row hash.
      const uint64_t col_seed =
          Mix64(options.seed ^ Mix64(static_cast<uint64_t>(t) * 1000003ULL +
                                     static_cast<uint64_t>(c)));
      const bool uniform = s.histogram.empty();
      for (int64_t r = 0; r < td.rows; ++r) {
        const uint64_t h = Mix64(col_seed ^ static_cast<uint64_t>(r));
        size_t idx;
        if (uniform) {
          idx = static_cast<size_t>(h % static_cast<uint64_t>(pool.size()));
        } else {
          const double u = Uniform01(h);
          idx = static_cast<size_t>(
              std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
          if (idx >= pool.size()) idx = pool.size() - 1;
        }
        td.heap[static_cast<size_t>(r) * static_cast<size_t>(td.num_cols) +
                static_cast<size_t>(c)] = pool[idx];
      }
    }
  }
}

double ColumnStore::Quantile(int t, int c, double fraction) const {
  const TableData& td = tables_[static_cast<size_t>(t)];
  const std::vector<double>& pool = td.pools[static_cast<size_t>(c)];
  const std::vector<double>& cdf = td.pool_cdf[static_cast<size_t>(c)];
  const double f = std::min(1.0, std::max(0.0, fraction));
  const size_t idx = static_cast<size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), f) - cdf.begin());
  return pool[std::min(idx, pool.size() - 1)];
}

double ColumnStore::CumulativeAtOrBelow(int t, int c, double v) const {
  const TableData& td = tables_[static_cast<size_t>(t)];
  const std::vector<double>& pool = td.pools[static_cast<size_t>(c)];
  const std::vector<double>& cdf = td.pool_cdf[static_cast<size_t>(c)];
  const size_t idx = static_cast<size_t>(
      std::upper_bound(pool.begin(), pool.end(), v) - pool.begin());
  if (idx == 0) return 0.0;
  return cdf[idx - 1];
}

}  // namespace bati::exec
