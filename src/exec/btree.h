#ifndef BATI_EXEC_BTREE_H_
#define BATI_EXEC_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/macros.h"

namespace bati::exec {

/// A real in-memory covering B+-tree: composite double keys (fixed width per
/// tree), a fixed-width double payload per entry (the INCLUDE columns), and
/// the base-table row id. Leaves are linked for range scans; interior nodes
/// hold separator keys. This is the data structure `storage/Index` describes
/// hypothetically — here it is materialized and actually searched, so index
/// width (key + payload doubles per entry) translates into real memory
/// traffic the way LeafRowBytes() translates into modeled page reads.
///
/// Keys compare lexicographically over all `key_width` doubles with the row
/// id as a final tiebreak, so duplicate keys are supported and iteration
/// order is deterministic.
class BTree {
 public:
  /// An entry as seen by visitors: borrowed pointers into the leaf, valid
  /// only during the visit.
  struct Entry {
    const double* key;      // key_width doubles
    const double* payload;  // payload_width doubles
    uint32_t row_id;
  };

  /// Visit callback; return false to stop the scan early.
  using Visitor = std::function<bool(const Entry&)>;

  /// `leaf_capacity` is the max entries per leaf (and keys per interior
  /// node); small capacities exercise splits in tests.
  BTree(int key_width, int payload_width, int leaf_capacity = 64);
  ~BTree();
  BATI_DISALLOW_COPY_AND_ASSIGN(BTree);

  int key_width() const { return key_width_; }
  int payload_width() const { return payload_width_; }
  int64_t size() const { return size_; }
  /// Tree height (1 = just a leaf level); diagnostics and tests.
  int height() const { return height_; }

  /// Bulk-loads from entries sorted by (key, row_id); keys/payloads are
  /// flattened row-major. Requires an empty tree. Leaves are packed to
  /// capacity, the standard bottom-up build.
  void BulkLoad(const std::vector<double>& keys,
                const std::vector<double>& payloads,
                const std::vector<uint32_t>& row_ids);

  /// Inserts one entry (root-to-leaf descent with node splits).
  void Insert(const double* key, const double* payload, uint32_t row_id);

  /// Visits every entry whose first `prefix_len` key columns equal
  /// `prefix`, in key order. `prefix_len` in [1, key_width].
  void SeekPrefix(const double* prefix, int prefix_len,
                  const Visitor& visit) const;

  /// Visits entries where the first `prefix_len` key columns equal `prefix`
  /// and key column `prefix_len` lies in [lo, hi]. `prefix_len` may be 0
  /// (pure range on the leading column). Requires prefix_len < key_width.
  void SeekRange(const double* prefix, int prefix_len, double lo, double hi,
                 const Visitor& visit) const;

  /// Visits all entries in key order (an index-only full scan).
  void Scan(const Visitor& visit) const;

  /// Total doubles stored across leaf entries (key + payload); the measured
  /// analogue of LeafRowBytes * rows.
  int64_t leaf_doubles() const {
    return size_ * (key_width_ + payload_width_);
  }

 private:
  struct Node;
  struct Leaf;
  struct Interior;

  /// Compares entry (a_key, a_row) against (b_key, b_row): full
  /// lexicographic key order with row-id tiebreak.
  int CompareEntry(const double* a_key, uint32_t a_row, const double* b_key,
                   uint32_t b_row) const;

  /// The leftmost leaf that may contain a key >= (prefix, -inf...) on its
  /// first prefix_len columns; also returns the entry position within it.
  const Leaf* LowerBoundLeaf(const double* prefix, int prefix_len,
                             double first_extra, int* pos) const;

  /// Splits a full child during insert descent.
  void InsertRec(Node* node, const double* key, const double* payload,
                 uint32_t row_id, std::unique_ptr<Node>* new_sibling,
                 std::vector<double>* split_key, uint32_t* split_row);

  void FreeTree(Node* node);

  const int key_width_;
  const int payload_width_;
  const int leaf_capacity_;
  int64_t size_ = 0;
  int height_ = 1;
  Node* root_ = nullptr;
};

}  // namespace bati::exec

#endif  // BATI_EXEC_BTREE_H_
