#ifndef BATI_EXEC_STORE_CACHE_H_
#define BATI_EXEC_STORE_CACHE_H_

#include <memory>

#include "exec/column_store.h"

namespace bati::exec {

/// Process-wide cache of materialized column stores, keyed by (database
/// identity, store options). Materializing a store is by far the most
/// expensive step of standing up an ExecutionEngine — tens of milliseconds
/// on toy, seconds at tpch scale — and the store is immutable after
/// construction, so every engine over the same catalog can share one
/// instance the same way the engine's content-keyed tree cache shares
/// B+-trees across configurations. Before this cache, every correlation
/// run (and every serve-side signal evaluation) re-materialized the store
/// even when the catalog had not changed.
///
/// Identity is the Database object, not its contents: workloads hand out
/// their catalog via shared_ptr (BundleRegistry bundles live for the
/// process), so pointer identity is both cheap and exact. The cache pins
/// each keyed database with a shared_ptr of its own, which keeps the key
/// from being recycled for a different catalog at the same address.
///
/// Entries are never evicted — mirroring BundleRegistry — so the returned
/// store outlives every engine. Thread-safe; concurrent requests for the
/// same key build the store exactly once.
std::shared_ptr<const ColumnStore> GetOrMaterializeStore(
    std::shared_ptr<const Database> db, const StoreOptions& options);

/// Number of distinct (database, options) stores materialized so far.
size_t StoreCacheSize();

}  // namespace bati::exec

#endif  // BATI_EXEC_STORE_CACHE_H_
