#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_set>
#include <utility>

#include "common/macros.h"
#include "exec/store_cache.h"

namespace bati::exec {

namespace {

/// Hard cap on intermediate join tuples: a realized workload whose joins
/// blow past this is misconfigured (or a predicate realization bug), and
/// failing loudly beats swapping.
constexpr int64_t kMaxIntermediateTuples = 50 * 1000 * 1000;

/// Cap on equality-combination fanout when seeking (an IN list per prefix
/// position multiplies); beyond this a full scan is cheaper anyway.
constexpr int64_t kMaxSeekCombos = 1 << 16;

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

uint64_t HashValue(uint64_t h, double v) { return Mix64(h ^ DoubleBits(v)); }

void Bump(Counter* c, int64_t n = 1) {
  if (c != nullptr) c->Add(n);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Position of each table column inside an index entry: 0..nk-1 are key
/// slots, nk.. are payload slots, -1 means not stored in the index.
std::vector<int> IndexColumnSlots(const Index& ix, int num_cols) {
  std::vector<int> slot(static_cast<size_t>(num_cols), -1);
  for (size_t i = 0; i < ix.key_columns.size(); ++i) {
    slot[static_cast<size_t>(ix.key_columns[i])] = static_cast<int>(i);
  }
  const int nk = static_cast<int>(ix.key_columns.size());
  for (size_t i = 0; i < ix.include_columns.size(); ++i) {
    slot[static_cast<size_t>(ix.include_columns[i])] =
        nk + static_cast<int>(i);
  }
  return slot;
}

double EntryValue(const BTree::Entry& e, int nk, int slot) {
  return slot < nk ? e.key[slot] : e.payload[slot - nk];
}

/// The sargable seek derived from an index key prefix against a scan's
/// realized predicates — the executor-side mirror of the cost model's
/// bulk_access prefix walk: equality-capable predicates bind any leading
/// position, one range predicate may bind the position after them.
struct SeekSpec {
  std::vector<const ExecPredicate*> eq;  // one per bound prefix position
  const ExecPredicate* range = nullptr;  // trailing range bound, if any
  std::vector<bool> consumed;            // parallel to the scan's preds
  bool any() const { return !eq.empty() || range != nullptr; }
};

SeekSpec DeriveSeek(const Index& ix,
                    const std::vector<ExecPredicate>& preds) {
  SeekSpec spec;
  spec.consumed.assign(preds.size(), false);
  for (int key_col : ix.key_columns) {
    int eq_pi = -1;
    int range_pi = -1;
    for (size_t pi = 0; pi < preds.size(); ++pi) {
      if (spec.consumed[pi] || preds[pi].column_id != key_col) continue;
      if (preds[pi].equality_capable()) {
        if (eq_pi < 0) eq_pi = static_cast<int>(pi);
      } else if (preds[pi].kind == ExecPredicate::Kind::kRange) {
        if (range_pi < 0) range_pi = static_cast<int>(pi);
      }
    }
    if (eq_pi >= 0) {
      spec.eq.push_back(&preds[static_cast<size_t>(eq_pi)]);
      spec.consumed[static_cast<size_t>(eq_pi)] = true;
      continue;
    }
    if (range_pi >= 0) {
      spec.range = &preds[static_cast<size_t>(range_pi)];
      spec.consumed[static_cast<size_t>(range_pi)] = true;
    }
    break;  // prefix ends at the first non-equality position
  }
  return spec;
}

/// Executor-side ProvidesOrder: the index delivers rows ordered by
/// `order_cols` when its key prefix matches them, with equality-bound
/// positions skippable (mirrors the cost model's sort-elimination rule).
bool ProvidesOrderExec(const Index& ix,
                       const std::vector<ExecPredicate>& preds,
                       const std::vector<int>& order_cols) {
  if (order_cols.empty()) return false;
  size_t oi = 0;
  for (int key : ix.key_columns) {
    if (oi < order_cols.size() && key == order_cols[oi]) {
      ++oi;
      continue;
    }
    bool pinned = false;
    for (const ExecPredicate& p : preds) {
      if (p.column_id == key && p.equality_capable()) {
        pinned = true;
        break;
      }
    }
    if (pinned) continue;
    break;
  }
  return oi == order_cols.size();
}

/// Chained hash table for hash joins: open arrays, power-of-two buckets,
/// built in one pass (std::unordered_multimap is an order of magnitude too
/// slow for million-row build sides).
class JoinHashTable {
 public:
  void Build(const std::vector<uint64_t>& hashes,
             const std::vector<uint32_t>& rows) {
    size_t cap = 16;
    while (cap < hashes.size() * 2) cap <<= 1;
    mask_ = cap - 1;
    heads_.assign(cap, -1);
    ents_.resize(hashes.size());
    for (size_t i = 0; i < hashes.size(); ++i) {
      const size_t b = hashes[i] & mask_;
      ents_[i] = {hashes[i], rows[i], heads_[b]};
      heads_[b] = static_cast<int32_t>(i);
    }
  }

  template <typename F>
  void ForEach(uint64_t h, const F& f) const {
    if (heads_.empty()) return;
    for (int32_t i = heads_[h & mask_]; i >= 0; i = ents_[i].next) {
      if (ents_[static_cast<size_t>(i)].hash == h) {
        f(ents_[static_cast<size_t>(i)].row);
      }
    }
  }

 private:
  struct Ent {
    uint64_t hash;
    uint32_t row;
    int32_t next;
  };
  std::vector<int32_t> heads_;
  std::vector<Ent> ents_;
  uint64_t mask_ = 0;
};

/// Accumulated left-deep intermediate: one uint32 row id per placed scan,
/// flattened row-major.
struct TupleBuf {
  int width = 0;
  std::vector<uint32_t> data;

  int64_t count() const {
    return width == 0 ? 0
                      : static_cast<int64_t>(data.size()) / width;
  }
  const uint32_t* tuple(int64_t i) const {
    return &data[static_cast<size_t>(i) * static_cast<size_t>(width)];
  }
};

}  // namespace

ExecCounters ExecCounters::Resolve(MetricsRegistry* registry) {
  ExecCounters c;
  if (registry == nullptr) return c;
  c.seq_scans = registry->GetCounter("exec.seqscan.scans");
  c.seq_rows = registry->GetCounter("exec.seqscan.rows");
  c.index_seeks = registry->GetCounter("exec.index.seeks");
  c.index_entries = registry->GetCounter("exec.index.entries");
  c.index_full_scans = registry->GetCounter("exec.index.full_scans");
  c.heap_lookups = registry->GetCounter("exec.index.heap_lookups");
  c.hash_builds = registry->GetCounter("exec.hashjoin.builds");
  c.hash_build_rows = registry->GetCounter("exec.hashjoin.build_rows");
  c.hash_probe_rows = registry->GetCounter("exec.hashjoin.probe_rows");
  c.merge_rows = registry->GetCounter("exec.mergejoin.rows");
  c.sort_rows = registry->GetCounter("exec.sort.rows");
  c.agg_groups = registry->GetCounter("exec.agg.groups");
  c.result_rows = registry->GetCounter("exec.result.rows");
  c.trees_built = registry->GetCounter("exec.trees.built");
  c.tree_cache_hits = registry->GetCounter("exec.trees.cache_hits");
  return c;
}

std::unique_ptr<BTree> MaterializeIndex(const ColumnStore& store,
                                        const Index& ix) {
  const int t = ix.table_id;
  const int nk = static_cast<int>(ix.key_columns.size());
  const int np = static_cast<int>(ix.include_columns.size());
  const int64_t rows = store.rows(t);
  BATI_CHECK(rows <= static_cast<int64_t>(
                         std::numeric_limits<uint32_t>::max()));

  std::vector<double> keys(static_cast<size_t>(rows) *
                           static_cast<size_t>(nk));
  for (int64_t r = 0; r < rows; ++r) {
    for (int i = 0; i < nk; ++i) {
      keys[static_cast<size_t>(r) * nk + static_cast<size_t>(i)] =
          store.value(t, r, ix.key_columns[static_cast<size_t>(i)]);
    }
  }
  std::vector<uint32_t> perm(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) perm[static_cast<size_t>(r)] =
      static_cast<uint32_t>(r);
  std::sort(perm.begin(), perm.end(),
            [&](uint32_t a, uint32_t b) {
              const double* ka = &keys[static_cast<size_t>(a) * nk];
              const double* kb = &keys[static_cast<size_t>(b) * nk];
              for (int i = 0; i < nk; ++i) {
                if (ka[i] < kb[i]) return true;
                if (ka[i] > kb[i]) return false;
              }
              return a < b;
            });

  std::vector<double> sorted_keys(keys.size());
  std::vector<double> sorted_payloads(static_cast<size_t>(rows) *
                                      static_cast<size_t>(np));
  std::vector<uint32_t> sorted_rows(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    const uint32_t r = perm[static_cast<size_t>(i)];
    for (int k = 0; k < nk; ++k) {
      sorted_keys[static_cast<size_t>(i) * nk + static_cast<size_t>(k)] =
          keys[static_cast<size_t>(r) * nk + static_cast<size_t>(k)];
    }
    for (int k = 0; k < np; ++k) {
      sorted_payloads[static_cast<size_t>(i) * np + static_cast<size_t>(k)] =
          store.value(t, r, ix.include_columns[static_cast<size_t>(k)]);
    }
    sorted_rows[static_cast<size_t>(i)] = r;
  }
  auto tree = std::make_unique<BTree>(nk, np);
  tree->BulkLoad(sorted_keys, sorted_payloads, sorted_rows);
  return tree;
}

ExecutionEngine::ExecutionEngine(const Workload& workload,
                                 const StoreOptions& options,
                                 MetricsRegistry* metrics)
    : workload_(workload),
      optimizer_(workload.database),
      store_(GetOrMaterializeStore(workload.database, options)),
      counters_(ExecCounters::Resolve(metrics)),
      predicate_seed_(options.seed) {
  preds_.reserve(workload.queries.size());
  for (const Query& q : workload.queries) {
    preds_.push_back(RealizePredicates(q, *store_, predicate_seed_));
  }
}

double ExecutionEngine::WhatIfWorkloadCost(
    const std::vector<Index>& config) const {
  double total = 0.0;
  for (const Query& q : workload_.queries) total += optimizer_.Cost(q, config);
  return total;
}

const BTree* ExecutionEngine::GetOrBuildTree(const Index& ix) {
  for (const auto& [cached, tree] : trees_) {
    if (cached == ix) {
      Bump(counters_.tree_cache_hits);
      return tree.get();
    }
  }
  trees_.emplace_back(ix, MaterializeIndex(*store_, ix));
  Bump(counters_.trees_built);
  return trees_.back().second.get();
}

ExecutionEngine::RunResult ExecutionEngine::ExecuteWorkload(
    const std::vector<Index>& config, int repetitions) {
  BATI_CHECK(repetitions >= 1);
  const int nq = workload_.num_queries();
  std::vector<PlanExplanation> plans;
  plans.reserve(static_cast<size_t>(nq));
  for (const Query& q : workload_.queries) {
    plans.push_back(optimizer_.Explain(q, config));
  }
  // Materialize every index any plan touches before the timed passes:
  // building is one-time, cached across configurations, and not what the
  // correlation is about.
  for (const PlanExplanation& plan : plans) {
    for (const PlanStep& step : plan.steps) {
      if (step.index_pos >= 0) {
        GetOrBuildTree(config[static_cast<size_t>(step.index_pos)]);
      }
    }
  }

  // Per-query best-of-repetitions, summed. Clipping scheduler noise on
  // each query independently is far tighter than best-of-N whole-workload
  // sweeps: one slow instance of a heavy query no longer poisons an entire
  // pass, so config-to-config deltas reflect plan changes, not jitter.
  RunResult result;
  result.per_query.resize(static_cast<size_t>(nq));
  result.per_query_seconds.resize(static_cast<size_t>(nq));
  for (int qi = 0; qi < nq; ++qi) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < repetitions; ++rep) {
      const double t0 = NowSeconds();
      ExecResult res = ExecuteQuery(
          workload_.queries[static_cast<size_t>(qi)],
          preds_[static_cast<size_t>(qi)], config,
          plans[static_cast<size_t>(qi)], /*force_reference=*/false);
      best = std::min(best, NowSeconds() - t0);
      if (rep == 0) {
        result.per_query[static_cast<size_t>(qi)] = res;
      } else {  // determinism across repetitions
        BATI_CHECK(res == result.per_query[static_cast<size_t>(qi)]);
      }
    }
    result.per_query_seconds[static_cast<size_t>(qi)] = best;
    result.seconds += best;
  }
  return result;
}

ExecutionEngine::QueryTiming ExecutionEngine::ExecuteOne(
    int query_index, const std::vector<Index>& config) {
  const Query& q = workload_.queries[static_cast<size_t>(query_index)];
  const PlanExplanation plan = optimizer_.Explain(q, config);
  for (const PlanStep& step : plan.steps) {
    if (step.index_pos >= 0) {
      GetOrBuildTree(config[static_cast<size_t>(step.index_pos)]);
    }
  }
  QueryTiming timing;
  timing.whatif_cost = plan.total_cost;
  const double t0 = NowSeconds();
  timing.result =
      ExecuteQuery(q, preds_[static_cast<size_t>(query_index)], config, plan,
                   /*force_reference=*/false);
  timing.seconds = NowSeconds() - t0;
  return timing;
}

ExecResult ExecutionEngine::ExecuteReference(int query_index) {
  const Query& q = workload_.queries[static_cast<size_t>(query_index)];
  static const std::vector<Index> kNoIndexes;
  const PlanExplanation plan = optimizer_.Explain(q, kNoIndexes);
  return ExecuteQuery(q, preds_[static_cast<size_t>(query_index)],
                      kNoIndexes, plan, /*force_reference=*/true);
}

ExecResult ExecutionEngine::ExecuteQuery(
    const Query& query,
    const std::vector<std::vector<ExecPredicate>>& preds_by_scan,
    const std::vector<Index>& config, const PlanExplanation& plan,
    bool force_reference) {
  const ColumnStore& store = *store_;
  const ExecCounters& c = counters_;

  // ---- Access-path row collection for one scan. ----
  auto collect_rows = [&](int s, AccessPathKind access,
                          int index_pos) -> std::vector<uint32_t> {
    const int t = query.scans[static_cast<size_t>(s)].table_id;
    const std::vector<ExecPredicate>& ps =
        preds_by_scan[static_cast<size_t>(s)];
    std::vector<uint32_t> out;

    const bool use_index = !force_reference &&
                           access != AccessPathKind::kHeapScan &&
                           index_pos >= 0 &&
                           config[static_cast<size_t>(index_pos)].table_id ==
                               t;
    if (!use_index) {
      const int64_t rows = store.rows(t);
      Bump(c.seq_scans);
      Bump(c.seq_rows, rows);
      for (int64_t r = 0; r < rows; ++r) {
        bool ok = true;
        for (const ExecPredicate& p : ps) {
          if (!p.Matches(store.value(t, r, p.column_id))) {
            ok = false;
            break;
          }
        }
        if (ok) out.push_back(static_cast<uint32_t>(r));
      }
      return out;
    }

    const Index& ix = config[static_cast<size_t>(index_pos)];
    const BTree* tree = GetOrBuildTree(ix);
    const int nk = static_cast<int>(ix.key_columns.size());
    const std::vector<int> slots = IndexColumnSlots(ix, store.num_cols(t));
    SeekSpec spec = DeriveSeek(ix, ps);

    int64_t combos = 1;
    for (const ExecPredicate* p : spec.eq) {
      combos *= static_cast<int64_t>(p->values.size());
      if (combos > kMaxSeekCombos) break;
    }
    const bool full_scan = access == AccessPathKind::kIndexOnlyScan ||
                           !spec.any() || combos > kMaxSeekCombos;
    if (full_scan) {
      // Residuals: everything (the seek binds nothing on a full scan).
      spec.consumed.assign(ps.size(), false);
    }
    // Residuals split by where their column lives: entry-resident ones
    // filter first so a row pays a (random) heap probe only after every
    // covered predicate already passed.
    std::vector<const ExecPredicate*> entry_residuals;
    std::vector<const ExecPredicate*> heap_residuals;
    for (size_t pi = 0; pi < ps.size(); ++pi) {
      if (spec.consumed[pi]) continue;
      const int slot = slots[static_cast<size_t>(ps[pi].column_id)];
      (slot >= 0 ? entry_residuals : heap_residuals).push_back(&ps[pi]);
    }
    int64_t entries = 0;
    int64_t lookups = 0;
    int64_t seeks = 0;
    auto visit = [&](const BTree::Entry& e) -> bool {
      ++entries;
      for (const ExecPredicate* p : entry_residuals) {
        const int slot = slots[static_cast<size_t>(p->column_id)];
        if (!p->Matches(EntryValue(e, nk, slot))) return true;
      }
      if (!heap_residuals.empty()) {
        ++lookups;
        for (const ExecPredicate* p : heap_residuals) {
          if (!p->Matches(store.value(t, e.row_id, p->column_id))) {
            return true;
          }
        }
      }
      out.push_back(e.row_id);
      return true;
    };

    if (full_scan) {
      Bump(c.index_full_scans);
      tree->Scan(visit);
    } else {
      const int n_eq = static_cast<int>(spec.eq.size());
      std::vector<double> prefix(static_cast<size_t>(std::max(1, n_eq)));
      std::vector<size_t> odo(static_cast<size_t>(n_eq), 0);
      for (int64_t combo = 0; combo < combos; ++combo) {
        for (int i = 0; i < n_eq; ++i) {
          prefix[static_cast<size_t>(i)] =
              spec.eq[static_cast<size_t>(i)]
                  ->values[odo[static_cast<size_t>(i)]];
        }
        ++seeks;
        if (spec.range != nullptr) {
          tree->SeekRange(prefix.data(), n_eq, spec.range->lo,
                          spec.range->hi, visit);
        } else {
          tree->SeekPrefix(prefix.data(), n_eq, visit);
        }
        for (int i = n_eq - 1; i >= 0; --i) {  // odometer increment
          if (++odo[static_cast<size_t>(i)] <
              spec.eq[static_cast<size_t>(i)]->values.size()) {
            break;
          }
          odo[static_cast<size_t>(i)] = 0;
        }
      }
    }
    Bump(c.index_seeks, seeks);
    Bump(c.index_entries, entries);
    Bump(c.heap_lookups, lookups);
    return out;
  };

  // ---- Walk the plan's left-deep order. ----
  std::vector<int> slot_of_scan(static_cast<size_t>(query.num_scans()), -1);
  TupleBuf tuples;

  auto left_value = [&](const uint32_t* tuple, int scan_id,
                        const ColumnRef& col) -> double {
    const int slot = slot_of_scan[static_cast<size_t>(scan_id)];
    return store.value(query.scans[static_cast<size_t>(scan_id)].table_id,
                       tuple[slot], col.column_id);
  };

  for (size_t step_idx = 0; step_idx < plan.steps.size(); ++step_idx) {
    const PlanStep& step = plan.steps[step_idx];
    const int s = step.scan_id;
    const int t = query.scans[static_cast<size_t>(s)].table_id;

    if (step_idx == 0) {
      std::vector<uint32_t> rows =
          collect_rows(s, step.access, step.index_pos);
      tuples.width = 1;
      tuples.data = std::move(rows);
      slot_of_scan[static_cast<size_t>(s)] = 0;
      continue;
    }

    // Join conditions connecting s to the scans already placed.
    std::vector<const BoundJoin*> connecting;
    for (const BoundJoin& j : query.joins) {
      const int other = j.left_scan == s   ? j.right_scan
                        : j.right_scan == s ? j.left_scan
                                            : -1;
      if (other >= 0 && slot_of_scan[static_cast<size_t>(other)] >= 0) {
        connecting.push_back(&j);
      }
    }
    auto my_col = [&](const BoundJoin* j) -> const ColumnRef& {
      return j->left_scan == s ? j->left_column : j->right_column;
    };
    auto other_scan = [&](const BoundJoin* j) {
      return j->left_scan == s ? j->right_scan : j->left_scan;
    };
    auto other_col = [&](const BoundJoin* j) -> const ColumnRef& {
      return j->left_scan == s ? j->right_column : j->left_column;
    };

    JoinMethod method = force_reference ? JoinMethod::kHashJoin : step.join;
    if (connecting.empty()) method = JoinMethod::kHashJoin;  // cross join

    TupleBuf next;
    next.width = tuples.width + 1;
    auto emit = [&](const uint32_t* tuple, uint32_t r) {
      next.data.insert(next.data.end(), tuple,
                       tuple + tuples.width);
      next.data.push_back(r);
      BATI_CHECK(next.count() <= kMaxIntermediateTuples);
    };

    // Verifies every connecting join condition except `skip` (exact value
    // equality; the hash/seek only pre-filters).
    auto verify_joins = [&](const uint32_t* tuple, uint32_t r,
                            const BoundJoin* skip) -> bool {
      for (const BoundJoin* j : connecting) {
        if (j == skip) continue;
        const double lv = left_value(tuple, other_scan(j), other_col(j));
        const double rv = store.value(t, r, my_col(j).column_id);
        if (lv != rv) return false;
      }
      return true;
    };

    if (method == JoinMethod::kIndexNestedLoop && !force_reference &&
        step.index_pos >= 0) {
      const Index& ix = config[static_cast<size_t>(step.index_pos)];
      const BTree* tree = GetOrBuildTree(ix);
      const int nk = static_cast<int>(ix.key_columns.size());
      const std::vector<int> slots = IndexColumnSlots(ix, store.num_cols(t));
      const std::vector<ExecPredicate>& ps =
          preds_by_scan[static_cast<size_t>(s)];

      // Walk the key prefix exactly like the planner: equality predicates
      // fill leading positions, then a connecting join column must appear.
      std::vector<const ExecPredicate*> eq;
      std::vector<bool> consumed(ps.size(), false);
      const BoundJoin* used_join = nullptr;
      for (int key_col : ix.key_columns) {
        int eq_pi = -1;
        for (size_t pi = 0; pi < ps.size(); ++pi) {
          if (!consumed[pi] && ps[pi].column_id == key_col &&
              ps[pi].equality_capable()) {
            eq_pi = static_cast<int>(pi);
            break;
          }
        }
        if (eq_pi >= 0) {
          eq.push_back(&ps[static_cast<size_t>(eq_pi)]);
          consumed[static_cast<size_t>(eq_pi)] = true;
          continue;
        }
        for (const BoundJoin* j : connecting) {
          if (my_col(j).column_id == key_col) {
            used_join = j;
            break;
          }
        }
        break;
      }

      int64_t combos = 1;
      for (const ExecPredicate* p : eq) {
        combos *= static_cast<int64_t>(p->values.size());
        if (combos > kMaxSeekCombos) break;
      }
      if (used_join == nullptr || combos > kMaxSeekCombos) {
        method = JoinMethod::kHashJoin;  // defensive: plan/exec mismatch
      } else {
        std::vector<const ExecPredicate*> residuals;
        for (size_t pi = 0; pi < ps.size(); ++pi) {
          if (!consumed[pi]) residuals.push_back(&ps[pi]);
        }
        const int n_eq = static_cast<int>(eq.size());
        std::vector<double> prefix(static_cast<size_t>(n_eq) + 1);
        std::vector<size_t> odo(static_cast<size_t>(n_eq), 0);
        int64_t entries = 0;
        int64_t seeks = 0;
        int64_t lookups = 0;
        // One visitor for the whole probe loop: constructing a capturing
        // std::function per probe would allocate on every outer row.
        const uint32_t* cur_tuple = nullptr;
        const BTree::Visitor probe_visit = [&](const BTree::Entry& e) {
          ++entries;
          bool heap_read = false;
          for (const ExecPredicate* p : residuals) {
            const int slot = slots[static_cast<size_t>(p->column_id)];
            double v;
            if (slot >= 0) {
              v = EntryValue(e, nk, slot);
            } else {
              v = store.value(t, e.row_id, p->column_id);
              heap_read = true;
            }
            if (!p->Matches(v)) return true;
          }
          if (heap_read) ++lookups;
          if (verify_joins(cur_tuple, e.row_id, used_join)) {
            emit(cur_tuple, e.row_id);
          }
          return true;
        };
        for (int64_t ti = 0; ti < tuples.count(); ++ti) {
          cur_tuple = tuples.tuple(ti);
          prefix[static_cast<size_t>(n_eq)] =
              left_value(cur_tuple, other_scan(used_join),
                         other_col(used_join));
          std::fill(odo.begin(), odo.end(), 0);
          for (int64_t combo = 0; combo < combos; ++combo) {
            for (int i = 0; i < n_eq; ++i) {
              prefix[static_cast<size_t>(i)] =
                  eq[static_cast<size_t>(i)]
                      ->values[odo[static_cast<size_t>(i)]];
            }
            ++seeks;
            tree->SeekPrefix(prefix.data(), n_eq + 1, probe_visit);
            for (int i = n_eq - 1; i >= 0; --i) {
              if (++odo[static_cast<size_t>(i)] <
                  eq[static_cast<size_t>(i)]->values.size()) {
                break;
              }
              odo[static_cast<size_t>(i)] = 0;
            }
          }
        }
        Bump(c.index_seeks, seeks);
        Bump(c.index_entries, entries);
        Bump(c.heap_lookups, lookups);
      }
    }

    if (method == JoinMethod::kMergeJoin) {
      std::vector<uint32_t> rows =
          collect_rows(s, step.access, step.index_pos);
      const BoundJoin* mj = connecting.front();
      const int mcol = my_col(mj).column_id;

      std::vector<std::pair<double, uint32_t>> right;
      right.reserve(rows.size());
      for (uint32_t r : rows) right.emplace_back(store.value(t, r, mcol), r);
      std::vector<std::pair<double, int64_t>> left;
      left.reserve(static_cast<size_t>(tuples.count()));
      for (int64_t ti = 0; ti < tuples.count(); ++ti) {
        left.emplace_back(
            left_value(tuples.tuple(ti), other_scan(mj), other_col(mj)),
            ti);
      }
      std::sort(right.begin(), right.end());
      std::sort(left.begin(), left.end());
      Bump(c.sort_rows,
           static_cast<int64_t>(left.size() + right.size()));
      Bump(c.merge_rows,
           static_cast<int64_t>(left.size() + right.size()));

      size_t i = 0;
      size_t j = 0;
      while (i < left.size() && j < right.size()) {
        if (left[i].first < right[j].first) {
          ++i;
        } else if (right[j].first < left[i].first) {
          ++j;
        } else {
          const double v = left[i].first;
          size_t i2 = i;
          while (i2 < left.size() && left[i2].first == v) ++i2;
          size_t j2 = j;
          while (j2 < right.size() && right[j2].first == v) ++j2;
          for (size_t a = i; a < i2; ++a) {
            const uint32_t* tuple = tuples.tuple(left[a].second);
            for (size_t b = j; b < j2; ++b) {
              if (verify_joins(tuple, right[b].second, mj)) {
                emit(tuple, right[b].second);
              }
            }
          }
          i = i2;
          j = j2;
        }
      }
    }

    if (method == JoinMethod::kHashJoin) {
      std::vector<uint32_t> rows =
          collect_rows(s, step.access, step.index_pos);
      if (connecting.empty()) {
        for (int64_t ti = 0; ti < tuples.count(); ++ti) {
          const uint32_t* tuple = tuples.tuple(ti);
          for (uint32_t r : rows) emit(tuple, r);
        }
      } else {
        std::vector<uint64_t> hashes;
        hashes.reserve(rows.size());
        for (uint32_t r : rows) {
          uint64_t h = 0;
          for (const BoundJoin* j : connecting) {
            h = HashValue(h, store.value(t, r, my_col(j).column_id));
          }
          hashes.push_back(h);
        }
        JoinHashTable table;
        table.Build(hashes, rows);
        Bump(c.hash_builds);
        Bump(c.hash_build_rows, static_cast<int64_t>(rows.size()));
        Bump(c.hash_probe_rows, tuples.count());
        for (int64_t ti = 0; ti < tuples.count(); ++ti) {
          const uint32_t* tuple = tuples.tuple(ti);
          uint64_t h = 0;
          for (const BoundJoin* j : connecting) {
            h = HashValue(h,
                          left_value(tuple, other_scan(j), other_col(j)));
          }
          table.ForEach(h, [&](uint32_t r) {
            if (verify_joins(tuple, r, nullptr)) emit(tuple, r);
          });
        }
      }
    }

    slot_of_scan[static_cast<size_t>(s)] = tuples.width;
    tuples = std::move(next);
  }

  // ---- Post-processing: checksum, aggregation, ordering. ----
  ExecResult result;
  result.joined_rows = tuples.count();
  Bump(c.result_rows, result.joined_rows);

  std::vector<BoundColumnUse> proj;
  if (query.select_star) {
    for (int s = 0; s < query.num_scans(); ++s) {
      const int t = query.scans[static_cast<size_t>(s)].table_id;
      for (int col = 0; col < store.num_cols(t); ++col) {
        BoundColumnUse u;
        u.scan_id = s;
        u.column = ColumnRef{t, col};
        proj.push_back(u);
      }
    }
  } else {
    proj = query.projections;
  }

  auto tuple_value = [&](const uint32_t* tuple,
                         const BoundColumnUse& u) -> double {
    return store.value(query.scans[static_cast<size_t>(u.scan_id)].table_id,
                       tuple[slot_of_scan[static_cast<size_t>(u.scan_id)]],
                       u.column.column_id);
  };

  uint64_t checksum = 0;
  std::unordered_set<uint64_t> groups;
  for (int64_t ti = 0; ti < tuples.count(); ++ti) {
    const uint32_t* tuple = tuples.tuple(ti);
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const BoundColumnUse& u : proj) {
      h = HashValue(h, tuple_value(tuple, u));
    }
    checksum += h;
    if (query.has_aggregation && !query.group_by.empty()) {
      uint64_t gh = 0x9e3779b97f4a7c15ULL;
      for (const BoundColumnUse& u : query.group_by) {
        gh = HashValue(gh, tuple_value(tuple, u));
      }
      groups.insert(gh);
    }
  }
  result.checksum = checksum;

  if (query.has_aggregation) {
    result.output_rows = query.group_by.empty()
                             ? 1
                             : static_cast<int64_t>(groups.size());
    Bump(c.agg_groups, result.output_rows);
  } else {
    result.output_rows = result.joined_rows;
  }

  // Final sort (skipped when a single-scan order-providing index was the
  // chosen access path, mirroring the planner's sort elimination). The
  // sorted order itself is not part of the result contract — only the work
  // is — so nothing feeds back into the checksum.
  if (!query.order_by.empty()) {
    bool eliminated = false;
    if (!force_reference && query.num_scans() == 1 &&
        plan.steps[0].index_pos >= 0) {
      std::vector<int> order_cols;
      for (const BoundColumnUse& u : query.order_by) {
        order_cols.push_back(u.column.column_id);
      }
      eliminated = ProvidesOrderExec(
          config[static_cast<size_t>(plan.steps[0].index_pos)],
          preds_by_scan[0], order_cols);
    }
    if (!eliminated && tuples.count() > 1) {
      const size_t k = query.order_by.size();
      std::vector<double> keys(static_cast<size_t>(tuples.count()) * k);
      for (int64_t ti = 0; ti < tuples.count(); ++ti) {
        for (size_t oi = 0; oi < k; ++oi) {
          keys[static_cast<size_t>(ti) * k + oi] =
              tuple_value(tuples.tuple(ti), query.order_by[oi]);
        }
      }
      std::vector<int64_t> idx(static_cast<size_t>(tuples.count()));
      for (int64_t ti = 0; ti < tuples.count(); ++ti) {
        idx[static_cast<size_t>(ti)] = ti;
      }
      std::sort(idx.begin(), idx.end(), [&](int64_t a, int64_t b) {
        for (size_t oi = 0; oi < k; ++oi) {
          const double va = keys[static_cast<size_t>(a) * k + oi];
          const double vb = keys[static_cast<size_t>(b) * k + oi];
          if (va < vb) return true;
          if (va > vb) return false;
        }
        return a < b;
      });
      Bump(c.sort_rows, tuples.count());
    }
  }
  return result;
}

}  // namespace bati::exec
