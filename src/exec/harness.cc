#include "exec/harness.h"

#include <algorithm>
#include <limits>
#include <random>
#include <utility>

#include "common/macros.h"
#include "exec/correlation.h"

namespace bati::exec {

namespace {

/// Deterministic random position sets over the universe, the empty
/// configuration first (the same shape the what-if identity tests and
/// bench_whatif use).
std::vector<std::vector<int>> SamplePositionSets(int universe, int count,
                                                 int max_size,
                                                 uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::vector<int>> sets;
  sets.push_back({});
  if (universe == 0) return sets;
  std::uniform_int_distribution<int> size_dist(1, max_size);
  std::uniform_int_distribution<int> pick(0, universe - 1);
  for (int i = 0; i < count; ++i) {
    std::vector<int> chosen;
    const int want = size_dist(rng);
    for (int k = 0; k < want; ++k) chosen.push_back(pick(rng));
    std::sort(chosen.begin(), chosen.end());
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    sets.push_back(std::move(chosen));
  }
  return sets;
}

std::vector<Index> ToConfig(const std::vector<Index>& universe,
                            const std::vector<int>& positions) {
  std::vector<Index> config;
  config.reserve(positions.size());
  for (int pos : positions) {
    config.push_back(universe[static_cast<size_t>(pos)]);
  }
  return config;
}

}  // namespace

CorrelationReport RunCorrelation(ExecutionEngine* engine,
                                 const std::vector<Index>& universe,
                                 const CorrelationOptions& options) {
  BATI_CHECK(engine != nullptr);
  BATI_CHECK(options.num_configs >= 2);
  BATI_CHECK(options.passes >= 1);

  // ---- Sample candidate configurations, cost them all hypothetically. ----
  std::vector<std::vector<int>> sampled = SamplePositionSets(
      static_cast<int>(universe.size()),
      std::max(options.sample_configs, options.num_configs),
      options.max_config_size, options.seed);
  struct Sampled {
    std::vector<int> positions;
    double cost;
  };
  if (options.trajectory && !universe.empty()) {
    // Greedy forward selection over the whole universe; every prefix of
    // the trajectory joins the pool.
    std::vector<int> current;
    std::vector<char> used(universe.size(), 0);
    double current_cost = engine->WhatIfWorkloadCost({});
    for (int step = 0; step < options.max_config_size; ++step) {
      int best_pos = -1;
      double best_cost = current_cost;
      for (size_t pos = 0; pos < universe.size(); ++pos) {
        if (used[pos]) continue;
        std::vector<int> extended = current;
        extended.push_back(static_cast<int>(pos));
        const double cost =
            engine->WhatIfWorkloadCost(ToConfig(universe, extended));
        if (cost < best_cost) {
          best_cost = cost;
          best_pos = static_cast<int>(pos);
        }
      }
      if (best_pos < 0) break;  // no candidate improves: trajectory done
      used[static_cast<size_t>(best_pos)] = 1;
      current.push_back(best_pos);
      std::sort(current.begin(), current.end());
      current_cost = best_cost;
      sampled.push_back(current);
    }
  }

  std::vector<Sampled> costed;
  costed.reserve(sampled.size());
  for (std::vector<int>& positions : sampled) {
    const double cost =
        engine->WhatIfWorkloadCost(ToConfig(universe, positions));
    costed.push_back(Sampled{std::move(positions), cost});
  }
  // Dedupe by cost: identical costs are almost surely identical effective
  // configurations and add no rank information.
  std::sort(costed.begin(), costed.end(),
            [](const Sampled& a, const Sampled& b) { return a.cost < b.cost; });
  costed.erase(std::unique(costed.begin(), costed.end(),
                           [](const Sampled& a, const Sampled& b) {
                             return a.cost == b.cost;
                           }),
               costed.end());

  // ---- Select the executed subset. ----
  std::vector<Sampled> chosen;
  const int want = std::min<int>(options.num_configs,
                                 static_cast<int>(costed.size()));
  if (options.spread && static_cast<int>(costed.size()) > want) {
    // Pick the configs whose costs are nearest to evenly spaced targets
    // over [cheapest, dearest]: the correlation then spans the whole cost
    // range at roughly uniform spacing instead of clustering wherever
    // sampling happened to land (random samples crowd the expensive end;
    // the trajectory populates the cheap end).
    const double lo = costed.front().cost;
    const double hi = costed.back().cost;
    std::vector<char> taken(costed.size(), 0);
    for (int i = 0; i < want; ++i) {
      const double target = lo + (hi - lo) * i / (want - 1);
      size_t best = costed.size();
      double best_dist = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < costed.size(); ++j) {
        if (taken[j]) continue;
        const double dist = std::abs(costed[j].cost - target);
        if (dist < best_dist) {
          best_dist = dist;
          best = j;
        }
      }
      taken[best] = 1;
    }
    for (size_t j = 0; j < costed.size(); ++j) {
      if (taken[j]) chosen.push_back(costed[j]);
    }
  } else {
    chosen.assign(costed.begin(), costed.begin() + want);
  }

  CorrelationReport report;
  report.num_configs = static_cast<int>(chosen.size());
  report.store_rows = engine->store().total_rows();
  for (const Sampled& s : chosen) {
    ConfigMeasurement m;
    m.positions = s.positions;
    m.whatif_cost = s.cost;
    report.configs.push_back(std::move(m));
  }

  // ---- Execute: `passes` full sweeps, correlation per pass.
  // Repetitions are interleaved across configurations (sweep all configs,
  // then sweep again) so one configuration's repetitions land far apart in
  // time: a transient load burst inflates at most one repetition of each
  // query, and the per-query minimum discards it. Back-to-back repetitions
  // would all sit inside the same burst.
  const size_t nc = report.configs.size();
  std::vector<std::vector<ExecResult>> first_results(nc);
  std::vector<std::vector<double>> pq_global(nc);
  for (int pass = 0; pass < options.passes; ++pass) {
    std::vector<std::vector<double>> pq_min(nc);
    for (int rep = 0; rep < options.repetitions; ++rep) {
      for (size_t ci = 0; ci < nc; ++ci) {
        ConfigMeasurement& m = report.configs[ci];
        ExecutionEngine::RunResult run =
            engine->ExecuteWorkload(ToConfig(universe, m.positions), 1);
        if (pass == 0 && rep == 0) {
          first_results[ci] = std::move(run.per_query);
        } else {  // determinism across repetitions and passes
          for (size_t qi = 0; qi < run.per_query.size(); ++qi) {
            BATI_CHECK(run.per_query[qi] == first_results[ci][qi]);
          }
        }
        if (pq_min[ci].empty()) {
          pq_min[ci] = std::move(run.per_query_seconds);
        } else {
          for (size_t qi = 0; qi < pq_min[ci].size(); ++qi) {
            pq_min[ci][qi] =
                std::min(pq_min[ci][qi], run.per_query_seconds[qi]);
          }
        }
      }
    }
    std::vector<double> costs;
    std::vector<double> seconds;
    for (size_t ci = 0; ci < nc; ++ci) {
      ConfigMeasurement& m = report.configs[ci];
      double total = 0.0;
      for (double s : pq_min[ci]) total += s;
      m.seconds.push_back(total);
      costs.push_back(m.whatif_cost);
      seconds.push_back(total);
      if (pq_global[ci].empty()) {
        pq_global[ci] = std::move(pq_min[ci]);
      } else {
        for (size_t qi = 0; qi < pq_global[ci].size(); ++qi) {
          pq_global[ci][qi] = std::min(pq_global[ci][qi], pq_min[ci][qi]);
        }
      }
    }
    report.spearman_per_pass.push_back(SpearmanRho(costs, seconds));
  }
  report.spearman_min = *std::min_element(report.spearman_per_pass.begin(),
                                          report.spearman_per_pass.end());
  {
    std::vector<double> costs;
    std::vector<double> best;
    for (size_t ci = 0; ci < nc; ++ci) {
      ConfigMeasurement& m = report.configs[ci];
      m.per_query_seconds = std::move(pq_global[ci]);
      m.seconds_best = 0.0;
      for (double s : m.per_query_seconds) m.seconds_best += s;
      costs.push_back(m.whatif_cost);
      best.push_back(m.seconds_best);
    }
    report.spearman_combined = SpearmanRho(costs, best);
    report.kendall = KendallTau(costs, best);
  }

  // ---- Validation: every configuration must compute the same logical
  // result, and that result must match the scalar reference executor. ----
  if (options.validate) {
    const int nq = static_cast<int>(first_results.front().size());
    for (int qi = 0; qi < nq; ++qi) {
      const ExecResult reference = engine->ExecuteReference(qi);
      for (size_t ci = 0; ci < first_results.size(); ++ci) {
        BATI_CHECK(first_results[ci][static_cast<size_t>(qi)] == reference);
      }
    }
    report.validated = true;
  }
  return report;
}

}  // namespace bati::exec
