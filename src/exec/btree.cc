#include "exec/btree.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace bati::exec {

/// Node layout: leaves hold flattened entries plus a next-leaf link;
/// interior nodes hold separator entries (key + row id of the smallest
/// entry of each child but the first) and child pointers, so
/// children.size() == separator count + 1.
struct BTree::Node {
  bool is_leaf = true;
};

struct BTree::Leaf : BTree::Node {
  std::vector<double> keys;       // key_width * count
  std::vector<double> payloads;   // payload_width * count
  std::vector<uint32_t> row_ids;  // count
  Leaf* next = nullptr;
};

struct BTree::Interior : BTree::Node {
  std::vector<double> sep_keys;      // key_width * (children - 1)
  std::vector<uint32_t> sep_rows;    // children - 1
  std::vector<Node*> children;
};

namespace {

/// Lexicographic compare of two fixed-width key vectors.
int CompareKeys(const double* a, const double* b, int width) {
  for (int i = 0; i < width; ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

/// Compares an entry against a partial search target: `prefix_len` leading
/// columns, optionally one more bounded column, and -infinity padding
/// afterwards (so a full match still compares greater). Returns -1 when the
/// entry sorts before the target, +1 otherwise — never 0, because the
/// padding makes every real entry distinct from the target.
int ComparePartial(const double* entry, int /*key_width*/, const double* prefix,
                   int prefix_len, bool has_extra, double extra) {
  for (int i = 0; i < prefix_len; ++i) {
    if (entry[i] < prefix[i]) return -1;
    if (entry[i] > prefix[i]) return 1;
  }
  if (has_extra) {
    if (entry[prefix_len] < extra) return -1;
    if (entry[prefix_len] > extra) return 1;
  }
  return 1;  // equal on all compared columns: entry > (-inf-padded) target
}

}  // namespace

BTree::BTree(int key_width, int payload_width, int leaf_capacity)
    : key_width_(key_width),
      payload_width_(payload_width),
      leaf_capacity_(leaf_capacity) {
  BATI_CHECK(key_width_ >= 1);
  BATI_CHECK(payload_width_ >= 0);
  BATI_CHECK(leaf_capacity_ >= 4);
  root_ = new Leaf();
}

BTree::~BTree() { FreeTree(root_); }

void BTree::FreeTree(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    auto* in = static_cast<Interior*>(node);
    for (Node* child : in->children) FreeTree(child);
    delete in;
  } else {
    delete static_cast<Leaf*>(node);
  }
}

int BTree::CompareEntry(const double* a_key, uint32_t a_row,
                        const double* b_key, uint32_t b_row) const {
  const int c = CompareKeys(a_key, b_key, key_width_);
  if (c != 0) return c;
  if (a_row < b_row) return -1;
  if (a_row > b_row) return 1;
  return 0;
}

void BTree::BulkLoad(const std::vector<double>& keys,
                     const std::vector<double>& payloads,
                     const std::vector<uint32_t>& row_ids) {
  BATI_CHECK(size_ == 0);
  const size_t n = row_ids.size();
  BATI_CHECK(keys.size() == n * static_cast<size_t>(key_width_));
  BATI_CHECK(payloads.size() == n * static_cast<size_t>(payload_width_));
  if (n == 0) return;

  // Level 0: packed leaves, linked left to right.
  std::vector<Node*> level;
  std::vector<double> level_min_keys;   // key_width per node
  std::vector<uint32_t> level_min_rows;
  Leaf* prev = nullptr;
  const size_t cap = static_cast<size_t>(leaf_capacity_);
  for (size_t start = 0; start < n; start += cap) {
    const size_t count = std::min(cap, n - start);
    auto* leaf = start == 0 ? static_cast<Leaf*>(root_) : new Leaf();
    leaf->is_leaf = true;
    leaf->keys.assign(
        keys.begin() + static_cast<ptrdiff_t>(start * key_width_),
        keys.begin() + static_cast<ptrdiff_t>((start + count) * key_width_));
    leaf->payloads.assign(
        payloads.begin() + static_cast<ptrdiff_t>(start * payload_width_),
        payloads.begin() +
            static_cast<ptrdiff_t>((start + count) * payload_width_));
    leaf->row_ids.assign(row_ids.begin() + static_cast<ptrdiff_t>(start),
                         row_ids.begin() +
                             static_cast<ptrdiff_t>(start + count));
    if (prev != nullptr) prev->next = leaf;
    prev = leaf;
    level.push_back(leaf);
    level_min_keys.insert(level_min_keys.end(), leaf->keys.begin(),
                          leaf->keys.begin() + key_width_);
    level_min_rows.push_back(leaf->row_ids.front());
  }

  // Interior levels until one root remains.
  height_ = 1;
  while (level.size() > 1) {
    std::vector<Node*> next_level;
    std::vector<double> next_min_keys;
    std::vector<uint32_t> next_min_rows;
    for (size_t start = 0; start < level.size(); start += cap) {
      const size_t count = std::min(cap, level.size() - start);
      auto* in = new Interior();
      in->is_leaf = false;
      for (size_t i = 0; i < count; ++i) {
        in->children.push_back(level[start + i]);
        if (i > 0) {
          const double* mk = &level_min_keys[(start + i) * key_width_];
          in->sep_keys.insert(in->sep_keys.end(), mk, mk + key_width_);
          in->sep_rows.push_back(level_min_rows[start + i]);
        }
      }
      next_level.push_back(in);
      const double* mk = &level_min_keys[start * key_width_];
      next_min_keys.insert(next_min_keys.end(), mk, mk + key_width_);
      next_min_rows.push_back(level_min_rows[start]);
    }
    level.swap(next_level);
    level_min_keys.swap(next_min_keys);
    level_min_rows.swap(next_min_rows);
    ++height_;
  }
  root_ = level.front();
  size_ = static_cast<int64_t>(n);
}

void BTree::InsertRec(Node* node, const double* key, const double* payload,
                      uint32_t row_id, std::unique_ptr<Node>* new_sibling,
                      std::vector<double>* split_key, uint32_t* split_row) {
  if (node->is_leaf) {
    auto* leaf = static_cast<Leaf*>(node);
    const int count = static_cast<int>(leaf->row_ids.size());
    int pos = 0;
    while (pos < count &&
           CompareEntry(&leaf->keys[static_cast<size_t>(pos) * key_width_],
                        leaf->row_ids[static_cast<size_t>(pos)], key,
                        row_id) < 0) {
      ++pos;
    }
    leaf->keys.insert(
        leaf->keys.begin() + static_cast<ptrdiff_t>(pos) * key_width_, key,
        key + key_width_);
    leaf->payloads.insert(
        leaf->payloads.begin() + static_cast<ptrdiff_t>(pos) * payload_width_,
        payload, payload + payload_width_);
    leaf->row_ids.insert(leaf->row_ids.begin() + pos, row_id);
    if (static_cast<int>(leaf->row_ids.size()) <= leaf_capacity_) return;

    // Split: upper half moves to a new right sibling.
    const int keep = static_cast<int>(leaf->row_ids.size()) / 2;
    auto right = std::make_unique<Leaf>();
    right->is_leaf = true;
    right->keys.assign(
        leaf->keys.begin() + static_cast<ptrdiff_t>(keep) * key_width_,
        leaf->keys.end());
    right->payloads.assign(
        leaf->payloads.begin() + static_cast<ptrdiff_t>(keep) * payload_width_,
        leaf->payloads.end());
    right->row_ids.assign(leaf->row_ids.begin() + keep, leaf->row_ids.end());
    leaf->keys.resize(static_cast<size_t>(keep) * key_width_);
    leaf->payloads.resize(static_cast<size_t>(keep) * payload_width_);
    leaf->row_ids.resize(static_cast<size_t>(keep));
    right->next = leaf->next;
    leaf->next = right.get();
    split_key->assign(right->keys.begin(), right->keys.begin() + key_width_);
    *split_row = right->row_ids.front();
    *new_sibling = std::move(right);
    return;
  }

  auto* in = static_cast<Interior*>(node);
  const int seps = static_cast<int>(in->sep_rows.size());
  int child = 0;
  while (child < seps &&
         CompareEntry(&in->sep_keys[static_cast<size_t>(child) * key_width_],
                      in->sep_rows[static_cast<size_t>(child)], key,
                      row_id) <= 0) {
    ++child;
  }
  std::unique_ptr<Node> child_sibling;
  std::vector<double> child_split_key;
  uint32_t child_split_row = 0;
  InsertRec(in->children[static_cast<size_t>(child)], key, payload, row_id,
            &child_sibling, &child_split_key, &child_split_row);
  if (child_sibling == nullptr) return;

  in->sep_keys.insert(
      in->sep_keys.begin() + static_cast<ptrdiff_t>(child) * key_width_,
      child_split_key.begin(), child_split_key.end());
  in->sep_rows.insert(in->sep_rows.begin() + child, child_split_row);
  in->children.insert(in->children.begin() + child + 1,
                      child_sibling.release());
  if (static_cast<int>(in->children.size()) <= leaf_capacity_) return;

  // Split interior: middle separator promotes to the parent.
  const int mid = static_cast<int>(in->sep_rows.size()) / 2;
  auto right = std::make_unique<Interior>();
  right->is_leaf = false;
  split_key->assign(
      in->sep_keys.begin() + static_cast<ptrdiff_t>(mid) * key_width_,
      in->sep_keys.begin() + static_cast<ptrdiff_t>(mid + 1) * key_width_);
  *split_row = in->sep_rows[static_cast<size_t>(mid)];
  right->sep_keys.assign(
      in->sep_keys.begin() + static_cast<ptrdiff_t>(mid + 1) * key_width_,
      in->sep_keys.end());
  right->sep_rows.assign(in->sep_rows.begin() + mid + 1, in->sep_rows.end());
  right->children.assign(in->children.begin() + mid + 1, in->children.end());
  in->sep_keys.resize(static_cast<size_t>(mid) * key_width_);
  in->sep_rows.resize(static_cast<size_t>(mid));
  in->children.resize(static_cast<size_t>(mid) + 1);
  *new_sibling = std::move(right);
}

void BTree::Insert(const double* key, const double* payload,
                   uint32_t row_id) {
  std::unique_ptr<Node> sibling;
  std::vector<double> split_key;
  uint32_t split_row = 0;
  InsertRec(root_, key, payload, row_id, &sibling, &split_key, &split_row);
  if (sibling != nullptr) {
    auto* new_root = new Interior();
    new_root->is_leaf = false;
    new_root->children.push_back(root_);
    new_root->children.push_back(sibling.release());
    new_root->sep_keys = std::move(split_key);
    new_root->sep_rows.push_back(split_row);
    root_ = new_root;
    ++height_;
  }
  ++size_;
}

const BTree::Leaf* BTree::LowerBoundLeaf(const double* prefix, int prefix_len,
                                         double first_extra, int* pos) const {
  const bool has_extra = prefix_len < key_width_;
  // Binary search at every level: "entry sorts before the target" is true
  // on a prefix of each node's sorted entries, so partition_point finds the
  // first non-smaller one. Seek cost is what index-nested-loop joins pay
  // per probe; linear node scans would distort the measured plan costs the
  // correlation gate compares against the model.
  auto first_not_less = [&](const std::vector<double>& keys,
                            int count) -> int {
    int lo = 0;
    int hi = count;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (ComparePartial(&keys[static_cast<size_t>(mid) * key_width_],
                         key_width_, prefix, prefix_len, has_extra,
                         first_extra) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  const Node* node = root_;
  while (!node->is_leaf) {
    const auto* in = static_cast<const Interior*>(node);
    const int child =
        first_not_less(in->sep_keys, static_cast<int>(in->sep_rows.size()));
    node = in->children[static_cast<size_t>(child)];
  }
  const auto* leaf = static_cast<const Leaf*>(node);
  *pos = first_not_less(leaf->keys, static_cast<int>(leaf->row_ids.size()));
  return leaf;
}

void BTree::SeekPrefix(const double* prefix, int prefix_len,
                       const Visitor& visit) const {
  BATI_CHECK(prefix_len >= 1 && prefix_len <= key_width_);
  if (size_ == 0) return;
  int pos = 0;
  const double neg_inf = -std::numeric_limits<double>::infinity();
  const Leaf* leaf = LowerBoundLeaf(prefix, prefix_len, neg_inf, &pos);
  while (leaf != nullptr) {
    const int count = static_cast<int>(leaf->row_ids.size());
    for (; pos < count; ++pos) {
      const double* key = &leaf->keys[static_cast<size_t>(pos) * key_width_];
      if (CompareKeys(key, prefix, prefix_len) != 0) return;
      Entry e{key, &leaf->payloads[static_cast<size_t>(pos) * payload_width_],
              leaf->row_ids[static_cast<size_t>(pos)]};
      if (!visit(e)) return;
    }
    leaf = leaf->next;
    pos = 0;
  }
}

void BTree::SeekRange(const double* prefix, int prefix_len, double lo,
                      double hi, const Visitor& visit) const {
  BATI_CHECK(prefix_len >= 0 && prefix_len < key_width_);
  if (size_ == 0 || lo > hi) return;
  int pos = 0;
  const Leaf* leaf = LowerBoundLeaf(prefix, prefix_len, lo, &pos);
  while (leaf != nullptr) {
    const int count = static_cast<int>(leaf->row_ids.size());
    for (; pos < count; ++pos) {
      const double* key = &leaf->keys[static_cast<size_t>(pos) * key_width_];
      if (prefix_len > 0 && CompareKeys(key, prefix, prefix_len) != 0) return;
      if (key[prefix_len] > hi) return;
      Entry e{key, &leaf->payloads[static_cast<size_t>(pos) * payload_width_],
              leaf->row_ids[static_cast<size_t>(pos)]};
      if (!visit(e)) return;
    }
    leaf = leaf->next;
    pos = 0;
  }
}

void BTree::Scan(const Visitor& visit) const {
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const Interior*>(node)->children.front();
  }
  const auto* leaf = static_cast<const Leaf*>(node);
  while (leaf != nullptr) {
    const int count = static_cast<int>(leaf->row_ids.size());
    for (int pos = 0; pos < count; ++pos) {
      Entry e{&leaf->keys[static_cast<size_t>(pos) * key_width_],
              &leaf->payloads[static_cast<size_t>(pos) * payload_width_],
              leaf->row_ids[static_cast<size_t>(pos)]};
      if (!visit(e)) return;
    }
    leaf = leaf->next;
  }
}

}  // namespace bati::exec
