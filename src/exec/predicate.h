#ifndef BATI_EXEC_PREDICATE_H_
#define BATI_EXEC_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "exec/column_store.h"
#include "workload/query.h"

namespace bati::exec {

/// A bound filter realized into a concrete, executable predicate over the
/// materialized store. The Query IR keeps only each conjunct's *estimated
/// selectivity* (exactly what a real optimizer's cardinality model retains),
/// so execution re-derives a concrete predicate whose realized fraction
/// tracks that estimate:
///
///  * equality  -> one concrete value from the column's pool;
///  * IN        -> round(sel * NDV) distinct pool values;
///  * range     -> a value window [lo, hi] of probability mass ~sel, placed
///                 deterministically within the domain so that independent
///                 windows on the same column overlap like independent
///                 predicates (the model's independence assumption);
///  * LIKE / <> / OR / column-column -> a value-hash threshold keeping a
///                 ~sel fraction (non-sargable, exactly as the model treats
///                 them).
///
/// Realization depends only on (query, filter ordinal, seed) — never on the
/// index configuration — so every configuration executes the identical
/// logical query.
struct ExecPredicate {
  enum class Kind { kEquality, kIn, kRange, kHashThreshold };

  int scan_id = -1;
  int column_id = -1;  // ordinal within the scan's table
  Kind kind = Kind::kHashThreshold;
  /// kEquality: 1 value; kIn: m ascending distinct values.
  std::vector<double> values;
  /// kRange window (inclusive both ends).
  double lo = 0.0;
  double hi = 0.0;
  /// kHashThreshold: keep rows with Mix64(bits(v) ^ seed) < threshold.
  uint64_t hash_seed = 0;
  uint64_t hash_threshold = 0;
  /// The binder's estimate, kept for diagnostics.
  double estimated_selectivity = 1.0;

  bool Matches(double v) const;

  /// Equality-capable predicates can bind any index key prefix position
  /// (the executor mirrors the cost model's sargability rule).
  bool equality_capable() const {
    return kind == Kind::kEquality || kind == Kind::kIn;
  }
};

/// Realizes every filter of `query` against `store`; result is indexed by
/// scan id. `seed` must match across executors comparing results.
std::vector<std::vector<ExecPredicate>> RealizePredicates(
    const Query& query, const ColumnStore& store, uint64_t seed);

}  // namespace bati::exec

#endif  // BATI_EXEC_PREDICATE_H_
