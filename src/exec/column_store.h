#ifndef BATI_EXEC_COLUMN_STORE_H_
#define BATI_EXEC_COLUMN_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/catalog.h"

namespace bati::exec {

/// Options for deterministic store materialization.
struct StoreOptions {
  /// Seed for all value synthesis; equal seeds yield byte-identical stores.
  uint64_t seed = 42;
  /// Hard cap on rows per table (guards against accidentally materializing
  /// a statistics-scale database; callers pass an appropriately scaled
  /// workload instead of relying on this).
  int64_t max_rows_per_table = 64 * 1000 * 1000;
};

/// A real in-memory store materialized from a statistics-only Database:
/// every table gets `row_count` rows whose per-column values are drawn
/// deterministically from the catalog's distributions — NDV distinct values
/// evenly spaced over [min, max] (integer-like types rounded), assigned to
/// rows uniformly or by the column's histogram when it carries one. Because
/// two join-column endpoints with equal domains and NDVs synthesize the
/// same value pool, equi-joins match the way the cardinality model assumes
/// (containment), and realized filter fractions track the binder's
/// selectivity estimates.
///
/// Rows are stored row-major (heap order), so a sequential scan's memory
/// traffic grows with the full row width exactly as the cost model's
/// heap-page term does; strings are represented by their value id (the
/// cost model never reads string bytes, and neither does any predicate).
class ColumnStore {
 public:
  ColumnStore(const Database& db, const StoreOptions& options);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  int64_t rows(int t) const { return tables_[static_cast<size_t>(t)].rows; }
  int num_cols(int t) const {
    return tables_[static_cast<size_t>(t)].num_cols;
  }
  int64_t total_rows() const { return total_rows_; }

  /// Value of column `c` of row `r` of table `t` (row-major heap read).
  double value(int t, int64_t r, int c) const {
    const TableData& td = tables_[static_cast<size_t>(t)];
    return td.heap[static_cast<size_t>(r) * static_cast<size_t>(td.num_cols) +
                   static_cast<size_t>(c)];
  }

  /// The row-major heap of table `t` (scans iterate this directly).
  const std::vector<double>& heap(int t) const {
    return tables_[static_cast<size_t>(t)].heap;
  }

  /// Distinct values the generator used for column (t, c), ascending.
  const std::vector<double>& pool(int t, int c) const {
    return tables_[static_cast<size_t>(t)]
        .pools[static_cast<size_t>(c)];
  }

  /// Smallest pool value v with P(column <= v) >= fraction under the
  /// generator's distribution (histogram or uniform); realizes range
  /// predicates with a target selectivity. fraction is clamped to [0, 1].
  double Quantile(int t, int c, double fraction) const;

  /// P(column <= v) under the generator's distribution (the inverse of
  /// Quantile up to pool granularity).
  double CumulativeAtOrBelow(int t, int c, double v) const;

 private:
  struct TableData {
    int64_t rows = 0;
    int num_cols = 0;
    std::vector<double> heap;  // rows * num_cols, row-major
    std::vector<std::vector<double>> pools;
    /// Cumulative probability of pools[c][0..i] under the generating
    /// distribution; same shape as pools.
    std::vector<std::vector<double>> pool_cdf;
  };

  std::vector<TableData> tables_;
  int64_t total_rows_ = 0;
};

}  // namespace bati::exec

#endif  // BATI_EXEC_COLUMN_STORE_H_
