#include "exec/correlation.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/macros.h"

namespace bati::exec {

std::vector<double> FractionalRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) are tied: all get the mean 1-based rank.
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) /
                            2.0 +
                        1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanRho(const std::vector<double>& x, const std::vector<double>& y) {
  BATI_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  const std::vector<double> rx = FractionalRanks(x);
  const std::vector<double> ry = FractionalRanks(y);
  double mean = (static_cast<double>(n) + 1.0) / 2.0;
  double num = 0.0, denx = 0.0, deny = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = rx[i] - mean;
    const double dy = ry[i] - mean;
    num += dx * dy;
    denx += dx * dx;
    deny += dy * dy;
  }
  if (denx <= 0.0 || deny <= 0.0) return 0.0;
  return num / std::sqrt(denx * deny);
}

double KendallTau(const std::vector<double>& x, const std::vector<double>& y) {
  BATI_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  // O(n^2) pair walk: config counts here are tens, never thousands.
  int64_t concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) {
        ++ties_x;
        ++ties_y;
      } else if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0.0) == (dy > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const int64_t pairs = static_cast<int64_t>(n) *
                        (static_cast<int64_t>(n) - 1) / 2;
  const double den =
      std::sqrt(static_cast<double>(pairs - ties_x)) *
      std::sqrt(static_cast<double>(pairs - ties_y));
  if (den <= 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / den;
}

}  // namespace bati::exec
