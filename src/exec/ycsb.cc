#include "exec/ycsb.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "exec/btree.h"

namespace bati::exec {

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// xorshift-style per-worker PRNG (splitmix-seeded); cheap and local.
class Rng64 {
 public:
  explicit Rng64(uint64_t seed) : state_(Mix64(seed)) {}
  uint64_t Next() {
    state_ = Mix64(state_);
    return state_;
  }
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

class CounterGenerator : public KeyGenerator {
 public:
  CounterGenerator(uint64_t key_space, uint64_t start)
      : key_space_(key_space), next_(start) {}
  uint64_t Next() override { return next_++ % key_space_; }

 private:
  const uint64_t key_space_;
  uint64_t next_;
};

class UniformGenerator : public KeyGenerator {
 public:
  UniformGenerator(uint64_t key_space, uint64_t seed)
      : key_space_(key_space), rng_(seed) {}
  uint64_t Next() override { return rng_.Next() % key_space_; }

 private:
  const uint64_t key_space_;
  Rng64 rng_;
};

/// The standard YCSB zipfian generator (Gray et al.): draws ids with
/// P(i) ~ 1/i^theta over [0, n). zeta(n) is computed once up front.
class ZipfianGenerator : public KeyGenerator {
 public:
  ZipfianGenerator(uint64_t n, uint64_t seed, double theta)
      : n_(n), theta_(theta), rng_(seed) {
    BATI_CHECK(n_ >= 1);
    zetan_ = 0.0;
    for (uint64_t i = 1; i <= n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  uint64_t Next() override {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const double v = static_cast<double>(n_) *
                     std::pow(eta_ * u - eta_ + 1.0, alpha_);
    uint64_t key = static_cast<uint64_t>(v);
    return key >= n_ ? n_ - 1 : key;
  }

 private:
  const uint64_t n_;
  const double theta_;
  Rng64 rng_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

/// Zipfian with the skew spread over the whole key space by hashing (YCSB's
/// "scrambled zipfian"): hot keys are no longer the smallest ids.
class ScrambledZipfianGenerator : public KeyGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, uint64_t seed, double theta)
      : n_(n), inner_(n, seed, theta) {}
  uint64_t Next() override { return Mix64(inner_.Next()) % n_; }

 private:
  const uint64_t n_;
  ZipfianGenerator inner_;
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::unique_ptr<KeyGenerator> MakeKeyGenerator(KeyDistribution dist,
                                               uint64_t key_space,
                                               uint64_t seed, double theta) {
  switch (dist) {
    case KeyDistribution::kCounter:
      return std::make_unique<CounterGenerator>(key_space, seed % key_space);
    case KeyDistribution::kUniform:
      return std::make_unique<UniformGenerator>(key_space, seed);
    case KeyDistribution::kZipfian:
      return std::make_unique<ZipfianGenerator>(key_space, seed, theta);
    case KeyDistribution::kScrambledZipfian:
      return std::make_unique<ScrambledZipfianGenerator>(key_space, seed,
                                                         theta);
  }
  return nullptr;
}

YcsbReport RunYcsb(const YcsbOptions& options) {
  BATI_CHECK(options.workers >= 1);
  BATI_CHECK(options.key_space >= 1);
  BATI_CHECK(options.read_fraction + options.scan_fraction <= 1.0);

  // Preload: counter keys with the key doubled into a 1-double payload
  // (a covering index shape, so reads validate the payload round-trip).
  BTree tree(/*key_width=*/1, /*payload_width=*/1);
  {
    std::vector<double> keys(static_cast<size_t>(options.key_space));
    std::vector<double> payloads(static_cast<size_t>(options.key_space));
    std::vector<uint32_t> rows(static_cast<size_t>(options.key_space));
    for (int64_t i = 0; i < options.key_space; ++i) {
      keys[static_cast<size_t>(i)] = static_cast<double>(i);
      payloads[static_cast<size_t>(i)] = static_cast<double>(i) * 2.0;
      rows[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
    }
    tree.BulkLoad(keys, payloads, rows);
  }

  std::shared_mutex tree_mu;  // readers share; inserts take it exclusively
  std::atomic<int64_t> reads{0};
  std::atomic<int64_t> read_hits{0};
  std::atomic<int64_t> scans{0};
  std::atomic<int64_t> scanned{0};
  std::atomic<int64_t> inserts{0};
  std::atomic<uint32_t> next_row{
      static_cast<uint32_t>(options.key_space)};

  auto worker = [&](int w) {
    Rng64 op_rng(options.seed ^ (0x57ULL + static_cast<uint64_t>(w)));
    std::unique_ptr<KeyGenerator> gen = MakeKeyGenerator(
        options.distribution, static_cast<uint64_t>(options.key_space),
        options.seed + static_cast<uint64_t>(w) * 1000003ULL,
        options.zipfian_theta);
    int64_t my_reads = 0;
    int64_t my_hits = 0;
    int64_t my_scans = 0;
    int64_t my_scanned = 0;
    int64_t my_inserts = 0;
    for (int64_t op = 0; op < options.ops_per_worker; ++op) {
      const double roll = op_rng.NextDouble();
      const double key = static_cast<double>(gen->Next());
      if (roll < options.read_fraction) {
        ++my_reads;
        std::shared_lock<std::shared_mutex> lock(tree_mu);
        tree.SeekPrefix(&key, 1, [&](const BTree::Entry& e) {
          if (e.payload[0] == e.key[0] * 2.0) ++my_hits;
          return false;  // point read: first match suffices
        });
      } else if (roll < options.read_fraction + options.scan_fraction) {
        ++my_scans;
        int left = options.scan_length;
        std::shared_lock<std::shared_mutex> lock(tree_mu);
        tree.SeekRange(nullptr, 0, key,
                       std::numeric_limits<double>::infinity(),
                       [&](const BTree::Entry&) {
                         ++my_scanned;
                         return --left > 0;
                       });
      } else {
        ++my_inserts;
        const double payload = key * 2.0;
        std::unique_lock<std::shared_mutex> lock(tree_mu);
        tree.Insert(&key, &payload, next_row.fetch_add(1));
      }
    }
    reads += my_reads;
    read_hits += my_hits;
    scans += my_scans;
    scanned += my_scanned;
    inserts += my_inserts;
  };

  const double t0 = NowSeconds();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w) threads.emplace_back(worker, w);
  for (std::thread& th : threads) th.join();
  const double dt = NowSeconds() - t0;

  YcsbReport report;
  report.reads = reads.load();
  report.read_hits = read_hits.load();
  report.scans = scans.load();
  report.scanned_entries = scanned.load();
  report.inserts = inserts.load();
  report.tree_size = tree.size();
  report.seconds = dt;
  const double total_ops = static_cast<double>(
      options.workers * options.ops_per_worker);
  report.ops_per_second = dt > 0.0 ? total_ops / dt : 0.0;
  return report;
}

}  // namespace bati::exec
