#include "exec/store_cache.h"

#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/macros.h"

namespace bati::exec {

namespace {

using StoreKey = std::tuple<const Database*, uint64_t, int64_t>;

/// One cached store. The once_flag serializes materialization per key so
/// two threads asking for the same store build it exactly once, without
/// holding the map mutex across the (expensive) build.
struct StoreEntry {
  std::once_flag once;
  std::shared_ptr<const Database> pin;  ///< keeps the key's address live
  std::shared_ptr<const ColumnStore> store;
};

struct StoreCache {
  std::mutex mu;
  std::map<StoreKey, std::unique_ptr<StoreEntry>> entries;
};

StoreCache& Cache() {
  static StoreCache* cache = new StoreCache();  // never destroyed
  return *cache;
}

}  // namespace

std::shared_ptr<const ColumnStore> GetOrMaterializeStore(
    std::shared_ptr<const Database> db, const StoreOptions& options) {
  BATI_CHECK(db != nullptr);
  StoreCache& cache = Cache();
  const StoreKey key{db.get(), options.seed, options.max_rows_per_table};
  StoreEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    std::unique_ptr<StoreEntry>& slot = cache.entries[key];
    if (slot == nullptr) slot = std::make_unique<StoreEntry>();
    entry = slot.get();
  }
  std::call_once(entry->once, [&] {
    entry->pin = db;
    entry->store = std::make_shared<const ColumnStore>(*db, options);
  });
  return entry->store;
}

size_t StoreCacheSize() {
  StoreCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.entries.size();
}

}  // namespace bati::exec
