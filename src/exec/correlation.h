#ifndef BATI_EXEC_CORRELATION_H_
#define BATI_EXEC_CORRELATION_H_

#include <vector>

namespace bati::exec {

/// Fractional (average) ranks of `values`, 1-based: ties share the mean of
/// the ranks they span, the convention Spearman's rho expects.
std::vector<double> FractionalRanks(const std::vector<double>& values);

/// Spearman rank correlation between paired samples `x` and `y` (Pearson
/// correlation of their fractional ranks, so ties are handled exactly).
/// Returns 0 for fewer than 2 pairs or when either side is constant.
double SpearmanRho(const std::vector<double>& x, const std::vector<double>& y);

/// Kendall tau-b rank correlation: concordant minus discordant pairs over
/// the geometric mean of tie-adjusted pair counts. Returns 0 for fewer than
/// 2 pairs or when either side is constant.
double KendallTau(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace bati::exec

#endif  // BATI_EXEC_CORRELATION_H_
