#include "exec/predicate.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace bati::exec {

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Uniform01(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

bool ExecPredicate::Matches(double v) const {
  switch (kind) {
    case Kind::kEquality:
      return v == values[0];
    case Kind::kIn:
      return std::binary_search(values.begin(), values.end(), v);
    case Kind::kRange:
      return v >= lo && v <= hi;
    case Kind::kHashThreshold:
      return Mix64(DoubleBits(v) ^ hash_seed) < hash_threshold;
  }
  return false;
}

std::vector<std::vector<ExecPredicate>> RealizePredicates(
    const Query& query, const ColumnStore& store, uint64_t seed) {
  std::vector<std::vector<ExecPredicate>> by_scan(
      static_cast<size_t>(query.num_scans()));
  for (size_t fi = 0; fi < query.filters.size(); ++fi) {
    const BoundFilter& f = query.filters[fi];
    const int t = f.column.table_id;
    const int c = f.column.column_id;
    const std::vector<double>& pool = store.pool(t, c);
    const uint64_t fseed =
        Mix64(seed ^ Mix64(static_cast<uint64_t>(query.id) * 2654435761ULL +
                           fi));

    ExecPredicate p;
    p.scan_id = f.scan_id;
    p.column_id = c;
    p.estimated_selectivity = f.selectivity;
    switch (f.kind) {
      case FilterKind::kEquality: {
        p.kind = ExecPredicate::Kind::kEquality;
        p.values.push_back(
            pool[static_cast<size_t>(fseed % pool.size())]);
        break;
      }
      case FilterKind::kIn: {
        p.kind = ExecPredicate::Kind::kIn;
        const int64_t n = static_cast<int64_t>(pool.size());
        int64_t m = static_cast<int64_t>(
            std::llround(f.selectivity * static_cast<double>(n)));
        m = std::max<int64_t>(1, std::min(n, m));
        const int64_t start = static_cast<int64_t>(
            fseed % static_cast<uint64_t>(n));
        for (int64_t j = 0; j < m; ++j) {
          const int64_t idx = (start + j * n / m) % n;
          p.values.push_back(pool[static_cast<size_t>(idx)]);
        }
        std::sort(p.values.begin(), p.values.end());
        p.values.erase(std::unique(p.values.begin(), p.values.end()),
                       p.values.end());
        break;
      }
      case FilterKind::kRange: {
        // A probability window of mass ~sel whose placement is a
        // deterministic function of the filter identity: independent range
        // filters on one column then intersect like independent events, the
        // assumption the cost model's selectivity product encodes.
        p.kind = ExecPredicate::Kind::kRange;
        const double sel = std::min(1.0, std::max(0.0, f.selectivity));
        const double start = Uniform01(Mix64(fseed ^ 0xA5A5ULL)) *
                             (1.0 - sel);
        p.lo = store.Quantile(t, c, start);
        p.hi = store.Quantile(t, c, start + sel);
        break;
      }
      case FilterKind::kLike:
      case FilterKind::kNotEqual:
      case FilterKind::kColumnColumn:
      case FilterKind::kOr: {
        p.kind = ExecPredicate::Kind::kHashThreshold;
        p.hash_seed = fseed;
        const double sel = std::min(1.0, std::max(0.0, f.selectivity));
        p.hash_threshold = static_cast<uint64_t>(
            sel * 18446744073709549568.0);  // ~sel * 2^64, sub-ULP safe
        break;
      }
    }
    by_scan[static_cast<size_t>(f.scan_id)].push_back(std::move(p));
  }
  return by_scan;
}

}  // namespace bati::exec
