#ifndef BATI_EXEC_HARNESS_H_
#define BATI_EXEC_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "storage/index.h"

namespace bati::exec {

/// Options for one rank-correlation run: execute a set of index
/// configurations end to end and compare the what-if cost ordering against
/// measured wall-clock.
struct CorrelationOptions {
  /// Configurations actually executed (the empty configuration is always
  /// one of them).
  int num_configs = 8;
  /// Random configurations sampled (and what-if costed) before selection.
  int sample_configs = 64;
  /// Max indexes per sampled configuration.
  int max_config_size = 4;
  /// Select executed configs spread evenly across the sampled what-if cost
  /// range (robust correlation); false takes the first `num_configs`
  /// samples as drawn.
  bool spread = true;
  /// Seed the sampled pool with the greedy tuning trajectory: prefixes of
  /// a forward selection that repeatedly adds the candidate with the best
  /// predicted improvement. These are the configurations index tuning
  /// actually visits, and they anchor the cheap end of the cost range.
  bool trajectory = true;
  /// Timed repetitions per configuration; the minimum is kept.
  int repetitions = 2;
  /// Full measurement passes over all configurations; per-pass correlations
  /// expose run-to-run reproducibility.
  int passes = 2;
  /// Cross-check every configuration's results against each other and
  /// against the scalar reference executor (exact row counts + checksums).
  bool validate = true;
  uint64_t seed = 0xC0FFEE;
};

/// One executed configuration.
struct ConfigMeasurement {
  /// Positions into the candidate universe (empty = no indexes).
  std::vector<int> positions;
  double whatif_cost = 0.0;
  /// Measured seconds per pass (sum of per-query best-of-repetitions).
  std::vector<double> seconds;
  /// Sum of per-query minima across every pass and repetition — the most
  /// noise-resistant single number for this configuration.
  double seconds_best = 0.0;
  /// Per-query minimum seconds across every pass and repetition
  /// (diagnostics: which queries drive a configuration's measured time).
  std::vector<double> per_query_seconds;
};

struct CorrelationReport {
  int num_configs = 0;
  /// Spearman rank correlation between what-if cost and measured seconds,
  /// one value per pass, plus the minimum across passes (the
  /// reproducibility signal).
  std::vector<double> spearman_per_pass;
  double spearman_min = 0.0;
  /// Spearman over ConfigMeasurement::seconds_best — per-query minima
  /// pooled across every pass and repetition. The most stable number and
  /// the one the gates use.
  double spearman_combined = 0.0;
  /// Kendall tau-b over seconds_best.
  double kendall = 0.0;
  /// True when validation ran and every configuration agreed with the
  /// scalar reference executor on every query.
  bool validated = false;
  int64_t store_rows = 0;
  std::vector<ConfigMeasurement> configs;
};

/// Samples configurations over `universe`, executes them under `engine`,
/// and correlates what-if cost ordering with measured time. Dies (CHECK)
/// if validation is on and any configuration disagrees with the reference
/// executor — a wrong executor must never produce a gated number.
CorrelationReport RunCorrelation(ExecutionEngine* engine,
                                 const std::vector<Index>& universe,
                                 const CorrelationOptions& options);

}  // namespace bati::exec

#endif  // BATI_EXEC_HARNESS_H_
