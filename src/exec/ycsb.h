#ifndef BATI_EXEC_YCSB_H_
#define BATI_EXEC_YCSB_H_

#include <cstdint>
#include <memory>

namespace bati::exec {

/// Key distributions for the YCSB-style micro-harness, the classic set a
/// key-value benchmark worker draws from: a monotone counter (insert
/// order), uniform, and (scrambled) zipfian skew.
enum class KeyDistribution { kCounter, kUniform, kZipfian, kScrambledZipfian };

/// One YCSB-style key generator; implementations are single-threaded (each
/// worker owns one).
class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  /// Next key id in [0, key_space).
  virtual uint64_t Next() = 0;
};

/// Factory; `seed` differentiates workers, `theta` applies to the zipfian
/// family (0.99 is the YCSB default skew).
std::unique_ptr<KeyGenerator> MakeKeyGenerator(KeyDistribution dist,
                                               uint64_t key_space,
                                               uint64_t seed,
                                               double theta = 0.99);

/// A YCSB-style mixed workload over one B+-tree: point reads, short range
/// scans, and inserts, split across a worker pool. Reads run lock-free
/// under a shared lock; inserts serialize on the writer side (the tree is
/// a single-writer structure).
struct YcsbOptions {
  int workers = 4;
  int64_t ops_per_worker = 100 * 1000;
  /// Operation mix; read + scan <= 1, the rest are inserts.
  double read_fraction = 0.85;
  double scan_fraction = 0.10;
  /// Entries preloaded (counter keys 0..key_space-1) and the id domain the
  /// generators draw from.
  int64_t key_space = 1000 * 1000;
  /// Max entries visited per range scan.
  int scan_length = 32;
  KeyDistribution distribution = KeyDistribution::kZipfian;
  double zipfian_theta = 0.99;
  uint64_t seed = 42;
};

struct YcsbReport {
  int64_t reads = 0;
  int64_t read_hits = 0;
  int64_t scans = 0;
  int64_t scanned_entries = 0;
  int64_t inserts = 0;
  int64_t tree_size = 0;
  double seconds = 0.0;
  double ops_per_second = 0.0;
};

/// Builds a fresh single-key-column tree preloaded with `key_space` counter
/// keys, then runs the mixed workload across `workers` threads.
/// Deterministic in everything except timing.
YcsbReport RunYcsb(const YcsbOptions& options);

}  // namespace bati::exec

#endif  // BATI_EXEC_YCSB_H_
