#ifndef BATI_EXEC_EXECUTOR_H_
#define BATI_EXEC_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/btree.h"
#include "exec/column_store.h"
#include "exec/predicate.h"
#include "obs/metrics.h"
#include "optimizer/what_if.h"
#include "storage/index.h"
#include "workload/query.h"

namespace bati::exec {

/// Result of executing one query. All three fields are pure functions of
/// (store, query, predicate seed) — independent of the index configuration
/// and of the physical plan — so any two executors over the same store must
/// agree exactly; the tests and the smoke gate hold them to that.
struct ExecResult {
  /// Rows in the joined, filtered result (before aggregation/output).
  int64_t joined_rows = 0;
  /// Rows delivered to the client (group count under aggregation).
  int64_t output_rows = 0;
  /// Order-independent 64-bit checksum over the projected column values of
  /// every joined row.
  uint64_t checksum = 0;

  bool operator==(const ExecResult& o) const {
    return joined_rows == o.joined_rows && output_rows == o.output_rows &&
           checksum == o.checksum;
  }
};

/// Per-operator observability counters, resolved once against a
/// MetricsRegistry (or left null for zero-overhead detached runs).
struct ExecCounters {
  Counter* seq_scans = nullptr;
  Counter* seq_rows = nullptr;
  Counter* index_seeks = nullptr;
  Counter* index_entries = nullptr;
  Counter* index_full_scans = nullptr;
  Counter* heap_lookups = nullptr;
  Counter* hash_builds = nullptr;
  Counter* hash_build_rows = nullptr;
  Counter* hash_probe_rows = nullptr;
  Counter* merge_rows = nullptr;
  Counter* sort_rows = nullptr;
  Counter* agg_groups = nullptr;
  Counter* result_rows = nullptr;
  Counter* trees_built = nullptr;
  Counter* tree_cache_hits = nullptr;

  /// Resolves the "exec.*" counter family; `registry` may be null.
  static ExecCounters Resolve(MetricsRegistry* registry);
};

/// The execution engine: a materialized store plus a what-if optimizer over
/// the same statistics, able to run every workload query under any index
/// configuration by following the optimizer's own plan — access paths, join
/// order, and join methods all come from PlanExplanation, so measured time
/// reflects the plan the what-if cost claims to price. Covering B+-trees
/// are materialized on demand and cached across configurations by content.
class ExecutionEngine {
 public:
  /// `workload` must outlive the engine. The store materializes
  /// database.row_count() rows per table: pass a workload scaled to what
  /// memory affords (see StoreOptions::max_rows_per_table).
  ExecutionEngine(const Workload& workload, const StoreOptions& options,
                  MetricsRegistry* metrics = nullptr);

  const Workload& workload() const { return workload_; }
  const ColumnStore& store() const { return *store_; }
  const WhatIfOptimizer& optimizer() const { return optimizer_; }

  /// Sum of what-if costs over all workload queries under `config`.
  double WhatIfWorkloadCost(const std::vector<Index>& config) const;

  struct RunResult {
    std::vector<ExecResult> per_query;
    /// Best (minimum) wall-clock seconds per query across the requested
    /// repetitions; index materialization is excluded (and cached across
    /// configurations anyway).
    std::vector<double> per_query_seconds;
    /// Sum of per_query_seconds.
    double seconds = 0.0;
  };

  /// Executes every query under `config` following its what-if plan.
  RunResult ExecuteWorkload(const std::vector<Index>& config,
                            int repetitions = 1);

  /// Scalar reference executor: heap scans and hash joins only, no indexes
  /// — the independent oracle the plan-driven executor is validated
  /// against (row-count exact, checksum exact).
  ExecResult ExecuteReference(int query_index);

  /// Per-query diagnostics: one query under one configuration, with its
  /// measured seconds and what-if cost side by side.
  struct QueryTiming {
    ExecResult result;
    double seconds = 0.0;
    double whatif_cost = 0.0;
  };
  QueryTiming ExecuteOne(int query_index, const std::vector<Index>& config);

  /// The materialized covering B+-tree for `ix` (built and cached on first
  /// use; canonical `ix` expected).
  const BTree* GetOrBuildTree(const Index& ix);

 private:
  ExecResult ExecuteQuery(
      const Query& query,
      const std::vector<std::vector<ExecPredicate>>& preds_by_scan,
      const std::vector<Index>& config, const PlanExplanation& plan,
      bool force_reference);

  const Workload& workload_;
  WhatIfOptimizer optimizer_;
  /// Shared, immutable, and cached process-wide (exec/store_cache.h):
  /// engines over the same catalog and StoreOptions reuse one store
  /// instead of re-materializing it per correlation run.
  std::shared_ptr<const ColumnStore> store_;
  ExecCounters counters_;
  uint64_t predicate_seed_;
  /// Realized predicates per query (by scan) — fixed across configs.
  std::vector<std::vector<std::vector<ExecPredicate>>> preds_;
  /// Content-keyed tree cache: hash -> (index, tree) pairs (linear probe
  /// within a bucket; candidate universes are tens of indexes).
  std::vector<std::pair<Index, std::unique_ptr<BTree>>> trees_;
};

/// Materializes a covering B+-tree for `ix` over the store (sorted bulk
/// load; deterministic). Exposed for tests and the YCSB harness.
std::unique_ptr<BTree> MaterializeIndex(const ColumnStore& store,
                                        const Index& ix);

}  // namespace bati::exec

#endif  // BATI_EXEC_EXECUTOR_H_
