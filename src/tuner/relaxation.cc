#include "tuner/relaxation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/macros.h"
#include "tuner/greedy.h"

namespace bati {

namespace {

double ConfigStorageBytes(const TuningContext& ctx, const Database& db,
                          const Config& config) {
  double total = 0.0;
  for (size_t pos : config.ToIndices()) {
    total += ctx.candidates->indexes[pos].SizeBytes(db);
  }
  return total;
}

bool Feasible(const TuningContext& ctx, const Database& db,
              const Config& config) {
  if (static_cast<int>(config.count()) > ctx.constraints.max_indexes) {
    return false;
  }
  if (ctx.constraints.max_storage_bytes > 0.0 &&
      ConfigStorageBytes(ctx, db, config) >
          ctx.constraints.max_storage_bytes) {
    return false;
  }
  return true;
}

/// Workload cost under FCFS: what-if while budget remains, derived after.
/// Batched through the engine; the budget is still charged in query order.
double EvaluateWorkloadCost(CostService& service, const Config& config) {
  std::vector<int> queries(static_cast<size_t>(service.num_queries()));
  std::iota(queries.begin(), queries.end(), 0);
  std::vector<std::optional<double>> costs =
      service.WhatIfCostMany(queries, config);
  double total = 0.0;
  for (int q = 0; q < service.num_queries(); ++q) {
    const auto& c = costs[static_cast<size_t>(q)];
    total += c.has_value() ? *c : service.DerivedCost(q, config);
  }
  return total;
}

}  // namespace

RelaxationTuner::RelaxationTuner(TuningContext ctx, RelaxationOptions options)
    : ctx_(std::move(ctx)), options_(options) {}

TuningResult RelaxationTuner::Tune(CostService& service) {
  const Database& db = *ctx_.workload->database;
  const int m = service.num_queries();

  // ---- Phase 1: seed with each query's best singleton. ----
  int64_t seed_budget = static_cast<int64_t>(
      static_cast<double>(service.budget()) * options_.seed_budget_fraction);
  std::vector<int> best_for_query(static_cast<size_t>(m), -1);
  std::vector<double> best_cost_for_query(static_cast<size_t>(m), 0.0);
  for (int q = 0; q < m; ++q) {
    best_cost_for_query[static_cast<size_t>(q)] = service.BaseCost(q);
  }
  // Round-robin (q, candidate) evaluation, like Algorithm 4's schedule.
  service.BeginRound("relaxation.seed");
  std::vector<size_t> cursor(static_cast<size_t>(m), 0);
  int q = 0;
  int exhausted_queries = 0;
  while (service.calls_made() < seed_budget && service.HasBudget() &&
         exhausted_queries < m) {
    const std::vector<int>& mine =
        ctx_.candidates->per_query[static_cast<size_t>(q)];
    if (cursor[static_cast<size_t>(q)] >= mine.size()) {
      ++exhausted_queries;
      q = (q + 1) % m;
      continue;
    }
    exhausted_queries = 0;
    int pos = mine[cursor[static_cast<size_t>(q)]++];
    Config singleton = service.EmptyConfig();
    singleton.set(static_cast<size_t>(pos));
    auto cost = service.WhatIfCost(q, singleton);
    if (!cost.has_value()) break;
    if (*cost < best_cost_for_query[static_cast<size_t>(q)]) {
      best_cost_for_query[static_cast<size_t>(q)] = *cost;
      best_for_query[static_cast<size_t>(q)] = pos;
    }
    q = (q + 1) % m;
  }

  Config current = service.EmptyConfig();
  for (int qi = 0; qi < m; ++qi) {
    if (best_for_query[static_cast<size_t>(qi)] >= 0) {
      current.set(static_cast<size_t>(best_for_query[static_cast<size_t>(qi)]));
    }
  }

  // Index of merged candidates in the universe, for merge transformations.
  std::unordered_map<Index, int, IndexHash> universe;
  if (options_.enable_merges) {
    for (int i = 0; i < ctx_.candidates->size(); ++i) {
      universe.emplace(ctx_.candidates->indexes[static_cast<size_t>(i)], i);
    }
  }

  Config best = service.EmptyConfig();
  double best_derived = 0.0;
  auto consider = [&](const Config& config) {
    if (!Feasible(ctx_, db, config)) return;
    double derived = service.DerivedImprovement(config);
    if (derived > best_derived) {
      best_derived = derived;
      best = config;
    }
  };
  consider(current);

  // ---- Phase 2: relax until feasible (and a little beyond, in case a
  // smaller configuration scores better on derived costs). ----
  int relax_steps = 0;
  const int max_steps = static_cast<int>(current.count()) + 4;
  while (!current.empty() && relax_steps < max_steps &&
         (!Feasible(ctx_, db, current) || relax_steps == 0)) {
    service.BeginRound("relaxation.step");
    ++relax_steps;
    double best_penalty_cost = std::numeric_limits<double>::infinity();
    Config best_next = current;
    bool found = false;

    std::vector<size_t> members = current.ToIndices();
    // Removal transformations.
    for (size_t pos : members) {
      Config next = current.Without(pos);
      double cost = EvaluateWorkloadCost(service, next);
      if (cost < best_penalty_cost) {
        best_penalty_cost = cost;
        best_next = next;
        found = true;
      }
    }
    // Merge transformations: replace (i, j) with their merged index when
    // the merged form exists in the universe (reduces count by one while
    // retaining most benefit).
    if (options_.enable_merges) {
      for (size_t a = 0; a < members.size(); ++a) {
        for (size_t b = a + 1; b < members.size(); ++b) {
          const Index& ia = ctx_.candidates->indexes[members[a]];
          const Index& ib = ctx_.candidates->indexes[members[b]];
          std::optional<Index> merged = MergeIndexes(ia, ib);
          if (!merged.has_value()) continue;
          auto it = universe.find(*merged);
          if (it == universe.end()) continue;
          Config next = current.Without(members[a]).Without(members[b]);
          next.set(static_cast<size_t>(it->second));
          double cost = EvaluateWorkloadCost(service, next);
          if (cost < best_penalty_cost) {
            best_penalty_cost = cost;
            best_next = next;
            found = true;
          }
        }
      }
    }
    if (!found) break;
    current = best_next;
    consider(current);
  }

  // Keep relaxing by removals while infeasible (no evaluation needed once
  // the budget is irrelevant: drop the index with the least derived
  // benefit).
  while (!Feasible(ctx_, db, current) && !current.empty()) {
    double best_cost = std::numeric_limits<double>::infinity();
    Config best_next = current;
    for (size_t pos : current.ToIndices()) {
      Config next = current.Without(pos);
      double cost = service.DerivedWorkloadCost(next);
      if (cost < best_cost) {
        best_cost = cost;
        best_next = next;
      }
    }
    current = best_next;
    consider(current);
  }
  consider(current);

  TuningResult result;
  result.algorithm = name();
  result.best_config = best;
  result.derived_improvement = service.DerivedImprovement(best);
  result.what_if_calls = service.calls_made();
  return result;
}

}  // namespace bati
