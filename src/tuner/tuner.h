#ifndef BATI_TUNER_TUNER_H_
#define BATI_TUNER_TUNER_H_

#include <string>

#include "tuner/candidate_gen.h"
#include "whatif/cost_service.h"

namespace bati {

/// Constraints on the *outcome* of tuning (distinct from the what-if-call
/// budget, which constrains the search itself; paper Section 1).
struct TuningConstraints {
  /// Cardinality constraint K: maximum indexes in the recommendation.
  int max_indexes = 10;
  /// Storage constraint in bytes; 0 disables it. The paper's DTA comparison
  /// uses 3x the database size.
  double max_storage_bytes = 0.0;
};

/// Everything a tuner needs besides the metered cost service.
struct TuningContext {
  const Workload* workload = nullptr;
  const CandidateSet* candidates = nullptr;
  TuningConstraints constraints;
};

/// Outcome of one tuning run.
struct TuningResult {
  Config best_config;
  /// eta(W, C) by derived cost at the end of the run, percent.
  double derived_improvement = 0.0;
  /// What-if calls actually consumed.
  int64_t what_if_calls = 0;
  std::string algorithm;
};

/// Interface of all budget-aware configuration-enumeration algorithms. A
/// tuner observes query costs only through the CostService, which meters the
/// what-if budget.
class Tuner {
 public:
  virtual ~Tuner() = default;

  /// Runs configuration enumeration until the result is final or the
  /// service's budget is exhausted.
  virtual TuningResult Tune(CostService& service) = 0;

  /// Short display name, e.g. "vanilla-greedy".
  virtual std::string name() const = 0;

  /// Best-improvement-so-far after each episode/round of the last Tune()
  /// call, for convergence plots (paper Figures 14 and 21); nullptr when the
  /// algorithm has no incremental notion of progress.
  virtual const std::vector<double>* progress_trace() const {
    return nullptr;
  }
};

/// True if adding candidate `pos` to `config` keeps total index storage
/// within the constraint (always true when the constraint is disabled).
bool FitsStorage(const TuningContext& ctx, const Database& db,
                 const Config& config, int pos);

}  // namespace bati

#endif  // BATI_TUNER_TUNER_H_
