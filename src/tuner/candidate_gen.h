#ifndef BATI_TUNER_CANDIDATE_GEN_H_
#define BATI_TUNER_CANDIDATE_GEN_H_

#include <optional>
#include <vector>

#include "storage/index.h"
#include "workload/query.h"

namespace bati {

/// Options for candidate-index generation.
struct CandidateGenOptions {
  /// Maximum key columns per candidate index.
  int max_key_columns = 3;
  /// Whether to emit covering variants (with INCLUDE payload columns).
  bool covering_indexes = true;
  /// Cap on candidates emitted per scan of a query (keeps the universe at
  /// the "hundreds to thousands" scale the paper reports).
  int max_per_scan = 4;
  /// Whether to add merged candidates (DTA's index-merging optimization):
  /// for same-table pairs where one key is a prefix of the other, a merged
  /// index with the longer key and the union of payloads serves both
  /// originals' queries at less total storage than keeping both.
  bool merged_indexes = false;
  /// Cap on merged candidates added per table.
  int max_merged_per_table = 4;
};

/// Merges two indexes of the same table when one's key is a prefix of the
/// other's: the merged index keeps the longer key and unions the payloads.
/// Returns nullopt when the indexes are not mergeable.
std::optional<Index> MergeIndexes(const Index& a, const Index& b);

/// The candidate-index universe for a workload, with per-query provenance.
struct CandidateSet {
  /// Deduplicated candidate indexes; positions in this vector are the
  /// universe over which Config bitsets are defined.
  std::vector<Index> indexes;
  /// For each query, the candidate positions generated from it (the
  /// I_{q} sets used by two-phase search and by the prior computation).
  std::vector<std::vector<int>> per_query;

  int size() const { return static_cast<int>(indexes.size()); }
};

/// Candidate index generation (paper Section 2, Figure 3): extracts
/// indexable columns per query (equality/range filter columns, join columns,
/// group-by and order-by columns, with projection columns as includable
/// payload) and emits a bounded set of candidate indexes per scan, then
/// unions them across the workload.
CandidateSet GenerateCandidates(
    const Workload& workload,
    const CandidateGenOptions& options = CandidateGenOptions());

}  // namespace bati

#endif  // BATI_TUNER_CANDIDATE_GEN_H_
