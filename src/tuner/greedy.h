#ifndef BATI_TUNER_GREEDY_H_
#define BATI_TUNER_GREEDY_H_

#include <functional>
#include <vector>

#include "tuner/tuner.h"

namespace bati {

/// Decides whether the greedy core may spend a what-if call on a
/// (query, configuration) cell; when it returns false (or budget is gone)
/// the derived cost is used instead. This is how the FCFS and
/// atomic-configuration budget-allocation strategies of Section 4.2 are
/// expressed as layouts over the budget allocation matrix.
using WhatIfFilter = std::function<bool(int query_id, const Config& config)>;

/// Always allow (plain FCFS: spend budget until it runs out).
WhatIfFilter AllowAllWhatIf();

/// Allow only atomic configurations of size <= `atomic_size` (AutoAdmin's
/// special-configuration strategy; Figure 5(d) uses size 1).
WhatIfFilter AtomicOnlyWhatIf(int atomic_size);

/// Never allow (pure cost-derivation search; used by MCTS's Best-Greedy
/// extraction, which must not spend budget).
WhatIfFilter DenyAllWhatIf();

/// The greedy configuration-enumeration core (paper Algorithm 1) restricted
/// to the queries in `query_ids` and the candidate positions in `allowed`,
/// starting from `initial` (normally empty). Costs go through `service`
/// under `filter`; when a what-if call is disallowed or the budget is
/// exhausted, the derived cost is used — incrementally, via the engine's
/// posting-list index (DerivedCostWithAdd), so the inner argmax does not
/// rescan the cache per candidate. Respects the cardinality and storage
/// constraints in `ctx`. When `trace` is non-null, the derived improvement
/// after each accepted extension is appended to it. Returns the best
/// configuration found.
Config GreedyEnumerate(const TuningContext& ctx, CostService& service,
                       const std::vector<int>& query_ids,
                       const std::vector<int>& allowed, const Config& initial,
                       const WhatIfFilter& filter,
                       std::vector<double>* trace = nullptr);

/// Vanilla greedy (Algorithm 1) over the whole workload with FCFS budget
/// allocation — the first baseline of Section 4.2.
class GreedyTuner : public Tuner {
 public:
  explicit GreedyTuner(TuningContext ctx) : ctx_(std::move(ctx)) {}
  TuningResult Tune(CostService& service) override;
  std::string name() const override { return "vanilla-greedy"; }
  const std::vector<double>* progress_trace() const override {
    return &trace_;
  }

 private:
  TuningContext ctx_;
  std::vector<double> trace_;
};

/// Two-phase greedy (Algorithm 2): per-query greedy first, then greedy over
/// the union of per-query winners, FCFS within both phases.
class TwoPhaseGreedyTuner : public Tuner {
 public:
  explicit TwoPhaseGreedyTuner(TuningContext ctx) : ctx_(std::move(ctx)) {}
  TuningResult Tune(CostService& service) override;
  std::string name() const override { return "two-phase-greedy"; }
  const std::vector<double>* progress_trace() const override {
    return &trace_;
  }

 private:
  TuningContext ctx_;
  std::vector<double> trace_;
};

/// AutoAdmin greedy: two-phase search where what-if calls are spent only on
/// atomic (singleton) configurations; all larger configurations use derived
/// costs (Section 4.2.2, "special configurations").
class AutoAdminGreedyTuner : public Tuner {
 public:
  explicit AutoAdminGreedyTuner(TuningContext ctx, int atomic_size = 1)
      : ctx_(std::move(ctx)), atomic_size_(atomic_size) {}
  TuningResult Tune(CostService& service) override;
  std::string name() const override { return "autoadmin-greedy"; }
  const std::vector<double>* progress_trace() const override {
    return &trace_;
  }

 private:
  TuningContext ctx_;
  int atomic_size_;
  std::vector<double> trace_;
};

}  // namespace bati

#endif  // BATI_TUNER_GREEDY_H_
