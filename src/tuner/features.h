#ifndef BATI_TUNER_FEATURES_H_
#define BATI_TUNER_FEATURES_H_

#include <vector>

#include "tuner/tuner.h"

namespace bati {

/// Number of features produced by IndexFeatures.
inline constexpr int kIndexFeatureCount = 8;

/// Static featurization of a candidate index (no what-if calls): bias,
/// table size, leaf/row width ratio, key/include arity, workload coverage,
/// provenance share, and log index size. Used by the DBA-bandits baseline's
/// linear reward model and by the featurized-prior MCTS extension (the
/// paper observes that "appropriate featurization could help identify
/// promising index configurations more quickly").
std::vector<double> IndexFeatures(const TuningContext& ctx,
                                  int candidate_pos);

/// Solves A x = b by Gaussian elimination with partial pivoting (small
/// dense systems; A is consumed by value).
std::vector<double> SolveLinear(std::vector<std::vector<double>> a,
                                std::vector<double> b);

/// Ridge regression fit: theta = (X^T X + lambda I)^{-1} X^T y over rows of
/// `features` (each of size kIndexFeatureCount) with targets `y`.
std::vector<double> RidgeFit(const std::vector<std::vector<double>>& features,
                             const std::vector<double>& targets,
                             double lambda);

/// Inner product helper.
double DotProduct(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace bati

#endif  // BATI_TUNER_FEATURES_H_
