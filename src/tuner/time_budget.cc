#include "tuner/time_budget.h"

#include <algorithm>

#include "common/macros.h"

namespace bati {

namespace {

double AverageCallSeconds(const WhatIfOptimizer& optimizer,
                          const Workload& workload) {
  BATI_CHECK(!workload.queries.empty());
  double total = 0.0;
  for (const Query& q : workload.queries) {
    total += optimizer.EstimateCallSeconds(q);
  }
  return total / static_cast<double>(workload.queries.size());
}

}  // namespace

int64_t CallBudgetForTime(const WhatIfOptimizer& optimizer,
                          const Workload& workload, double budget_seconds,
                          double overhead_fraction) {
  BATI_CHECK(overhead_fraction >= 0.0 && overhead_fraction < 1.0);
  double usable = budget_seconds * (1.0 - overhead_fraction);
  double per_call = AverageCallSeconds(optimizer, workload);
  if (per_call <= 0.0) return 0;
  return std::max<int64_t>(0, static_cast<int64_t>(usable / per_call));
}

double ExpectedSecondsForCalls(const WhatIfOptimizer& optimizer,
                               const Workload& workload, int64_t calls,
                               double overhead_fraction) {
  BATI_CHECK(overhead_fraction >= 0.0 && overhead_fraction < 1.0);
  double per_call = AverageCallSeconds(optimizer, workload);
  double whatif_seconds = per_call * static_cast<double>(calls);
  return whatif_seconds / (1.0 - overhead_fraction);
}

}  // namespace bati
