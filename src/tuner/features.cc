#include "tuner/features.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace bati {

std::vector<double> IndexFeatures(const TuningContext& ctx,
                                  int candidate_pos) {
  const Database& db = *ctx.workload->database;
  const Index& ix =
      ctx.candidates->indexes[static_cast<size_t>(candidate_pos)];
  const Table& t = db.table(ix.table_id);

  int queries_on_table = 0;
  for (const Query& q : ctx.workload->queries) {
    for (const QueryScan& s : q.scans) {
      if (s.table_id == ix.table_id) {
        ++queries_on_table;
        break;
      }
    }
  }
  int provenance = 0;
  for (const auto& per_query : ctx.candidates->per_query) {
    if (std::find(per_query.begin(), per_query.end(), candidate_pos) !=
        per_query.end()) {
      ++provenance;
    }
  }

  std::vector<double> x(kIndexFeatureCount);
  x[0] = 1.0;  // bias
  x[1] = std::log10(std::max(10.0, t.row_count())) / 10.0;
  x[2] = ix.LeafRowBytes(db) / std::max(1.0, t.RowWidthBytes());
  x[3] = static_cast<double>(ix.key_columns.size()) / 4.0;
  x[4] = static_cast<double>(ix.include_columns.size()) / 8.0;
  x[5] = static_cast<double>(queries_on_table) /
         std::max(1, ctx.workload->num_queries());
  x[6] = static_cast<double>(provenance) /
         std::max(1, ctx.workload->num_queries());
  x[7] = std::log10(std::max(1.0, ix.SizeBytes(db))) / 12.0;
  return x;
}

std::vector<double> SolveLinear(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const size_t n = b.size();
  BATI_CHECK(a.size() == n);
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    double diag = a[col][col];
    if (std::fabs(diag) < 1e-12) continue;
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      double factor = a[r][col] / diag;
      for (size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::fabs(a[i][i]) < 1e-12 ? 0.0 : b[i] / a[i][i];
  }
  return x;
}

std::vector<double> RidgeFit(const std::vector<std::vector<double>>& features,
                             const std::vector<double>& targets,
                             double lambda) {
  BATI_CHECK(features.size() == targets.size());
  const size_t d = kIndexFeatureCount;
  std::vector<std::vector<double>> gram(d, std::vector<double>(d, 0.0));
  std::vector<double> xty(d, 0.0);
  for (size_t i = 0; i < d; ++i) gram[i][i] = lambda;
  for (size_t r = 0; r < features.size(); ++r) {
    const std::vector<double>& x = features[r];
    BATI_CHECK(x.size() == d);
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) gram[i][j] += x[i] * x[j];
      xty[i] += targets[r] * x[i];
    }
  }
  return SolveLinear(std::move(gram), std::move(xty));
}

double DotProduct(const std::vector<double>& a,
                  const std::vector<double>& b) {
  BATI_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace bati
