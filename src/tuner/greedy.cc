#include "tuner/greedy.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace bati {

WhatIfFilter AllowAllWhatIf() {
  return [](int, const Config&) { return true; };
}

WhatIfFilter AtomicOnlyWhatIf(int atomic_size) {
  return [atomic_size](int, const Config& config) {
    return static_cast<int>(config.count()) <= atomic_size;
  };
}

WhatIfFilter DenyAllWhatIf() {
  return [](int, const Config&) { return false; };
}

bool FitsStorage(const TuningContext& ctx, const Database& db,
                 const Config& config, int pos) {
  if (ctx.constraints.max_storage_bytes <= 0.0) return true;
  double total = 0.0;
  for (size_t p : config.ToIndices()) {
    total += ctx.candidates->indexes[p].SizeBytes(db);
  }
  total += ctx.candidates->indexes[static_cast<size_t>(pos)].SizeBytes(db);
  return total <= ctx.constraints.max_storage_bytes;
}

namespace {

/// Evaluates cost(W', C) under the budget-allocation filter: what-if where
/// allowed and affordable, derived otherwise.
double EvaluateCost(CostService& service, const std::vector<int>& query_ids,
                    const Config& config, const WhatIfFilter& filter) {
  double total = 0.0;
  for (int q : query_ids) {
    if (filter(q, config)) {
      if (auto c = service.WhatIfCost(q, config); c.has_value()) {
        total += *c;
        continue;
      }
    }
    total += service.DerivedCost(q, config);
  }
  return total;
}

}  // namespace

Config GreedyEnumerate(const TuningContext& ctx, CostService& service,
                       const std::vector<int>& query_ids,
                       const std::vector<int>& allowed, const Config& initial,
                       const WhatIfFilter& filter,
                       std::vector<double>* trace) {
  const Database& db = *ctx.workload->database;
  Config best = initial;
  double best_cost = EvaluateCost(service, query_ids, best, filter);

  std::vector<int> remaining = allowed;
  while (!remaining.empty() &&
         static_cast<int>(best.count()) < ctx.constraints.max_indexes) {
    service.BeginRound("greedy.argmax_sweep");
    // Per-round derived baseline d(q, best) for the incremental argmax:
    // cells cached during the round are supersets of `best` (they are the
    // candidate extensions themselves), so the baseline stays exact.
    std::vector<double> base_derived(query_ids.size());
    for (size_t i = 0; i < query_ids.size(); ++i) {
      base_derived[i] = service.DerivedCost(query_ids[i], best);
    }
    int chosen = -1;
    double chosen_cost = best_cost;
    for (int pos : remaining) {
      if (best.test(static_cast<size_t>(pos))) continue;
      if (!FitsStorage(ctx, db, best, pos)) continue;
      Config candidate = best.With(static_cast<size_t>(pos));
      double cost = 0.0;
      for (size_t i = 0; i < query_ids.size(); ++i) {
        const int q = query_ids[i];
        if (filter(q, candidate)) {
          if (auto c = service.WhatIfCost(q, candidate); c.has_value()) {
            cost += *c;
            continue;
          }
        }
        // Incremental Equation 1: only cached entries containing `pos` can
        // tighten d(q, best) — probed via the posting-list index.
        cost += service.DerivedCostWithAdd(q, best, static_cast<size_t>(pos),
                                           base_derived[i]);
      }
      if (cost < chosen_cost) {
        chosen = pos;
        chosen_cost = cost;
      }
    }
    if (chosen < 0) break;  // no improving extension: stop (Algorithm 1)
    best = best.With(static_cast<size_t>(chosen));
    best_cost = chosen_cost;
    remaining.erase(std::remove(remaining.begin(), remaining.end(), chosen),
                    remaining.end());
    if (trace != nullptr) trace->push_back(service.DerivedImprovement(best));
  }
  return best;
}

namespace {

std::vector<int> AllQueryIds(const TuningContext& ctx) {
  std::vector<int> ids(static_cast<size_t>(ctx.workload->num_queries()));
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

std::vector<int> AllCandidatePositions(const TuningContext& ctx) {
  std::vector<int> ids(static_cast<size_t>(ctx.candidates->size()));
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

/// Builds the result and — for tuners that expose a progress trace —
/// guarantees the trace ends with the returned recommendation's improvement
/// (the contract tested by tests/harness_test.cc).
TuningResult FinishResult(const std::string& algorithm, CostService& service,
                          Config best, std::vector<double>* trace = nullptr) {
  TuningResult result;
  result.algorithm = algorithm;
  result.derived_improvement = service.DerivedImprovement(best);
  result.best_config = std::move(best);
  result.what_if_calls = service.calls_made();
  if (trace != nullptr &&
      (trace->empty() || trace->back() != result.derived_improvement)) {
    trace->push_back(result.derived_improvement);
  }
  return result;
}

/// Shared two-phase skeleton (Algorithm 2): per-query greedy, then greedy
/// over the union of per-query winners. The trace, when requested, covers
/// the workload-level refinement phase.
Config TwoPhaseCore(const TuningContext& ctx, CostService& service,
                    const WhatIfFilter& filter,
                    std::vector<double>* trace) {
  Config union_set = service.EmptyConfig();
  for (int q = 0; q < ctx.workload->num_queries(); ++q) {
    const std::vector<int>& mine =
        ctx.candidates->per_query[static_cast<size_t>(q)];
    if (mine.empty()) continue;
    Config per_query = GreedyEnumerate(ctx, service, {q}, mine,
                                       service.EmptyConfig(), filter);
    union_set = union_set | per_query;
  }
  std::vector<int> refined;
  for (size_t pos : union_set.ToIndices()) {
    refined.push_back(static_cast<int>(pos));
  }
  return GreedyEnumerate(ctx, service, AllQueryIds(ctx), refined,
                         service.EmptyConfig(), filter, trace);
}

}  // namespace

TuningResult GreedyTuner::Tune(CostService& service) {
  trace_.clear();
  Config best =
      GreedyEnumerate(ctx_, service, AllQueryIds(ctx_),
                      AllCandidatePositions(ctx_), service.EmptyConfig(),
                      AllowAllWhatIf(), &trace_);
  return FinishResult(name(), service, std::move(best), &trace_);
}

TuningResult TwoPhaseGreedyTuner::Tune(CostService& service) {
  trace_.clear();
  Config best = TwoPhaseCore(ctx_, service, AllowAllWhatIf(), &trace_);
  return FinishResult(name(), service, std::move(best), &trace_);
}

TuningResult AutoAdminGreedyTuner::Tune(CostService& service) {
  trace_.clear();
  Config best =
      TwoPhaseCore(ctx_, service, AtomicOnlyWhatIf(atomic_size_), &trace_);
  return FinishResult(name(), service, std::move(best), &trace_);
}

}  // namespace bati
