#ifndef BATI_TUNER_TIME_BUDGET_H_
#define BATI_TUNER_TIME_BUDGET_H_

#include <cstdint>

#include "optimizer/what_if.h"
#include "workload/query.h"

namespace bati {

/// Maps a user-facing tuning-time budget to a what-if call budget, the
/// translation the paper proposes for integrating budget-aware enumeration
/// behind DTA-style time budgets (Section 8: "we can divide the time budget
/// by the average time of a what-if call, which is transparent to the end
/// user"). `overhead_fraction` reserves a share of the time for non-what-if
/// work (parsing, candidate generation, bookkeeping; Figure 2 measures this
/// at 7-25%).
int64_t CallBudgetForTime(const WhatIfOptimizer& optimizer,
                          const Workload& workload, double budget_seconds,
                          double overhead_fraction = 0.15);

/// Inverse mapping: the expected tuning seconds for a call budget (used to
/// label the x-axes of the figures with "(and tuning time in minutes)" the
/// way the paper does).
double ExpectedSecondsForCalls(const WhatIfOptimizer& optimizer,
                               const Workload& workload, int64_t calls,
                               double overhead_fraction = 0.15);

}  // namespace bati

#endif  // BATI_TUNER_TIME_BUDGET_H_
