#ifndef BATI_TUNER_RELAXATION_H_
#define BATI_TUNER_RELAXATION_H_

#include <string>

#include "tuner/tuner.h"

namespace bati {

/// Options for the relaxation-based tuner.
struct RelaxationOptions {
  /// Fraction of the budget reserved for the initial per-query singleton
  /// evaluation that seeds the starting configuration.
  double seed_budget_fraction = 0.5;
  /// Whether merge transformations (replacing two prefix-compatible indexes
  /// with their merged form, when present in the candidate universe) are
  /// considered alongside removals.
  bool enable_merges = true;
};

/// Budget-aware adaptation of relaxation-based enumeration (Bruno &
/// Chaudhuri's "Automatic Physical Database Tuning: A Relaxation-based
/// Approach", cited by the paper as a classic alternative to greedy
/// bottom-up search). Instead of growing a configuration, relaxation starts
/// from a near-ideal configuration and shrinks it:
///
///   1. Seed: evaluate singletons per query (FCFS within half the budget)
///      and take the union of each query's best index.
///   2. Relax: while the configuration violates the cardinality or storage
///      constraint, apply the transformation (index removal, or a merge
///      into an existing universe candidate) with the smallest cost
///      penalty, costing candidates with what-if calls while budget
///      remains and derived costs afterwards.
///
/// The best *feasible* configuration seen (by derived improvement) is
/// returned, so the tuner is anytime like the rest of the suite.
class RelaxationTuner : public Tuner {
 public:
  RelaxationTuner(TuningContext ctx,
                  RelaxationOptions options = RelaxationOptions());

  TuningResult Tune(CostService& service) override;
  std::string name() const override { return "relaxation"; }

 private:
  TuningContext ctx_;
  RelaxationOptions options_;
};

}  // namespace bati

#endif  // BATI_TUNER_RELAXATION_H_
