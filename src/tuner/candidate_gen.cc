#include "tuner/candidate_gen.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/macros.h"

namespace bati {

namespace {

/// Per-scan indexable-column classification (paper Figure 3's table of
/// equality / range / join / projection columns).
struct ScanColumns {
  std::vector<int> equality;    // equality & IN filter columns
  std::vector<int> range;       // range filter columns
  std::vector<int> join;        // join columns
  std::vector<int> group_order; // group-by then order-by columns, in order
  std::vector<int> payload;     // projection columns (include candidates)
  std::vector<int> all_used;    // every referenced column
};

void PushUnique(std::vector<int>& v, int c) {
  if (std::find(v.begin(), v.end(), c) == v.end()) v.push_back(c);
}

}  // namespace

std::optional<Index> MergeIndexes(const Index& a, const Index& b) {
  if (a.table_id != b.table_id) return std::nullopt;
  const Index& shorter =
      a.key_columns.size() <= b.key_columns.size() ? a : b;
  const Index& longer = &shorter == &a ? b : a;
  // Mergeable iff the shorter key is a prefix of the longer key.
  for (size_t i = 0; i < shorter.key_columns.size(); ++i) {
    if (shorter.key_columns[i] != longer.key_columns[i]) {
      return std::nullopt;
    }
  }
  Index merged;
  merged.table_id = a.table_id;
  merged.key_columns = longer.key_columns;
  merged.include_columns = a.include_columns;
  merged.include_columns.insert(merged.include_columns.end(),
                                b.include_columns.begin(),
                                b.include_columns.end());
  merged.Canonicalize();
  return merged;
}

CandidateSet GenerateCandidates(const Workload& workload,
                                const CandidateGenOptions& options) {
  CandidateSet result;
  std::unordered_map<Index, int, IndexHash> seen;
  result.per_query.resize(workload.queries.size());

  for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
    const Query& q = workload.queries[qi];
    std::vector<ScanColumns> per_scan(static_cast<size_t>(q.num_scans()));

    for (const BoundFilter& f : q.filters) {
      ScanColumns& sc = per_scan[static_cast<size_t>(f.scan_id)];
      switch (f.kind) {
        case FilterKind::kEquality:
        case FilterKind::kIn:
          PushUnique(sc.equality, f.column.column_id);
          break;
        case FilterKind::kRange:
          PushUnique(sc.range, f.column.column_id);
          break;
        default:
          break;  // LIKE / <> / column-column are not sargable
      }
      PushUnique(sc.all_used, f.column.column_id);
    }
    for (const BoundJoin& j : q.joins) {
      PushUnique(per_scan[static_cast<size_t>(j.left_scan)].join,
                 j.left_column.column_id);
      PushUnique(per_scan[static_cast<size_t>(j.left_scan)].all_used,
                 j.left_column.column_id);
      PushUnique(per_scan[static_cast<size_t>(j.right_scan)].join,
                 j.right_column.column_id);
      PushUnique(per_scan[static_cast<size_t>(j.right_scan)].all_used,
                 j.right_column.column_id);
    }
    for (const BoundColumnUse& u : q.group_by) {
      PushUnique(per_scan[static_cast<size_t>(u.scan_id)].group_order,
                 u.column.column_id);
      PushUnique(per_scan[static_cast<size_t>(u.scan_id)].all_used,
                 u.column.column_id);
    }
    for (const BoundColumnUse& u : q.order_by) {
      PushUnique(per_scan[static_cast<size_t>(u.scan_id)].group_order,
                 u.column.column_id);
      PushUnique(per_scan[static_cast<size_t>(u.scan_id)].all_used,
                 u.column.column_id);
    }
    for (const BoundColumnUse& u : q.projections) {
      PushUnique(per_scan[static_cast<size_t>(u.scan_id)].payload,
                 u.column.column_id);
      PushUnique(per_scan[static_cast<size_t>(u.scan_id)].all_used,
                 u.column.column_id);
    }

    auto emit = [&](int table_id, Index ix, int scan_emitted[],
                    size_t scan_idx) {
      if (ix.key_columns.empty()) return;
      if (static_cast<int>(ix.key_columns.size()) > options.max_key_columns) {
        ix.key_columns.resize(static_cast<size_t>(options.max_key_columns));
      }
      ix.table_id = table_id;
      ix.Canonicalize();
      if (scan_emitted[scan_idx] >= options.max_per_scan) return;
      auto [it, inserted] =
          seen.emplace(ix, static_cast<int>(result.indexes.size()));
      if (inserted) result.indexes.push_back(ix);
      std::vector<int>& prov = result.per_query[qi];
      if (std::find(prov.begin(), prov.end(), it->second) == prov.end()) {
        prov.push_back(it->second);
        ++scan_emitted[scan_idx];
      }
    };

    std::vector<int> emitted_counts(static_cast<size_t>(q.num_scans()), 0);
    for (int s = 0; s < q.num_scans(); ++s) {
      const ScanColumns& sc = per_scan[static_cast<size_t>(s)];
      if (sc.all_used.empty()) continue;
      int table_id = q.scans[static_cast<size_t>(s)].table_id;
      int* counter = emitted_counts.data();
      size_t si = static_cast<size_t>(s);

      // (a) Filter-based index: equality columns then the first range
      // column as key; remaining used columns as payload (Figure 3's
      // "Filter" candidates).
      if (!sc.equality.empty() || !sc.range.empty()) {
        Index ix;
        ix.key_columns = sc.equality;
        if (!sc.range.empty()) ix.key_columns.push_back(sc.range.front());
        if (options.covering_indexes) ix.include_columns = sc.all_used;
        emit(table_id, ix, counter, si);
        // Narrow (non-covering) variant.
        Index narrow;
        narrow.key_columns = ix.key_columns;
        emit(table_id, narrow, counter, si);
      }

      // (b) Join-based indexes: one per join column, with equality columns
      // appended to the key and the rest as payload (Figure 3's "Join"
      // candidates, e.g. [R.b; R.a]).
      for (int jc : sc.join) {
        Index ix;
        ix.key_columns.push_back(jc);
        for (int e : sc.equality) ix.key_columns.push_back(e);
        if (options.covering_indexes) ix.include_columns = sc.all_used;
        emit(table_id, ix, counter, si);
        Index bare;
        bare.key_columns.push_back(jc);
        emit(table_id, bare, counter, si);
      }

      // (c) Group/order-based index: grouping columns as key, payload
      // included (supports index-only aggregation paths).
      if (!sc.group_order.empty()) {
        Index ix;
        ix.key_columns = sc.group_order;
        if (options.covering_indexes) ix.include_columns = sc.all_used;
        emit(table_id, ix, counter, si);
      }
    }
  }

  // Optional index-merging pass (DTA-style): add merged variants of
  // same-table prefix-compatible pairs, capped per table. Merged candidates
  // inherit the provenance of both parents so two-phase search and the
  // prior computation can reach them.
  if (options.merged_indexes) {
    std::unordered_map<int, int> merged_per_table;
    const int base_count = result.size();
    for (int i = 0; i < base_count; ++i) {
      for (int j = i + 1; j < base_count; ++j) {
        const Index& a = result.indexes[static_cast<size_t>(i)];
        const Index& b = result.indexes[static_cast<size_t>(j)];
        // push_back below reallocates result.indexes; a and b dangle after
        // it, so everything needed later is copied out first.
        const int table_id = a.table_id;
        if (table_id != b.table_id) continue;
        if (merged_per_table[table_id] >= options.max_merged_per_table) {
          continue;
        }
        std::optional<Index> merged = MergeIndexes(a, b);
        if (!merged.has_value()) continue;
        auto [it, inserted] = seen.emplace(*merged, result.size());
        if (!inserted) continue;  // already exists as a base candidate
        int pos = static_cast<int>(result.indexes.size());
        result.indexes.push_back(*merged);
        ++merged_per_table[table_id];
        for (auto& prov : result.per_query) {
          bool has_a = std::find(prov.begin(), prov.end(), i) != prov.end();
          bool has_b = std::find(prov.begin(), prov.end(), j) != prov.end();
          if (has_a || has_b) prov.push_back(pos);
        }
      }
    }
  }
  return result;
}

}  // namespace bati
