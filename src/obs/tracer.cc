#include "obs/tracer.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "common/file_util.h"
#include "common/macros.h"

namespace bati {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

/// Minimal recursive-descent JSON reader used only by ValidateChromeJson:
/// enough structure-awareness to confirm well-formedness and walk the
/// traceEvents array without pulling in a JSON dependency.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool SkipValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return SkipObject(nullptr);
      case '[':
        return SkipArray();
      case '"':
        return ReadString(nullptr);
      default:
        return SkipScalar();
    }
  }

  /// Skips an object while collecting its top-level key names; when `ph` is
  /// non-null and a "ph" member holds a string, its content is stored there
  /// (the validator needs the phase to know whether "dur" is required).
  bool SkipObject(std::vector<std::string>* keys,
                  std::string* ph = nullptr) {
    SkipSpace();
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      if (!ReadString(&key)) return false;
      if (keys != nullptr) keys->push_back(key);
      SkipSpace();
      if (!Consume(':')) return false;
      if (ph != nullptr && key == "ph" && Peek() == '"') {
        if (!ReadString(ph)) return false;
      } else if (!SkipValue()) {
        return false;
      }
      SkipSpace();
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  /// Reads a JSON string, appending its (unescaped) content to `out`.
  bool ReadString(std::string* out) {
    SkipSpace();
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        if (out != nullptr) out->push_back(text_[pos_]);
        ++pos_;
      } else if (c == '"') {
        return true;
      } else if (out != nullptr) {
        out->push_back(c);
      }
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

 private:
  bool SkipArray() {
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      if (!SkipValue()) return false;
      SkipSpace();
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool SkipScalar() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.')) {
      ++pos_;
    }
    return pos_ > start;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Tracer::Tracer(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<size_t>(capacity_, 1024));
}

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int Tracer::TidLocked(std::thread::id id) {
  auto [it, inserted] = tids_.emplace(id, static_cast<int>(tids_.size()));
  (void)inserted;
  return it->second;
}

void Tracer::Append(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent stamped = event;
  stamped.tid = TidLocked(std::this_thread::get_id());
  if (ring_.size() < capacity_) {
    ring_.push_back(stamped);
    return;
  }
  // Ring full: overwrite the oldest record.
  wrapped_ = true;
  ring_[next_] = stamped;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

void Tracer::Complete(const char* name, const char* category,
                      double wall_start_us, double wall_dur_us,
                      double sim_start_s, double sim_dur_s,
                      std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'X';
  e.wall_ts_us = wall_start_us;
  e.wall_dur_us = wall_dur_us;
  e.sim_ts_s = sim_start_s;
  e.sim_dur_s = sim_dur_s;
  for (const TraceArg& arg : args) {
    if (e.num_args >= TraceEvent::kMaxArgs) break;
    e.args[e.num_args++] = arg;
  }
  Append(e);
}

void Tracer::Instant(const char* name, const char* category, double sim_ts_s,
                     std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'i';
  e.wall_ts_us = NowUs();
  e.sim_ts_s = sim_ts_s;
  for (const TraceArg& arg : args) {
    if (e.num_args >= TraceEvent::kMaxArgs) break;
    e.args[e.num_args++] = arg;
  }
  Append(e);
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(next_));
  } else {
    out = ring_;
  }
  return out;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"";
    out += e.category;
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    out += ",\"ts\":";
    AppendDouble(&out, e.wall_ts_us);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      AppendDouble(&out, e.wall_dur_us);
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    out += ",\"args\":{\"sim_ts_s\":";
    AppendDouble(&out, e.sim_ts_s);
    if (e.phase == 'X') {
      out += ",\"sim_dur_s\":";
      AppendDouble(&out, e.sim_dur_s);
    }
    for (int i = 0; i < e.num_args; ++i) {
      out += ",\"";
      out += e.args[i].key;
      out += "\":";
      AppendDouble(&out, e.args[i].value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string Tracer::ToTextReport() const {
  const std::vector<TraceEvent> events = Events();
  // Per-(category, name) rollup, ordered by first occurrence.
  struct Rollup {
    std::string key;
    int64_t count = 0;
    double wall_us = 0.0;
    double sim_s = 0.0;
  };
  std::vector<Rollup> rollups;
  for (const TraceEvent& e : events) {
    std::string key = std::string(e.category) + "/" + e.name;
    Rollup* row = nullptr;
    for (Rollup& r : rollups) {
      if (r.key == key) {
        row = &r;
        break;
      }
    }
    if (row == nullptr) {
      rollups.push_back(Rollup{std::move(key), 0, 0.0, 0.0});
      row = &rollups.back();
    }
    ++row->count;
    row->wall_us += e.wall_dur_us;
    row->sim_s += e.sim_dur_s;
  }
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "trace: %zu events retained (%llu dropped, capacity %zu)\n",
                events.size(), static_cast<unsigned long long>(dropped()),
                capacity_);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-36s %8s %14s %12s\n", "span/event",
                "count", "wall total ms", "sim total s");
  out += buf;
  for (const Rollup& r : rollups) {
    std::snprintf(buf, sizeof(buf), "  %-36s %8lld %14.3f %12.2f\n",
                  r.key.c_str(), static_cast<long long>(r.count),
                  r.wall_us / 1000.0, r.sim_s);
    out += buf;
  }
  return out;
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  return AtomicWriteFile(path, ToChromeJson());
}

Status Tracer::ValidateChromeJson(const std::string& json,
                                  size_t* num_events) {
  JsonReader reader(json);
  if (!reader.Consume('{')) {
    return Status::InvalidArgument("trace JSON: top level is not an object");
  }
  bool saw_trace_events = false;
  size_t events = 0;
  if (!reader.Consume('}')) {
    while (true) {
      std::string key;
      if (!reader.ReadString(&key)) {
        return Status::InvalidArgument("trace JSON: expected member key");
      }
      if (!reader.Consume(':')) {
        return Status::InvalidArgument("trace JSON: expected ':'");
      }
      if (key == "traceEvents") {
        if (!reader.Consume('[')) {
          return Status::InvalidArgument(
              "trace JSON: traceEvents is not an array");
        }
        if (!reader.Consume(']')) {
          while (true) {
            std::vector<std::string> keys;
            std::string ph;
            if (reader.Peek() != '{' || !reader.SkipObject(&keys, &ph)) {
              return Status::InvalidArgument(
                  "trace JSON: malformed event object");
            }
            auto has = [&keys](const char* k) {
              return std::find(keys.begin(), keys.end(), k) != keys.end();
            };
            if (!has("name") || !has("cat") || !has("ph") || !has("ts") ||
                !has("pid") || !has("tid")) {
              return Status::InvalidArgument(
                  "trace JSON: event missing a required field "
                  "(name/cat/ph/ts/pid/tid)");
            }
            if (ph == "X" && !has("dur")) {
              return Status::InvalidArgument(
                  "trace JSON: complete ('X') span without dur");
            }
            ++events;
            if (reader.Consume(',')) continue;
            if (reader.Consume(']')) break;
            return Status::InvalidArgument("trace JSON: unterminated array");
          }
        }
        saw_trace_events = true;
      } else if (!reader.SkipValue()) {
        return Status::InvalidArgument("trace JSON: malformed member value");
      }
      if (reader.Consume(',')) continue;
      if (reader.Consume('}')) break;
      return Status::InvalidArgument("trace JSON: unterminated object");
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trace JSON: trailing garbage");
  }
  if (!saw_trace_events) {
    return Status::InvalidArgument("trace JSON: no traceEvents array");
  }
  if (num_events != nullptr) *num_events = events;
  return Status::Ok();
}

}  // namespace bati
