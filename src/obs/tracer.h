#ifndef BATI_OBS_TRACER_H_
#define BATI_OBS_TRACER_H_

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace bati {

/// One numeric span/event argument. Keys must be string literals (or
/// otherwise outlive the tracer) — arguments are stored by pointer so the
/// recording path never allocates.
struct TraceArg {
  const char* key = "";
  double value = 0.0;
};

/// One structured trace record. `name` and `category` must be string
/// literals: events are plain copyable values of fixed size, which is what
/// keeps the ring buffer's memory bounded and the hot path allocation-free.
///
/// Every record is double-stamped: on the real wall clock (microseconds
/// since the tracer's construction — the Chrome trace_event `ts` axis) and
/// on the engine's simulated what-if clock (the paper's Figure 2 time axis),
/// so a trace can be read either as "where did the wall time go" or "where
/// did the simulated budgeted time go".
struct TraceEvent {
  static constexpr int kMaxArgs = 4;

  const char* name = "";
  const char* category = "";
  /// Chrome trace_event phase: 'X' = complete span, 'i' = instant event.
  char phase = 'i';
  double wall_ts_us = 0.0;
  double wall_dur_us = 0.0;  ///< 'X' only
  double sim_ts_s = 0.0;
  double sim_dur_s = 0.0;  ///< 'X' only
  int tid = 0;
  TraceArg args[kMaxArgs];
  int num_args = 0;
};

/// A bounded-memory recorder of structured spans and events (tuner rounds,
/// what-if batches, retries, governor decisions, checkpoint writes...).
/// Records land in a fixed-capacity ring buffer: once full, the oldest
/// record is overwritten and counted in dropped() — a run can never grow the
/// trace beyond `capacity` events. Recording is mutex-serialized (events
/// arrive from the coordinator thread and occasionally the executor pool)
/// and cheap enough to leave on for whole tuning runs; with no Tracer wired
/// up the instrumented code paths skip even the mutex.
///
/// Export formats:
///  * ToChromeJson() — Chrome trace_event "JSON array format" wrapped in an
///    object ({"traceEvents":[...]}), loadable in chrome://tracing and
///    Perfetto. Wall time is the `ts` axis; the simulated clock rides along
///    as per-event args.
///  * ToTextReport() — a plain-text per-(category, name) rollup.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 16384;

  explicit Tracer(size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Microseconds on the wall clock since this tracer was constructed.
  double NowUs() const;

  /// Records a completed span ('X').
  void Complete(const char* name, const char* category, double wall_start_us,
                double wall_dur_us, double sim_start_s, double sim_dur_s,
                std::initializer_list<TraceArg> args = {});

  /// Records an instant event ('i') stamped with the current wall clock.
  void Instant(const char* name, const char* category, double sim_ts_s,
               std::initializer_list<TraceArg> args = {});

  size_t capacity() const { return capacity_; }
  size_t size() const;
  /// Events overwritten because the ring was full.
  uint64_t dropped() const;
  /// The retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  std::string ToChromeJson() const;
  std::string ToTextReport() const;
  /// Writes ToChromeJson() crash-consistently (write-temp-then-rename).
  Status WriteChromeJson(const std::string& path) const;

  /// Structurally validates a Chrome trace_event JSON document: a single
  /// object with a `traceEvents` array whose elements each carry the
  /// required name/cat/ph/ts/pid/tid fields (and dur for 'X' spans), all
  /// JSON well-formed. On success stores the event count in `num_events`
  /// (when non-null). Shared by the tests and the observability bench.
  static Status ValidateChromeJson(const std::string& json,
                                   size_t* num_events = nullptr);

 private:
  void Append(const TraceEvent& event);
  int TidLocked(std::thread::id id);

  const std::chrono::steady_clock::time_point epoch_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  /// Write cursor once the ring wrapped; ring_[next_] is the oldest event.
  size_t next_ = 0;
  bool wrapped_ = false;
  uint64_t dropped_ = 0;
  std::map<std::thread::id, int> tids_;
};

}  // namespace bati

#endif  // BATI_OBS_TRACER_H_
