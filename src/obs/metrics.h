#ifndef BATI_OBS_METRICS_H_
#define BATI_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bati {

/// A monotonically increasing counter. Increment/Add are wait-free relaxed
/// atomics, safe to call from any thread (including the what-if executor's
/// worker pool); value() is a snapshot-on-read.
class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A last-value gauge (settable both ways, unlike a Counter).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// `count` bucket upper bounds starting at `start`, each `factor` times the
/// previous: the standard exponential ladder for latency-style metrics whose
/// interesting range spans orders of magnitude.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);

/// A fixed-bucket histogram of nonnegative values (latencies, depths, batch
/// sizes). The recording path is a bucket binary-search plus relaxed atomic
/// increments — no locks, no allocation — so hot paths and the executor's
/// worker threads can record concurrently. Percentiles are estimated at
/// snapshot time by linear interpolation inside the owning bucket and
/// clamped to the observed [min, max], which makes them exact when all
/// observations share one value.
class LatencyHistogram {
 public:
  struct Snapshot {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// `bounds` are the strictly increasing bucket upper bounds; values above
  /// the last bound land in an unbounded overflow bucket.
  explicit LatencyHistogram(std::vector<double> bounds);

  void Record(double value);
  Snapshot Snap() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  double PercentileLocked(const std::vector<int64_t>& counts, int64_t total,
                          double q, double lo, double hi) const;

  std::vector<double> bounds_;
  /// bounds_.size() + 1 buckets; the last one is the overflow bucket.
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Everything a MetricsRegistry held at one instant, ordered by metric name.
/// Detached from the registry: cheap to copy into a RunOutcome or compare
/// across runs.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name;
    LatencyHistogram::Snapshot stats;
  };

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  /// The named histogram row, or nullptr. (Tests and tools.)
  const HistogramRow* FindHistogram(const std::string& name) const;
  /// The named counter's value, or `fallback` when absent.
  int64_t CounterValue(const std::string& name, int64_t fallback = 0) const;

  /// Stable machine-readable JSON:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,...},...}}.
  std::string ToJson() const;
  /// Human-readable run report (one metric per line, histograms with
  /// count/mean/p50/p95/p99/max columns).
  std::string ToText() const;
};

/// A process-local registry of named metrics. Get*() registers on first use
/// and returns a pointer that stays valid for the registry's lifetime —
/// components resolve their metrics once at wiring time and then touch only
/// the lock-free instruments, so the registry mutex is never on a hot path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only when the histogram is created by this call; a
  /// later Get with the same name returns the existing instrument.
  LatencyHistogram* GetHistogram(const std::string& name,
                                 std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace bati

#endif  // BATI_OBS_METRICS_H_
