#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/macros.h"

namespace bati {

namespace {

/// Relaxed compare-exchange loops for doubles: std::atomic<double> has no
/// fetch_add/fetch_min members we can rely on across toolchains.
void AtomicAdd(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AppendDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  BATI_CHECK(start > 0.0);
  BATI_CHECK(factor > 1.0);
  BATI_CHECK(count >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

LatencyHistogram::LatencyHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  BATI_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    BATI_CHECK(bounds_[i] > bounds_[i - 1] &&
               "histogram bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void LatencyHistogram::Record(double value) {
  // First bucket whose upper bound contains the value; everything above the
  // last bound goes to the overflow bucket.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double LatencyHistogram::PercentileLocked(const std::vector<int64_t>& counts,
                                          int64_t total, double q, double lo,
                                          double hi) const {
  // Rank of the q-quantile observation (1-based), then linear interpolation
  // across the owning bucket, clamped to the observed range.
  const double rank = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double bucket_lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double bucket_hi = i < bounds_.size() ? bounds_[i] : hi;
      const double fraction =
          (rank - before) / static_cast<double>(counts[i]);
      const double v = bucket_lo + (bucket_hi - bucket_lo) * fraction;
      return std::min(std::max(v, lo), hi);
    }
  }
  return hi;
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot snap;
  std::vector<int64_t> counts(bounds_.size() + 1);
  // Relaxed loads: a snapshot taken concurrently with recording is a valid
  // set of nearby values (each counter individually consistent), which is
  // all observability needs.
  int64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  snap.count = total;
  if (total == 0) return snap;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.mean = snap.sum / static_cast<double>(total);
  snap.p50 = PercentileLocked(counts, total, 0.50, snap.min, snap.max);
  snap.p95 = PercentileLocked(counts, total, 0.95, snap.min, snap.max);
  snap.p99 = PercentileLocked(counts, total, 0.99, snap.min, snap.max);
  return snap;
}

const MetricsSnapshot::HistogramRow* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramRow& row : histograms) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

int64_t MetricsSnapshot::CounterValue(const std::string& name,
                                      int64_t fallback) const {
  for (const CounterRow& row : counters) {
    if (row.name == name) return row.value;
  }
  return fallback;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterRow& row : counters) {
    if (!first) out += ",";
    out += "\"" + row.name + "\":" + std::to_string(row.value);
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeRow& row : gauges) {
    if (!first) out += ",";
    out += "\"" + row.name + "\":";
    AppendDouble(&out, row.value);
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramRow& row : histograms) {
    if (!first) out += ",";
    out += "\"" + row.name + "\":{";
    out += "\"count\":" + std::to_string(row.stats.count);
    out += ",\"sum\":";
    AppendDouble(&out, row.stats.sum);
    out += ",\"min\":";
    AppendDouble(&out, row.stats.min);
    out += ",\"max\":";
    AppendDouble(&out, row.stats.max);
    out += ",\"mean\":";
    AppendDouble(&out, row.stats.mean);
    out += ",\"p50\":";
    AppendDouble(&out, row.stats.p50);
    out += ",\"p95\":";
    AppendDouble(&out, row.stats.p95);
    out += ",\"p99\":";
    AppendDouble(&out, row.stats.p99);
    out += "}";
    first = false;
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[256];
  if (!counters.empty() || !gauges.empty()) {
    out += "counters:\n";
    for (const CounterRow& row : counters) {
      std::snprintf(buf, sizeof(buf), "  %-34s %lld\n", row.name.c_str(),
                    static_cast<long long>(row.value));
      out += buf;
    }
    for (const GaugeRow& row : gauges) {
      std::snprintf(buf, sizeof(buf), "  %-34s %.6g\n", row.name.c_str(),
                    row.value);
      out += buf;
    }
  }
  if (!histograms.empty()) {
    out += "histograms:\n";
    std::snprintf(buf, sizeof(buf), "  %-34s %10s %10s %10s %10s %10s %10s\n",
                  "name", "count", "mean", "p50", "p95", "p99", "max");
    out += buf;
    for (const HistogramRow& row : histograms) {
      const LatencyHistogram::Snapshot& s = row.stats;
      std::snprintf(buf, sizeof(buf),
                    "  %-34s %10lld %10.4g %10.4g %10.4g %10.4g %10.4g\n",
                    row.name.c_str(), static_cast<long long>(s.count), s.mean,
                    s.p50, s.p95, s.p99, s.max);
      out += buf;
    }
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<LatencyHistogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<LatencyHistogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.push_back({name, hist->Snap()});
  }
  return snap;
}

}  // namespace bati
