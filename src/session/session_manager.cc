#include "session/session_manager.h"

#include <algorithm>

#include "common/macros.h"

namespace bati {

SessionManager::SessionManager(const SessionManagerOptions& options)
    : options_(options), paused_(options.start_paused) {
  BATI_CHECK(options_.parallelism >= 1);
  workers_.reserve(static_cast<size_t>(options_.parallelism));
  for (int i = 0; i < options_.parallelism; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SessionManager::~SessionManager() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

uint64_t SessionManager::Submit(RunSpec spec) {
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    const std::string& workload = spec.workload;
    auto it = queues_.find(workload);
    if (it == queues_.end()) {
      it = queues_.emplace(workload, std::deque<PendingRun>()).first;
      rotation_.push_back(workload);
    }
    it->second.push_back(PendingRun{id, std::move(spec)});
    ++queued_;
  }
  work_cv_.notify_one();
  return id;
}

void SessionManager::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

bool SessionManager::Cancel(uint64_t id) {
  SessionResult result;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [workload, queue] : queues_) {
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->id != id) continue;
        result.id = it->id;
        result.spec = std::move(it->spec);
        result.cancelled = true;
        queue.erase(it);
        --queued_;
        // Count the cancellation as virtually running until it is
        // recorded, so a concurrent Drain() cannot complete between the
        // callback firing and the result landing.
        ++running_;
        found = true;
        break;
      }
      if (found) break;
    }
  }
  if (!found) return false;
  if (options_.on_result) options_.on_result(result);
  {
    std::lock_guard<std::mutex> lock(mu_);
    RecordResultLocked(std::move(result));
    --running_;
  }
  done_cv_.notify_all();
  return true;
}

std::vector<SessionResult> SessionManager::Drain() {
  Start();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
  std::vector<SessionResult> results = results_;
  std::sort(results.begin(), results.end(),
            [](const SessionResult& a, const SessionResult& b) {
              return a.id < b.id;
            });
  return results;
}

size_t SessionManager::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.size();
}

bool SessionManager::PopNextLocked(PendingRun* out) {
  if (queued_ == 0 || rotation_.empty()) return false;
  // Round-robin over workloads in first-submission order, FIFO within
  // each: starting at the rotation cursor, take the head of the first
  // non-empty queue and park the cursor just past it.
  const size_t n = rotation_.size();
  for (size_t step = 0; step < n; ++step) {
    const size_t slot = (rotation_next_ + step) % n;
    std::deque<PendingRun>& queue = queues_[rotation_[slot]];
    if (queue.empty()) continue;
    *out = std::move(queue.front());
    queue.pop_front();
    --queued_;
    rotation_next_ = (slot + 1) % n;
    return true;
  }
  return false;
}

void SessionManager::RecordResultLocked(SessionResult result) {
  result.sequence = next_sequence_++;
  results_.push_back(std::move(result));
}

void SessionManager::WorkerLoop() {
  for (;;) {
    PendingRun run;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return shutdown_ || (!paused_ && queued_ > 0);
      });
      if (shutdown_) return;
      if (!PopNextLocked(&run)) continue;
      ++running_;
    }
    SessionResult result;
    result.id = run.id;
    result.spec = run.spec;
    // Bundles resolve through the thread-safe global registry: first use
    // of a workload builds it once, every later session shares it.
    const WorkloadBundle* bundle =
        BundleRegistry::Global().TryGet(run.spec.workload);
    if (bundle == nullptr) {
      result.status =
          Status::InvalidArgument("unknown workload: " + run.spec.workload);
    } else {
      TuningSession session(*bundle, std::move(run.spec), options_.session);
      result.outcome = session.Run();
      result.result_json = session.result_json();
      result.layout_csv = session.layout_csv();
    }
    // Completion callback fires while this worker still counts as running,
    // so Drain() returns only after every callback has been delivered.
    if (options_.on_result) options_.on_result(result);
    {
      std::lock_guard<std::mutex> lock(mu_);
      RecordResultLocked(std::move(result));
      --running_;
    }
    done_cv_.notify_all();
  }
}

}  // namespace bati
