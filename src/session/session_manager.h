#ifndef BATI_SESSION_SESSION_MANAGER_H_
#define BATI_SESSION_SESSION_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "session/tuning_session.h"

namespace bati {

struct SessionResult;

/// Configuration of a SessionManager.
struct SessionManagerOptions {
  /// Worker threads draining the queue; each runs one session at a time.
  int parallelism = 1;
  /// Artifact-capture switches applied to every session the manager runs.
  SessionOptions session;
  /// When true the workers start idle; nothing runs until Start(). Lets a
  /// caller submit (and cancel) a whole batch before execution begins.
  bool start_paused = false;
  /// When set, invoked once per terminal result (completed or cancelled)
  /// as soon as it exists — before Drain() can observe it — so consumers
  /// (bati_batch's incremental output, the serve daemon's pending-tune
  /// table) see results the moment they land instead of at drain time.
  /// Called from worker threads (or the cancelling thread), possibly
  /// concurrently, with no manager lock held: the callee synchronizes and
  /// must not block on Drain().
  std::function<void(const SessionResult&)> on_result;
};

/// The terminal record of one submitted spec.
struct SessionResult {
  /// Submission ticket, 1-based in submission order.
  uint64_t id = 0;
  RunSpec spec;
  /// Position in completion order (1-based): the order the scheduler
  /// actually finished (or cancelled) sessions, which under concurrency
  /// differs from submission order.
  uint64_t sequence = 0;
  /// True when the spec was cancelled while still queued; the outcome is
  /// then meaningless.
  bool cancelled = false;
  /// Non-OK when the session could not run (unknown workload name).
  Status status;
  /// The run's outcome; valid iff !cancelled && status.ok().
  RunOutcome outcome;
  /// Captured artifacts, per SessionManagerOptions::session.
  std::string result_json;
  std::string layout_csv;
};

/// Runs many tuning sessions concurrently over shared bundles: a bounded
/// worker pool drains a queue of RunSpecs, resolving each workload through
/// the process-wide BundleRegistry (so N sessions share one immutable
/// bundle and one pure what-if optimizer) and running it as a private
/// TuningSession (so no mutable state is shared between sessions).
///
/// Scheduling is FIFO with per-workload fairness: specs are queued FIFO
/// within their workload, and workers pick the next non-empty workload
/// queue in round-robin rotation (first-submission order). A burst of
/// submissions for one workload therefore cannot starve another tenant's
/// queue, while a single-workload stream degrades to plain FIFO.
///
/// Every session runs bit-identically to RunOnce() of the same spec
/// regardless of parallelism or scheduling order — sessions share only
/// immutable state, so results carry no trace of their neighbors.
class SessionManager {
 public:
  explicit SessionManager(const SessionManagerOptions& options);
  /// Drains remaining work (as Drain()) before joining the workers.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Enqueues a spec; returns its ticket (1-based, submission order).
  uint64_t Submit(RunSpec spec);

  /// Releases the workers of a start_paused manager. Idempotent.
  void Start();

  /// Cancels a still-queued session: it will never run, and its result
  /// records cancelled = true. Returns false when `id` is unknown, already
  /// running, or already complete (a running session is never interrupted).
  bool Cancel(uint64_t id);

  /// Blocks until every submitted spec has completed (or been cancelled)
  /// and returns all results so far, sorted by submission id. Implies
  /// Start(). The manager stays usable: more specs may be submitted and
  /// drained afterwards.
  std::vector<SessionResult> Drain();

  /// Sessions finished so far (completed or cancelled).
  size_t finished() const;

 private:
  struct PendingRun {
    uint64_t id = 0;
    RunSpec spec;
  };

  void WorkerLoop();
  /// Picks the next spec under mu_ per the rotation policy; false when no
  /// work is queued.
  bool PopNextLocked(PendingRun* out);
  void RecordResultLocked(SessionResult result);

  SessionManagerOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for work / shutdown
  std::condition_variable done_cv_;  // Drain() waits for quiescence
  /// FIFO queue per workload, plus the round-robin rotation over workload
  /// names in first-submission order.
  std::map<std::string, std::deque<PendingRun>> queues_;
  std::vector<std::string> rotation_;
  size_t rotation_next_ = 0;
  uint64_t next_id_ = 1;
  uint64_t next_sequence_ = 1;
  size_t queued_ = 0;
  size_t running_ = 0;
  bool paused_ = false;
  bool shutdown_ = false;
  std::vector<SessionResult> results_;
  std::vector<std::thread> workers_;
};

}  // namespace bati

#endif  // BATI_SESSION_SESSION_MANAGER_H_
