#include "session/tuning_session.h"

#include <cstdio>

#include "bandit/dba_bandits.h"
#include "common/macros.h"
#include "dqn/nodba.h"
#include "dta/dta_tuner.h"
#include "mcts/mcts_tuner.h"
#include "obs/tracer.h"
#include "tuner/greedy.h"
#include "tuner/relaxation.h"
#include "whatif/cost_service.h"
#include "whatif/trace_io.h"

namespace bati {

namespace {

/// Simulated non-what-if tuning overhead: per-call bookkeeping plus a fixed
/// setup term (parsing, candidate generation). Chosen so what-if time is
/// 75-93% of the total, as the paper measures (Figure 2).
constexpr double kOtherSecondsPerCall = 0.12;
constexpr double kOtherSecondsFixed = 30.0;

}  // namespace

std::unique_ptr<Tuner> MakeTuner(const std::string& algorithm,
                                 TuningContext ctx, uint64_t seed) {
  if (algorithm == "vanilla-greedy") {
    return std::make_unique<GreedyTuner>(std::move(ctx));
  }
  if (algorithm == "two-phase-greedy") {
    return std::make_unique<TwoPhaseGreedyTuner>(std::move(ctx));
  }
  if (algorithm == "autoadmin-greedy") {
    return std::make_unique<AutoAdminGreedyTuner>(std::move(ctx));
  }
  if (algorithm == "dba-bandits") {
    DbaBanditsOptions opt;
    opt.seed = seed;
    return std::make_unique<DbaBanditsTuner>(std::move(ctx), opt);
  }
  if (algorithm == "no-dba") {
    NoDbaOptions opt;
    opt.seed = seed;
    return std::make_unique<NoDbaTuner>(std::move(ctx), opt);
  }
  if (algorithm == "dta") {
    return std::make_unique<DtaTuner>(std::move(ctx));
  }
  if (algorithm == "relaxation") {
    return std::make_unique<RelaxationTuner>(std::move(ctx));
  }
  if (algorithm.rfind("mcts", 0) == 0) {
    MctsOptions opt;  // defaults = paper's recommended setting
    opt.seed = seed;
    if (algorithm.find("-uct") != std::string::npos) {
      opt.action_policy = MctsOptions::ActionPolicy::kUct;
    }
    if (algorithm.find("-prior") != std::string::npos) {
      opt.action_policy = MctsOptions::ActionPolicy::kEpsGreedyPrior;
    }
    if (algorithm.find("-boltz") != std::string::npos) {
      opt.action_policy = MctsOptions::ActionPolicy::kBoltzmann;
    }
    if (algorithm.find("-bce") != std::string::npos) {
      opt.extraction = MctsOptions::Extraction::kBce;
    }
    if (algorithm.find("-bg") != std::string::npos) {
      opt.extraction = MctsOptions::Extraction::kBestGreedy;
    }
    if (algorithm.find("-hybrid") != std::string::npos) {
      opt.extraction = MctsOptions::Extraction::kHybrid;
    }
    if (algorithm.find("-rave") != std::string::npos) {
      opt.use_rave = true;
    }
    if (algorithm.find("-feat") != std::string::npos) {
      opt.featurized_priors = true;
    }
    if (algorithm.find("-rnd") != std::string::npos) {
      opt.rollout_policy = MctsOptions::RolloutPolicy::kRandomStep;
    }
    if (algorithm.find("-fix0") != std::string::npos) {
      opt.rollout_policy = MctsOptions::RolloutPolicy::kFixedStep;
      opt.fixed_rollout_step = 0;
    }
    if (algorithm.find("-fix1") != std::string::npos) {
      opt.rollout_policy = MctsOptions::RolloutPolicy::kFixedStep;
      opt.fixed_rollout_step = 1;
    }
    return std::make_unique<MctsTuner>(std::move(ctx), opt);
  }
  BATI_CHECK(false && "unknown algorithm name");
  return nullptr;
}

bool IsKnownAlgorithm(const std::string& algorithm) {
  // Keep in sync with MakeTuner above: fixed names plus the "mcts[-...]"
  // ablation family (MakeTuner treats unrecognized suffixes as the paper's
  // default setting, so any "mcts" prefix is runnable).
  return algorithm == "vanilla-greedy" || algorithm == "two-phase-greedy" ||
         algorithm == "autoadmin-greedy" || algorithm == "dba-bandits" ||
         algorithm == "no-dba" || algorithm == "dta" ||
         algorithm == "relaxation" || algorithm.rfind("mcts", 0) == 0;
}

std::string RunIdentity(const RunSpec& spec) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "workload=%s,algorithm=%s,budget=%lld,k=%d,storage=%g,seed=%llu,"
      "governor=%d/%d/%d",
      spec.workload.c_str(), spec.algorithm.c_str(),
      static_cast<long long>(spec.budget), spec.max_indexes,
      spec.max_storage_bytes, static_cast<unsigned long long>(spec.seed),
      spec.governor.enabled ? 1 : 0, spec.governor.skip_what_if ? 1 : 0,
      spec.governor.early_stop ? 1 : 0);
  std::string id = buf;
  id += "," + spec.faults.ToIdentityString();
  id += "," + spec.retry.ToIdentityString();
  return id;
}

TuningSession::TuningSession(const WorkloadBundle& bundle, RunSpec spec,
                             SessionOptions options)
    : bundle_(&bundle), spec_(std::move(spec)), options_(options) {}

const RunOutcome& TuningSession::Run() {
  BATI_CHECK(!ran_ && "a TuningSession runs at most once");
  ran_ = true;
  const WorkloadBundle& bundle = *bundle_;
  const RunSpec& spec = spec_;

  TuningContext ctx;
  ctx.workload = &bundle.workload;
  ctx.candidates = &bundle.candidates;
  ctx.constraints.max_indexes = spec.max_indexes;
  ctx.constraints.max_storage_bytes = spec.max_storage_bytes;

  CostEngineOptions engine_options;
  engine_options.governor = spec.governor;
  engine_options.faults = spec.faults;
  engine_options.retry = spec.retry;
  engine_options.checkpoint_path = spec.checkpoint_path;
  engine_options.run_identity = RunIdentity(spec);
  // Observability sinks live on this frame and outlive the service; when
  // the spec asks for neither, the engine runs fully unobserved.
  std::unique_ptr<MetricsRegistry> registry;
  if (spec.collect_metrics) {
    registry = std::make_unique<MetricsRegistry>();
    engine_options.metrics = registry.get();
  }
  std::unique_ptr<Tracer> tracer;
  if (!spec.trace_path.empty() || spec.trace_buffer > 0) {
    tracer = std::make_unique<Tracer>(spec.trace_buffer == 0
                                          ? Tracer::kDefaultCapacity
                                          : spec.trace_buffer);
    engine_options.tracer = tracer.get();
  }
  CostService service(bundle.optimizer.get(), &bundle.workload,
                      &bundle.candidates.indexes, spec.budget,
                      engine_options);
  if (!spec.resume_path.empty()) {
    const Status st = service.ResumeFromFile(spec.resume_path);
    if (!st.ok()) {
      // A rejected checkpoint (truncated, checksum mismatch, identity or
      // shape mismatch) must not silently replay a partial prefix — and a
      // fresh start converges on the identical result anyway, so falling
      // back is always safe. Loud, then continue un-resumed.
      std::fprintf(stderr,
                   "bati: checkpoint %s rejected, starting fresh: %s\n",
                   spec.resume_path.c_str(), st.ToString().c_str());
    }
  }
  std::unique_ptr<Tuner> tuner = MakeTuner(spec.algorithm, ctx, spec.seed);
  TuningResult result = tuner->Tune(service);
  service.FinishObservability();

  RunOutcome& outcome = outcome_;
  outcome.true_improvement = service.TrueImprovement(result.best_config);
  outcome.derived_improvement = result.derived_improvement;
  outcome.calls_used = service.calls_made();
  outcome.config_size = result.best_config.count();
  outcome.config_positions = result.best_config.ToIndices();
  outcome.whatif_seconds = service.SimulatedWhatIfSeconds();
  outcome.other_seconds =
      kOtherSecondsFixed +
      kOtherSecondsPerCall * static_cast<double>(service.calls_made());
  if (const std::vector<double>* trace = tuner->progress_trace()) {
    outcome.trace = *trace;
  }
  outcome.engine = service.EngineStats();
  outcome.governor_skipped = outcome.engine.governor_skipped_calls;
  outcome.governor_banked = outcome.engine.governor_banked_calls;
  outcome.governor_reallocated = outcome.engine.governor_reallocated_calls;
  outcome.governor_stop_round = outcome.engine.governor_stop_round;
  outcome.degraded_cells = outcome.engine.degraded_cells;
  if (registry != nullptr) {
    outcome.has_metrics = true;
    outcome.metrics = registry->Snapshot();
  }
  if (tracer != nullptr) {
    outcome.trace_events = tracer->size();
    outcome.trace_dropped = tracer->dropped();
    if (!spec.trace_path.empty()) {
      const Status st = tracer->WriteChromeJson(spec.trace_path);
      if (!st.ok()) {
        std::fprintf(stderr, "trace write failed: %s\n",
                     st.ToString().c_str());
      }
    }
  }
  // Session artifacts must be captured while the service (and with it the
  // layout trace and cached costs) is still alive.
  if (options_.capture_result_json) {
    result_json_ = ResultToJson(service, bundle.workload, tuner->name(),
                                result.best_config, outcome.true_improvement,
                                registry != nullptr ? &outcome.metrics
                                                    : nullptr,
                                options_.canonical_result_json);
  }
  if (options_.capture_layout_csv) {
    layout_csv_ = LayoutToCsv(service, bundle.workload);
  }
  return outcome_;
}

RunOutcome RunOnce(const WorkloadBundle& bundle, const RunSpec& spec) {
  TuningSession session(bundle, spec);
  return session.Run();
}

}  // namespace bati
