#include "session/spec_json.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace bati {

namespace {

/// Cursor over one JSON line. The grammar here is deliberately tiny: one
/// flat object of string/number/boolean values — the same shape
/// ResultToJson() emits and a shell one-liner can produce.
struct Cursor {
  const std::string& text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

Status ParseString(Cursor* c, std::string* out) {
  if (!c->Consume('"')) {
    return Status::InvalidArgument("expected '\"' at position " +
                                   std::to_string(c->pos));
  }
  out->clear();
  while (c->pos < c->text.size()) {
    char ch = c->text[c->pos++];
    if (ch == '"') return Status::Ok();
    if (ch == '\\') {
      if (c->pos >= c->text.size()) break;
      char esc = c->text[c->pos++];
      if (esc == '"' || esc == '\\' || esc == '/') {
        out->push_back(esc);
      } else {
        return Status::InvalidArgument(
            std::string("unsupported escape '\\") + esc + "' in string");
      }
      continue;
    }
    out->push_back(ch);
  }
  return Status::InvalidArgument("unterminated string");
}

Status ParseNumber(Cursor* c, double* out) {
  c->SkipSpace();
  errno = 0;
  const char* begin = c->text.c_str() + c->pos;
  char* end = nullptr;
  double parsed = std::strtod(begin, &end);
  if (end == begin || errno != 0) {
    return Status::InvalidArgument("malformed number at position " +
                                   std::to_string(c->pos));
  }
  c->pos += static_cast<size_t>(end - begin);
  *out = parsed;
  return Status::Ok();
}

Status ParseBool(Cursor* c, bool* out) {
  c->SkipSpace();
  if (c->text.compare(c->pos, 4, "true") == 0) {
    c->pos += 4;
    *out = true;
    return Status::Ok();
  }
  if (c->text.compare(c->pos, 5, "false") == 0) {
    c->pos += 5;
    *out = false;
    return Status::Ok();
  }
  return Status::InvalidArgument("expected true or false at position " +
                                 std::to_string(c->pos));
}

/// One decoded key/value; exactly one of the has_* flags is set.
struct Value {
  bool has_string = false;
  bool has_number = false;
  bool has_bool = false;
  std::string str;
  double num = 0.0;
  bool boolean = false;
};

Status ParseValue(Cursor* c, Value* out) {
  c->SkipSpace();
  if (c->pos >= c->text.size()) {
    return Status::InvalidArgument("missing value");
  }
  const char ch = c->text[c->pos];
  if (ch == '"') {
    out->has_string = true;
    return ParseString(c, &out->str);
  }
  if (ch == 't' || ch == 'f') {
    out->has_bool = true;
    return ParseBool(c, &out->boolean);
  }
  if (ch == '{' || ch == '[') {
    return Status::InvalidArgument("nested objects/arrays are not allowed");
  }
  out->has_number = true;
  return ParseNumber(c, &out->num);
}

Status WantString(const std::string& key, const Value& v, std::string* out) {
  if (!v.has_string) {
    return Status::InvalidArgument("\"" + key + "\" must be a string");
  }
  *out = v.str;
  return Status::Ok();
}

Status WantNumber(const std::string& key, const Value& v, double min,
                  double max, double* out) {
  if (!v.has_number) {
    return Status::InvalidArgument("\"" + key + "\" must be a number");
  }
  if (v.num < min || v.num > max) {
    return Status::InvalidArgument("\"" + key + "\" out of range");
  }
  *out = v.num;
  return Status::Ok();
}

Status WantInt(const std::string& key, const Value& v, int64_t min,
               int64_t* out) {
  double num = 0.0;
  Status st = WantNumber(key, v, static_cast<double>(min), 9.2e18, &num);
  if (!st.ok()) return st;
  int64_t integer = static_cast<int64_t>(num);
  if (static_cast<double>(integer) != num) {
    return Status::InvalidArgument("\"" + key + "\" must be an integer");
  }
  *out = integer;
  return Status::Ok();
}

Status WantBool(const std::string& key, const Value& v, bool* out) {
  if (!v.has_bool) {
    return Status::InvalidArgument("\"" + key + "\" must be true or false");
  }
  *out = v.boolean;
  return Status::Ok();
}

}  // namespace

Status ParseRunSpecJson(const std::string& line, RunSpec* spec) {
  *spec = RunSpec();
  // Governor threshold overrides, applied after the sweep (wired exactly
  // like bati_tune's --skip-threshold / --stop-threshold / --stop-window).
  bool early_stop = false;
  bool realloc_budget = false;
  double skip_threshold = -1.0;
  double stop_threshold = -1.0;
  int64_t stop_window = 0;

  Cursor c{line};
  if (!c.Consume('{')) {
    return Status::InvalidArgument("spec line must be a JSON object");
  }
  bool first = true;
  bool have_workload = false;
  while (!c.Consume('}')) {
    if (!first && !c.Consume(',')) {
      return Status::InvalidArgument("expected ',' or '}' at position " +
                                     std::to_string(c.pos));
    }
    first = false;
    std::string key;
    Status st = ParseString(&c, &key);
    if (!st.ok()) return st;
    if (!c.Consume(':')) {
      return Status::InvalidArgument("expected ':' after \"" + key + "\"");
    }
    Value value;
    st = ParseValue(&c, &value);
    if (!st.ok()) return st;

    int64_t integer = 0;
    double num = 0.0;
    if (key == "workload") {
      st = WantString(key, value, &spec->workload);
      have_workload = st.ok() && !spec->workload.empty();
      if (st.ok() && !have_workload) {
        st = Status::InvalidArgument("\"workload\" must be non-empty");
      }
    } else if (key == "algorithm") {
      st = WantString(key, value, &spec->algorithm);
    } else if (key == "budget") {
      st = WantInt(key, value, 0, &spec->budget);
    } else if (key == "k") {
      st = WantInt(key, value, 1, &integer);
      if (st.ok()) spec->max_indexes = static_cast<int>(integer);
    } else if (key == "storage_gb") {
      st = WantNumber(key, value, 0.0, 1e12, &num);
      if (st.ok()) spec->max_storage_bytes = num * 1e9;
    } else if (key == "seed") {
      st = WantInt(key, value, 0, &integer);
      if (st.ok()) spec->seed = static_cast<uint64_t>(integer);
    } else if (key == "early_stop") {
      st = WantBool(key, value, &early_stop);
    } else if (key == "realloc_budget") {
      st = WantBool(key, value, &realloc_budget);
    } else if (key == "skip_threshold") {
      st = WantNumber(key, value, 0.0, 1e12, &skip_threshold);
    } else if (key == "stop_threshold") {
      st = WantNumber(key, value, 0.0, 1e12, &stop_threshold);
    } else if (key == "stop_window") {
      st = WantInt(key, value, 1, &stop_window);
    } else if (key == "fault_rate") {
      st = WantNumber(key, value, 0.0, 1.0, &spec->faults.transient_rate);
    } else if (key == "fault_sticky") {
      st = WantNumber(key, value, 0.0, 1.0, &spec->faults.sticky_rate);
    } else if (key == "fault_spike") {
      st = WantNumber(key, value, 0.0, 1.0, &spec->faults.spike_rate);
    } else if (key == "fault_spike_factor") {
      st = WantNumber(key, value, 1.0, 1e12, &spec->faults.spike_factor);
    } else if (key == "fault_seed") {
      st = WantInt(key, value, 0, &integer);
      if (st.ok()) spec->faults.seed = static_cast<uint64_t>(integer);
    } else if (key == "retry_attempts") {
      st = WantInt(key, value, 1, &integer);
      if (st.ok()) spec->retry.max_attempts = static_cast<int>(integer);
    } else if (key == "retry_timeout") {
      st = WantNumber(key, value, 0.0, 1e12,
                      &spec->retry.call_timeout_seconds);
    } else if (key == "collect_metrics") {
      st = WantBool(key, value, &spec->collect_metrics);
    } else if (key == "checkpoint") {
      st = WantString(key, value, &spec->checkpoint_path);
    } else if (key == "resume") {
      st = WantString(key, value, &spec->resume_path);
    } else if (key == "trace_out") {
      st = WantString(key, value, &spec->trace_path);
    } else if (key == "signal") {
      st = WantString(key, value, &spec->deploy_signal);
      // The valid names mirror src/signal's ParseSignalKind — the session
      // layer sits below the signal layer and cannot call it, so the list
      // is spelled out here (cross-checked by a test).
      if (st.ok() && !spec->deploy_signal.empty() &&
          spec->deploy_signal != "whatif" &&
          spec->deploy_signal != "exec-deterministic" &&
          spec->deploy_signal != "measured") {
        st = Status::InvalidArgument("unknown signal \"" +
                                     spec->deploy_signal + "\"");
      }
    } else {
      st = Status::InvalidArgument("unknown key \"" + key + "\"");
    }
    if (!st.ok()) return st;
  }
  if (!c.AtEnd()) {
    return Status::InvalidArgument("trailing characters after object");
  }
  if (!have_workload) {
    return Status::InvalidArgument("\"workload\" is required");
  }
  if (spec->algorithm.empty()) {
    spec->algorithm = "mcts";  // bati_tune's default; never leave a spec
                               // that would CHECK-fail inside MakeTuner
  } else if (!IsKnownAlgorithm(spec->algorithm)) {
    return Status::InvalidArgument("unknown algorithm \"" +
                                   spec->algorithm + "\"");
  }
  spec->faults.enabled = spec->faults.transient_rate > 0.0 ||
                         spec->faults.sticky_rate > 0.0 ||
                         spec->faults.spike_rate > 0.0;
  if (early_stop || realloc_budget) {
    spec->governor.enabled = true;
    spec->governor.early_stop = early_stop;
    spec->governor.skip_what_if = realloc_budget;
    if (skip_threshold >= 0.0) {
      spec->governor.realloc.skip_rel_threshold = skip_threshold;
    }
    if (stop_threshold >= 0.0) {
      spec->governor.stop.abs_threshold_pct = stop_threshold;
    }
    if (stop_window > 0) spec->governor.stop.window_calls = stop_window;
  }
  return Status::Ok();
}

Status ParseRunSpecJsonLine(const std::string& line, int lineno,
                            RunSpec* spec) {
  Status st = ParseRunSpecJson(line, spec);
  if (st.ok()) return st;
  return Status::InvalidArgument("line " + std::to_string(lineno) + ": " +
                                 st.message());
}

namespace {

void AppendKey(std::string* out, const char* key) {
  if ((*out)[out->size() - 1] != '{') out->push_back(',');
  out->append("\"");
  out->append(key);
  out->append("\":");
}

void AppendString(std::string* out, const char* key, const std::string& v) {
  AppendKey(out, key);
  out->push_back('"');
  for (char c : v) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendInt(std::string* out, const char* key, int64_t v) {
  AppendKey(out, key);
  out->append(std::to_string(v));
}

void AppendDouble(std::string* out, const char* key, double v) {
  AppendKey(out, key);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendBool(std::string* out, const char* key, bool v) {
  AppendKey(out, key);
  out->append(v ? "true" : "false");
}

}  // namespace

std::string RunSpecToJson(const RunSpec& spec) {
  const RunSpec def;  // emit only what differs from a default spec
  std::string out = "{";
  AppendString(&out, "workload", spec.workload);
  if (!spec.algorithm.empty()) {
    AppendString(&out, "algorithm", spec.algorithm);
  }
  if (spec.budget != def.budget) AppendInt(&out, "budget", spec.budget);
  if (spec.max_indexes != def.max_indexes) {
    AppendInt(&out, "k", spec.max_indexes);
  }
  if (spec.max_storage_bytes != def.max_storage_bytes) {
    AppendDouble(&out, "storage_gb", spec.max_storage_bytes / 1e9);
  }
  if (spec.seed != def.seed) {
    AppendInt(&out, "seed", static_cast<int64_t>(spec.seed));
  }
  if (spec.governor.enabled) {
    if (spec.governor.early_stop) AppendBool(&out, "early_stop", true);
    if (spec.governor.skip_what_if) AppendBool(&out, "realloc_budget", true);
    AppendDouble(&out, "skip_threshold",
                 spec.governor.realloc.skip_rel_threshold);
    AppendDouble(&out, "stop_threshold",
                 spec.governor.stop.abs_threshold_pct);
    if (spec.governor.stop.window_calls >= 1) {
      AppendInt(&out, "stop_window", spec.governor.stop.window_calls);
    }
  }
  if (spec.faults.transient_rate != def.faults.transient_rate) {
    AppendDouble(&out, "fault_rate", spec.faults.transient_rate);
  }
  if (spec.faults.sticky_rate != def.faults.sticky_rate) {
    AppendDouble(&out, "fault_sticky", spec.faults.sticky_rate);
  }
  if (spec.faults.spike_rate != def.faults.spike_rate) {
    AppendDouble(&out, "fault_spike", spec.faults.spike_rate);
  }
  if (spec.faults.spike_factor != def.faults.spike_factor) {
    AppendDouble(&out, "fault_spike_factor", spec.faults.spike_factor);
  }
  if (spec.faults.seed != def.faults.seed) {
    AppendInt(&out, "fault_seed", static_cast<int64_t>(spec.faults.seed));
  }
  if (spec.retry.max_attempts != def.retry.max_attempts) {
    AppendInt(&out, "retry_attempts", spec.retry.max_attempts);
  }
  if (spec.retry.call_timeout_seconds != def.retry.call_timeout_seconds) {
    AppendDouble(&out, "retry_timeout", spec.retry.call_timeout_seconds);
  }
  if (spec.collect_metrics) AppendBool(&out, "collect_metrics", true);
  if (!spec.checkpoint_path.empty()) {
    AppendString(&out, "checkpoint", spec.checkpoint_path);
  }
  if (!spec.resume_path.empty()) {
    AppendString(&out, "resume", spec.resume_path);
  }
  if (!spec.trace_path.empty()) {
    AppendString(&out, "trace_out", spec.trace_path);
  }
  if (!spec.deploy_signal.empty()) {
    AppendString(&out, "signal", spec.deploy_signal);
  }
  out.push_back('}');
  return out;
}

}  // namespace bati
