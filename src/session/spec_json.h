#ifndef BATI_SESSION_SPEC_JSON_H_
#define BATI_SESSION_SPEC_JSON_H_

#include <string>

#include "common/status.h"
#include "session/tuning_session.h"

namespace bati {

/// Parses one flat JSON object into a RunSpec — the line format of
/// `bati_batch --specs FILE` (one spec per line, JSONL). Example:
///
///   {"workload":"tpch","algorithm":"mcts","budget":2000,"k":10,"seed":3,
///    "early_stop":true,"fault_rate":0.05}
///
/// Recognized keys (all optional except "workload"):
///   workload, algorithm     strings; same names as bati_tune
///   budget                  integer >= 0
///   k                       integer >= 1 (max indexes)
///   storage_gb              number >= 0; 0 disables the constraint
///   seed, fault_seed        non-negative integers
///   early_stop, realloc_budget, collect_metrics   booleans
///   skip_threshold, stop_threshold                numbers >= 0
///   stop_window             integer >= 1
///   fault_rate, fault_sticky, fault_spike         rates in [0, 1]
///   fault_spike_factor      number >= 1
///   retry_attempts          integer >= 1
///   retry_timeout           number >= 0 (simulated seconds; 0 disables)
///   checkpoint, resume, trace_out                 path strings
///   signal                  "whatif" | "exec-deterministic" | "measured"
///
/// Validation is strict, mirroring the CLI tools: an unknown key, a
/// malformed value, an out-of-range value, or an unknown algorithm name is
/// an InvalidArgument error, never a silent default (and never a crash deep
/// inside MakeTuner). On success `*spec` is a freshly defaulted RunSpec
/// with the line's fields applied — governor/fault plumbing wired exactly
/// as bati_tune wires the equivalent flags, and "algorithm" defaulted to
/// "mcts" (the paper's setting, bati_tune's default) when absent.
Status ParseRunSpecJson(const std::string& line, RunSpec* spec);

/// As ParseRunSpecJson, but errors are prefixed with "line N: " so a
/// multi-line consumer (bati_batch, bati_serve) reports the offending
/// input line without every caller re-implementing the bookkeeping.
Status ParseRunSpecJsonLine(const std::string& line, int lineno,
                            RunSpec* spec);

/// Serializes a spec back to the flat JSON object ParseRunSpecJson
/// accepts, emitting only fields that differ from a default RunSpec (plus
/// the mandatory "workload"). Round-trips: parsing the output reproduces
/// the spec. Doubles are printed with enough digits to round-trip
/// bit-exactly, which makes the string usable as a deterministic identity
/// (the serve checkpoint stores tenant templates this way).
std::string RunSpecToJson(const RunSpec& spec);

}  // namespace bati

#endif  // BATI_SESSION_SPEC_JSON_H_
