#ifndef BATI_SESSION_SPEC_JSON_H_
#define BATI_SESSION_SPEC_JSON_H_

#include <string>

#include "common/status.h"
#include "session/tuning_session.h"

namespace bati {

/// Parses one flat JSON object into a RunSpec — the line format of
/// `bati_batch --specs FILE` (one spec per line, JSONL). Example:
///
///   {"workload":"tpch","algorithm":"mcts","budget":2000,"k":10,"seed":3,
///    "early_stop":true,"fault_rate":0.05}
///
/// Recognized keys (all optional except "workload"):
///   workload, algorithm     strings; same names as bati_tune
///   budget                  integer >= 0
///   k                       integer >= 1 (max indexes)
///   storage_gb              number >= 0; 0 disables the constraint
///   seed, fault_seed        non-negative integers
///   early_stop, realloc_budget, collect_metrics   booleans
///   skip_threshold, stop_threshold                numbers >= 0
///   stop_window             integer >= 1
///   fault_rate, fault_sticky, fault_spike         rates in [0, 1]
///   fault_spike_factor      number >= 1
///   retry_attempts          integer >= 1
///   retry_timeout           number >= 0 (simulated seconds; 0 disables)
///   checkpoint, resume, trace_out                 path strings
///
/// Validation is strict, mirroring the CLI tools: an unknown key, a
/// malformed value, or an out-of-range value is an InvalidArgument error,
/// never a silent default. On success `*spec` is a freshly defaulted
/// RunSpec with the line's fields applied — governor/fault plumbing wired
/// exactly as bati_tune wires the equivalent flags.
Status ParseRunSpecJson(const std::string& line, RunSpec* spec);

}  // namespace bati

#endif  // BATI_SESSION_SPEC_JSON_H_
