#ifndef BATI_SESSION_BUNDLE_REGISTRY_H_
#define BATI_SESSION_BUNDLE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "optimizer/what_if.h"
#include "tuner/candidate_gen.h"
#include "workload/generators.h"

namespace bati {

/// A workload plus everything derived from it that is shared across runs:
/// the simulated what-if optimizer and the candidate-index universe. A
/// bundle is immutable after construction — the optimizer is pure and the
/// workload/candidate vectors are never mutated — so any number of
/// concurrent tuning sessions may share one bundle with no synchronization.
struct WorkloadBundle {
  Workload workload;
  std::shared_ptr<WhatIfOptimizer> optimizer;
  CandidateSet candidates;
};

/// Process-wide, thread-safe cache of named workload bundles ("tpch",
/// "tpcds", "job", "real-d", "real-d-bench", "real-m", "toy").
///
/// Replaces the unsynchronized `static` map the harness's LoadBundle()
/// used to hold: lookups from any number of threads are safe, each named
/// bundle is built exactly once (std::call_once per name), and two
/// different workloads can be built concurrently — only the name -> entry
/// map itself is guarded by a mutex, never the (expensive) build.
class BundleRegistry {
 public:
  /// The process-wide registry used by LoadBundle(), the SessionManager,
  /// and the CLI tools.
  static BundleRegistry& Global();

  BundleRegistry() = default;
  BundleRegistry(const BundleRegistry&) = delete;
  BundleRegistry& operator=(const BundleRegistry&) = delete;

  /// Returns the bundle for a named built-in workload, building it on
  /// first use. Returns nullptr for an unknown name (also cached, so a
  /// misspelled name is cheap to probe twice). The returned pointer is
  /// stable for the registry's lifetime.
  const WorkloadBundle* TryGet(const std::string& name);

  /// As TryGet(), but an unknown name is a programmer error (CHECK).
  const WorkloadBundle& Get(const std::string& name);

  /// Registers (or replaces) a dynamically built bundle under `name`,
  /// returning its stable address. Dynamic names shadow built-in ones in
  /// TryGet()/Get(). Replaced bundles are retired, not destroyed — their
  /// pointers stay valid for the registry's lifetime, so sessions still
  /// running over a superseded bundle are unaffected. This is how the
  /// serve daemon routes live-window sub-workloads through the
  /// SessionManager, which resolves specs by name.
  const WorkloadBundle* RegisterDynamic(
      const std::string& name, std::unique_ptr<WorkloadBundle> bundle);

  /// Number of names probed so far (built or found unknown).
  size_t size() const;

 private:
  /// One named slot. The once_flag serializes construction per name;
  /// `bundle` stays null for unknown names.
  struct Entry {
    std::once_flag once;
    std::unique_ptr<WorkloadBundle> bundle;
  };

  /// Finds or inserts the entry for `name` under mu_. The returned
  /// reference is stable: entries are held by unique_ptr and never erased.
  Entry& GetEntry(const std::string& name);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  /// Dynamically registered bundles, newest generation last. Superseded
  /// generations are retained so pointers handed out stay valid.
  std::map<std::string, std::vector<std::unique_ptr<WorkloadBundle>>>
      dynamic_;
};

/// Builds (and caches process-wide) a bundle for a named workload. Thin
/// wrapper over BundleRegistry::Global(); unknown names CHECK-fail, as
/// they always have here (tools wanting a clean error use TryGet()).
const WorkloadBundle& LoadBundle(const std::string& name);

}  // namespace bati

#endif  // BATI_SESSION_BUNDLE_REGISTRY_H_
