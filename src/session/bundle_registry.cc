#include "session/bundle_registry.h"

#include "common/macros.h"

namespace bati {

BundleRegistry& BundleRegistry::Global() {
  static BundleRegistry* registry = new BundleRegistry();
  return *registry;
}

BundleRegistry::Entry& BundleRegistry::GetEntry(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Entry>& slot = entries_[name];
  if (slot == nullptr) slot = std::make_unique<Entry>();
  return *slot;
}

const WorkloadBundle* BundleRegistry::TryGet(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = dynamic_.find(name);
    if (it != dynamic_.end()) return it->second.back().get();
  }
  Entry& entry = GetEntry(name);
  std::call_once(entry.once, [&entry, &name] {
    Workload workload = MakeWorkloadByName(name);
    if (workload.database == nullptr) return;  // unknown name; stays null
    auto bundle = std::make_unique<WorkloadBundle>();
    bundle->workload = std::move(workload);
    bundle->optimizer =
        std::make_shared<WhatIfOptimizer>(bundle->workload.database);
    bundle->candidates = GenerateCandidates(bundle->workload);
    entry.bundle = std::move(bundle);
  });
  return entry.bundle.get();
}

const WorkloadBundle& BundleRegistry::Get(const std::string& name) {
  const WorkloadBundle* bundle = TryGet(name);
  BATI_CHECK(bundle != nullptr && "unknown workload name");
  return *bundle;
}

const WorkloadBundle* BundleRegistry::RegisterDynamic(
    const std::string& name, std::unique_ptr<WorkloadBundle> bundle) {
  BATI_CHECK(bundle != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::unique_ptr<WorkloadBundle>>& generations = dynamic_[name];
  generations.push_back(std::move(bundle));
  return generations.back().get();
}

size_t BundleRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

const WorkloadBundle& LoadBundle(const std::string& name) {
  return BundleRegistry::Global().Get(name);
}

}  // namespace bati
