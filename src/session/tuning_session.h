#ifndef BATI_SESSION_TUNING_SESSION_H_
#define BATI_SESSION_TUNING_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "budget/governor.h"
#include "faults/fault_injector.h"
#include "obs/metrics.h"
#include "session/bundle_registry.h"
#include "tuner/tuner.h"
#include "whatif/cost_engine_stats.h"
#include "whatif/whatif_executor.h"

namespace bati {

/// Creates a tuner by algorithm name. Recognized names:
///   "vanilla-greedy" | "two-phase-greedy" | "autoadmin-greedy" |
///   "dba-bandits" | "no-dba" | "dta" | "mcts" (paper default setting) |
///   "mcts-{uct,prior}-{bce,bg}-{fix0,fix1,rnd}" (ablation variants).
std::unique_ptr<Tuner> MakeTuner(const std::string& algorithm,
                                 TuningContext ctx, uint64_t seed);

/// True when `algorithm` names a tuner MakeTuner can build. Validating
/// early (spec parsing, serve admission) turns what would be a CHECK-crash
/// deep inside a session into a clean InvalidArgument at the input
/// boundary.
bool IsKnownAlgorithm(const std::string& algorithm);

/// One tuning run's specification.
struct RunSpec {
  std::string workload;
  std::string algorithm;
  int64_t budget = 1000;
  int max_indexes = 10;
  double max_storage_bytes = 0.0;
  uint64_t seed = 1;
  /// Budget-governor configuration (src/budget/); disabled by default, in
  /// which case the run is bit-identical to the pre-governor harness.
  BudgetGovernorOptions governor;
  /// Injected what-if fault model (src/faults/); off by default, in which
  /// case the run is bit-identical to the fault-free harness.
  FaultOptions faults;
  /// Retry/backoff policy around faulted what-if calls.
  RetryPolicy retry;
  /// When non-empty, the engine writes a crash-consistent checkpoint here
  /// at every round boundary.
  std::string checkpoint_path;
  /// When non-empty, the run resumes from this checkpoint file (the tuner
  /// replays deterministically from its seed; the engine answers the
  /// journaled prefix instead of re-invoking the optimizer). A checkpoint
  /// that fails validation — truncated, garbled (checksum mismatch), or
  /// written by a different run identity — is rejected with a loud stderr
  /// line and the run falls back to a fresh start; since replay converges
  /// on the identical result, the fallback only costs budget re-spend,
  /// never correctness.
  std::string resume_path;
  /// When true, the run records engine metrics (histograms, counters) and
  /// the outcome carries a MetricsSnapshot. Off by default: an unobserved
  /// run is bit-identical to the pre-observability harness.
  bool collect_metrics = false;
  /// When non-empty, the run records a structured trace and writes it here
  /// as Chrome trace_event JSON (Perfetto-loadable).
  std::string trace_path;
  /// Trace ring-buffer capacity in events; 0 means Tracer::kDefaultCapacity.
  /// Setting this non-zero enables tracing even without a trace_path (the
  /// trace is then only reachable programmatically).
  size_t trace_buffer = 0;
  /// Deployment-signal preference for serve-side lifecycle decisions:
  /// "" (daemon default) | "whatif" | "exec-deterministic" | "measured".
  /// The tuning session itself ignores it — it rides the spec so a serve
  /// tenant's registration can carry the preference through checkpoints.
  /// Kept out of RunIdentity: the signal judges deployment, not tuning.
  std::string deploy_signal;
};

/// The canonical identity string for a spec — everything that must match
/// for a checkpoint to be resumable: workload, algorithm, constraints,
/// seed, governor switches, fault model, and retry policy.
std::string RunIdentity(const RunSpec& spec);

/// One tuning run's measured outcome.
struct RunOutcome {
  /// eta(W, C) with ground-truth what-if costs (how the paper reports
  /// improvements), percent.
  double true_improvement = 0.0;
  /// eta(W, C) with derived costs at the end of the run, percent.
  double derived_improvement = 0.0;
  int64_t calls_used = 0;
  size_t config_size = 0;
  /// The recommended configuration as candidate positions, ascending —
  /// the same universe the bundle's CandidateSet defines. Lets callers
  /// (the serve lifecycle manager, diff tooling) act on the configuration
  /// itself rather than just its size.
  std::vector<size_t> config_positions;
  /// Simulated seconds spent in what-if calls (Figure 2's orange bars).
  double whatif_seconds = 0.0;
  /// Simulated seconds spent elsewhere in tuning (Figure 2's blue bars).
  double other_seconds = 0.0;
  /// Best-so-far improvement after each episode/round, if the algorithm
  /// exposes one (greedy family, MCTS, DBA-bandits, No-DBA). When present,
  /// the last point equals `derived_improvement`.
  std::vector<double> trace;
  /// Cost-engine observability counters for the run (cache hits, derived
  /// and delta lookups, posting-list pruning, batched cells, wall time).
  CostEngineStats engine;
  /// Governor decisions, mirrored from `engine` for convenience: what-if
  /// calls skipped with the saving banked or reallocated, and where early
  /// stopping fired (-1 = never). All zero / -1 on ungoverned runs.
  int64_t governor_skipped = 0;
  int64_t governor_banked = 0;
  int64_t governor_reallocated = 0;
  int governor_stop_round = -1;
  /// Cells answered with the derived cost after exhausting their retries,
  /// mirrored from `engine`. Zero when fault injection is off.
  int64_t degraded_cells = 0;
  /// Metrics snapshot of the run; populated iff spec.collect_metrics.
  bool has_metrics = false;
  MetricsSnapshot metrics;
  /// Events retained/dropped by the trace ring; meaningful only when the
  /// spec enabled tracing.
  size_t trace_events = 0;
  uint64_t trace_dropped = 0;
};

/// Session-level switches that are not part of the run's identity: they
/// only control which artifacts the session keeps after the cost service
/// is torn down. All off by default.
struct SessionOptions {
  /// Capture ResultToJson() of the finished run (the exact JSON line
  /// bati_tune --json prints) into TuningSession::result_json().
  bool capture_result_json = false;
  /// Capture the canonical form of the result line: wall-clock noise
  /// (engine_stats.executor_wall_seconds) is zeroed, so the line is a pure
  /// function of the spec — the form the fleet byte-compares across crashed
  /// and resumed attempts (`bati_batch --canonical`, always-on in
  /// `bati_fleet`).
  bool canonical_result_json = false;
  /// Capture LayoutToCsv() of the finished run (the full what-if call
  /// trace) into TuningSession::layout_csv().
  bool capture_layout_csv = false;
};

/// One tuning run as a first-class object: a TuningSession owns every
/// piece of per-run mutable state — the CostService (with governor, fault,
/// retry, and checkpoint options from the spec), the per-session
/// MetricsRegistry and Tracer, and the tuner with its spec-seeded RNG —
/// while sharing the immutable WorkloadBundle (workload, candidate
/// universe, and the pure WhatIfOptimizer) with any number of concurrent
/// sessions.
///
/// Invariant: a session executed alone is bit-identical to the classic
/// RunOnce() path (which is now a thin wrapper over this class) — same
/// layout CSV bytes, same progress trace, same stats. Concurrent sessions
/// preserve this per-session because no mutable state is shared.
class TuningSession {
 public:
  /// `bundle` must outlive the session.
  TuningSession(const WorkloadBundle& bundle, RunSpec spec,
                SessionOptions options = SessionOptions());

  TuningSession(const TuningSession&) = delete;
  TuningSession& operator=(const TuningSession&) = delete;

  /// Executes the run to completion. Must be called at most once.
  const RunOutcome& Run();

  const RunSpec& spec() const { return spec_; }

  /// The finished run's outcome; valid after Run().
  const RunOutcome& outcome() const { return outcome_; }

  /// Captured artifacts (empty unless the matching SessionOptions switch
  /// was set and Run() completed).
  const std::string& result_json() const { return result_json_; }
  const std::string& layout_csv() const { return layout_csv_; }

 private:
  const WorkloadBundle* bundle_;
  RunSpec spec_;
  SessionOptions options_;
  bool ran_ = false;
  RunOutcome outcome_;
  std::string result_json_;
  std::string layout_csv_;
};

/// Executes one tuning run against a bundle: constructs a TuningSession,
/// runs it, and returns the outcome.
RunOutcome RunOnce(const WorkloadBundle& bundle, const RunSpec& spec);

}  // namespace bati

#endif  // BATI_SESSION_TUNING_SESSION_H_
