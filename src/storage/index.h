#ifndef BATI_STORAGE_INDEX_H_
#define BATI_STORAGE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/stats_view.h"

namespace bati {

/// A (hypothetical) covering B+-tree index: ordered key columns plus
/// non-key "include" payload columns, as in the paper's Figure 3 where key
/// columns are underscored and the rest are payload. Indexes are never
/// materialized in this simulation — the what-if optimizer costs them from
/// statistics alone, which is exactly what a real what-if API does.
struct Index {
  int table_id = -1;
  /// Ordinal column ids within the table, in key order (order matters).
  std::vector<int> key_columns;
  /// Ordinal column ids of included payload columns (order irrelevant;
  /// kept sorted for canonical equality).
  std::vector<int> include_columns;

  /// Canonicalizes: dedupes includes, removes includes that are also keys,
  /// sorts includes. Call after construction.
  void Canonicalize();

  bool operator==(const Index& other) const {
    return table_id == other.table_id && key_columns == other.key_columns &&
           include_columns == other.include_columns;
  }

  /// Stable content hash for dedupe containers.
  uint64_t Hash() const;

  /// Display name, e.g. "ix_lineitem__l_shipdate_l_partkey__inc2".
  std::string Name(const Database& db) const;

  /// Bytes per leaf row: widths of key + include columns plus row overhead.
  double LeafRowBytes(const Database& db) const;

  /// As above, reading widths through a StatsView (the what-if hot path's
  /// structure-of-arrays catalog snapshot). Bit-identical to the Database
  /// overload: same overhead constant, same accumulation order.
  double LeafRowBytes(const StatsView& stats) const;

  /// Estimated size in bytes (leaf level dominates).
  double SizeBytes(const Database& db) const;

  /// True if key ∪ include covers every column id in `required`
  /// (ids are ordinals within this index's table).
  bool Covers(const std::vector<int>& required) const;
};

struct IndexHash {
  size_t operator()(const Index& ix) const {
    return static_cast<size_t>(ix.Hash());
  }
};

/// Total estimated size of a set of indexes.
double TotalIndexSizeBytes(const Database& db, const std::vector<Index>& ixs);

}  // namespace bati

#endif  // BATI_STORAGE_INDEX_H_
