#include "storage/index.h"

#include <algorithm>
#include <cstdio>

namespace bati {

namespace {
/// Per-leaf-row bookkeeping overhead (row header + row locator), bytes.
constexpr double kLeafRowOverheadBytes = 10.0;
/// Non-leaf levels and fragmentation markup over the leaf level.
constexpr double kTreeOverheadFactor = 1.05;
}  // namespace

void Index::Canonicalize() {
  std::sort(include_columns.begin(), include_columns.end());
  include_columns.erase(
      std::unique(include_columns.begin(), include_columns.end()),
      include_columns.end());
  // Drop includes already present as keys.
  include_columns.erase(
      std::remove_if(include_columns.begin(), include_columns.end(),
                     [&](int c) {
                       return std::find(key_columns.begin(),
                                        key_columns.end(),
                                        c) != key_columns.end();
                     }),
      include_columns.end());
}

uint64_t Index::Hash() const {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  mix(static_cast<uint64_t>(table_id));
  mix(0x5EEDULL);
  for (int c : key_columns) mix(static_cast<uint64_t>(c) + 1);
  mix(0xFACEULL);
  for (int c : include_columns) mix(static_cast<uint64_t>(c) + 1);
  return h;
}

std::string Index::Name(const Database& db) const {
  const Table& t = db.table(table_id);
  std::string name = "ix_" + t.name() + "_";
  for (int c : key_columns) name += "_" + t.column(c).name;
  if (!include_columns.empty()) {
    // Distinguish indexes that differ only in their include sets.
    uint64_t h = 0xCBF29CE484222325ULL;
    for (int c : include_columns) {
      h ^= static_cast<uint64_t>(c) + 1;
      h *= 0x100000001B3ULL;
    }
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "%03x",
                  static_cast<unsigned>(h & 0xFFF));
    name += "__inc" + std::to_string(include_columns.size()) + "_" + suffix;
  }
  return name;
}

double Index::LeafRowBytes(const Database& db) const {
  const Table& t = db.table(table_id);
  double bytes = kLeafRowOverheadBytes;
  for (int c : key_columns) bytes += t.column(c).WidthBytes();
  for (int c : include_columns) bytes += t.column(c).WidthBytes();
  return bytes;
}

double Index::LeafRowBytes(const StatsView& stats) const {
  double bytes = kLeafRowOverheadBytes;
  for (int c : key_columns) bytes += stats.column_width_bytes(table_id, c);
  for (int c : include_columns) {
    bytes += stats.column_width_bytes(table_id, c);
  }
  return bytes;
}

double Index::SizeBytes(const Database& db) const {
  const Table& t = db.table(table_id);
  return t.row_count() * LeafRowBytes(db) * kTreeOverheadFactor;
}

bool Index::Covers(const std::vector<int>& required) const {
  for (int c : required) {
    bool found =
        std::find(key_columns.begin(), key_columns.end(), c) !=
            key_columns.end() ||
        std::find(include_columns.begin(), include_columns.end(), c) !=
            include_columns.end();
    if (!found) return false;
  }
  return true;
}

double TotalIndexSizeBytes(const Database& db, const std::vector<Index>& ixs) {
  double total = 0.0;
  for (const Index& ix : ixs) total += ix.SizeBytes(db);
  return total;
}

}  // namespace bati
