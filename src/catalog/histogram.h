#ifndef BATI_CATALOG_HISTOGRAM_H_
#define BATI_CATALOG_HISTOGRAM_H_

#include <vector>

#include "common/status.h"

namespace bati {

/// Equi-height-style histogram over a column's value domain: `bounds` has
/// B+1 ascending edges and `fractions` has B bucket row-fractions summing to
/// ~1. Real optimizers estimate selectivities from histograms rather than
/// uniform domains; attaching one to a ColumnStats refines the simulated
/// what-if optimizer's cardinality model (skew-aware selectivity), which in
/// turn changes which index configurations look good — a knob for studying
/// tuner sensitivity to estimation quality.
class Histogram {
 public:
  Histogram() = default;

  /// Builds from explicit bucket edges and per-bucket fractions.
  /// Requires ascending bounds, fractions.size()+1 == bounds.size(), and
  /// non-negative fractions (they are normalized to sum to 1).
  static StatusOr<Histogram> Make(std::vector<double> bounds,
                                  std::vector<double> fractions);

  /// Uniform histogram over [min, max] with `buckets` buckets.
  static Histogram Uniform(double min_value, double max_value, int buckets);

  /// Zipf-skewed histogram over [min, max]: earlier buckets hold a
  /// 1/rank^exponent share of the rows (heavier head for larger exponents).
  static Histogram Zipf(double min_value, double max_value, int buckets,
                        double exponent);

  bool empty() const { return fractions_.empty(); }
  int num_buckets() const { return static_cast<int>(fractions_.size()); }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<double>& fractions() const { return fractions_; }

  double min_value() const { return bounds_.empty() ? 0.0 : bounds_.front(); }
  double max_value() const { return bounds_.empty() ? 0.0 : bounds_.back(); }

  /// Fraction of rows with value < v (linear interpolation within buckets).
  double CumulativeBelow(double v) const;

  /// Fraction of rows in [lo, hi]; 0 for empty/inverted ranges outside the
  /// domain.
  double RangeFraction(double lo, double hi) const;

  /// Selectivity of an equality predicate at v, assuming `ndv` distinct
  /// values spread across buckets proportionally to bucket width: the
  /// bucket's row fraction divided by the distinct values it holds.
  double EqualityFraction(double v, double ndv) const;

 private:
  std::vector<double> bounds_;
  std::vector<double> fractions_;
  /// Cumulative fractions; cumulative_[i] = sum of fractions_[0..i-1].
  std::vector<double> cumulative_;

  void BuildCumulative();
};

}  // namespace bati

#endif  // BATI_CATALOG_HISTOGRAM_H_
