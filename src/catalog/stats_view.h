#ifndef BATI_CATALOG_STATS_VIEW_H_
#define BATI_CATALOG_STATS_VIEW_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"

namespace bati {

/// Structure-of-arrays snapshot of the statistics the what-if cost model
/// reads on its hot path. The Table/Column object graph is convenient for
/// construction and tooling, but costing a Real-D-scale query (thousands of
/// tables, ~16 scans per query) through it chases a pointer per statistic.
/// A StatsView flattens everything the optimizer consumes into contiguous
/// arrays — per-table row counts and row widths, per-column NDVs and byte
/// widths behind a table-offset prefix array, and histogram bucket offsets —
/// built once per database and shared read-only by every what-if call.
///
/// Every stored value is copied bit-for-bit from the catalog (row widths are
/// computed by the same Table::RowWidthBytes() the object graph serves), so
/// reads through the view are bit-identical to reads through the graph.
class StatsView {
 public:
  /// An empty view over no tables.
  StatsView() = default;

  /// Snapshots `db`. The view is self-contained: it does not retain a
  /// reference to the database and never goes stale unless table/column
  /// statistics are mutated after construction.
  explicit StatsView(const Database& db);

  int num_tables() const { return static_cast<int>(table_rows_.size()); }

  /// Raw row count of table `t` (exactly Table::row_count()).
  double table_rows(int t) const {
    return table_rows_[static_cast<size_t>(t)];
  }

  /// Bytes per row of table `t` (exactly Table::RowWidthBytes()).
  double table_row_width_bytes(int t) const {
    return table_width_[static_cast<size_t>(t)];
  }

  int num_columns(int t) const {
    return static_cast<int>(col_offset_[static_cast<size_t>(t) + 1] -
                            col_offset_[static_cast<size_t>(t)]);
  }

  /// NDV of column `c` of table `t` (exactly ColumnStats::ndv).
  double column_ndv(int t, int c) const {
    return col_ndv_[static_cast<size_t>(col_offset_[static_cast<size_t>(t)]) +
                    static_cast<size_t>(c)];
  }

  /// Byte width of column `c` of table `t` (exactly Column::WidthBytes()).
  int column_width_bytes(int t, int c) const {
    return col_width_[static_cast<size_t>(
                          col_offset_[static_cast<size_t>(t)]) +
                      static_cast<size_t>(c)];
  }

  /// Histogram bucket count of column `c` of table `t` (0 when the column
  /// has no histogram and selectivity falls back to the uniform-domain
  /// assumption). Offsets, not payloads: the hot path only needs presence.
  int histogram_buckets(int t, int c) const {
    const size_t i = static_cast<size_t>(col_offset_[static_cast<size_t>(t)]) +
                     static_cast<size_t>(c);
    return static_cast<int>(hist_offset_[i + 1] - hist_offset_[i]);
  }

  /// Columns across all tables (size of the flattened per-column arrays).
  int64_t total_columns() const {
    return static_cast<int64_t>(col_ndv_.size());
  }

 private:
  std::vector<double> table_rows_;
  std::vector<double> table_width_;
  /// Prefix offsets into the per-column arrays; size num_tables() + 1.
  std::vector<int64_t> col_offset_;
  std::vector<double> col_ndv_;
  std::vector<int32_t> col_width_;
  /// Prefix offsets of histogram buckets per flattened column; size
  /// total_columns() + 1.
  std::vector<int64_t> hist_offset_;
};

}  // namespace bati

#endif  // BATI_CATALOG_STATS_VIEW_H_
