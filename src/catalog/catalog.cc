#include "catalog/catalog.h"

#include <algorithm>

namespace bati {

int ColumnWidthBytes(ColumnType type, int declared_length) {
  switch (type) {
    case ColumnType::kInt:
      return 4;
    case ColumnType::kBigInt:
      return 8;
    case ColumnType::kDouble:
      return 8;
    case ColumnType::kDecimal:
      return 8;
    case ColumnType::kDate:
      return 4;
    case ColumnType::kString:
      return std::max(1, declared_length);
  }
  return 8;
}

int Table::AddColumn(Column column) {
  columns_.push_back(std::move(column));
  return static_cast<int>(columns_.size()) - 1;
}

int Table::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

double Table::RowWidthBytes() const {
  double width = 0.0;
  for (const Column& c : columns_) width += c.WidthBytes();
  return width;
}

StatusOr<int> Database::AddTable(Table table) {
  if (FindTable(table.name()) >= 0) {
    return Status::InvalidArgument("duplicate table name: " + table.name());
  }
  tables_.push_back(std::move(table));
  return static_cast<int>(tables_.size()) - 1;
}

int Database::FindTable(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<ColumnRef> Database::ResolveColumn(
    const std::string& table_name, const std::string& column_name) const {
  int tid = FindTable(table_name);
  if (tid < 0) return Status::NotFound("table not found: " + table_name);
  int cid = table(tid).FindColumn(column_name);
  if (cid < 0) {
    return Status::NotFound("column not found: " + table_name + "." +
                            column_name);
  }
  return ColumnRef{tid, cid};
}

double Database::TotalSizeBytes() const {
  double total = 0.0;
  for (const Table& t : tables_) total += t.SizeBytes();
  return total;
}

}  // namespace bati
