#include "catalog/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace bati {

StatusOr<Histogram> Histogram::Make(std::vector<double> bounds,
                                    std::vector<double> fractions) {
  if (bounds.size() < 2 || fractions.size() + 1 != bounds.size()) {
    return Status::InvalidArgument(
        "histogram needs >= 2 bounds and |fractions| == |bounds| - 1");
  }
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i] > bounds[i - 1])) {
      return Status::InvalidArgument("histogram bounds must be ascending");
    }
  }
  double total = 0.0;
  for (double f : fractions) {
    if (f < 0.0) {
      return Status::InvalidArgument("histogram fractions must be >= 0");
    }
    total += f;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("histogram fractions sum to zero");
  }
  for (double& f : fractions) f /= total;
  Histogram h;
  h.bounds_ = std::move(bounds);
  h.fractions_ = std::move(fractions);
  h.BuildCumulative();
  return h;
}

Histogram Histogram::Uniform(double min_value, double max_value,
                             int buckets) {
  BATI_CHECK(buckets >= 1 && max_value > min_value);
  std::vector<double> bounds(static_cast<size_t>(buckets) + 1);
  for (int i = 0; i <= buckets; ++i) {
    bounds[static_cast<size_t>(i)] =
        min_value + (max_value - min_value) * i / buckets;
  }
  std::vector<double> fractions(static_cast<size_t>(buckets),
                                1.0 / buckets);
  auto h = Make(std::move(bounds), std::move(fractions));
  BATI_CHECK(h.ok());
  return std::move(h.value());
}

Histogram Histogram::Zipf(double min_value, double max_value, int buckets,
                          double exponent) {
  BATI_CHECK(buckets >= 1 && max_value > min_value);
  std::vector<double> bounds(static_cast<size_t>(buckets) + 1);
  for (int i = 0; i <= buckets; ++i) {
    bounds[static_cast<size_t>(i)] =
        min_value + (max_value - min_value) * i / buckets;
  }
  std::vector<double> fractions(static_cast<size_t>(buckets));
  for (int i = 0; i < buckets; ++i) {
    fractions[static_cast<size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  auto h = Make(std::move(bounds), std::move(fractions));
  BATI_CHECK(h.ok());
  return std::move(h.value());
}

void Histogram::BuildCumulative() {
  cumulative_.assign(fractions_.size() + 1, 0.0);
  for (size_t i = 0; i < fractions_.size(); ++i) {
    cumulative_[i + 1] = cumulative_[i] + fractions_[i];
  }
}

double Histogram::CumulativeBelow(double v) const {
  if (empty()) return 0.0;
  if (v <= bounds_.front()) return 0.0;
  if (v >= bounds_.back()) return 1.0;
  // Binary search for the bucket containing v.
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  size_t bucket = static_cast<size_t>(it - bounds_.begin()) - 1;
  bucket = std::min(bucket, fractions_.size() - 1);
  double lo = bounds_[bucket];
  double hi = bounds_[bucket + 1];
  double within = (v - lo) / std::max(1e-12, hi - lo);
  return cumulative_[bucket] + fractions_[bucket] * within;
}

double Histogram::RangeFraction(double lo, double hi) const {
  if (empty() || hi < lo) return 0.0;
  return std::max(0.0, CumulativeBelow(hi) - CumulativeBelow(lo));
}

double Histogram::EqualityFraction(double v, double ndv) const {
  if (empty()) return 0.0;
  if (v < bounds_.front() || v > bounds_.back()) return 0.0;
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  size_t bucket = it == bounds_.begin()
                      ? 0
                      : static_cast<size_t>(it - bounds_.begin()) - 1;
  bucket = std::min(bucket, fractions_.size() - 1);
  // Distinct values are assumed spread across buckets by width share.
  double domain = bounds_.back() - bounds_.front();
  double width = bounds_[bucket + 1] - bounds_[bucket];
  double ndv_in_bucket =
      std::max(1.0, ndv * width / std::max(1e-12, domain));
  return fractions_[bucket] / ndv_in_bucket;
}

}  // namespace bati
