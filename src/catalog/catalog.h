#ifndef BATI_CATALOG_CATALOG_H_
#define BATI_CATALOG_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/histogram.h"
#include "common/status.h"

namespace bati {

/// Logical column types. The what-if optimizer's cost model only needs widths
/// and value-domain statistics, so types are coarse.
enum class ColumnType { kInt, kBigInt, kDouble, kDecimal, kDate, kString };

/// Byte width charged by the cost model for a column of the given type and
/// declared length (strings use declared length; others are fixed).
int ColumnWidthBytes(ColumnType type, int declared_length);

/// Optimizer statistics for one column, the only per-column state the
/// simulated what-if optimizer consumes (it never touches data pages, exactly
/// like a real optimizer's cardinality model).
struct ColumnStats {
  /// Number of distinct values; >= 1 for non-empty tables.
  double ndv = 1.0;
  /// Value-domain bounds used for range-predicate selectivity.
  double min_value = 0.0;
  double max_value = 1.0;
  /// Fraction of NULLs in [0, 1].
  double null_fraction = 0.0;
  /// Optional value-distribution histogram. When empty, selectivity
  /// estimation falls back to the uniform-domain assumption over
  /// [min_value, max_value].
  Histogram histogram;
};

/// A column of a table.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
  /// Declared length for strings; ignored otherwise.
  int declared_length = 0;
  ColumnStats stats;

  int WidthBytes() const { return ColumnWidthBytes(type, declared_length); }
};

/// A base table: name, cardinality, columns. Statistics-only; there is no
/// stored data in this simulation (see DESIGN.md, substitution table).
class Table {
 public:
  Table(std::string name, double row_count)
      : name_(std::move(name)), row_count_(row_count) {}

  const std::string& name() const { return name_; }
  double row_count() const { return row_count_; }
  void set_row_count(double rows) { row_count_ = rows; }

  /// Appends a column; returns its ordinal id within this table.
  int AddColumn(Column column);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int id) const {
    return columns_.at(static_cast<size_t>(id));
  }
  Column& mutable_column(int id) {
    return columns_.at(static_cast<size_t>(id));
  }
  const std::vector<Column>& columns() const { return columns_; }

  /// Ordinal of the named column, or -1.
  int FindColumn(const std::string& name) const;

  /// Sum of column widths: bytes per row charged by the cost model.
  double RowWidthBytes() const;

  /// Estimated heap size in bytes (rows * row width).
  double SizeBytes() const { return row_count_ * RowWidthBytes(); }

 private:
  std::string name_;
  double row_count_;
  std::vector<Column> columns_;
};

/// Identifies a column globally: (table id in database, column id in table).
struct ColumnRef {
  int table_id = -1;
  int column_id = -1;

  bool operator==(const ColumnRef& other) const {
    return table_id == other.table_id && column_id == other.column_id;
  }
  bool operator<(const ColumnRef& other) const {
    if (table_id != other.table_id) return table_id < other.table_id;
    return column_id < other.column_id;
  }
};

/// A statistics-only database: a named collection of tables.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a table; returns its id. Fails if the name already exists.
  StatusOr<int> AddTable(Table table);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const Table& table(int id) const {
    return tables_.at(static_cast<size_t>(id));
  }
  Table& mutable_table(int id) { return tables_.at(static_cast<size_t>(id)); }

  /// Table id by name, or -1.
  int FindTable(const std::string& name) const;

  /// Column lookup across the database; NotFound if either name is absent.
  StatusOr<ColumnRef> ResolveColumn(const std::string& table_name,
                                    const std::string& column_name) const;

  const Column& column(const ColumnRef& ref) const {
    return table(ref.table_id).column(ref.column_id);
  }

  /// Total heap bytes across all tables (basis of the "3x database size"
  /// storage constraint used when comparing with DTA, paper Section 7.3).
  double TotalSizeBytes() const;

 private:
  std::string name_;
  std::vector<Table> tables_;
};

}  // namespace bati

#endif  // BATI_CATALOG_CATALOG_H_
