#include "catalog/stats_view.h"

namespace bati {

StatsView::StatsView(const Database& db) {
  const int n_tables = db.num_tables();
  table_rows_.reserve(static_cast<size_t>(n_tables));
  table_width_.reserve(static_cast<size_t>(n_tables));
  col_offset_.reserve(static_cast<size_t>(n_tables) + 1);
  col_offset_.push_back(0);
  hist_offset_.push_back(0);
  for (int t = 0; t < n_tables; ++t) {
    const Table& table = db.table(t);
    table_rows_.push_back(table.row_count());
    table_width_.push_back(table.RowWidthBytes());
    for (const Column& col : table.columns()) {
      col_ndv_.push_back(col.stats.ndv);
      col_width_.push_back(col.WidthBytes());
      hist_offset_.push_back(
          hist_offset_.back() +
          static_cast<int64_t>(col.stats.histogram.num_buckets()));
    }
    col_offset_.push_back(static_cast<int64_t>(col_ndv_.size()));
  }
}

}  // namespace bati
