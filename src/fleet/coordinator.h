#ifndef BATI_FLEET_COORDINATOR_H_
#define BATI_FLEET_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "fleet/chaos.h"
#include "session/tuning_session.h"

namespace bati {

/// Configuration of a fleet run.
struct FleetOptions {
  /// Worker processes to keep alive (forked on demand; a dead worker is
  /// reaped and replaced immediately).
  int workers = 2;
  /// Bounded in-flight window: a task is admitted only while its ticket is
  /// within `window` of the lowest unfinished ticket, so output emission —
  /// a contiguous prefix in submission order — never falls unboundedly
  /// behind completion. 0 means 4 * workers.
  int window = 0;
  /// A task's lease expires this long after its last heartbeat; expiry
  /// means the worker is stalled (not merely slow — heartbeats ride a
  /// dedicated thread) and gets SIGKILLed and its task re-dispatched.
  int lease_timeout_ms = 2000;
  /// Heartbeat interval handed to workers. Must be well under the lease
  /// timeout; Run() rejects lease_timeout_ms < 4 * heartbeat_ms.
  int heartbeat_ms = 100;
  /// Speculative re-dispatch: when a worker sits idle with nothing queued
  /// and a task has been running longer than this, a second copy of the
  /// task is dispatched. Output is unaffected (every attempt computes
  /// byte-identical bytes; the first finisher wins, the loser is killed).
  /// 0 disables speculation.
  int straggler_ms = 0;
  /// A task that cannot complete within this many attempts (worker death,
  /// lease expiry, garbled frame each burn one) yields an error output
  /// line instead of running forever.
  int max_attempts = 6;
  /// Deterministic process-fault injection, forwarded to every worker.
  ChaosOptions chaos;
  /// Directory for per-task round-boundary checkpoints; empty disables
  /// crash recovery (re-dispatched tasks then restart from scratch).
  std::string state_dir;
  /// Fleet-level state file: completed output lines are persisted here
  /// (crash-consistently, after every completion) so a killed-and-restarted
  /// coordinator re-runs only unfinished tasks. Empty disables.
  std::string state_path;
  /// Load `state_path` before running and skip tasks it marks complete.
  bool resume = false;
  /// Emit canonical result lines (wall-clock noise scrubbed); required for
  /// byte-identical recovery, so on by default.
  bool canonical = true;
  bool verbose = false;
};

/// Counters describing what a fleet run actually did. Output bytes are
/// independent of all of these — that is the point of the design.
struct FleetStats {
  size_t tasks = 0;
  size_t ok = 0;
  size_t failed = 0;
  /// Total dispatches, including retries and speculation.
  size_t dispatches = 0;
  size_t worker_forks = 0;
  /// Worker deaths observed via pipe EOF (crash, chaos kill, exit).
  size_t worker_deaths = 0;
  /// Leases that expired (stalled worker SIGKILLed).
  size_t leases_expired = 0;
  /// Result frames rejected by length/CRC validation or unparseable lines.
  size_t garbled_frames = 0;
  size_t speculative_dispatches = 0;
  /// Speculative copies that finished first (the original was the loser).
  size_t speculative_wins = 0;
  /// Completions whose worker resumed from a checkpoint (recovered > 0).
  size_t resumed_tasks = 0;
  /// What-if budget answered from checkpoint journals instead of re-spent
  /// (sum of CostEngineStats::replayed_calls over completions).
  int64_t recovered_calls = 0;
  /// True when Run() returned early because the stop flag was raised; the
  /// state file (if any) holds every completion observed so far.
  bool interrupted = false;

  std::string ToString() const;
};

/// Runs `specs` to completion across a fleet of forked worker processes
/// and calls `emit` with each task's output line — exactly the line
/// sequential `bati_batch --canonical` would print — in submission order,
/// as a contiguous prefix (line K is emitted the moment tasks 1..K are all
/// done). `emit` returning false (broken output pipe) aborts the run with
/// a non-OK Status. `stop` may be flipped from a signal handler; the fleet
/// then persists state and returns with stats->interrupted set.
///
/// The coordinator is strictly single-threaded (poll(2) event loop), so
/// fork(2) is safe even under TSan; workers are the only parallelism.
Status RunFleet(const FleetOptions& options,
                const std::vector<RunSpec>& specs,
                const std::function<bool(const std::string&)>& emit,
                const std::atomic<bool>* stop, FleetStats* stats);

}  // namespace bati

#endif  // BATI_FLEET_COORDINATOR_H_
