#ifndef BATI_FLEET_WORKER_H_
#define BATI_FLEET_WORKER_H_

#include <string>

#include "fleet/chaos.h"

namespace bati {

/// Per-process configuration of one fleet worker, copied into the child at
/// fork time (workers receive no further configuration over the wire).
struct FleetWorkerConfig {
  /// Directory for per-task round-boundary checkpoint files
  /// ("task<id>.ckpt"); empty disables checkpointing (and with it crash
  /// recovery by resume — crashed tasks then restart from scratch).
  std::string state_dir;
  /// Milliseconds between heartbeat lines while a task runs.
  int heartbeat_ms = 100;
  /// Capture canonical result lines (wall-clock noise scrubbed) so every
  /// attempt of a task emits the identical bytes.
  bool canonical_output = true;
  /// Deterministic process-fault injection (kill / stall / garble).
  ChaosOptions chaos;
};

/// The body of one forked fleet worker: a thin loop over TuningSession.
/// Reads TASK frames from `task_fd`, runs each spec as a fresh session
/// (sharing the process-wide bundle registry across tasks), heartbeats on
/// `result_fd` while running, and answers with a checksummed RESULT frame.
/// Chaos, when enabled, is applied per (task, attempt): kill crashes the
/// process at a round boundary via the engine's crash-at-round hook (the
/// checkpoint is on disk first), stall SIGSTOPs the process so the lease
/// expires, garble emits a corrupted frame. Returns the exit code: 0 on
/// clean EOF, 3 on a protocol error, 4 when the result pipe broke.
int FleetWorkerMain(int task_fd, int result_fd,
                    const FleetWorkerConfig& config);

/// The checkpoint file the worker uses for task `task_id` under
/// `state_dir` — shared with the coordinator, which validates the file
/// before granting a resume dispatch and accounts its recovered budget.
std::string TaskCheckpointPath(const std::string& state_dir,
                               uint64_t task_id);

}  // namespace bati

#endif  // BATI_FLEET_WORKER_H_
