#ifndef BATI_FLEET_WIRE_H_
#define BATI_FLEET_WIRE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace bati {

// The fleet's pipe protocol: newline-delimited text frames between the
// coordinator and its forked workers. Task lines flow coordinator→worker;
// heartbeat and result lines flow worker→coordinator. Result frames are
// length- and CRC-guarded so a babbling or killed-mid-write worker produces
// a *detectably* bad frame (re-dispatch) rather than a silently wrong
// output line — the process-level analogue of the checkpoint checksum.

/// One dispatched task: the submission ticket, the (1-based) attempt
/// number, whether the worker should resume from the task's round-boundary
/// checkpoint, and the RunSpecToJson() form of the spec.
struct TaskFrame {
  uint64_t task_id = 0;
  int attempt = 1;
  bool resume = false;
  std::string spec_json;
};

/// One finished task: `ok` distinguishes a run result from a deterministic
/// task failure (unknown workload); `payload` is the output line either way
/// — exactly the line sequential `bati_batch` would print. `recovered_calls`
/// is the what-if budget answered from the resumed checkpoint journal
/// (CostEngineStats::replayed_calls), which the coordinator aggregates into
/// its fleet summary.
struct ResultFrame {
  uint64_t task_id = 0;
  int attempt = 1;
  bool ok = true;
  int64_t recovered_calls = 0;
  std::string payload;
};

/// Frame kind tags, dispatched on by the coordinator's read loop.
enum class WireKind {
  kHeartbeat,
  kResult,
  kMalformed,  // anything else: a babbling worker
};

/// "TASK <id> <attempt> <resume> <spec_json>\n". The spec JSON owns the
/// rest of the line (it contains spaces, never a newline).
std::string EncodeTaskLine(const TaskFrame& frame);
Status ParseTaskLine(const std::string& line, TaskFrame* out);

/// "HB <id>\n", sent periodically by a worker while it runs a task; the
/// coordinator renews the task's lease on receipt.
std::string EncodeHeartbeatLine(uint64_t task_id);

/// "RESULT <id> <attempt> <ok> <recovered> <len> <crc32> <payload>\n".
/// `len` is the payload byte count and `crc32` its checksum; ParseResultLine
/// rejects any disagreement, so truncation or corruption anywhere in the
/// frame surfaces as kMalformed, never as a wrong payload.
std::string EncodeResultLine(const ResultFrame& frame);

/// A deterministically corrupted result line — what a worker under
/// ChaosKind::kGarble emits: the real frame truncated mid-payload (the
/// declared length and checksum no longer match). Parsing it must fail.
std::string EncodeGarbledResultLine(const ResultFrame& frame);

/// Classifies one worker→coordinator line (without its trailing newline).
WireKind ClassifyLine(const std::string& line);

/// Parses a heartbeat line. Returns false on malformed input.
bool ParseHeartbeatLine(const std::string& line, uint64_t* task_id);

/// Parses and validates a result line (length + CRC). Any malformed or
/// corrupted frame yields a non-OK Status.
Status ParseResultLine(const std::string& line, ResultFrame* out);

}  // namespace bati

#endif  // BATI_FLEET_WIRE_H_
