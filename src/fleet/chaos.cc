#include "fleet/chaos.h"

#include <cstdio>

#include "common/macros.h"

namespace bati {

namespace {

/// SplitMix64 finalizer — the same mixer the what-if FaultInjector and the
/// library Rng use, so the fleet's schedule quality matches theirs.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::string ChaosOptions::ToString() const {
  if (!enabled) return "chaos=off";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "chaos=seed:%llu,kill:%g,stall:%g,garble:%g,max_attempts:%d",
                static_cast<unsigned long long>(seed), kill_rate, stall_rate,
                garble_rate, max_faulty_attempts);
  return buf;
}

ChaosInjector::ChaosInjector(const ChaosOptions& options)
    : options_(options) {
  BATI_CHECK(options_.enabled);
  BATI_CHECK(options_.kill_rate >= 0.0 && options_.kill_rate <= 1.0);
  BATI_CHECK(options_.stall_rate >= 0.0 && options_.stall_rate <= 1.0);
  BATI_CHECK(options_.garble_rate >= 0.0 && options_.garble_rate <= 1.0);
  BATI_CHECK(options_.kill_round_span >= 1);
  BATI_CHECK(options_.max_faulty_attempts >= 0);
}

double ChaosInjector::Draw(uint64_t salt, uint64_t task_id,
                           int attempt) const {
  uint64_t h = Mix(options_.seed ^ salt);
  h = Mix(h ^ task_id);
  h = Mix(h ^ static_cast<uint64_t>(attempt));
  return ToUnit(h);
}

ChaosDecision ChaosInjector::Decide(uint64_t task_id, int attempt) const {
  BATI_CHECK(attempt >= 1);
  ChaosDecision d;
  // The progress guarantee: past the faulty-attempt budget the schedule
  // goes quiet, so every task completes within a bounded attempt count.
  if (attempt > options_.max_faulty_attempts) return d;
  if (options_.kill_rate > 0.0 &&
      Draw(/*salt=*/0x9b1f3cULL, task_id, attempt) < options_.kill_rate) {
    d.kind = ChaosKind::kKill;
    d.kill_round =
        1 + static_cast<int>(Mix(options_.seed ^ 0x5eedULL ^
                                 Mix(task_id) ^
                                 static_cast<uint64_t>(attempt)) %
                             static_cast<uint64_t>(options_.kill_round_span));
    return d;
  }
  if (options_.stall_rate > 0.0 &&
      Draw(/*salt=*/0x2d11ab7ULL, task_id, attempt) < options_.stall_rate) {
    d.kind = ChaosKind::kStall;
    return d;
  }
  if (options_.garble_rate > 0.0 &&
      Draw(/*salt=*/0x6c0ffee5ULL, task_id, attempt) < options_.garble_rate) {
    d.kind = ChaosKind::kGarble;
    return d;
  }
  return d;
}

}  // namespace bati
