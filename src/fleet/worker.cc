#include "fleet/worker.h"

#include <csignal>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "fleet/wire.h"
#include "session/bundle_registry.h"
#include "session/spec_json.h"
#include "session/tuning_session.h"

namespace bati {

namespace {

/// Blocking, EINTR-aware line reader over the task pipe.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  /// False on EOF (with no buffered partial line) or a read error.
  bool Next(std::string* line) {
    for (;;) {
      const size_t newline = buffer_.find('\n', pos_);
      if (newline != std::string::npos) {
        line->assign(buffer_, pos_, newline - pos_);
        pos_ = newline + 1;
        return true;
      }
      if (pos_ > 0) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      if (eof_) {
        if (buffer_.empty()) return false;
        line->assign(buffer_);
        buffer_.clear();
        return true;
      }
      char chunk[4096];
      const ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n > 0) {
        buffer_.append(chunk, static_cast<size_t>(n));
      } else if (n == 0 || errno != EINTR) {
        eof_ = true;
      }
    }
  }

 private:
  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
  bool eof_ = false;
};

/// Serialized, EINTR-aware full write; false once the pipe is broken.
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}

  bool Write(const std::string& frame) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = write(fd_, frame.data() + off, frame.size() - off);
      if (n > 0) {
        off += static_cast<size_t>(n);
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        broken_ = true;  // EPIPE with SIGPIPE ignored, or a real error
        return false;
      }
    }
    return true;
  }

  bool broken() const { return broken_; }

 private:
  int fd_;
  std::mutex mu_;
  bool broken_ = false;
};

/// Emits "HB <task>" every interval while a task runs, so the coordinator
/// can tell a slow worker from a dead or stalled one.
class Heartbeat {
 public:
  Heartbeat(FrameWriter* writer, uint64_t task_id, int interval_ms)
      : writer_(writer), task_id_(task_id), interval_ms_(interval_ms) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~Heartbeat() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                   [this] { return stop_; });
      if (stop_) return;
      lock.unlock();
      writer_->Write(EncodeHeartbeatLine(task_id_));
      lock.lock();
    }
  }

  FrameWriter* writer_;
  uint64_t task_id_;
  int interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// The error object sequential bati_batch prints for a failed spec — the
/// fleet must emit the identical bytes for the identical failure.
std::string ErrorPayload(const std::string& workload,
                         const std::string& message) {
  return "{\"workload\":\"" + JsonEscape(workload) + "\",\"error\":\"" +
         JsonEscape(message) + "\"}";
}

}  // namespace

std::string TaskCheckpointPath(const std::string& state_dir,
                               uint64_t task_id) {
  return state_dir + "/task" + std::to_string(task_id) + ".ckpt";
}

int FleetWorkerMain(int task_fd, int result_fd,
                    const FleetWorkerConfig& config) {
  // A closed result pipe must surface as a write error (clean exit 4), not
  // a SIGPIPE kill that loses the current task's checkpoint.
  std::signal(SIGPIPE, SIG_IGN);

  FdLineReader reader(task_fd);
  FrameWriter writer(result_fd);
  std::unique_ptr<ChaosInjector> chaos;
  if (config.chaos.enabled) {
    chaos = std::make_unique<ChaosInjector>(config.chaos);
  }

  std::string line;
  while (reader.Next(&line)) {
    TaskFrame task;
    {
      const Status st = ParseTaskLine(line, &task);
      if (!st.ok()) {
        std::fprintf(stderr, "bati_fleet worker: %s\n",
                     st.ToString().c_str());
        return 3;
      }
    }

    const ChaosDecision decision =
        chaos != nullptr ? chaos->Decide(task.task_id, task.attempt)
                         : ChaosDecision{};
    if (decision.kind == ChaosKind::kStall) {
      // Hang silently: no heartbeats, no result. The coordinator's lease
      // expires and it SIGKILLs this process. (If something SIGCONTs us
      // instead, we just run the task late; the duplicate result is
      // byte-identical and the coordinator ignores it.)
      raise(SIGSTOP);
    }

    ResultFrame result;
    result.task_id = task.task_id;
    result.attempt = task.attempt;

    RunSpec spec;
    const Status parse_status = ParseRunSpecJson(task.spec_json, &spec);
    if (!parse_status.ok()) {
      result.ok = false;
      result.payload = ErrorPayload("", parse_status.message());
    } else {
      if (!config.state_dir.empty()) {
        spec.checkpoint_path =
            TaskCheckpointPath(config.state_dir, task.task_id);
        if (task.resume) spec.resume_path = spec.checkpoint_path;
      }
      if (decision.kind == ChaosKind::kKill) {
        // The engine's crash-at-round hook: the checkpoint for that round
        // is written first, then the process _Exit(42)s mid-run — a real
        // kill -9 as far as the coordinator can tell (pipe EOF).
        spec.faults.crash_at_round = decision.kill_round;
      }
      const WorkloadBundle* bundle =
          BundleRegistry::Global().TryGet(spec.workload);
      if (bundle == nullptr) {
        result.ok = false;
        result.payload = ErrorPayload(
            spec.workload, "unknown workload: " + spec.workload);
      } else {
        Heartbeat heartbeat(&writer, task.task_id, config.heartbeat_ms);
        SessionOptions session_options;
        session_options.capture_result_json = true;
        session_options.canonical_result_json = config.canonical_output;
        TuningSession session(*bundle, std::move(spec), session_options);
        session.Run();
        result.payload = session.result_json();
        result.recovered_calls = session.outcome().engine.replayed_calls;
      }
    }

    const std::string frame = decision.kind == ChaosKind::kGarble
                                  ? EncodeGarbledResultLine(result)
                                  : EncodeResultLine(result);
    if (!writer.Write(frame)) return 4;
  }
  return writer.broken() ? 4 : 0;
}

}  // namespace bati
