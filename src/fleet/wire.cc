#include "fleet/wire.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/crc32.h"

namespace bati {

namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed frame: ") + what);
}

/// Strictly parses a non-negative integer token in [start, end).
bool ParseU64Range(const std::string& s, size_t start, size_t end,
                   uint64_t* out) {
  if (start >= end) return false;
  uint64_t value = 0;
  for (size_t i = start; i < end; ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - static_cast<uint64_t>(c - '0')) / 10) {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// Advances past one space-terminated token; returns (start, end) or false.
bool NextToken(const std::string& s, size_t* pos, size_t* start,
               size_t* end) {
  if (*pos >= s.size()) return false;
  *start = *pos;
  const size_t space = s.find(' ', *pos);
  *end = space == std::string::npos ? s.size() : space;
  *pos = space == std::string::npos ? s.size() : space + 1;
  return *end > *start;
}

}  // namespace

std::string EncodeTaskLine(const TaskFrame& frame) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "TASK %" PRIu64 " %d %d ", frame.task_id,
                frame.attempt, frame.resume ? 1 : 0);
  return buf + frame.spec_json + "\n";
}

Status ParseTaskLine(const std::string& line, TaskFrame* out) {
  if (line.rfind("TASK ", 0) != 0) return Malformed("not a task line");
  size_t pos = 5, start = 0, end = 0;
  uint64_t id = 0, attempt = 0, resume = 0;
  if (!NextToken(line, &pos, &start, &end) ||
      !ParseU64Range(line, start, end, &id) || id == 0) {
    return Malformed("bad task id");
  }
  if (!NextToken(line, &pos, &start, &end) ||
      !ParseU64Range(line, start, end, &attempt) || attempt == 0 ||
      attempt > 1000000) {
    return Malformed("bad attempt");
  }
  if (!NextToken(line, &pos, &start, &end) ||
      !ParseU64Range(line, start, end, &resume) || resume > 1) {
    return Malformed("bad resume flag");
  }
  out->task_id = id;
  out->attempt = static_cast<int>(attempt);
  out->resume = resume == 1;
  out->spec_json = line.substr(pos);
  if (out->spec_json.empty()) return Malformed("missing spec");
  return Status::Ok();
}

std::string EncodeHeartbeatLine(uint64_t task_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "HB %" PRIu64 "\n", task_id);
  return buf;
}

std::string EncodeResultLine(const ResultFrame& frame) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "RESULT %" PRIu64 " %d %d %" PRId64 " %zu %s ",
                frame.task_id, frame.attempt, frame.ok ? 1 : 0,
                frame.recovered_calls, frame.payload.size(),
                Crc32Hex(Crc32(frame.payload)).c_str());
  return buf + frame.payload + "\n";
}

std::string EncodeGarbledResultLine(const ResultFrame& frame) {
  std::string line = EncodeResultLine(frame);
  // Drop the trailing third (newline included), as if the process died
  // mid-flush, then terminate the line so the coordinator sees a complete
  // — but checksum-violating — frame rather than blocking for more bytes.
  line.resize(line.size() - line.size() / 3);
  line.push_back('\n');
  return line;
}

WireKind ClassifyLine(const std::string& line) {
  if (line.rfind("HB ", 0) == 0) return WireKind::kHeartbeat;
  if (line.rfind("RESULT ", 0) == 0) return WireKind::kResult;
  return WireKind::kMalformed;
}

bool ParseHeartbeatLine(const std::string& line, uint64_t* task_id) {
  if (line.rfind("HB ", 0) != 0) return false;
  return ParseU64Range(line, 3, line.size(), task_id) && *task_id != 0;
}

Status ParseResultLine(const std::string& line, ResultFrame* out) {
  if (line.rfind("RESULT ", 0) != 0) return Malformed("not a result line");
  size_t pos = 7, start = 0, end = 0;
  uint64_t id = 0, attempt = 0, ok = 0, recovered = 0, len = 0;
  if (!NextToken(line, &pos, &start, &end) ||
      !ParseU64Range(line, start, end, &id) || id == 0) {
    return Malformed("bad task id");
  }
  if (!NextToken(line, &pos, &start, &end) ||
      !ParseU64Range(line, start, end, &attempt) || attempt == 0 ||
      attempt > 1000000) {
    return Malformed("bad attempt");
  }
  if (!NextToken(line, &pos, &start, &end) ||
      !ParseU64Range(line, start, end, &ok) || ok > 1) {
    return Malformed("bad ok flag");
  }
  if (!NextToken(line, &pos, &start, &end) ||
      !ParseU64Range(line, start, end, &recovered) ||
      recovered > static_cast<uint64_t>(INT64_MAX)) {
    return Malformed("bad recovered count");
  }
  if (!NextToken(line, &pos, &start, &end) ||
      !ParseU64Range(line, start, end, &len)) {
    return Malformed("bad length");
  }
  uint32_t declared_crc = 0;
  if (!NextToken(line, &pos, &start, &end) ||
      !ParseCrc32Hex(line.substr(start, end - start), &declared_crc)) {
    return Malformed("bad checksum");
  }
  // The payload owns the rest of the line; its observed byte count must
  // match the declaration exactly — a truncated frame fails here.
  const size_t payload_size = line.size() - pos;
  if (pos > line.size() || payload_size != len) {
    return Malformed("payload length mismatch (truncated frame)");
  }
  const std::string payload = line.substr(pos);
  if (Crc32(payload) != declared_crc) {
    return Malformed("payload checksum mismatch (corrupted frame)");
  }
  out->task_id = id;
  out->attempt = static_cast<int>(attempt);
  out->ok = ok == 1;
  out->recovered_calls = static_cast<int64_t>(recovered);
  out->payload = payload;
  return Status::Ok();
}

}  // namespace bati
