#ifndef BATI_FLEET_CHAOS_H_
#define BATI_FLEET_CHAOS_H_

#include <cstdint>
#include <string>

namespace bati {

/// Configuration of the process-level chaos model, the fleet analogue of
/// `src/faults/` (which injects faults into individual what-if calls; this
/// injects them into whole worker processes). All rates are probabilities
/// in [0, 1]; with `enabled == false` (the default) workers run untouched.
///
/// The model mirrors the three ways a real fleet worker misbehaves:
///  * kill   — the process dies abruptly (OOM kill, node loss): the worker
///             crashes mid-run via the engine's crash-at-round hook, after
///             the round-boundary checkpoint for that round is on disk;
///  * stall  — the process hangs (GC pause, cold EBS volume, livelock):
///             the worker SIGSTOPs itself, stops heartbeating, and the
///             coordinator's lease expiry must reap and re-dispatch;
///  * garble — the process babbles (partial flush, memory corruption): the
///             worker emits a truncated, checksum-violating result frame
///             that the coordinator must reject and retry elsewhere.
struct ChaosOptions {
  /// Master switch; everything below is ignored when false.
  bool enabled = false;
  /// Seed of the chaos schedule. The schedule is a pure function of
  /// (seed, task, attempt): deterministic, independent of which worker
  /// process draws the task and of wall-clock timing, so a chaos run is
  /// exactly reproducible and — because every attempt of a task computes
  /// the identical result — fleet output stays byte-identical to a clean
  /// sequential run no matter which attempts die.
  uint64_t seed = 1;
  /// Per-attempt probability that the worker is killed mid-run.
  double kill_rate = 0.0;
  /// Per-attempt probability that the worker stalls (SIGSTOP) instead of
  /// starting the task.
  double stall_rate = 0.0;
  /// Per-attempt probability that the worker garbles its result frame.
  double garble_rate = 0.0;
  /// Kill points are spread over tuner rounds [1, kill_round_span].
  int kill_round_span = 3;
  /// Attempts beyond this index are never faulted, guaranteeing that a
  /// task terminates after a bounded number of re-dispatches even at
  /// rates close to 1. Must stay below the coordinator's max_attempts.
  int max_faulty_attempts = 4;

  /// One-line rendering for logs and the fleet summary.
  std::string ToString() const;
};

/// What the injector decided for one (task, attempt) execution.
enum class ChaosKind {
  kNone,    // run the task normally
  kKill,    // crash at round `kill_round` (checkpoint for it is on disk)
  kStall,   // SIGSTOP before starting; the lease must expire
  kGarble,  // compute normally, then emit a corrupted result frame
};

struct ChaosDecision {
  ChaosKind kind = ChaosKind::kNone;
  /// Tuner round at which a kKill worker dies (>= 1). Tasks whose tuner
  /// declares fewer rounds simply outlive the kill point — the schedule
  /// stays pure without knowledge of per-algorithm round counts.
  int kill_round = 0;
};

/// Deterministic, seeded process-fault source. Stateless: Decide() is a
/// pure function of (seed, task, attempt), so the coordinator and any
/// worker — original or re-forked replacement — agree on the schedule
/// without communication, and a resumed coordinator replays the exact
/// fault history of the original run.
class ChaosInjector {
 public:
  explicit ChaosInjector(const ChaosOptions& options);

  const ChaosOptions& options() const { return options_; }

  /// The chaos decision for attempt `attempt` (1-based) of task
  /// `task_id` (the submission ticket). Pure and thread-safe.
  ChaosDecision Decide(uint64_t task_id, int attempt) const;

 private:
  /// Uniform [0, 1) draw from the per-task stream salted by `salt`.
  double Draw(uint64_t salt, uint64_t task_id, int attempt) const;

  ChaosOptions options_;
};

}  // namespace bati

#endif  // BATI_FLEET_CHAOS_H_
