#include "fleet/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <ctime>
#include <deque>

#include "common/file_util.h"
#include "common/macros.h"
#include "fleet/wire.h"
#include "fleet/worker.h"
#include "session/spec_json.h"

namespace bati {

namespace {

/// First line of the fleet state file; the rest is RESULT wire frames (one
/// per completed task), reusing the pipe protocol's length+CRC guard so a
/// truncated or corrupted state file is rejected, never half-trusted.
constexpr char kStateMagic[] = "bati-fleet-state v1";

int64_t NowMs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Everything the coordinator knows about one submitted spec.
struct TaskState {
  std::string workload;
  std::string spec_json;  // canonical wire form
  int attempts = 0;       // dispatches started (including speculation)
  int in_flight = 0;      // live copies right now (0, 1, or 2)
  int speculative_attempt = 0;  // attempt number of the speculative copy
  bool done = false;
  bool ok = false;
  std::string output;  // the task's output line (valid once done)
};

/// One forked worker process and the coordinator's end of its pipes.
struct WorkerSlot {
  pid_t pid = -1;
  int task_fd = -1;    // coordinator writes TASK frames here
  int result_fd = -1;  // coordinator reads HB/RESULT frames here
  std::string rbuf;    // partial-line buffer for result_fd
  uint64_t task = 0;   // ticket being run; 0 = idle
  int attempt = 0;
  int64_t lease_deadline = 0;  // valid while task != 0
  int64_t dispatch_ms = 0;     // when the current task was dispatched
};

class Coordinator {
 public:
  Coordinator(const FleetOptions& options,
              const std::vector<RunSpec>& specs,
              const std::function<bool(const std::string&)>& emit,
              const std::atomic<bool>* stop, FleetStats* stats)
      : options_(options), emit_(emit), stop_(stop), stats_(stats) {
    if (options_.window <= 0) options_.window = 4 * options_.workers;
    tasks_.resize(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      tasks_[i].workload = specs[i].workload;
      tasks_[i].spec_json = RunSpecToJson(specs[i]);
    }
  }

  Status Run() {
    if (options_.workers < 1) {
      return Status::InvalidArgument("fleet needs at least one worker");
    }
    if (options_.lease_timeout_ms < 4 * options_.heartbeat_ms) {
      return Status::InvalidArgument(
          "lease_timeout_ms must be at least 4x heartbeat_ms");
    }
    stats_->tasks = tasks_.size();
    if (options_.resume && !options_.state_path.empty()) {
      const Status st = LoadState();
      if (!st.ok()) {
        std::fprintf(stderr,
                     "bati_fleet: state %s rejected, starting fresh: %s\n",
                     options_.state_path.c_str(), st.ToString().c_str());
        for (TaskState& t : tasks_) {
          TaskState fresh;
          fresh.workload = std::move(t.workload);
          fresh.spec_json = std::move(t.spec_json);
          t = std::move(fresh);
        }
        stats_->ok = stats_->failed = 0;
      }
    }

    workers_.resize(static_cast<size_t>(options_.workers));
    for (WorkerSlot& w : workers_) ForkWorker(&w);

    Status status = Status::Ok();
    for (;;) {
      if (stop_ != nullptr && stop_->load()) {
        stats_->interrupted = true;
        break;
      }
      Admit();
      Dispatch();
      if (!EmitReady()) {
        status = Status::Internal("output write failed");
        break;
      }
      if (next_emit_ > tasks_.size()) break;  // everything emitted
      PollWorkers();
    }

    if (stats_->interrupted) SaveState();
    for (WorkerSlot& w : workers_) {
      // Detach the slot from its task first: an interrupted in-flight
      // attempt must not be charged as a failure (a resumed coordinator
      // re-runs it), and a live worker must be killed before waitpid.
      w.task = 0;
      if (w.pid > 0) kill(w.pid, SIGKILL);
      ReapWorker(&w, /*replace=*/false);
    }
    return status;
  }

 private:
  TaskState& Task(uint64_t ticket) { return tasks_[ticket - 1]; }

  /// Admits tickets into the ready queue while they fit the in-flight
  /// window (measured from the lowest unemitted ticket).
  void Admit() {
    while (next_admit_ <= tasks_.size() &&
           next_admit_ < next_emit_ + static_cast<uint64_t>(options_.window)) {
      if (!Task(next_admit_).done) ready_.push_back(next_admit_);
      ++next_admit_;
    }
  }

  /// Hands queued tasks to idle workers; with an empty queue, considers
  /// speculative re-dispatch of the oldest straggler.
  void Dispatch() {
    for (WorkerSlot& w : workers_) {
      if (w.task != 0) continue;
      if (!ready_.empty()) {
        const uint64_t ticket = ready_.front();
        ready_.pop_front();
        DispatchTo(&w, ticket, /*speculative=*/false);
      } else if (options_.straggler_ms > 0) {
        const uint64_t straggler = PickStraggler();
        if (straggler != 0) DispatchTo(&w, straggler, /*speculative=*/true);
      }
    }
  }

  /// The lowest-ticket task that has exactly one copy in flight for longer
  /// than the straggler threshold and attempt budget to spare; 0 if none.
  uint64_t PickStraggler() {
    const int64_t now = NowMs();
    for (const WorkerSlot& w : workers_) {
      if (w.task == 0) continue;
      TaskState& t = Task(w.task);
      if (t.in_flight == 1 && t.speculative_attempt == 0 &&
          t.attempts < options_.max_attempts &&
          now - w.dispatch_ms >= options_.straggler_ms) {
        return w.task;
      }
    }
    return 0;
  }

  void DispatchTo(WorkerSlot* w, uint64_t ticket, bool speculative) {
    TaskState& t = Task(ticket);
    ++t.attempts;
    ++t.in_flight;
    ++stats_->dispatches;
    if (speculative) {
      t.speculative_attempt = t.attempts;
      ++stats_->speculative_dispatches;
    }
    TaskFrame frame;
    frame.task_id = ticket;
    frame.attempt = t.attempts;
    // Resume is worthwhile whenever an earlier attempt may have left a
    // round-boundary checkpoint; the worker validates the file (falling
    // back to a fresh start on any mismatch), so an optimistic flag costs
    // at most a stderr line.
    frame.resume = !options_.state_dir.empty() && t.attempts > 1 &&
                   access(TaskCheckpointPath(options_.state_dir, ticket)
                              .c_str(),
                          R_OK) == 0;
    frame.spec_json = t.spec_json;
    w->task = ticket;
    w->attempt = t.attempts;
    w->dispatch_ms = NowMs();
    w->lease_deadline = w->dispatch_ms + options_.lease_timeout_ms;
    if (options_.verbose) {
      std::fprintf(stderr,
                   "bati_fleet: task %llu attempt %d -> pid %d%s%s\n",
                   static_cast<unsigned long long>(ticket), t.attempts,
                   static_cast<int>(w->pid), frame.resume ? " (resume)" : "",
                   speculative ? " (speculative)" : "");
    }
    if (!WriteAll(w->task_fd, EncodeTaskLine(frame))) {
      // The worker died before we could feed it; reap, requeue, refork.
      ++stats_->worker_deaths;
      ReapWorker(w, /*replace=*/true);
    }
  }

  static bool WriteAll(int fd, const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = write(fd, data.data() + off, data.size() - off);
      if (n > 0) {
        off += static_cast<size_t>(n);
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        return false;
      }
    }
    return true;
  }

  /// Emits the contiguous done prefix in ticket order. False once the
  /// output sink broke.
  bool EmitReady() {
    while (next_emit_ <= tasks_.size() && Task(next_emit_).done) {
      if (!emit_(Task(next_emit_).output)) return false;
      ++next_emit_;
    }
    return true;
  }

  void PollWorkers() {
    const int64_t now = NowMs();
    // Expire leases first: a stalled worker sends no heartbeats, so its
    // deadline simply arrives.
    for (WorkerSlot& w : workers_) {
      if (w.task != 0 && w.lease_deadline <= now) {
        ++stats_->leases_expired;
        if (options_.verbose) {
          std::fprintf(stderr, "bati_fleet: lease expired on pid %d (task "
                       "%llu), killing\n", static_cast<int>(w.pid),
                       static_cast<unsigned long long>(w.task));
        }
        kill(w.pid, SIGKILL);
        ReapWorker(&w, /*replace=*/true);
      }
    }

    std::vector<pollfd> fds(workers_.size());
    for (size_t i = 0; i < workers_.size(); ++i) {
      fds[i] = {workers_[i].result_fd, POLLIN, 0};
    }
    int64_t next_deadline = now + 100;
    for (const WorkerSlot& w : workers_) {
      if (w.task != 0 && w.lease_deadline < next_deadline) {
        next_deadline = w.lease_deadline;
      }
    }
    const int timeout =
        static_cast<int>(std::max<int64_t>(10, next_deadline - now));
    const int n = poll(fds.data(), fds.size(), timeout);
    if (n <= 0) return;  // timeout or EINTR: the loop re-evaluates
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        DrainWorker(&workers_[i]);
      }
    }
  }

  /// Reads everything currently available from one worker and handles it
  /// line by line. EOF means the process died.
  void DrainWorker(WorkerSlot* w) {
    bool dead = false;
    char chunk[4096];
    for (;;) {
      const ssize_t n = read(w->result_fd, chunk, sizeof(chunk));
      if (n > 0) {
        w->rbuf.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      dead = true;  // EOF or a hard error
      break;
    }
    size_t start = 0;
    for (;;) {
      const size_t newline = w->rbuf.find('\n', start);
      if (newline == std::string::npos) break;
      const std::string line = w->rbuf.substr(start, newline - start);
      start = newline + 1;
      if (!HandleLine(w, line)) {
        // The worker is babbling (garbled or protocol-violating frame):
        // nothing further from it can be trusted.
        ++stats_->garbled_frames;
        kill(w->pid, SIGKILL);
        ReapWorker(w, /*replace=*/true);
        return;
      }
    }
    w->rbuf.erase(0, start);
    if (dead) {
      ++stats_->worker_deaths;
      if (options_.verbose) {
        std::fprintf(stderr, "bati_fleet: pid %d died (task %llu)\n",
                     static_cast<int>(w->pid),
                     static_cast<unsigned long long>(w->task));
      }
      ReapWorker(w, /*replace=*/true);
    }
  }

  /// Processes one worker line. False when the worker must be killed.
  bool HandleLine(WorkerSlot* w, const std::string& line) {
    switch (ClassifyLine(line)) {
      case WireKind::kHeartbeat: {
        uint64_t ticket = 0;
        if (!ParseHeartbeatLine(line, &ticket)) return false;
        if (ticket == w->task) {
          w->lease_deadline = NowMs() + options_.lease_timeout_ms;
        }
        return true;
      }
      case WireKind::kResult: {
        ResultFrame frame;
        if (!ParseResultLine(line, &frame).ok()) return false;
        if (frame.task_id != w->task || frame.attempt != w->attempt) {
          return false;  // answering a task it was not asked to run
        }
        HandleResult(w, frame);
        return true;
      }
      case WireKind::kMalformed:
        return false;
    }
    return false;
  }

  void HandleResult(WorkerSlot* w, const ResultFrame& frame) {
    TaskState& t = Task(frame.task_id);
    w->task = 0;
    --t.in_flight;
    if (t.done) return;  // late duplicate from a speculative twin
    t.done = true;
    t.ok = frame.ok;
    t.output = frame.payload;
    frame.ok ? ++stats_->ok : ++stats_->failed;
    if (frame.recovered_calls > 0) {
      ++stats_->resumed_tasks;
      stats_->recovered_calls += frame.recovered_calls;
    }
    if (t.speculative_attempt != 0 &&
        frame.attempt == t.speculative_attempt) {
      ++stats_->speculative_wins;
    }
    // The losing twin's result would be byte-identical; free its slot now
    // instead of waiting for it.
    if (t.in_flight > 0) {
      for (WorkerSlot& other : workers_) {
        if (&other != w && other.task == frame.task_id) {
          kill(other.pid, SIGKILL);
          ReapWorker(&other, /*replace=*/true);
        }
      }
    }
    if (!options_.state_dir.empty()) {
      const std::string ckpt =
          TaskCheckpointPath(options_.state_dir, frame.task_id);
      unlink(ckpt.c_str());
      unlink((ckpt + ".tmp").c_str());
    }
    SaveState();
  }

  /// Collects a dead worker: reaps the process, requeues its task (or
  /// fails it once the attempt budget is spent), and optionally forks a
  /// replacement into the same slot.
  void ReapWorker(WorkerSlot* w, bool replace) {
    if (w->pid > 0) {
      int wstatus = 0;
      while (waitpid(w->pid, &wstatus, 0) < 0 && errno == EINTR) {
      }
    }
    if (w->task_fd >= 0) close(w->task_fd);
    if (w->result_fd >= 0) close(w->result_fd);
    const uint64_t ticket = w->task;
    *w = WorkerSlot{};
    if (ticket != 0) {
      TaskState& t = Task(ticket);
      --t.in_flight;
      if (!t.done && t.in_flight == 0) {
        if (t.attempts >= options_.max_attempts) {
          t.done = true;
          t.ok = false;
          t.output = "{\"workload\":\"" + JsonEscape(t.workload) +
                     "\",\"error\":\"task failed after " +
                     std::to_string(t.attempts) + " attempts\"}";
          ++stats_->failed;
          SaveState();
        } else {
          // Requeue at the front: recovering the oldest work first keeps
          // the emit prefix moving.
          ready_.push_front(ticket);
        }
      }
    }
    if (replace) ForkWorker(w);
  }

  void ForkWorker(WorkerSlot* w) {
    int task_pipe[2], result_pipe[2];
    BATI_CHECK(pipe(task_pipe) == 0 && pipe(result_pipe) == 0);
    const pid_t pid = fork();
    BATI_CHECK(pid >= 0);
    if (pid == 0) {
      // Child. Close every coordinator-side fd — most importantly the
      // other workers' pipe ends, which would otherwise keep a sibling's
      // pipes open after it dies and mask its EOF from the coordinator.
      close(task_pipe[1]);
      close(result_pipe[0]);
      for (const WorkerSlot& other : workers_) {
        if (other.task_fd >= 0) close(other.task_fd);
        if (other.result_fd >= 0) close(other.result_fd);
      }
      // Undo the tool's stop-flag handlers: a group-wide SIGTERM should
      // kill workers outright, not set a flag nobody reads.
      std::signal(SIGTERM, SIG_DFL);
      std::signal(SIGINT, SIG_DFL);
      FleetWorkerConfig config;
      config.state_dir = options_.state_dir;
      config.heartbeat_ms = options_.heartbeat_ms;
      config.canonical_output = options_.canonical;
      config.chaos = options_.chaos;
      // _exit (not exit): a forked copy of the coordinator must not run
      // parent-state destructors or atexit hooks.
      _exit(FleetWorkerMain(task_pipe[0], result_pipe[1], config));
    }
    close(task_pipe[0]);
    close(result_pipe[1]);
    // Nonblocking reads let DrainWorker empty the pipe without guessing
    // how much is buffered.
    const int fl = fcntl(result_pipe[0], F_GETFL);
    BATI_CHECK(fl >= 0 &&
               fcntl(result_pipe[0], F_SETFL, fl | O_NONBLOCK) == 0);
    w->pid = pid;
    w->task_fd = task_pipe[1];
    w->result_fd = result_pipe[0];
    ++stats_->worker_forks;
  }

  /// Persists every completed task's output line, crash-consistently.
  void SaveState() {
    if (options_.state_path.empty()) return;
    std::string out = std::string(kStateMagic) + "\n";
    for (size_t i = 0; i < tasks_.size(); ++i) {
      const TaskState& t = tasks_[i];
      if (!t.done) continue;
      ResultFrame frame;
      frame.task_id = i + 1;
      frame.attempt = std::max(1, t.attempts);
      frame.ok = t.ok;
      frame.payload = t.output;
      out += EncodeResultLine(frame);
    }
    const Status st = AtomicWriteFile(options_.state_path, out);
    if (!st.ok()) {
      std::fprintf(stderr, "bati_fleet: state write failed: %s\n",
                   st.ToString().c_str());
    }
  }

  Status LoadState() {
    std::string contents;
    {
      std::FILE* f = std::fopen(options_.state_path.c_str(), "rb");
      if (f == nullptr) {
        return Status::NotFound("cannot read state file: " +
                                options_.state_path);
      }
      char chunk[4096];
      size_t n = 0;
      while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
        contents.append(chunk, n);
      }
      std::fclose(f);
    }
    size_t pos = contents.find('\n');
    if (pos == std::string::npos ||
        contents.substr(0, pos) != kStateMagic) {
      return Status::InvalidArgument("bad state header (want \"" +
                                     std::string(kStateMagic) + "\")");
    }
    ++pos;
    while (pos < contents.size()) {
      size_t end = contents.find('\n', pos);
      if (end == std::string::npos) {
        return Status::InvalidArgument("truncated state file (no final "
                                       "newline)");
      }
      ResultFrame frame;
      const Status st =
          ParseResultLine(contents.substr(pos, end - pos), &frame);
      if (!st.ok()) return st;
      if (frame.task_id > tasks_.size()) {
        return Status::InvalidArgument(
            "state file has task " + std::to_string(frame.task_id) +
            " but only " + std::to_string(tasks_.size()) +
            " specs were given");
      }
      TaskState& t = Task(frame.task_id);
      t.done = true;
      t.ok = frame.ok;
      t.output = frame.payload;
      frame.ok ? ++stats_->ok : ++stats_->failed;
      pos = end + 1;
    }
    return Status::Ok();
  }

  FleetOptions options_;
  const std::function<bool(const std::string&)>& emit_;
  const std::atomic<bool>* stop_;
  FleetStats* stats_;
  std::vector<TaskState> tasks_;
  std::vector<WorkerSlot> workers_;
  std::deque<uint64_t> ready_;
  uint64_t next_admit_ = 1;  // next ticket to consider for the window
  uint64_t next_emit_ = 1;   // next ticket to print
};

}  // namespace

std::string FleetStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "tasks: %zu (%zu ok, %zu failed), dispatches: %zu, forks: %zu, "
      "deaths: %zu, leases expired: %zu, garbled frames: %zu, "
      "speculative: %zu (%zu wins), resumed: %zu "
      "(%lld what-if calls recovered)%s",
      tasks, ok, failed, dispatches, worker_forks, worker_deaths,
      leases_expired, garbled_frames, speculative_dispatches,
      speculative_wins, resumed_tasks,
      static_cast<long long>(recovered_calls),
      interrupted ? ", interrupted" : "");
  return buf;
}

Status RunFleet(const FleetOptions& options,
                const std::vector<RunSpec>& specs,
                const std::function<bool(const std::string&)>& emit,
                const std::atomic<bool>* stop, FleetStats* stats) {
  FleetStats local;
  if (stats == nullptr) stats = &local;
  *stats = FleetStats{};
  if (specs.empty()) return Status::InvalidArgument("no specs");
  Coordinator coordinator(options, specs, emit, stop, stats);
  return coordinator.Run();
}

}  // namespace bati
