#ifndef BATI_OPTIMIZER_QUERY_SKELETON_H_
#define BATI_OPTIMIZER_QUERY_SKELETON_H_

#include <cstdint>
#include <vector>

#include "catalog/stats_view.h"
#include "optimizer/cost_model.h"
#include "workload/query.h"

namespace bati {

/// The configuration-independent half of a what-if plan, computed once per
/// query and shared across every what-if call on that query. The simulated
/// optimizer's join order, per-scan cardinalities, filter selectivities,
/// required-column sets and the whole current_rows/out_rows chain depend
/// only on the query and the catalog — never on the hypothetical index
/// configuration — so re-deriving them per call (sets, sorts, the greedy
/// O(scans² · joins) join-order search) is pure waste on the hot path.
/// Only access-path and join-method choices remain per call.
///
/// Every stored double is produced by the same arithmetic, in the same
/// order, as the reference implementation, so plans costed from a skeleton
/// are bit-identical to plans costed from scratch.
struct SkeletonFilter {
  int column_id = -1;
  FilterKind kind = FilterKind::kEquality;
  double selectivity = 1.0;
};

struct SkeletonScan {
  int table_id = -1;
  /// max(1, table row count) — the reference's ScanInfo::base_rows.
  double base_rows = 0.0;
  /// max(1, table row width bytes).
  double row_width = 0.0;
  /// Combined filter selectivity (plain product or exponential backoff,
  /// per CostModelParams).
  double filter_selectivity = 1.0;
  /// max(1, base_rows * filter_selectivity).
  double eff_rows = 0.0;
  /// Sorted unique column ordinals the query needs from this scan.
  std::vector<int> required_columns;
  /// Filters on this scan, in query filter order (FindFilter returns the
  /// first match, so order is semantics).
  std::vector<SkeletonFilter> filters;
};

/// One join predicate connecting a step's scan to the scans placed before
/// it, reduced to what the per-call cost loops read: the join column on the
/// new scan's side and that column's NDV.
struct SkeletonConn {
  int column_id = -1;
  double ndv = 1.0;
};

/// One step of the greedy left-deep join order.
struct SkeletonStep {
  int scan_id = -1;
  /// Accumulated row count entering this step (unused for step 0).
  double rows_before = 0.0;
  /// Accumulated row count after this step — eff_rows for step 0, the
  /// capped out_rows chain for join steps.
  double rows_after = 0.0;
  /// Connecting join predicates, in the reference implementation's
  /// discovery order (query join order filtered by placement).
  std::vector<SkeletonConn> connecting;
};

struct QuerySkeleton {
  /// Content signature of the source query (QuerySignature). Memo lookups
  /// keyed by Query address validate this against the live query, so a
  /// stale entry (address reuse, in-place mutation) can never be served.
  uint64_t signature = 0;
  std::vector<SkeletonScan> scans;
  /// One entry per scan, in join order.
  std::vector<SkeletonStep> steps;
  /// ORDER BY column ordinals, in order (sort-elimination probe).
  std::vector<int> order_cols;

  int num_scans() const { return static_cast<int>(scans.size()); }
};

/// 64-bit FNV-1a content signature over everything BuildQuerySkeleton reads
/// from the query. Two queries with equal signatures are treated as
/// identical by the plan memo.
uint64_t QuerySignature(const Query& query);

/// Derives the skeleton, reading catalog statistics through `stats`. `params`
/// only contributes the filter-combination rule (exponential_backoff), which
/// is fixed per optimizer instance.
QuerySkeleton BuildQuerySkeleton(const Query& query, const StatsView& stats,
                                 const CostModelParams& params,
                                 uint64_t signature);

}  // namespace bati

#endif  // BATI_OPTIMIZER_QUERY_SKELETON_H_
