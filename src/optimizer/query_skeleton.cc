#include "optimizer/query_skeleton.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/macros.h"

namespace bati {

namespace {

uint64_t MixBits(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 0x100000001B3ULL;
  return h;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t QuerySignature(const Query& query) {
  uint64_t h = 0xCBF29CE484222325ULL;
  h = MixBits(h, static_cast<uint64_t>(query.num_scans()));
  for (const QueryScan& s : query.scans) {
    h = MixBits(h, static_cast<uint64_t>(s.table_id) + 1);
  }
  h = MixBits(h, 0xF117ULL);
  for (const BoundFilter& f : query.filters) {
    h = MixBits(h, static_cast<uint64_t>(f.scan_id) + 1);
    h = MixBits(h, static_cast<uint64_t>(f.column.table_id) + 1);
    h = MixBits(h, static_cast<uint64_t>(f.column.column_id) + 1);
    h = MixBits(h, static_cast<uint64_t>(f.kind) + 1);
    h = MixBits(h, DoubleBits(f.selectivity));
  }
  h = MixBits(h, 0x10177ULL);
  for (const BoundJoin& j : query.joins) {
    h = MixBits(h, static_cast<uint64_t>(j.left_scan) + 1);
    h = MixBits(h, static_cast<uint64_t>(j.left_column.table_id) + 1);
    h = MixBits(h, static_cast<uint64_t>(j.left_column.column_id) + 1);
    h = MixBits(h, static_cast<uint64_t>(j.right_scan) + 1);
    h = MixBits(h, static_cast<uint64_t>(j.right_column.table_id) + 1);
    h = MixBits(h, static_cast<uint64_t>(j.right_column.column_id) + 1);
  }
  auto mix_uses = [&h](const std::vector<BoundColumnUse>& uses,
                       uint64_t tag) {
    h = MixBits(h, tag);
    for (const BoundColumnUse& u : uses) {
      h = MixBits(h, static_cast<uint64_t>(u.scan_id) + 1);
      h = MixBits(h, static_cast<uint64_t>(u.column.table_id) + 1);
      h = MixBits(h, static_cast<uint64_t>(u.column.column_id) + 1);
    }
  };
  mix_uses(query.projections, 0x9120ULL);
  mix_uses(query.group_by, 0x6209ULL);
  mix_uses(query.order_by, 0x0DE2ULL);
  h = MixBits(h, query.select_star ? 0x5E1FULL : 0x5E10ULL);
  h = MixBits(h, query.has_aggregation ? 0xA660ULL : 0xA661ULL);
  return h;
}

QuerySkeleton BuildQuerySkeleton(const Query& query, const StatsView& stats,
                                 const CostModelParams& params,
                                 uint64_t signature) {
  const int n_scans = query.num_scans();
  BATI_CHECK(n_scans > 0);
  QuerySkeleton sk;
  sk.signature = signature;
  sk.scans.resize(static_cast<size_t>(n_scans));

  // Per-scan facts, mirroring the reference implementation's ScanInfo
  // gathering step for step (same arithmetic, same order).
  for (int s = 0; s < n_scans; ++s) {
    SkeletonScan& info = sk.scans[static_cast<size_t>(s)];
    info.table_id = query.scans[static_cast<size_t>(s)].table_id;
    info.base_rows = std::max(1.0, stats.table_rows(info.table_id));
    info.row_width =
        std::max(1.0, stats.table_row_width_bytes(info.table_id));
  }
  for (const BoundFilter& f : query.filters) {
    sk.scans[static_cast<size_t>(f.scan_id)].filters.push_back(
        SkeletonFilter{f.column.column_id, f.kind, f.selectivity});
  }
  for (SkeletonScan& info : sk.scans) {
    if (!params.exponential_backoff) {
      for (const SkeletonFilter& f : info.filters) {
        info.filter_selectivity *= f.selectivity;
      }
      continue;
    }
    // Exponential backoff: most selective filter fully, each further filter
    // with a square-rooted exponent (partial-correlation assumption).
    std::vector<double> sels;
    sels.reserve(info.filters.size());
    for (const SkeletonFilter& f : info.filters) {
      sels.push_back(f.selectivity);
    }
    std::sort(sels.begin(), sels.end());
    double exponent = 1.0;
    for (double s : sels) {
      info.filter_selectivity *= std::pow(s, exponent);
      exponent *= 0.5;
    }
  }

  // Required columns per scan: sorted unique union of every use. The
  // reference builds a std::set; sort+unique over a vector yields the same
  // sorted contents.
  {
    std::vector<std::vector<int>> required(static_cast<size_t>(n_scans));
    auto add_use = [&required](int scan_id, const ColumnRef& ref) {
      required[static_cast<size_t>(scan_id)].push_back(ref.column_id);
    };
    for (const BoundFilter& f : query.filters) add_use(f.scan_id, f.column);
    for (const BoundJoin& j : query.joins) {
      add_use(j.left_scan, j.left_column);
      add_use(j.right_scan, j.right_column);
    }
    for (const BoundColumnUse& u : query.projections) {
      add_use(u.scan_id, u.column);
    }
    for (const BoundColumnUse& u : query.group_by) {
      add_use(u.scan_id, u.column);
    }
    for (const BoundColumnUse& u : query.order_by) {
      add_use(u.scan_id, u.column);
    }
    for (int s = 0; s < n_scans; ++s) {
      SkeletonScan& info = sk.scans[static_cast<size_t>(s)];
      std::vector<int>& req = required[static_cast<size_t>(s)];
      if (query.select_star) {
        const int n_cols = stats.num_columns(info.table_id);
        for (int c = 0; c < n_cols; ++c) req.push_back(c);
      }
      std::sort(req.begin(), req.end());
      req.erase(std::unique(req.begin(), req.end()), req.end());
      info.required_columns = std::move(req);
    }
  }

  // Effective (post-filter) cardinalities and the greedy left-deep join
  // order: lowest eff_rows first, then connected-preferred lowest eff_rows.
  std::vector<double> eff_rows(static_cast<size_t>(n_scans));
  for (int s = 0; s < n_scans; ++s) {
    SkeletonScan& info = sk.scans[static_cast<size_t>(s)];
    info.eff_rows = std::max(1.0, info.base_rows * info.filter_selectivity);
    eff_rows[static_cast<size_t>(s)] = info.eff_rows;
  }
  std::vector<bool> placed(static_cast<size_t>(n_scans), false);
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n_scans));
  {
    int first = 0;
    for (int s = 1; s < n_scans; ++s) {
      if (eff_rows[static_cast<size_t>(s)] <
          eff_rows[static_cast<size_t>(first)]) {
        first = s;
      }
    }
    order.push_back(first);
    placed[static_cast<size_t>(first)] = true;
    while (static_cast<int>(order.size()) < n_scans) {
      int best = -1;
      bool best_connected = false;
      for (int s = 0; s < n_scans; ++s) {
        if (placed[static_cast<size_t>(s)]) continue;
        bool connected = false;
        for (const BoundJoin& j : query.joins) {
          bool touches_s = (j.left_scan == s || j.right_scan == s);
          if (!touches_s) continue;
          int other = (j.left_scan == s) ? j.right_scan : j.left_scan;
          if (placed[static_cast<size_t>(other)]) {
            connected = true;
            break;
          }
        }
        if (best < 0 || (connected && !best_connected) ||
            (connected == best_connected &&
             eff_rows[static_cast<size_t>(s)] <
                 eff_rows[static_cast<size_t>(best)])) {
          best = s;
          best_connected = connected;
        }
      }
      order.push_back(best);
      placed[static_cast<size_t>(best)] = true;
    }
  }

  // Steps: connecting joins per step (in the reference's discovery order)
  // and the accumulated-cardinality chain, which is configuration-
  // independent — join methods change costs, never out_rows.
  sk.steps.resize(order.size());
  double current_rows = 0.0;
  for (size_t step_idx = 0; step_idx < order.size(); ++step_idx) {
    const int s = order[step_idx];
    SkeletonStep& step = sk.steps[step_idx];
    step.scan_id = s;
    if (step_idx == 0) {
      current_rows = eff_rows[static_cast<size_t>(s)];
      step.rows_after = current_rows;
      continue;
    }
    step.rows_before = current_rows;
    double out_rows = current_rows * eff_rows[static_cast<size_t>(s)];
    for (const BoundJoin& j : query.joins) {
      int other = -1;
      if (j.left_scan == s) other = j.right_scan;
      if (j.right_scan == s) other = j.left_scan;
      if (other < 0) continue;
      bool other_placed = false;
      for (size_t k = 0; k < step_idx; ++k) {
        if (order[k] == other) {
          other_placed = true;
          break;
        }
      }
      if (!other_placed) continue;
      const ColumnRef& my_col =
          (j.left_scan == s) ? j.left_column : j.right_column;
      step.connecting.push_back(SkeletonConn{
          my_col.column_id,
          stats.column_ndv(my_col.table_id, my_col.column_id)});
      const double lc_ndv =
          stats.column_ndv(j.left_column.table_id, j.left_column.column_id);
      const double rc_ndv =
          stats.column_ndv(j.right_column.table_id, j.right_column.column_id);
      out_rows /= std::max({1.0, lc_ndv, rc_ndv});
    }
    out_rows = std::max(1.0, out_rows);
    current_rows = out_rows;
    step.rows_after = current_rows;
  }

  sk.order_cols.reserve(query.order_by.size());
  for (const BoundColumnUse& u : query.order_by) {
    sk.order_cols.push_back(u.column.column_id);
  }
  return sk;
}

}  // namespace bati
