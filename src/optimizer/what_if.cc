#include "optimizer/what_if.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>

#include "common/macros.h"
#include "optimizer/plan_arena.h"
#include "optimizer/what_if_internal.h"

namespace bati {

namespace {

using whatif_internal::Log2Rows;
using whatif_internal::NoiseFactor;

/// Per-thread scratch arena for a what-if call's candidate caches. One
/// call's scratch never outlives the call, so the arena resets at entry and
/// reuses its blocks forever after warm-up.
PlanArena& CallArena() {
  thread_local PlanArena arena;
  return arena;
}

/// First filter on `scan` binding `column_id` with the requested equality
/// capability — same contract and same (insertion) order as the reference
/// implementation's FindFilter.
const SkeletonFilter* FindFilter(const SkeletonScan& scan, int column_id,
                                 bool equality_capable) {
  for (const SkeletonFilter& f : scan.filters) {
    if (f.column_id != column_id) continue;
    bool is_eq =
        f.kind == FilterKind::kEquality || f.kind == FilterKind::kIn;
    if (equality_capable == is_eq) return &f;
  }
  return nullptr;
}

/// True if scanning through `ix` delivers rows ordered by the `n_order`
/// columns in `order_cols` (in sequence): the key prefix must match the
/// order columns, where positions bound by equality filters are order-free
/// and may be skipped.
bool ProvidesOrder(const Index& ix, const SkeletonScan& scan,
                   const int* order_cols, size_t n_order) {
  if (n_order == 0) return false;
  size_t oi = 0;
  for (int key : ix.key_columns) {
    if (oi < n_order && key == order_cols[oi]) {
      ++oi;
      continue;
    }
    if (FindFilter(scan, key, /*equality_capable=*/true) != nullptr) {
      continue;  // pinned to a single value: does not disturb the order
    }
    break;
  }
  return oi == n_order;
}

}  // namespace

WhatIfOptimizer::WhatIfOptimizer(std::shared_ptr<const Database> db,
                                 CostModelParams params,
                                 WhatIfOptimizerOptions options)
    : db_(std::move(db)), params_(params), options_(options) {
  BATI_CHECK(db_ != nullptr);
  // At least one join method that works without any index must remain
  // available, or join queries would have no plan.
  BATI_CHECK(params_.enable_hash_join || params_.enable_merge_join);
  stats_view_ = StatsView(*db_);
}

namespace {

/// One slot of the per-thread skeleton L1: a hit requires the same owning
/// optimizer, the same query address, the same content signature, and the
/// same memo epoch (ClearPlanMemo() bumps the epoch to drop stale slots).
struct LocalSkeletonSlot {
  const void* owner = nullptr;
  const Query* query = nullptr;
  uint64_t signature = 0;
  uint64_t epoch = 0;
  std::shared_ptr<const QuerySkeleton> skeleton;
};

/// Direct-mapped by query address; 64 slots cover a whole TPC-DS-sized
/// batch with few conflicts, and a conflict only costs a shared-memo read.
constexpr size_t kLocalSkeletonSlots = 64;

LocalSkeletonSlot& LocalSlotFor(const Query* query) {
  thread_local LocalSkeletonSlot slots[kLocalSkeletonSlots];
  const uint64_t h =
      (static_cast<uint64_t>(reinterpret_cast<uintptr_t>(query)) >> 4) *
      0x9E3779B97F4A7C15ULL;
  return slots[h >> 58];  // top log2(kLocalSkeletonSlots) bits
}

/// The stripe this thread's memo hits are counted on.
size_t HitStripeFor() {
  thread_local const size_t stripe =
      std::hash<std::thread::id>()(std::this_thread::get_id());
  return stripe;
}

}  // namespace

std::shared_ptr<const QuerySkeleton> WhatIfOptimizer::GetSkeleton(
    const Query& query) const {
  const uint64_t sig = QuerySignature(query);
  const uint64_t epoch = memo_epoch_.load(std::memory_order_acquire);
  LocalSkeletonSlot& slot = LocalSlotFor(&query);
  if (slot.owner == this && slot.query == &query && slot.signature == sig &&
      slot.epoch == epoch) {
    memo_hits_[HitStripeFor() % kMemoHitStripes].count.fetch_add(
        1, std::memory_order_relaxed);
    return slot.skeleton;
  }
  std::shared_ptr<const QuerySkeleton> sk;
  {
    std::shared_lock<std::shared_mutex> lock(memo_mu_);
    auto it = memo_.find(&query);
    if (it != memo_.end() && it->second->signature == sig) {
      memo_hits_[HitStripeFor() % kMemoHitStripes].count.fetch_add(
          1, std::memory_order_relaxed);
      sk = it->second;
    }
  }
  if (sk == nullptr) {
    memo_misses_.fetch_add(1, std::memory_order_relaxed);
    sk = std::make_shared<const QuerySkeleton>(
        BuildQuerySkeleton(query, stats_view_, params_, sig));
    std::unique_lock<std::shared_mutex> lock(memo_mu_);
    auto [it, inserted] = memo_.insert_or_assign(&query, sk);
    // Two threads can race to build the same skeleton; both results are
    // identical (the build is pure), so last-write-wins is fine.
    sk = it->second;
  }
  slot.owner = this;
  slot.query = &query;
  slot.signature = sig;
  slot.epoch = epoch;
  slot.skeleton = sk;
  return sk;
}

PlanMemoStats WhatIfOptimizer::memo_stats() const {
  PlanMemoStats stats;
  for (const HitStripe& s : memo_hits_) {
    stats.hits += s.count.load(std::memory_order_relaxed);
  }
  stats.misses = memo_misses_.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(memo_mu_);
  stats.entries = static_cast<int64_t>(memo_.size());
  return stats;
}

void WhatIfOptimizer::ClearPlanMemo() const {
  std::unique_lock<std::shared_mutex> lock(memo_mu_);
  memo_.clear();
  // Release: a thread observing the new epoch must also observe the clear.
  memo_epoch_.fetch_add(1, std::memory_order_release);
}

PlanExplanation WhatIfOptimizer::Explain(
    const Query& query, const std::vector<Index>& config) const {
  if (!options_.use_fast_path) return ExplainReference(query, config);
  std::shared_ptr<const QuerySkeleton> sk = GetSkeleton(query);
  return ExplainFast(*sk, query, config);
}

PlanExplanation WhatIfOptimizer::ExplainFast(
    const QuerySkeleton& sk, const Query& query,
    const std::vector<Index>& config) const {
  const CostModelParams& p = params_;
  const StatsView& sv = stats_view_;
  const size_t n_config = config.size();

  // Per-call scratch: a lazily filled leaf-bytes cache (per index) and a
  // per-step covers cache (per index, reset at each step). Leaf bytes and
  // covers checks are the only per-index derived values the cost loops
  // read more than once.
  PlanArena& arena = CallArena();
  arena.Reset();
  double* leaf_cache = arena.AllocArray<double>(n_config);
  int8_t* covers_cache = arena.AllocArray<int8_t>(n_config);
  for (size_t i = 0; i < n_config; ++i) leaf_cache[i] = -1.0;
  auto leaf_of = [&](size_t pos) -> double {
    double v = leaf_cache[pos];
    if (v < 0.0) {
      v = config[pos].LeafRowBytes(sv);
      leaf_cache[pos] = v;
    }
    return v;
  };
  const SkeletonScan* cur = nullptr;
  auto covers_of = [&](size_t pos) -> bool {
    int8_t v = covers_cache[pos];
    if (v < 0) {
      v = config[pos].Covers(cur->required_columns) ? 1 : 0;
      covers_cache[pos] = v;
    }
    return v != 0;
  };

  // Bulk access path for the current scan: min over heap + applicable
  // indexes — the reference's bulk_access, reading skeleton + caches.
  struct BulkChoice {
    double cost;
    AccessPathKind kind;
    int index_pos;
  };
  auto bulk_access = [&]() -> BulkChoice {
    const SkeletonScan& info = *cur;
    double heap_pages = info.base_rows * info.row_width / p.page_bytes;
    BulkChoice best{heap_pages + info.base_rows * p.cpu_per_row,
                    AccessPathKind::kHeapScan, -1};
    for (size_t pos = 0; pos < n_config; ++pos) {
      const Index& ix = config[pos];
      if (ix.table_id != info.table_id) continue;
      double leaf = leaf_of(pos);
      bool covers = covers_of(pos);
      // Match a sargable key prefix against the scan's filters.
      double prefix_sel = 1.0;
      bool matched_any = false;
      for (int key_col : ix.key_columns) {
        const SkeletonFilter* eq = FindFilter(info, key_col, /*eq=*/true);
        if (eq != nullptr) {
          prefix_sel *= eq->selectivity;
          matched_any = true;
          continue;
        }
        const SkeletonFilter* range =
            FindFilter(info, key_col, /*eq=*/false);
        if (range != nullptr && (range->kind == FilterKind::kRange)) {
          prefix_sel *= range->selectivity;
          matched_any = true;
        }
        break;  // prefix ends at the first non-equality position
      }
      if (matched_any) {
        double fetched = info.base_rows * prefix_sel;
        double cost = p.seek_cost + fetched * leaf / p.page_bytes +
                      fetched * p.cpu_per_row;
        if (!covers) cost += fetched * p.lookup_cost_per_row;
        if (cost < best.cost) {
          best = {cost, AccessPathKind::kIndexSeek, static_cast<int>(pos)};
        }
      } else if (covers) {
        // Index-only scan of the full (narrower) leaf level.
        double cost = info.base_rows * leaf / p.page_bytes +
                      info.base_rows * p.cpu_per_row;
        if (cost < best.cost) {
          best = {cost, AccessPathKind::kIndexOnlyScan,
                  static_cast<int>(pos)};
        }
      }
    }
    return best;
  };

  // ---- Walk the memoized join order, choosing access paths and join
  // methods (the only configuration-dependent work). ----
  PlanExplanation plan;
  plan.steps.reserve(sk.steps.size());
  double total = 0.0;
  double current_rows = 0.0;
  bool sort_eliminated = false;
  for (size_t step_idx = 0; step_idx < sk.steps.size(); ++step_idx) {
    const SkeletonStep& st = sk.steps[step_idx];
    const SkeletonScan& info = sk.scans[static_cast<size_t>(st.scan_id)];
    cur = &info;
    for (size_t i = 0; i < n_config; ++i) covers_cache[i] = -1;
    PlanStep step;
    step.scan_id = st.scan_id;

    if (step_idx == 0) {
      BulkChoice choice = bulk_access();
      step.access = choice.kind;
      step.index_pos = choice.index_pos;
      step.step_cost = choice.cost;
      current_rows = info.eff_rows;
      // Single-table queries with ORDER BY: an order-providing index can
      // eliminate the final sort, so pick the access path by the joint cost
      // access + (sort unless ordered). A joint minimum keeps the model
      // monotone in the configuration.
      if (sk.num_scans() == 1 && !sk.order_cols.empty()) {
        double out = info.eff_rows;
        double sort_cost = out * Log2Rows(out) * p.sort_per_row_log;
        double best_joint = choice.cost + sort_cost;
        bool best_ordered = false;
        for (size_t pos = 0; pos < n_config; ++pos) {
          const Index& ix = config[pos];
          if (ix.table_id != info.table_id) continue;
          if (!ProvidesOrder(ix, info, sk.order_cols.data(),
                             sk.order_cols.size())) {
            continue;
          }
          double leaf = leaf_of(pos);
          bool covers = covers_of(pos);
          double cost = info.base_rows * leaf / p.page_bytes +
                        info.base_rows * p.cpu_per_row;
          if (!covers) {
            // Every row must be looked up to produce the missing columns.
            cost += info.base_rows * p.lookup_cost_per_row;
          }
          if (cost < best_joint) {  // no sort term: order comes for free
            best_joint = cost;
            best_ordered = true;
            step.access = covers ? AccessPathKind::kIndexOnlyScan
                                 : AccessPathKind::kIndexSeek;
            step.index_pos = static_cast<int>(pos);
          }
        }
        if (best_ordered) {
          step.step_cost = best_joint;
          sort_eliminated = true;
        }
      }
    } else {
      // Output cardinality after this join comes precomputed: it is
      // independent of join method and configuration.
      const double out_rows = st.rows_after;

      // Option 1: hash join over the best bulk access.
      BulkChoice bulk = bulk_access();
      double best_cost = std::numeric_limits<double>::infinity();
      JoinMethod best_method = JoinMethod::kHashJoin;
      AccessPathKind best_access = bulk.kind;
      int best_index_pos = bulk.index_pos;
      if (p.enable_hash_join) {
        best_cost = bulk.cost + info.eff_rows * p.hash_build_per_row +
                    current_rows * p.hash_probe_per_row;
      }

      // Option 1b: sort-merge join. The accumulated left side always pays a
      // sort; the new scan avoids its sort when an index delivers rows
      // ordered by the join column (its key prefix, with equality-bound
      // positions skippable, starts with that column).
      if (p.enable_merge_join && !st.connecting.empty()) {
        double right_rows = info.eff_rows;
        double right_sorted =
            bulk.cost + right_rows * Log2Rows(right_rows) * p.sort_per_row_log;
        AccessPathKind merge_access = bulk.kind;
        int merge_index_pos = bulk.index_pos;
        for (size_t pos = 0; pos < n_config; ++pos) {
          const Index& ix = config[pos];
          if (ix.table_id != info.table_id) continue;
          bool ordered = false;
          for (const SkeletonConn& cj : st.connecting) {
            if (ProvidesOrder(ix, info, &cj.column_id, 1)) {
              ordered = true;
              break;
            }
          }
          if (!ordered) continue;
          // Full ordered retrieval through this index (no sort needed).
          double leaf = leaf_of(pos);
          bool covers = covers_of(pos);
          double cost = info.base_rows * leaf / p.page_bytes +
                        info.base_rows * p.cpu_per_row;
          if (!covers) {
            // Every row must be looked up to produce the missing columns.
            cost += info.base_rows * p.lookup_cost_per_row;
          }
          if (cost < right_sorted) {
            right_sorted = cost;
            merge_access = covers ? AccessPathKind::kIndexOnlyScan
                                  : AccessPathKind::kIndexSeek;
            merge_index_pos = static_cast<int>(pos);
          }
        }
        double left_sort =
            current_rows * Log2Rows(current_rows) * p.sort_per_row_log;
        double merge_cost = right_sorted + left_sort +
                            (current_rows + right_rows) * p.merge_per_row;
        if (merge_cost < best_cost) {
          best_cost = merge_cost;
          best_method = JoinMethod::kMergeJoin;
          best_access = merge_access;
          best_index_pos = merge_index_pos;
        }
      }

      // Option 2: index nested loops, if some index on s starts with (an
      // equality-filter-extended prefix ending in) a connecting join column.
      if (p.enable_index_nested_loop && !st.connecting.empty()) {
        for (size_t pos = 0; pos < n_config; ++pos) {
          const Index& ix = config[pos];
          if (ix.table_id != info.table_id) continue;
          // Walk the key prefix: equality filters may fill leading
          // positions, then a join column must appear.
          double prefix_sel = 1.0;
          const SkeletonConn* used_join = nullptr;
          for (int key_col : ix.key_columns) {
            const SkeletonFilter* eq = FindFilter(info, key_col, /*eq=*/true);
            if (eq != nullptr) {
              prefix_sel *= eq->selectivity;
              continue;
            }
            for (const SkeletonConn& cj : st.connecting) {
              if (cj.column_id == key_col) {
                used_join = &cj;
                break;
              }
            }
            break;
          }
          if (used_join == nullptr) continue;
          double matched_per_probe =
              std::max(1.0, info.base_rows * prefix_sel /
                                std::max(1.0, used_join->ndv));
          double leaf = leaf_of(pos);
          bool covers = covers_of(pos);
          double per_probe = p.seek_cost * 0.02 + p.nlj_probe_overhead +
                             matched_per_probe *
                                 (leaf / p.page_bytes + p.cpu_per_row);
          if (!covers) per_probe += matched_per_probe * p.lookup_cost_per_row;
          double inl_cost = current_rows * per_probe;
          if (inl_cost < best_cost) {
            best_cost = inl_cost;
            best_method = JoinMethod::kIndexNestedLoop;
            best_access = AccessPathKind::kIndexSeek;
            best_index_pos = static_cast<int>(pos);
          }
        }
      }

      step.access = best_access;
      step.index_pos = best_index_pos;
      step.join = best_method;
      step.step_cost = best_cost;
      current_rows = out_rows;
    }
    total += step.step_cost;
    step.output_rows = current_rows;
    plan.steps.push_back(step);
  }

  // ---- Post-processing: aggregation, ordering, output. ----
  double post = 0.0;
  if (query.has_aggregation) post += current_rows * p.hash_agg_per_row;
  if (!query.order_by.empty() && !sort_eliminated) {
    post += current_rows * Log2Rows(current_rows) * p.sort_per_row_log;
  }
  post += current_rows * p.output_per_row;
  plan.post_processing_cost = post;
  total += post;

  if (p.monotonicity_noise > 0.0) {
    total *= NoiseFactor(query, config, p.monotonicity_noise);
  }
  plan.total_cost = total;
  return plan;
}

double WhatIfOptimizer::Cost(const Query& query,
                             const std::vector<Index>& config) const {
  return Explain(query, config).total_cost;
}

double WhatIfOptimizer::EstimateCallSeconds(const Query& query) const {
  // A what-if call runs a full optimization cycle; its latency grows with
  // the plan-search space (joins dominate). Constants are fitted so that
  // TPC-DS-like queries (~8.8 scans) land near the ~1 s/call that the paper
  // reports for SQL Server 2017.
  return 0.12 + 0.085 * query.num_scans() + 0.02 * query.num_filters() +
         0.01 * query.num_joins();
}

}  // namespace bati
