#ifndef BATI_OPTIMIZER_WHAT_IF_INTERNAL_H_
#define BATI_OPTIMIZER_WHAT_IF_INTERNAL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "storage/index.h"
#include "workload/query.h"

namespace bati {
namespace whatif_internal {

/// Helpers shared bit-for-bit by the fast path (what_if.cc) and the
/// reference implementation (what_if_reference.cc). One definition keeps
/// the two paths' arithmetic from ever drifting apart.

inline double Log2Rows(double rows) { return std::log2(std::max(2.0, rows)); }

/// Deterministic hash-based noise factor keyed on query and configuration,
/// used only when CostModelParams::monotonicity_noise > 0.
inline double NoiseFactor(const Query& q, const std::vector<Index>& config,
                          double amplitude) {
  uint64_t h = 0x9E3779B97F4A7C15ULL ^ static_cast<uint64_t>(q.id);
  for (const Index& ix : config) {
    h ^= ix.Hash();
    h *= 0x100000001B3ULL;
  }
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
  return 1.0 + amplitude * (2.0 * u - 1.0);
}

}  // namespace whatif_internal
}  // namespace bati

#endif  // BATI_OPTIMIZER_WHAT_IF_INTERNAL_H_
