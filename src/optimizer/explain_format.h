#ifndef BATI_OPTIMIZER_EXPLAIN_FORMAT_H_
#define BATI_OPTIMIZER_EXPLAIN_FORMAT_H_

#include <string>
#include <vector>

#include "optimizer/what_if.h"
#include "storage/index.h"
#include "workload/query.h"

namespace bati {

/// Human-readable names for plan enums.
std::string AccessPathName(AccessPathKind kind);
std::string JoinMethodName(JoinMethod method);

/// Renders a plan explanation as indented text, e.g.
///
///   SELECT ... (cost=1234.5)
///     scan dim       heap scan                         rows=38
///     join sensors   index seek via ix_... [INL]       rows=1250
///     post-processing cost=3.2
///
/// `config` must be the configuration the plan was explained against (index
/// positions in the plan refer into it).
std::string FormatPlan(const Database& db, const Query& query,
                       const std::vector<Index>& config,
                       const PlanExplanation& plan);

}  // namespace bati

#endif  // BATI_OPTIMIZER_EXPLAIN_FORMAT_H_
