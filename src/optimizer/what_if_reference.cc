// The pre-refactor what-if implementation, preserved verbatim as the
// bit-identity oracle for the fast path in what_if.cc: for every
// (query, configuration), Explain() must equal ExplainReference() byte for
// byte (tests/whatif_fastpath_test.cc holds the two to that). Nothing here
// is reachable from the hot path unless WhatIfOptimizerOptions
// {.use_fast_path = false} selects it.

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/macros.h"
#include "optimizer/what_if.h"
#include "optimizer/what_if_internal.h"

namespace bati {

namespace {

using whatif_internal::Log2Rows;
using whatif_internal::NoiseFactor;

/// Per-scan compile-time facts extracted once per Cost() call.
struct ScanInfo {
  int table_id = -1;
  double base_rows = 0.0;
  double row_width = 0.0;
  /// Product of all filter selectivities on this scan.
  double filter_selectivity = 1.0;
  /// Column ordinals (within the table) this query needs from the scan.
  std::vector<int> required_columns;
  /// Filters on this scan.
  std::vector<const BoundFilter*> filters;
};

/// Equality-capable filter lookup: equality and IN filters can bind any key
/// prefix position; a range filter can bind only the last matched position.
const BoundFilter* FindFilter(const ScanInfo& scan, int column_id,
                              bool equality_capable) {
  for (const BoundFilter* f : scan.filters) {
    if (f->column.column_id != column_id) continue;
    bool is_eq =
        f->kind == FilterKind::kEquality || f->kind == FilterKind::kIn;
    if (equality_capable == is_eq) return f;
  }
  return nullptr;
}

/// True if scanning through `ix` delivers rows ordered by `order_cols` (in
/// sequence): the key prefix must match the order columns, where positions
/// bound by equality filters are order-free and may be skipped.
bool ProvidesOrder(const Index& ix, const ScanInfo& scan,
                   const std::vector<int>& order_cols) {
  if (order_cols.empty()) return false;
  size_t oi = 0;
  for (int key : ix.key_columns) {
    if (oi < order_cols.size() && key == order_cols[oi]) {
      ++oi;
      continue;
    }
    if (FindFilter(scan, key, /*equality_capable=*/true) != nullptr) {
      continue;  // pinned to a single value: does not disturb the order
    }
    break;
  }
  return oi == order_cols.size();
}

}  // namespace

PlanExplanation WhatIfOptimizer::ExplainReference(
    const Query& query, const std::vector<Index>& config) const {
  const CostModelParams& p = params_;
  const Database& db = *db_;
  const int n_scans = query.num_scans();
  BATI_CHECK(n_scans > 0);

  // ---- Gather per-scan info (configuration-independent). ----
  std::vector<ScanInfo> scans(static_cast<size_t>(n_scans));
  for (int s = 0; s < n_scans; ++s) {
    ScanInfo& info = scans[static_cast<size_t>(s)];
    info.table_id = query.scans[static_cast<size_t>(s)].table_id;
    const Table& t = db.table(info.table_id);
    info.base_rows = std::max(1.0, t.row_count());
    info.row_width = std::max(1.0, t.RowWidthBytes());
  }
  for (const BoundFilter& f : query.filters) {
    ScanInfo& info = scans[static_cast<size_t>(f.scan_id)];
    info.filters.push_back(&f);
  }
  for (ScanInfo& info : scans) {
    if (!p.exponential_backoff) {
      for (const BoundFilter* f : info.filters) {
        info.filter_selectivity *= f->selectivity;
      }
      continue;
    }
    // Exponential backoff: most selective filter fully, each further filter
    // with a square-rooted exponent (partial-correlation assumption).
    std::vector<double> sels;
    sels.reserve(info.filters.size());
    for (const BoundFilter* f : info.filters) sels.push_back(f->selectivity);
    std::sort(sels.begin(), sels.end());
    double exponent = 1.0;
    for (double s : sels) {
      info.filter_selectivity *= std::pow(s, exponent);
      exponent *= 0.5;
    }
  }
  // Required columns per scan.
  {
    std::vector<std::set<int>> required(static_cast<size_t>(n_scans));
    auto add_use = [&](int scan_id, const ColumnRef& ref) {
      required[static_cast<size_t>(scan_id)].insert(ref.column_id);
    };
    for (const BoundFilter& f : query.filters) add_use(f.scan_id, f.column);
    for (const BoundJoin& j : query.joins) {
      add_use(j.left_scan, j.left_column);
      add_use(j.right_scan, j.right_column);
    }
    for (const BoundColumnUse& u : query.projections) {
      add_use(u.scan_id, u.column);
    }
    for (const BoundColumnUse& u : query.group_by) add_use(u.scan_id, u.column);
    for (const BoundColumnUse& u : query.order_by) add_use(u.scan_id, u.column);
    for (int s = 0; s < n_scans; ++s) {
      ScanInfo& info = scans[static_cast<size_t>(s)];
      if (query.select_star) {
        const Table& t = db.table(info.table_id);
        for (int c = 0; c < t.num_columns(); ++c) {
          required[static_cast<size_t>(s)].insert(c);
        }
      }
      info.required_columns.assign(required[static_cast<size_t>(s)].begin(),
                                   required[static_cast<size_t>(s)].end());
    }
  }

  // ---- Bulk access path per scan: min over heap + applicable indexes. ----
  // Returns {cost, access kind, index position}.
  struct BulkChoice {
    double cost;
    AccessPathKind kind;
    int index_pos;
  };
  auto bulk_access = [&](int s) -> BulkChoice {
    const ScanInfo& info = scans[static_cast<size_t>(s)];
    double heap_pages = info.base_rows * info.row_width / p.page_bytes;
    BulkChoice best{heap_pages + info.base_rows * p.cpu_per_row,
                    AccessPathKind::kHeapScan, -1};
    for (size_t pos = 0; pos < config.size(); ++pos) {
      const Index& ix = config[pos];
      if (ix.table_id != info.table_id) continue;
      double leaf = ix.LeafRowBytes(db);
      bool covers = ix.Covers(info.required_columns);
      // Match a sargable key prefix against the scan's filters.
      double prefix_sel = 1.0;
      bool matched_any = false;
      for (int key_col : ix.key_columns) {
        const BoundFilter* eq = FindFilter(info, key_col, /*eq=*/true);
        if (eq != nullptr) {
          prefix_sel *= eq->selectivity;
          matched_any = true;
          continue;
        }
        const BoundFilter* range = FindFilter(info, key_col, /*eq=*/false);
        if (range != nullptr &&
            (range->kind == FilterKind::kRange)) {
          prefix_sel *= range->selectivity;
          matched_any = true;
        }
        break;  // prefix ends at the first non-equality position
      }
      if (matched_any) {
        double fetched = info.base_rows * prefix_sel;
        double cost = p.seek_cost + fetched * leaf / p.page_bytes +
                      fetched * p.cpu_per_row;
        if (!covers) cost += fetched * p.lookup_cost_per_row;
        if (cost < best.cost) {
          best = {cost, AccessPathKind::kIndexSeek, static_cast<int>(pos)};
        }
      } else if (covers) {
        // Index-only scan of the full (narrower) leaf level.
        double cost = info.base_rows * leaf / p.page_bytes +
                      info.base_rows * p.cpu_per_row;
        if (cost < best.cost) {
          best = {cost, AccessPathKind::kIndexOnlyScan,
                  static_cast<int>(pos)};
        }
      }
    }
    return best;
  };

  // ---- Join order: configuration-independent greedy left-deep order on
  // effective (post-filter) cardinalities. ----
  std::vector<double> eff_rows(static_cast<size_t>(n_scans));
  for (int s = 0; s < n_scans; ++s) {
    eff_rows[static_cast<size_t>(s)] =
        std::max(1.0, scans[static_cast<size_t>(s)].base_rows *
                          scans[static_cast<size_t>(s)].filter_selectivity);
  }
  std::vector<bool> placed(static_cast<size_t>(n_scans), false);
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n_scans));
  {
    int first = 0;
    for (int s = 1; s < n_scans; ++s) {
      if (eff_rows[static_cast<size_t>(s)] <
          eff_rows[static_cast<size_t>(first)]) {
        first = s;
      }
    }
    order.push_back(first);
    placed[static_cast<size_t>(first)] = true;
    while (static_cast<int>(order.size()) < n_scans) {
      int best = -1;
      bool best_connected = false;
      for (int s = 0; s < n_scans; ++s) {
        if (placed[static_cast<size_t>(s)]) continue;
        bool connected = false;
        for (const BoundJoin& j : query.joins) {
          bool touches_s = (j.left_scan == s || j.right_scan == s);
          if (!touches_s) continue;
          int other = (j.left_scan == s) ? j.right_scan : j.left_scan;
          if (placed[static_cast<size_t>(other)]) {
            connected = true;
            break;
          }
        }
        if (best < 0 ||
            (connected && !best_connected) ||
            (connected == best_connected &&
             eff_rows[static_cast<size_t>(s)] <
                 eff_rows[static_cast<size_t>(best)])) {
          best = s;
          best_connected = connected;
        }
      }
      order.push_back(best);
      placed[static_cast<size_t>(best)] = true;
    }
  }

  // ---- Walk the join order, choosing access paths and join methods. ----
  PlanExplanation plan;
  double total = 0.0;
  double current_rows = 0.0;
  bool sort_eliminated = false;
  for (size_t step_idx = 0; step_idx < order.size(); ++step_idx) {
    int s = order[step_idx];
    const ScanInfo& info = scans[static_cast<size_t>(s)];
    PlanStep step;
    step.scan_id = s;

    if (step_idx == 0) {
      BulkChoice choice = bulk_access(s);
      step.access = choice.kind;
      step.index_pos = choice.index_pos;
      step.step_cost = choice.cost;
      current_rows = eff_rows[static_cast<size_t>(s)];
      // Single-table queries with ORDER BY: an order-providing index can
      // eliminate the final sort, so pick the access path by the joint cost
      // access + (sort unless ordered). A joint minimum keeps the model
      // monotone in the configuration.
      if (n_scans == 1 && !query.order_by.empty()) {
        std::vector<int> order_cols;
        for (const BoundColumnUse& u : query.order_by) {
          order_cols.push_back(u.column.column_id);
        }
        double out = eff_rows[static_cast<size_t>(s)];
        double sort_cost = out * Log2Rows(out) * p.sort_per_row_log;
        double best_joint = choice.cost + sort_cost;
        bool best_ordered = false;
        for (size_t pos = 0; pos < config.size(); ++pos) {
          const Index& ix = config[pos];
          if (ix.table_id != info.table_id) continue;
          if (!ProvidesOrder(ix, info, order_cols)) continue;
          double leaf = ix.LeafRowBytes(db);
          bool covers = ix.Covers(info.required_columns);
          double cost = info.base_rows * leaf / p.page_bytes +
                        info.base_rows * p.cpu_per_row;
          if (!covers) {
            // Every row must be looked up to produce the missing columns.
            cost += info.base_rows * p.lookup_cost_per_row;
          }
          if (cost < best_joint) {  // no sort term: order comes for free
            best_joint = cost;
            best_ordered = true;
            step.access = covers ? AccessPathKind::kIndexOnlyScan
                                 : AccessPathKind::kIndexSeek;
            step.index_pos = static_cast<int>(pos);
          }
        }
        if (best_ordered) {
          step.step_cost = best_joint;
          sort_eliminated = true;
        }
      }
    } else {
      // Join predicates connecting s to the scans placed so far.
      std::vector<const BoundJoin*> connecting;
      for (const BoundJoin& j : query.joins) {
        int other = -1;
        if (j.left_scan == s) other = j.right_scan;
        if (j.right_scan == s) other = j.left_scan;
        if (other < 0) continue;
        for (size_t k = 0; k < step_idx; ++k) {
          if (order[k] == other) {
            connecting.push_back(&j);
            break;
          }
        }
      }

      // Output cardinality after this join (independent of method).
      double out_rows = current_rows * eff_rows[static_cast<size_t>(s)];
      for (const BoundJoin* j : connecting) {
        const Column& lc = db.column(j->left_column);
        const Column& rc = db.column(j->right_column);
        out_rows /= std::max({1.0, lc.stats.ndv, rc.stats.ndv});
      }
      out_rows = std::max(1.0, out_rows);

      // Option 1: hash join over the best bulk access.
      BulkChoice bulk = bulk_access(s);
      double best_cost = std::numeric_limits<double>::infinity();
      JoinMethod best_method = JoinMethod::kHashJoin;
      AccessPathKind best_access = bulk.kind;
      int best_index_pos = bulk.index_pos;
      if (p.enable_hash_join) {
        best_cost = bulk.cost +
                    eff_rows[static_cast<size_t>(s)] * p.hash_build_per_row +
                    current_rows * p.hash_probe_per_row;
      }

      // Option 1b: sort-merge join. The accumulated left side always pays a
      // sort; the new scan avoids its sort when an index delivers rows
      // ordered by the join column (its key prefix, with equality-bound
      // positions skippable, starts with that column).
      if (p.enable_merge_join && !connecting.empty()) {
        double right_rows = eff_rows[static_cast<size_t>(s)];
        double right_sorted = bulk.cost + right_rows *
                                              Log2Rows(right_rows) *
                                              p.sort_per_row_log;
        AccessPathKind merge_access = bulk.kind;
        int merge_index_pos = bulk.index_pos;
        for (size_t pos = 0; pos < config.size(); ++pos) {
          const Index& ix = config[pos];
          if (ix.table_id != info.table_id) continue;
          bool ordered = false;
          for (const BoundJoin* j : connecting) {
            const ColumnRef& my_col =
                (j->left_scan == s) ? j->left_column : j->right_column;
            if (ProvidesOrder(ix, info, {my_col.column_id})) {
              ordered = true;
              break;
            }
          }
          if (!ordered) continue;
          // Full ordered retrieval through this index (no sort needed).
          double leaf = ix.LeafRowBytes(db);
          bool covers = ix.Covers(info.required_columns);
          double cost = info.base_rows * leaf / p.page_bytes +
                        info.base_rows * p.cpu_per_row;
          if (!covers) {
            // Every row must be looked up to produce the missing columns.
            cost += info.base_rows * p.lookup_cost_per_row;
          }
          if (cost < right_sorted) {
            right_sorted = cost;
            merge_access = covers ? AccessPathKind::kIndexOnlyScan
                                  : AccessPathKind::kIndexSeek;
            merge_index_pos = static_cast<int>(pos);
          }
        }
        double left_sort =
            current_rows * Log2Rows(current_rows) * p.sort_per_row_log;
        double merge_cost = right_sorted + left_sort +
                            (current_rows + right_rows) * p.merge_per_row;
        if (merge_cost < best_cost) {
          best_cost = merge_cost;
          best_method = JoinMethod::kMergeJoin;
          best_access = merge_access;
          best_index_pos = merge_index_pos;
        }
      }

      // Option 2: index nested loops, if some index on s starts with (an
      // equality-filter-extended prefix ending in) a connecting join column.
      if (p.enable_index_nested_loop && !connecting.empty()) {
        for (size_t pos = 0; pos < config.size(); ++pos) {
          const Index& ix = config[pos];
          if (ix.table_id != info.table_id) continue;
          // Walk the key prefix: equality filters may fill leading
          // positions, then a join column must appear.
          double prefix_sel = 1.0;
          const BoundJoin* used_join = nullptr;
          for (int key_col : ix.key_columns) {
            const BoundFilter* eq = FindFilter(info, key_col, /*eq=*/true);
            if (eq != nullptr) {
              prefix_sel *= eq->selectivity;
              continue;
            }
            for (const BoundJoin* j : connecting) {
              const ColumnRef& my_col =
                  (j->left_scan == s) ? j->left_column : j->right_column;
              if (my_col.column_id == key_col) {
                used_join = j;
                break;
              }
            }
            break;
          }
          if (used_join == nullptr) continue;
          const ColumnRef& my_col = (used_join->left_scan == s)
                                        ? used_join->left_column
                                        : used_join->right_column;
          const Column& jc = db.column(my_col);
          double matched_per_probe =
              std::max(1.0, info.base_rows * prefix_sel /
                                std::max(1.0, jc.stats.ndv));
          double leaf = ix.LeafRowBytes(db);
          bool covers = ix.Covers(info.required_columns);
          double per_probe = p.seek_cost * 0.02 + p.nlj_probe_overhead +
                             matched_per_probe *
                                 (leaf / p.page_bytes + p.cpu_per_row);
          if (!covers) per_probe += matched_per_probe * p.lookup_cost_per_row;
          double inl_cost = current_rows * per_probe;
          if (inl_cost < best_cost) {
            best_cost = inl_cost;
            best_method = JoinMethod::kIndexNestedLoop;
            best_access = AccessPathKind::kIndexSeek;
            best_index_pos = static_cast<int>(pos);
          }
        }
      }

      step.access = best_access;
      step.index_pos = best_index_pos;
      step.join = best_method;
      step.step_cost = best_cost;
      current_rows = out_rows;
    }
    total += step.step_cost;
    step.output_rows = current_rows;
    plan.steps.push_back(step);
  }

  // ---- Post-processing: aggregation, ordering, output. ----
  double post = 0.0;
  if (query.has_aggregation) post += current_rows * p.hash_agg_per_row;
  if (!query.order_by.empty() && !sort_eliminated) {
    post += current_rows * Log2Rows(current_rows) * p.sort_per_row_log;
  }
  post += current_rows * p.output_per_row;
  plan.post_processing_cost = post;
  total += post;

  if (p.monotonicity_noise > 0.0) {
    total *= NoiseFactor(query, config, p.monotonicity_noise);
  }
  plan.total_cost = total;
  return plan;
}

}  // namespace bati
