#ifndef BATI_OPTIMIZER_COST_MODEL_H_
#define BATI_OPTIMIZER_COST_MODEL_H_

namespace bati {

/// Tunable constants of the what-if cost model. Costs are expressed in
/// "page units": sequentially reading one 8 KB page costs 1.0; CPU and random
/// I/O terms are scaled relative to that, mirroring how real optimizers
/// (System R descendants, SQL Server, PostgreSQL) parameterize their models.
struct CostModelParams {
  /// Page size used to convert byte volumes into page units.
  double page_bytes = 8192.0;

  /// CPU cost charged per row flowing through an operator.
  double cpu_per_row = 0.001;

  /// Fixed cost of one B+-tree root-to-leaf descent.
  double seek_cost = 3.0;

  /// Random-I/O cost per row for RID/bookmark lookups when a non-covering
  /// index seek must fetch the remaining columns from the heap.
  double lookup_cost_per_row = 0.25;

  /// Hash-join build cost per build-side row.
  double hash_build_per_row = 0.0020;

  /// Hash-join probe cost per probe-side row.
  double hash_probe_per_row = 0.0010;

  /// Index-nested-loop overhead per outer probe (on top of the inner seek).
  double nlj_probe_overhead = 0.0020;

  /// Sort cost per row per log2(rows).
  double sort_per_row_log = 0.0004;

  /// Hash-aggregation cost per input row.
  double hash_agg_per_row = 0.0010;

  /// Cost per output row delivered to the client.
  double output_per_row = 0.0002;

  /// Merge-join per-row cost for the merge phase (sorting is charged via
  /// sort_per_row_log unless an index already provides the order).
  double merge_per_row = 0.0008;

  /// Correlated-filter handling: when true, a scan's combined filter
  /// selectivity uses exponential backoff (SQL Server 2014+ style): sort
  /// selectivities ascending and combine s0 * s1^(1/2) * s2^(1/4) * ...,
  /// assuming partial correlation instead of full independence. Affects
  /// cardinalities only, so monotonicity is unaffected.
  bool exponential_backoff = false;

  /// Join-method toggles (ablation knobs; all enabled by default).
  bool enable_hash_join = true;
  bool enable_merge_join = true;
  bool enable_index_nested_loop = true;

  /// Optional multiplicative noise amplitude in [0, 1). When positive, each
  /// what-if cost is perturbed by a deterministic pseudo-random factor in
  /// [1-noise, 1+noise] keyed on (query, configuration). This deliberately
  /// breaks Assumption 1 (monotonicity) so tests and ablations can study
  /// tuner robustness against non-monotone optimizer cost models.
  double monotonicity_noise = 0.0;
};

}  // namespace bati

#endif  // BATI_OPTIMIZER_COST_MODEL_H_
