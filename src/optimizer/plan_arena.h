#ifndef BATI_OPTIMIZER_PLAN_ARENA_H_
#define BATI_OPTIMIZER_PLAN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace bati {

/// Bump allocator for per-what-if-call plan scratch (access-path candidate
/// tables, leaf-byte and covers caches). A call allocates a handful of small
/// arrays, uses them for microseconds, and drops them; going through the
/// heap for that puts malloc/free on the hottest path in the engine. The
/// arena hands out pointers by bumping a cursor through geometrically
/// growing blocks; Reset() rewinds the cursor but keeps every block, so a
/// warmed-up arena allocates without touching the allocator at all.
///
/// Only trivial types are supported (no destructors run). Not thread-safe;
/// the optimizer keeps one arena per thread.
class PlanArena {
 public:
  static constexpr size_t kDefaultBlockBytes = size_t{1} << 16;

  explicit PlanArena(size_t first_block_bytes = kDefaultBlockBytes)
      : first_block_bytes_(first_block_bytes == 0 ? kDefaultBlockBytes
                                                  : first_block_bytes) {}

  PlanArena(const PlanArena&) = delete;
  PlanArena& operator=(const PlanArena&) = delete;

  /// `bytes` of storage aligned to `align` (a power of two). The returned
  /// memory is uninitialized and valid until the next Reset().
  void* AllocBytes(size_t bytes, size_t align) {
    if (bytes == 0) bytes = 1;
    while (true) {
      if (block_ < blocks_.size()) {
        Block& b = blocks_[block_];
        const uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
        const uintptr_t aligned =
            (base + offset_ + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
        const size_t new_offset = static_cast<size_t>(aligned - base) + bytes;
        if (new_offset <= b.size) {
          offset_ = new_offset;
          used_bytes_ += bytes;
          return reinterpret_cast<void*>(aligned);
        }
        ++block_;
        offset_ = 0;
        continue;
      }
      size_t size =
          blocks_.empty() ? first_block_bytes_ : blocks_.back().size * 2;
      if (size < bytes + align) size = bytes + align;
      blocks_.push_back(
          Block{std::make_unique<unsigned char[]>(size), size});
      // Loop around: the fresh block is now blocks_[block_].
    }
  }

  /// An uninitialized array of `n` trivial Ts.
  template <typename T>
  T* AllocArray(size_t n) {
    static_assert(std::is_trivial_v<T>,
                  "PlanArena never runs constructors or destructors");
    return static_cast<T*>(AllocBytes(n * sizeof(T), alignof(T)));
  }

  /// Rewinds the cursor to the start. Blocks (capacity) are retained, so a
  /// steady-state caller stops allocating after its first few calls.
  void Reset() {
    block_ = 0;
    offset_ = 0;
    used_bytes_ = 0;
  }

  /// Bytes handed out since the last Reset() (payload, not counting
  /// alignment padding).
  size_t used_bytes() const { return used_bytes_; }

  /// Total bytes held across all blocks (survives Reset()).
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  size_t first_block_bytes_;
  std::vector<Block> blocks_;
  size_t block_ = 0;    // current block index
  size_t offset_ = 0;   // bump cursor within the current block
  size_t used_bytes_ = 0;
};

}  // namespace bati

#endif  // BATI_OPTIMIZER_PLAN_ARENA_H_
