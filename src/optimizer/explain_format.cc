#include "optimizer/explain_format.h"

#include <cstdio>

#include "common/macros.h"

namespace bati {

std::string AccessPathName(AccessPathKind kind) {
  switch (kind) {
    case AccessPathKind::kHeapScan:
      return "heap scan";
    case AccessPathKind::kIndexSeek:
      return "index seek";
    case AccessPathKind::kIndexOnlyScan:
      return "index-only scan";
  }
  return "?";
}

std::string JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kNone:
      return "";
    case JoinMethod::kHashJoin:
      return "hash join";
    case JoinMethod::kIndexNestedLoop:
      return "index nested loops";
    case JoinMethod::kMergeJoin:
      return "merge join";
  }
  return "?";
}

std::string FormatPlan(const Database& db, const Query& query,
                       const std::vector<Index>& config,
                       const PlanExplanation& plan) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%s (cost=%.1f)\n",
                query.name.empty() ? "query" : query.name.c_str(),
                plan.total_cost);
  out += line;
  for (const PlanStep& step : plan.steps) {
    BATI_CHECK(step.scan_id >= 0 && step.scan_id < query.num_scans());
    const Table& table =
        db.table(query.scans[static_cast<size_t>(step.scan_id)].table_id);
    std::string access = AccessPathName(step.access);
    if (step.index_pos >= 0 &&
        step.index_pos < static_cast<int>(config.size())) {
      access += " via " +
                config[static_cast<size_t>(step.index_pos)].Name(db);
    }
    std::string join = JoinMethodName(step.join);
    std::snprintf(line, sizeof(line),
                  "  %-4s %-14s %-50s %-20s cost=%12.1f rows=%.0f\n",
                  step.join == JoinMethod::kNone ? "scan" : "join",
                  table.name().c_str(), access.c_str(), join.c_str(),
                  step.step_cost, step.output_rows);
    out += line;
  }
  std::snprintf(line, sizeof(line), "  post-processing cost=%.1f\n",
                plan.post_processing_cost);
  out += line;
  return out;
}

}  // namespace bati
