#ifndef BATI_OPTIMIZER_WHAT_IF_H_
#define BATI_OPTIMIZER_WHAT_IF_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/stats_view.h"
#include "optimizer/cost_model.h"
#include "optimizer/query_skeleton.h"
#include "storage/index.h"
#include "workload/query.h"

namespace bati {

/// Access-path choice recorded in a plan explanation.
enum class AccessPathKind { kHeapScan, kIndexSeek, kIndexOnlyScan };

/// Join method recorded in a plan explanation.
enum class JoinMethod { kNone, kHashJoin, kIndexNestedLoop, kMergeJoin };

/// One step of the (left-deep) plan produced for a query.
struct PlanStep {
  int scan_id = -1;
  AccessPathKind access = AccessPathKind::kHeapScan;
  /// Which index was used, as position in the supplied configuration;
  /// -1 for heap.
  int index_pos = -1;
  JoinMethod join = JoinMethod::kNone;
  double step_cost = 0.0;
  double output_rows = 0.0;
};

/// Full what-if plan explanation (for examples, debugging and tests).
struct PlanExplanation {
  std::vector<PlanStep> steps;
  double post_processing_cost = 0.0;  // sort / aggregation / output
  double total_cost = 0.0;
};

/// Tunables of the optimizer's execution strategy (never of its results:
/// every setting is bit-identical to every other).
struct WhatIfOptimizerOptions {
  /// When true (the default), Cost()/Explain() run the hot-path
  /// implementation: catalog reads through the structure-of-arrays
  /// StatsView, configuration-independent plan structure served from the
  /// per-query skeleton memo, per-call scratch in a thread-local bump
  /// arena. When false, every call recomputes through the original
  /// object-graph implementation (ExplainReference) — the bit-identity
  /// oracle the tests compare against.
  bool use_fast_path = true;
};

/// Plan-memo observability counters (see WhatIfOptimizer::memo_stats()).
/// Deliberately kept out of CostEngineStats: concurrent sessions sharing an
/// optimizer may race to build the same skeleton, making hit/miss counts
/// scheduling-dependent — results never are.
struct PlanMemoStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t entries = 0;
};

/// The simulated what-if query optimizer. Stands in for a DBMS's what-if
/// API (e.g. SQL Server's hypothetical-index interface): given a query and a
/// hypothetical index configuration, it returns the optimizer-estimated cost
/// without materializing any index. See DESIGN.md for the substitution
/// rationale.
///
/// Properties relied on by the tuning layer:
///  * Deterministic: equal inputs yield equal costs.
///  * Monotone (Assumption 1 of the paper) when `monotonicity_noise == 0`:
///    adding indexes never increases the cost, because every index only adds
///    candidate access paths / join methods to minimize over, and the join
///    order itself depends only on configuration-independent cardinalities.
///
/// Thread safety: Cost()/Explain() are const and safe to call concurrently
/// (the executor's thread pool and concurrent sessions do). The plan memo
/// is internally synchronized; the per-call scratch arena is thread-local.
class WhatIfOptimizer {
 public:
  WhatIfOptimizer(std::shared_ptr<const Database> db,
                  CostModelParams params = CostModelParams(),
                  WhatIfOptimizerOptions options = WhatIfOptimizerOptions());

  const Database& database() const { return *db_; }
  const CostModelParams& params() const { return params_; }
  const WhatIfOptimizerOptions& options() const { return options_; }

  /// The structure-of-arrays catalog snapshot the fast path reads through
  /// (built once at construction).
  const StatsView& stats_view() const { return stats_view_; }

  /// Optimizer-estimated cost of `query` when the indexes in `config` exist
  /// (hypothetically) in addition to base heaps. An empty config costs the
  /// query over heap scans only.
  double Cost(const Query& query, const std::vector<Index>& config) const;

  /// Like Cost but also returns the chosen plan.
  PlanExplanation Explain(const Query& query,
                          const std::vector<Index>& config) const;

  /// The pre-refactor object-graph implementation, preserved verbatim as
  /// the bit-identity oracle: for every (query, config),
  /// Explain() == ExplainReference() byte for byte.
  PlanExplanation ExplainReference(const Query& query,
                                   const std::vector<Index>& config) const;

  /// Simulated wall-clock seconds one what-if call for `query` would take on
  /// a real server (a full optimization cycle: parse, bind, plan search).
  /// Drives the paper's Figure 2 time-breakdown and the tuning-time axis
  /// annotations; scales with query complexity (TPC-DS-like queries land
  /// near the ~1 s/call the paper reports).
  double EstimateCallSeconds(const Query& query) const;

  /// Snapshot of the plan-memo counters (benchmarking/diagnostics only;
  /// see PlanMemoStats on why these stay out of the engine stats).
  PlanMemoStats memo_stats() const;

  /// Drops every memoized skeleton (counters are kept). Skeletons rebuild
  /// on demand; results are unaffected.
  void ClearPlanMemo() const;

 private:
  /// The memoized skeleton for `query`: served from the memo when the
  /// stored content signature matches, rebuilt (and the entry replaced)
  /// otherwise. The returned shared_ptr keeps the skeleton alive even if a
  /// concurrent rebuild replaces the entry.
  std::shared_ptr<const QuerySkeleton> GetSkeleton(const Query& query) const;

  PlanExplanation ExplainFast(const QuerySkeleton& sk, const Query& query,
                              const std::vector<Index>& config) const;

  std::shared_ptr<const Database> db_;
  CostModelParams params_;
  WhatIfOptimizerOptions options_;
  StatsView stats_view_;

  /// Plan memo: Query address -> skeleton, validated by content signature
  /// on every hit (an address can be reused by a different query; a stale
  /// skeleton must never be served). Reader-writer locked: hits take the
  /// shared lock only. In front of it sits a per-thread direct-mapped L1
  /// (see GetSkeleton) so the executor's worker threads stop touching this
  /// lock at all once warm; `memo_epoch_` invalidates every L1 when
  /// ClearPlanMemo() drops the shared memo.
  mutable std::shared_mutex memo_mu_;
  mutable std::unordered_map<const Query*,
                             std::shared_ptr<const QuerySkeleton>>
      memo_;
  mutable std::atomic<uint64_t> memo_epoch_{0};
  /// Hit counting is striped across cache lines (threads pick a stripe by
  /// thread id) so the hot path never bounces one shared counter; misses
  /// are rare and keep a single counter. memo_stats() sums the stripes.
  static constexpr size_t kMemoHitStripes = 8;
  struct alignas(64) HitStripe {
    std::atomic<int64_t> count{0};
  };
  mutable HitStripe memo_hits_[kMemoHitStripes];
  mutable std::atomic<int64_t> memo_misses_{0};
};

}  // namespace bati

#endif  // BATI_OPTIMIZER_WHAT_IF_H_
