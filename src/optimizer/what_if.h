#ifndef BATI_OPTIMIZER_WHAT_IF_H_
#define BATI_OPTIMIZER_WHAT_IF_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "storage/index.h"
#include "workload/query.h"

namespace bati {

/// Access-path choice recorded in a plan explanation.
enum class AccessPathKind { kHeapScan, kIndexSeek, kIndexOnlyScan };

/// Join method recorded in a plan explanation.
enum class JoinMethod { kNone, kHashJoin, kIndexNestedLoop, kMergeJoin };

/// One step of the (left-deep) plan produced for a query.
struct PlanStep {
  int scan_id = -1;
  AccessPathKind access = AccessPathKind::kHeapScan;
  /// Which index was used, as position in the supplied configuration;
  /// -1 for heap.
  int index_pos = -1;
  JoinMethod join = JoinMethod::kNone;
  double step_cost = 0.0;
  double output_rows = 0.0;
};

/// Full what-if plan explanation (for examples, debugging and tests).
struct PlanExplanation {
  std::vector<PlanStep> steps;
  double post_processing_cost = 0.0;  // sort / aggregation / output
  double total_cost = 0.0;
};

/// The simulated what-if query optimizer. Stands in for a DBMS's what-if
/// API (e.g. SQL Server's hypothetical-index interface): given a query and a
/// hypothetical index configuration, it returns the optimizer-estimated cost
/// without materializing any index. See DESIGN.md for the substitution
/// rationale.
///
/// Properties relied on by the tuning layer:
///  * Deterministic: equal inputs yield equal costs.
///  * Monotone (Assumption 1 of the paper) when `monotonicity_noise == 0`:
///    adding indexes never increases the cost, because every index only adds
///    candidate access paths / join methods to minimize over, and the join
///    order itself depends only on configuration-independent cardinalities.
class WhatIfOptimizer {
 public:
  WhatIfOptimizer(std::shared_ptr<const Database> db,
                  CostModelParams params = CostModelParams());

  const Database& database() const { return *db_; }
  const CostModelParams& params() const { return params_; }

  /// Optimizer-estimated cost of `query` when the indexes in `config` exist
  /// (hypothetically) in addition to base heaps. An empty config costs the
  /// query over heap scans only.
  double Cost(const Query& query, const std::vector<Index>& config) const;

  /// Like Cost but also returns the chosen plan.
  PlanExplanation Explain(const Query& query,
                          const std::vector<Index>& config) const;

  /// Simulated wall-clock seconds one what-if call for `query` would take on
  /// a real server (a full optimization cycle: parse, bind, plan search).
  /// Drives the paper's Figure 2 time-breakdown and the tuning-time axis
  /// annotations; scales with query complexity (TPC-DS-like queries land
  /// near the ~1 s/call the paper reports).
  double EstimateCallSeconds(const Query& query) const;

 private:
  std::shared_ptr<const Database> db_;
  CostModelParams params_;
};

}  // namespace bati

#endif  // BATI_OPTIMIZER_WHAT_IF_H_
