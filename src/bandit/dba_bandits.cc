#include "bandit/dba_bandits.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <set>

#include "common/macros.h"
#include "tuner/features.h"

namespace bati {

namespace {
constexpr int kNumFeatures = kIndexFeatureCount;
}  // namespace

DbaBanditsTuner::DbaBanditsTuner(TuningContext ctx, DbaBanditsOptions options)
    : ctx_(std::move(ctx)), options_(options), rng_(options.seed) {}

std::vector<double> DbaBanditsTuner::Featurize(int candidate_pos) const {
  return IndexFeatures(ctx_, candidate_pos);
}

TuningResult DbaBanditsTuner::Tune(CostService& service) {
  round_trace_.clear();
  const int n = service.num_candidates();
  const int m = service.num_queries();
  const int k_max = ctx_.constraints.max_indexes;
  const Database& db = *ctx_.workload->database;

  std::vector<std::vector<double>> features;
  features.reserve(static_cast<size_t>(n));
  for (int a = 0; a < n; ++a) features.push_back(Featurize(a));

  // Ridge model state: V = lambda * I + sum x x^T, bvec = sum r x.
  std::vector<std::vector<double>> v(kNumFeatures,
                                     std::vector<double>(kNumFeatures, 0.0));
  for (int i = 0; i < kNumFeatures; ++i) {
    v[static_cast<size_t>(i)][static_cast<size_t>(i)] = options_.ridge_lambda;
  }
  std::vector<double> bvec(kNumFeatures, 0.0);

  Config best = service.EmptyConfig();
  double best_cost = service.BaseWorkloadCost();

  int zero_call_rounds = 0;
  while (service.HasBudget()) {
    service.BeginRound("bandit.round");
    int64_t calls_before = service.calls_made();
    std::vector<double> theta = SolveLinear(v, bvec);

    // Confidence width: alpha * sqrt(x^T V^{-1} x) approximated by solving
    // V y = x and taking sqrt(x . y). A small random tie-break keeps the
    // super-arm from freezing once the model stops moving.
    auto ucb = [&](int a) {
      const std::vector<double>& x = features[static_cast<size_t>(a)];
      std::vector<double> y = SolveLinear(v, x);
      double width = std::sqrt(std::max(0.0, DotProduct(x, y)));
      return DotProduct(theta, x) + options_.alpha * width +
             rng_.Normal(0.0, 0.005);
    };

    // Super-arm: top-K by UCB under the storage constraint.
    std::vector<std::pair<double, int>> scored;
    scored.reserve(static_cast<size_t>(n));
    for (int a = 0; a < n; ++a) scored.emplace_back(ucb(a), a);
    std::sort(scored.begin(), scored.end(),
              [](const auto& l, const auto& r) { return l.first > r.first; });
    Config chosen = service.EmptyConfig();
    for (const auto& [score, a] : scored) {
      if (static_cast<int>(chosen.count()) >= k_max) break;
      if (!FitsStorage(ctx_, db, chosen, a)) continue;
      chosen.set(static_cast<size_t>(a));
    }
    if (chosen.empty()) break;

    // Observe: one what-if call per query for the chosen configuration,
    // batched through the engine (budget is still charged in query order).
    double round_cost = 0.0;
    bool budget_ran_out = false;
    std::vector<double> per_query_delta(static_cast<size_t>(m), 0.0);
    std::vector<int> round_queries(static_cast<size_t>(m));
    std::iota(round_queries.begin(), round_queries.end(), 0);
    std::vector<std::optional<double>> costs =
        service.WhatIfCostMany(round_queries, chosen);
    for (int q = 0; q < m; ++q) {
      const auto& c = costs[static_cast<size_t>(q)];
      if (!c.has_value()) {
        budget_ran_out = true;
        // Fall back to derived for the queries the budget never reached.
        round_cost += service.DerivedCost(q, chosen);
        continue;
      }
      round_cost += *c;
      per_query_delta[static_cast<size_t>(q)] = service.BaseCost(q) - *c;
    }

    // Reward attribution: each query's improvement is split evenly across
    // the chosen indexes on tables that query touches.
    std::vector<double> arm_reward(static_cast<size_t>(n), 0.0);
    std::vector<size_t> chosen_positions = chosen.ToIndices();
    const double base = service.BaseWorkloadCost();
    for (int q = 0; q < m; ++q) {
      double delta = per_query_delta[static_cast<size_t>(q)];
      if (delta <= 0.0) continue;
      std::set<int> touched;
      for (const QueryScan& s :
           ctx_.workload->queries[static_cast<size_t>(q)].scans) {
        touched.insert(s.table_id);
      }
      std::vector<size_t> responsible;
      for (size_t p : chosen_positions) {
        if (touched.count(ctx_.candidates->indexes[p].table_id) > 0) {
          responsible.push_back(p);
        }
      }
      if (responsible.empty()) continue;
      double share = delta / static_cast<double>(responsible.size()) / base;
      for (size_t p : responsible) arm_reward[p] += share;
    }

    // Model update per selected arm.
    for (size_t p : chosen_positions) {
      const std::vector<double>& x = features[p];
      for (int i = 0; i < kNumFeatures; ++i) {
        for (int j = 0; j < kNumFeatures; ++j) {
          v[static_cast<size_t>(i)][static_cast<size_t>(j)] +=
              x[static_cast<size_t>(i)] * x[static_cast<size_t>(j)];
        }
        bvec[static_cast<size_t>(i)] +=
            arm_reward[p] * x[static_cast<size_t>(i)];
      }
    }

    if (round_cost < best_cost) {
      best_cost = round_cost;
      best = chosen;
    }
    round_trace_.push_back(
        (1.0 - best_cost / std::max(1e-9, service.BaseWorkloadCost())) *
        100.0);
    if (budget_ran_out) break;
    // All-cached rounds consume no budget; stop if the policy has frozen.
    if (service.calls_made() == calls_before) {
      if (++zero_call_rounds >= 5) break;
    } else {
      zero_call_rounds = 0;
    }
  }

  TuningResult result;
  result.algorithm = name();
  result.best_config = best;
  result.derived_improvement = service.DerivedImprovement(best);
  result.what_if_calls = service.calls_made();
  // The trace always ends at the recommendation actually returned.
  if (round_trace_.empty() ||
      round_trace_.back() != result.derived_improvement) {
    round_trace_.push_back(result.derived_improvement);
  }
  return result;
}

}  // namespace bati
