#ifndef BATI_BANDIT_DBA_BANDITS_H_
#define BATI_BANDIT_DBA_BANDITS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "tuner/tuner.h"

namespace bati {

/// Options for the DBA-bandits baseline.
struct DbaBanditsOptions {
  /// UCB exploration multiplier alpha.
  double alpha = 0.6;
  /// Ridge regularization of the linear model.
  double ridge_lambda = 1.0;
  uint64_t seed = 1;
};

/// Re-implementation of the DBA-bandits baseline [Perera et al.] in the
/// paper's "static workload" setting (Section 7.2.1): a contextual
/// combinatorial bandit (C2UCB-style) with a linear reward model over
/// hand-crafted index features. Each round selects a super-arm of up to K
/// indexes by UCB score, then spends one what-if call per workload query to
/// observe the configuration's cost and refine the model; rounds repeat until
/// the what-if budget is exhausted. The best configuration over all rounds is
/// returned, mirroring how the paper reports this baseline.
class DbaBanditsTuner : public Tuner {
 public:
  DbaBanditsTuner(TuningContext ctx,
                  DbaBanditsOptions options = DbaBanditsOptions());

  TuningResult Tune(CostService& service) override;
  std::string name() const override { return "dba-bandits"; }

  /// Best true-improvement-so-far after each completed round (Figure 14).
  const std::vector<double>& round_trace() const { return round_trace_; }

  const std::vector<double>* progress_trace() const override {
    return &round_trace_;
  }

 private:
  std::vector<double> Featurize(int candidate_pos) const;

  TuningContext ctx_;
  DbaBanditsOptions options_;
  Rng rng_;
  std::vector<double> round_trace_;
};

}  // namespace bati

#endif  // BATI_BANDIT_DBA_BANDITS_H_
