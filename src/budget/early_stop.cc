#include "budget/early_stop.h"

#include <algorithm>

namespace bati {

EarlyStopChecker::EarlyStopChecker(EarlyStopOptions options, int64_t budget)
    : options_(options), budget_(budget) {
  window_ = options_.window_calls > 0
                ? options_.window_calls
                : std::max<int64_t>(16, budget_ / 20);
}

bool EarlyStopChecker::ShouldStop(const ImprovementCurve& curve,
                                  int64_t calls_made,
                                  int64_t remaining_budget) const {
  if (remaining_budget <= 0) return false;  // the meter already stops us
  const double min_calls =
      options_.min_budget_fraction * static_cast<double>(budget_);
  if (static_cast<double>(calls_made) < min_calls) return false;
  if (calls_made < window_) return false;  // not enough history

  const double gain = curve.GainSince(calls_made - window_);  // pct points
  const double rate = gain / static_cast<double>(window_);
  const double ub = rate * static_cast<double>(remaining_budget);
  last_upper_bound_pct_ = ub;

  const double eta = curve.ImprovementPercent();
  // Strict comparisons: ub >= 0 always, so zero thresholds never fire.
  return ub < options_.abs_threshold_pct ||
         ub < options_.rel_threshold * eta;
}

}  // namespace bati
