#include "budget/improvement_curve.h"

#include <algorithm>

#include "common/macros.h"

namespace bati {

ImprovementCurve::ImprovementCurve(double base_cost) : base_cost_(base_cost) {}

void ImprovementCurve::Observe(int64_t calls_made, double best_cost) {
  const double clamped = std::min(best_cost, this->best_cost());
  if (!points_.empty() && points_.back().calls == calls_made) {
    points_.back().best_cost = clamped;
    return;
  }
  BATI_CHECK(points_.empty() || calls_made > points_.back().calls);
  points_.push_back(Point{calls_made, clamped});
}

void ImprovementCurve::MarkRound(int round, int64_t calls_made) {
  rounds_.push_back(RoundMark{round, calls_made, best_cost()});
}

double ImprovementCurve::best_cost() const {
  return points_.empty() ? base_cost_ : points_.back().best_cost;
}

double ImprovementCurve::ImprovementPercent() const {
  if (base_cost_ <= 0.0) return 0.0;
  return (1.0 - best_cost() / base_cost_) * 100.0;
}

double ImprovementCurve::CostAt(int64_t calls) const {
  // Points are strictly increasing in x; find the last point at or before
  // `calls`.
  double cost = base_cost_;
  for (const Point& p : points_) {
    if (p.calls > calls) break;
    cost = p.best_cost;
  }
  return cost;
}

double ImprovementCurve::GainSince(int64_t calls) const {
  if (base_cost_ <= 0.0) return 0.0;
  const double then = CostAt(calls);
  const double now = best_cost();
  return (then - now) / base_cost_ * 100.0;
}

}  // namespace bati
