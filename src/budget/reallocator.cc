#include "budget/reallocator.h"

#include <algorithm>

namespace bati {

BudgetReallocator::BudgetReallocator(ReallocatorOptions options,
                                     int64_t budget)
    : options_(options), budget_(budget) {}

bool BudgetReallocator::ShouldSkip(const CellQuote& quote) const {
  const double gap = std::max(0.0, quote.derived_upper - quote.cost_lower);
  const double threshold =
      std::max(options_.skip_abs_threshold,
               options_.skip_rel_threshold * quote.base_cost);
  // Strict comparison: gap >= 0 always, so zero thresholds never skip.
  return gap < threshold;
}

}  // namespace bati
