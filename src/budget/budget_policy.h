#ifndef BATI_BUDGET_BUDGET_POLICY_H_
#define BATI_BUDGET_BUDGET_POLICY_H_

#include <cstdint>

namespace bati {

/// Everything a budget policy may inspect about one uncached what-if cell
/// *before* the cell is charged against the budget. The cost engine computes
/// the bounds; the policy only decides. All costs are in optimizer cost
/// units for the cell's query.
struct CellQuote {
  int query_id = -1;
  /// c(q, {}): the query's base cost (always known, never charged).
  double base_cost = 0.0;
  /// d(q, C): the Equation-1 derived cost — an upper bound on the true
  /// what-if cost c(q, C), and exactly the value the caller would fall back
  /// to if the call were skipped or the budget were exhausted.
  double derived_upper = 0.0;
  /// A lower bound on c(q, C), clamped into [0, derived_upper]. Combines
  /// the cached-superset bound (cost monotonicity) with the additive
  /// singleton-improvement bound; see DerivedCostIndex.
  double cost_lower = 0.0;
  /// Budget state at decision time (before any charge for this cell).
  int64_t calls_made = 0;
  int64_t remaining_budget = 0;
};

/// A policy's verdict for one uncached cell.
enum class CellDecision {
  /// Charge one budget unit and run the optimizer (the ungoverned default).
  kCharge,
  /// Do not charge; answer the caller with `derived_upper` instead. Sound
  /// up to `derived_upper - cost_lower` error in the reported cost.
  kSkip,
};

/// Interface between the cost engine and the budget-governor subsystem.
/// The engine consults the policy at three points:
///
///  * OnCell()    — before charging an uncached what-if cell;
///  * OnCharged() — after a charged cell has been evaluated and cached;
///  * OnRound()   — at tuner-declared round boundaries (BeginRound()).
///
/// ShouldStop() is sticky: once it returns true the engine treats the
/// budget as exhausted (WhatIfCost() returns nullopt, HasBudget() is
/// false), which every tuner already handles as its termination signal.
///
/// A policy must be deterministic: decisions may depend only on the quotes
/// and notifications it received, never on wall-clock time or randomness,
/// so governed runs stay exactly reproducible.
class BudgetPolicy {
 public:
  virtual ~BudgetPolicy() = default;

  /// Decision for one uncached cell about to be charged.
  virtual CellDecision OnCell(const CellQuote& quote) = 0;

  /// A charged cell finished evaluating. `quote` is the quote OnCell() saw
  /// (calls_made still pre-charge), `cost` the evaluated what-if cost, and
  /// `best_workload_cost` the engine's optimistic workload floor (sum of
  /// per-query minima over cached cells) after caching this cell.
  virtual void OnCharged(const CellQuote& quote, double cost,
                         double best_workload_cost) = 0;

  /// A tuner declared the start of round `round` (1-based, monotone).
  virtual void OnRound(int round, int64_t calls_made, int64_t remaining_budget,
                       double best_workload_cost) = 0;

  /// True once the policy has decided tuning should halt.
  virtual bool ShouldStop() const = 0;
};

}  // namespace bati

#endif  // BATI_BUDGET_BUDGET_POLICY_H_
