#ifndef BATI_BUDGET_EARLY_STOP_H_
#define BATI_BUDGET_EARLY_STOP_H_

#include <cstdint>

#include "budget/improvement_curve.h"

namespace bati {

/// Thresholds for Esc-style early stopping. All comparisons are *strict*,
/// so zero thresholds provably never stop (the remaining-improvement upper
/// bound is always >= 0): the checker is a no-op at zero thresholds.
struct EarlyStopOptions {
  /// Stop when the projected remaining improvement is below this many
  /// percentage points.
  double abs_threshold_pct = 0.1;
  /// ... or below this fraction of the improvement already achieved.
  double rel_threshold = 0.005;
  /// Never stop before this fraction of the budget is spent (warm-up; the
  /// curve is too short to extrapolate earlier). Calibrated on the tpch /
  /// tpcds benches: 0.2 stops mcts right after its prior phase, where the
  /// curve plateaus locally before the episode phase lifts it again.
  double min_budget_fraction = 0.3;
  /// Trailing window, in charged calls, over which the improvement rate is
  /// measured. 0 selects max(16, budget / 20).
  int64_t window_calls = 0;
};

/// The early-stopping checker: brackets the improvement still reachable
/// with the unspent budget and signals stop when the bracket collapses
/// below the thresholds.
///
///  * Lower bound on remaining improvement: 0 — the best configuration
///    found never gets worse.
///  * Upper bound: the improvement rate over the trailing window projected
///    across the remaining budget, rate * remaining. Under the empirical
///    diminishing-returns behaviour of the improvement curve (the paper's
///    convergence plots flatten monotonically) the trailing rate bounds the
///    future rate, making the projection an upper bound on what the
///    remaining calls can still buy.
///
/// Stop fires when  ub < abs_threshold_pct  or  ub < rel_threshold * eta,
/// where eta is the improvement already achieved.
class EarlyStopChecker {
 public:
  EarlyStopChecker(EarlyStopOptions options, int64_t budget);

  /// True when tuning should halt given the curve and budget state.
  bool ShouldStop(const ImprovementCurve& curve, int64_t calls_made,
                  int64_t remaining_budget) const;

  /// The upper bound on remaining improvement (percentage points) the
  /// last ShouldStop() evaluation computed; for observability.
  double last_upper_bound_pct() const { return last_upper_bound_pct_; }

  int64_t effective_window() const { return window_; }

 private:
  EarlyStopOptions options_;
  int64_t budget_;
  int64_t window_;
  mutable double last_upper_bound_pct_ = -1.0;
};

}  // namespace bati

#endif  // BATI_BUDGET_EARLY_STOP_H_
