#ifndef BATI_BUDGET_REALLOCATOR_H_
#define BATI_BUDGET_REALLOCATOR_H_

#include <cstdint>

#include "budget/budget_policy.h"

namespace bati {

/// Thresholds for Wii-style what-if call skipping. Comparisons are
/// *strict* and the cost gap is clamped to >= 0, so zero thresholds
/// provably never skip: the reallocator is a no-op at zero thresholds.
struct ReallocatorOptions {
  /// Skip a cell when derived_upper - cost_lower is below this absolute
  /// cost gap...
  double skip_abs_threshold = 0.0;
  /// ... or below this fraction of the cell's query base cost.
  double skip_rel_threshold = 0.01;
};

/// The dynamic budget reallocator: skips what-if calls whose answer is
/// already bracketed tightly by derived-cost bounds, banks the saved budget
/// units, and accounts for their reallocation to later calls.
///
/// A skipped cell's caller receives the derived upper bound d(q, C) — the
/// same value it would fall back to on budget exhaustion — so the decision
/// errs by at most the bracket width derived_upper - cost_lower, which the
/// thresholds cap.
///
/// Bank accounting. The budget B stays a hard cap enforced by the meter;
/// skipping simply leaves units unspent for later. A charged call is
/// counted as *reallocated* when, at charge time, calls_made + skipped >= B
/// — i.e. an ungoverned first-come-first-served run would already have
/// exhausted the budget, so this call was paid for by earlier skips. The
/// invariant  skipped == banked + reallocated  (banked >= 0) is conserved
/// at every step.
class BudgetReallocator {
 public:
  BudgetReallocator(ReallocatorOptions options, int64_t budget);

  /// True when the quote's cost bracket is tighter than the thresholds.
  bool ShouldSkip(const CellQuote& quote) const;

  /// Records a skip decision (one budget unit banked).
  void OnSkip() { ++skipped_; }

  /// Records a charge; `calls_before` is calls_made at charge time.
  void OnCharge(int64_t calls_before) {
    if (calls_before + skipped_ >= budget_) ++reallocated_;
  }

  /// Total skip decisions (budget units saved).
  int64_t skipped() const { return skipped_; }
  /// Saved units re-spent on calls an ungoverned run could not have made.
  int64_t reallocated() const { return reallocated_; }
  /// Saved units still unspent. skipped() == banked() + reallocated().
  int64_t banked() const { return skipped_ - reallocated_; }

 private:
  ReallocatorOptions options_;
  int64_t budget_;
  int64_t skipped_ = 0;
  int64_t reallocated_ = 0;
};

}  // namespace bati

#endif  // BATI_BUDGET_REALLOCATOR_H_
