#ifndef BATI_BUDGET_IMPROVEMENT_CURVE_H_
#define BATI_BUDGET_IMPROVEMENT_CURVE_H_

#include <cstdint>
#include <vector>

namespace bati {

/// Best-derived-workload-cost-so-far as a function of budget spent: the
/// improvement curve the early-stopping checker extrapolates and the curve
/// Esc-style tools plot. The x-axis is *charged* what-if calls — cache hits
/// and governor skips spend no budget and therefore never advance x; a
/// cheaper cost observed at an already-recorded x tightens that point in
/// place. The recorded cost is monotone non-increasing by construction.
///
/// Round marks record tuner-declared round boundaries, so spend can be
/// attributed per round as well as per call.
class ImprovementCurve {
 public:
  struct Point {
    int64_t calls = 0;      // budget spent when this cost was reached
    double best_cost = 0.0; // best workload cost known at that spend
  };
  struct RoundMark {
    int round = 0;          // 1-based tuner round
    int64_t calls = 0;      // budget spent when the round began
    double best_cost = 0.0;
  };

  /// `base_cost` = the workload cost with no budget spent (sum of base
  /// costs), the curve's y value at x = 0.
  explicit ImprovementCurve(double base_cost);

  /// Records that after `calls_made` charged calls the best known workload
  /// cost is `best_cost`. Non-monotone inputs are clamped: the curve never
  /// rises. `calls_made` must be >= the last observed x.
  void Observe(int64_t calls_made, double best_cost);

  /// Records a round boundary at the current best cost.
  void MarkRound(int round, int64_t calls_made);

  double base_cost() const { return base_cost_; }

  /// Best workload cost observed so far (base cost when nothing observed).
  double best_cost() const;

  /// Percentage improvement of best_cost() over base_cost(), in [0, 100].
  double ImprovementPercent() const;

  /// Best workload cost the curve had reached after `calls` charged calls
  /// (base cost before the first observation).
  double CostAt(int64_t calls) const;

  /// Improvement gained, in percentage points, between spend level `calls`
  /// and now: ImprovementPercent(now) - ImprovementPercent(at `calls`).
  /// Always >= 0.
  double GainSince(int64_t calls) const;

  const std::vector<Point>& points() const { return points_; }
  const std::vector<RoundMark>& rounds() const { return rounds_; }

 private:
  double base_cost_;
  std::vector<Point> points_;
  std::vector<RoundMark> rounds_;
};

}  // namespace bati

#endif  // BATI_BUDGET_IMPROVEMENT_CURVE_H_
