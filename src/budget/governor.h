#ifndef BATI_BUDGET_GOVERNOR_H_
#define BATI_BUDGET_GOVERNOR_H_

#include <cstdint>
#include <memory>

#include "budget/budget_policy.h"
#include "budget/early_stop.h"
#include "budget/improvement_curve.h"
#include "budget/reallocator.h"
#include "obs/metrics.h"

namespace bati {

/// Configuration of the budget-governor subsystem. Disabled by default:
/// with `enabled == false` the cost engine never constructs a governor and
/// every run is bit-identical to an ungoverned one. With the governor
/// enabled but both feature flags off — or with all thresholds zero — the
/// governor observes but never intervenes (the provable no-op the property
/// tests pin down).
struct BudgetGovernorOptions {
  /// Master switch for the whole subsystem.
  bool enabled = false;
  /// Wii-style skipping of provably-bounded what-if calls (reallocator).
  bool skip_what_if = true;
  /// Esc-style early stopping on the improvement curve.
  bool early_stop = true;
  ReallocatorOptions realloc;
  EarlyStopOptions stop;

  /// Convenience: a fully enabled governor at default thresholds.
  static BudgetGovernorOptions Enabled() {
    BudgetGovernorOptions o;
    o.enabled = true;
    return o;
  }
  /// Convenience: enabled with every threshold zero (provable no-op).
  static BudgetGovernorOptions ZeroThresholds() {
    BudgetGovernorOptions o;
    o.enabled = true;
    o.realloc.skip_abs_threshold = 0.0;
    o.realloc.skip_rel_threshold = 0.0;
    o.stop.abs_threshold_pct = 0.0;
    o.stop.rel_threshold = 0.0;
    return o;
  }
};

/// Snapshot of the governor's decisions, surfaced through CostEngineStats,
/// `bati_tune --json`, and the bench programs.
struct GovernorStats {
  int64_t skipped_calls = 0;
  int64_t banked_calls = 0;
  int64_t reallocated_calls = 0;
  /// Tuner round at which early stop fired; -1 when it never did.
  int stop_round = -1;
  /// Charged calls at the moment early stop fired; -1 when it never did.
  int64_t stop_calls = -1;
  /// The last computed upper bound on remaining improvement (pct points);
  /// -1 before the first early-stop evaluation.
  double remaining_improvement_ub_pct = -1.0;
};

/// The budget governor: the default BudgetPolicy, composing
///
///  * an ImprovementCurve fed by every charged call and round boundary,
///  * an EarlyStopChecker evaluated at round boundaries, and
///  * a BudgetReallocator consulted per uncached cell.
///
/// Stopping is evaluated only at OnRound(): within a round (and therefore
/// within one batched WhatIfCostMany() charge loop) the stop state is
/// constant, which keeps governed runs deterministic and batch charging
/// aligned with the sequential loop.
class BudgetGovernor : public BudgetPolicy {
 public:
  /// `budget` is the what-if call budget B; `base_workload_cost` the
  /// workload cost at zero spend (the curve's origin).
  BudgetGovernor(const BudgetGovernorOptions& options, int64_t budget,
                 double base_workload_cost);

  CellDecision OnCell(const CellQuote& quote) override;
  void OnCharged(const CellQuote& quote, double cost,
                 double best_workload_cost) override;
  void OnRound(int round, int64_t calls_made, int64_t remaining_budget,
               double best_workload_cost) override;
  bool ShouldStop() const override { return stopped_; }

  const ImprovementCurve& curve() const { return curve_; }
  const BudgetGovernorOptions& options() const { return options_; }
  GovernorStats stats() const;

  /// True when OnCell() will consult the reallocator, i.e. quotes need the
  /// derived upper / cost lower bounds. With skipping off the engine can
  /// hand over cheap quotes (budget state only) and save the bound probes.
  bool WantsCostBounds() const { return options_.skip_what_if; }

  /// Wires decision counters and the remaining-improvement gauge (null
  /// unwires). Pure observation: decisions are unchanged, and governed runs
  /// stay bit-identical with or without a registry.
  void SetObservability(MetricsRegistry* metrics);

 private:
  BudgetGovernorOptions options_;
  ImprovementCurve curve_;
  EarlyStopChecker stop_checker_;
  BudgetReallocator reallocator_;
  bool stopped_ = false;
  int stop_round_ = -1;
  int64_t stop_calls_ = -1;
  // Observability instruments (null when not wired).
  Counter* obs_skips_ = nullptr;
  Counter* obs_stop_evals_ = nullptr;
  Gauge* obs_remaining_ub_pct_ = nullptr;
};

}  // namespace bati

#endif  // BATI_BUDGET_GOVERNOR_H_
