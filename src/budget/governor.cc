#include "budget/governor.h"

namespace bati {

BudgetGovernor::BudgetGovernor(const BudgetGovernorOptions& options,
                               int64_t budget, double base_workload_cost)
    : options_(options),
      curve_(base_workload_cost),
      stop_checker_(options.stop, budget),
      reallocator_(options.realloc, budget) {}

CellDecision BudgetGovernor::OnCell(const CellQuote& quote) {
  if (options_.skip_what_if && reallocator_.ShouldSkip(quote)) {
    reallocator_.OnSkip();
    if (obs_skips_ != nullptr) obs_skips_->Increment();
    return CellDecision::kSkip;
  }
  return CellDecision::kCharge;
}

void BudgetGovernor::OnCharged(const CellQuote& quote, double /*cost*/,
                               double best_workload_cost) {
  reallocator_.OnCharge(quote.calls_made);
  curve_.Observe(quote.calls_made + 1, best_workload_cost);
}

void BudgetGovernor::OnRound(int round, int64_t calls_made,
                             int64_t remaining_budget,
                             double best_workload_cost) {
  // Keep the curve's tail in sync with the engine's floor even when the
  // round's last cost arrived through a cache hit.
  curve_.Observe(calls_made, best_workload_cost);
  curve_.MarkRound(round, calls_made);
  if (stopped_ || !options_.early_stop) return;
  if (obs_stop_evals_ != nullptr) obs_stop_evals_->Increment();
  if (stop_checker_.ShouldStop(curve_, calls_made, remaining_budget)) {
    stopped_ = true;
    stop_round_ = round;
    stop_calls_ = calls_made;
  }
  if (obs_remaining_ub_pct_ != nullptr) {
    obs_remaining_ub_pct_->Set(stop_checker_.last_upper_bound_pct());
  }
}

void BudgetGovernor::SetObservability(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    obs_skips_ = nullptr;
    obs_stop_evals_ = nullptr;
    obs_remaining_ub_pct_ = nullptr;
    return;
  }
  obs_skips_ = metrics->GetCounter("governor.skipped_calls");
  obs_stop_evals_ = metrics->GetCounter("governor.stop_evaluations");
  obs_remaining_ub_pct_ =
      metrics->GetGauge("governor.remaining_improvement_ub_pct");
}

GovernorStats BudgetGovernor::stats() const {
  GovernorStats s;
  s.skipped_calls = reallocator_.skipped();
  s.banked_calls = reallocator_.banked();
  s.reallocated_calls = reallocator_.reallocated();
  s.stop_round = stop_round_;
  s.stop_calls = stop_calls_;
  s.remaining_improvement_ub_pct = stop_checker_.last_upper_bound_pct();
  return s;
}

}  // namespace bati
