#ifndef BATI_MCTS_MCTS_TUNER_H_
#define BATI_MCTS_MCTS_TUNER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "tuner/greedy.h"
#include "tuner/tuner.h"

namespace bati {

/// Policy knobs of the MCTS tuner (paper Section 6). The paper's recommended
/// setting — epsilon-greedy-with-priors action selection, myopic (step-0)
/// rollout, Best-Greedy extraction — is the default.
struct MctsOptions {
  /// Action selection (Section 6.1): UCT (Equation 5), the proportional
  /// epsilon-greedy variant (Equation 6) bootstrapped with singleton priors
  /// computed by Algorithm 4, or Boltzmann exploration (the softmax variant
  /// the paper discusses as an alternative, with temperature tau).
  enum class ActionPolicy { kUct, kEpsGreedyPrior, kBoltzmann };

  /// Rollout (Section 6.2): look-ahead step size drawn uniformly from
  /// {0..K-d} (standard) or fixed ("myopic" when small).
  enum class RolloutPolicy { kRandomStep, kFixedStep };

  /// Extraction of the final configuration (Section 6.3): best configuration
  /// explored (BCE), a greedy traversal with derived costs (BG), or the
  /// better of the two (the hybrid the paper's appendix suggests to avoid
  /// BG occasionally discarding good rollout discoveries).
  enum class Extraction { kBce, kBestGreedy, kHybrid };

  /// Query-selection strategy inside EvaluateCostWithBudget. The paper's
  /// implementation samples the query with probability proportional to its
  /// derived cost ("other strategies are possible"); uniform and round-robin
  /// are provided for ablation.
  enum class QuerySelection { kProportionalToDerivedCost, kUniform,
                              kRoundRobin };

  ActionPolicy action_policy = ActionPolicy::kEpsGreedyPrior;
  QuerySelection query_selection =
      QuerySelection::kProportionalToDerivedCost;
  RolloutPolicy rollout_policy = RolloutPolicy::kFixedStep;
  /// Step size for kFixedStep; 0 = evaluate the tree state itself (the
  /// paper's best-performing "myopic" rollout).
  int fixed_rollout_step = 0;
  Extraction extraction = Extraction::kBestGreedy;
  /// Exploration constant lambda of Equation 5 (sqrt(2) per UCT).
  double uct_lambda = 1.4142135623730951;
  /// Temperature tau of Boltzmann exploration (kBoltzmann only).
  double boltzmann_temperature = 0.05;
  /// Featurized-prior generalization (the paper's Section 7.2.1 pointer:
  /// "appropriate featurization could help identify promising index
  /// configurations more quickly"): after Algorithm 4, fit a ridge model of
  /// observed singleton improvements over static index features and predict
  /// priors for the candidates the budget never reached, instead of leaving
  /// them at zero.
  bool featurized_priors = false;
  /// Ridge regularization of the prior model.
  double prior_ridge_lambda = 1.0;

  /// Rapid Action Value Estimation (Gelly & Silver), the update-policy
  /// refinement the paper's related-work section points to: blend each
  /// action's Q-hat with an all-moves-as-first estimate while visit counts
  /// are low.
  bool use_rave = false;
  /// RAVE equivalence parameter: beta(n) = sqrt(k / (3n + k)).
  double rave_k = 500.0;
  /// RNG seed; the paper runs five seeds and reports mean and stddev.
  uint64_t seed = 1;
};

/// Budget-aware index tuning with Monte Carlo tree search (paper Algorithm 3).
/// Each episode descends the search tree over configurations, samples a
/// configuration, spends exactly one what-if call to evaluate it
/// (EvaluateCostWithBudget), and backs the percentage-improvement reward up
/// the path. Priors for the epsilon-greedy policy consume up to half the
/// budget (Algorithm 4) before search starts.
class MctsTuner : public Tuner {
 public:
  MctsTuner(TuningContext ctx, MctsOptions options = MctsOptions());

  TuningResult Tune(CostService& service) override;
  std::string name() const override;

  /// Best-improvement-so-far after each episode (by the episode's evaluated
  /// derived cost); index i = value after budget unit i of the search phase.
  /// Populated by the last Tune() call.
  const std::vector<double>& improvement_trace() const { return trace_; }

  const std::vector<double>* progress_trace() const override {
    return &trace_;
  }

 private:
  struct Node {
    Config config;
    int visits = 0;
    /// Feasible actions (candidate positions not in `config` and fitting the
    /// storage constraint), with per-action statistics.
    std::vector<int> actions;
    std::vector<int> action_visits;
    std::vector<double> action_value;  // Q-hat(s, a): mean reward in [0, 1]
    /// All-moves-as-first statistics (populated only when use_rave is set).
    std::vector<int> rave_visits;
    std::vector<double> rave_value;
  };

  Node* GetOrCreateNode(const Config& config, CostService& service);
  /// Algorithm 4: singleton priors eta(W, {a}) as fractions in [0, 1].
  void ComputePriors(CostService& service);
  int SelectAction(Node& node);
  Config Rollout(const Node& node);
  /// One episode: returns false when the budget ran out before evaluation.
  bool RunEpisode(CostService& service);

  TuningContext ctx_;
  MctsOptions options_;
  Rng rng_;
  std::unordered_map<Config, std::unique_ptr<Node>, DynamicBitsetHash> nodes_;
  std::vector<double> priors_;
  int rr_query_cursor_ = 0;
  Config best_explored_;
  double best_explored_improvement_ = -1.0;
  std::vector<double> trace_;
};

}  // namespace bati

#endif  // BATI_MCTS_MCTS_TUNER_H_
