#include "mcts/mcts_tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/macros.h"
#include "tuner/features.h"

namespace bati {

MctsTuner::MctsTuner(TuningContext ctx, MctsOptions options)
    : ctx_(std::move(ctx)),
      options_(options),
      rng_(options.seed),
      best_explored_(0) {
  BATI_CHECK(ctx_.workload != nullptr);
  BATI_CHECK(ctx_.candidates != nullptr);
}

std::string MctsTuner::name() const {
  std::string n = "mcts";
  switch (options_.action_policy) {
    case MctsOptions::ActionPolicy::kUct:
      n += "-uct";
      break;
    case MctsOptions::ActionPolicy::kEpsGreedyPrior:
      n += "-prior";
      break;
    case MctsOptions::ActionPolicy::kBoltzmann:
      n += "-boltz";
      break;
  }
  if (options_.rollout_policy == MctsOptions::RolloutPolicy::kFixedStep) {
    n += "-fix" + std::to_string(options_.fixed_rollout_step);
  } else {
    n += "-rnd";
  }
  switch (options_.extraction) {
    case MctsOptions::Extraction::kBce:
      n += "-bce";
      break;
    case MctsOptions::Extraction::kBestGreedy:
      n += "-bg";
      break;
    case MctsOptions::Extraction::kHybrid:
      n += "-hybrid";
      break;
  }
  if (options_.use_rave) n += "-rave";
  if (options_.featurized_priors) n += "-feat";
  return n;
}

MctsTuner::Node* MctsTuner::GetOrCreateNode(const Config& config,
                                            CostService& service) {
  auto it = nodes_.find(config);
  if (it != nodes_.end()) return it->second.get();
  auto node = std::make_unique<Node>();
  node->config = config;
  const Database& db = *ctx_.workload->database;
  const int n = service.num_candidates();
  for (int pos = 0; pos < n; ++pos) {
    if (config.test(static_cast<size_t>(pos))) continue;
    if (!FitsStorage(ctx_, db, config, pos)) continue;
    node->actions.push_back(pos);
    node->action_visits.push_back(0);
    // Q-hat is bootstrapped with the singleton prior for epsilon-greedy
    // and Boltzmann; UCT starts at zero and relies on its exploration bonus.
    double init =
        options_.action_policy != MctsOptions::ActionPolicy::kUct &&
                !priors_.empty()
            ? priors_[static_cast<size_t>(pos)]
            : 0.0;
    node->action_value.push_back(init);
    if (options_.use_rave) {
      node->rave_visits.push_back(0);
      node->rave_value.push_back(init);
    }
  }
  Node* raw = node.get();
  nodes_.emplace(config, std::move(node));
  return raw;
}

void MctsTuner::ComputePriors(CostService& service) {
  const int n = service.num_candidates();
  priors_.assign(static_cast<size_t>(n), 0.0);
  const double base = service.BaseWorkloadCost();
  if (base <= 0.0) return;

  // cost(W, {I}) accumulators, initialized to c(W, {}) (Algorithm 4 line 2).
  std::vector<double> cost_w(static_cast<size_t>(n), base);

  // Per-query evaluation queues: candidate positions of I_{q}, largest
  // tables first (the paper's IndexSelection heuristic).
  const Database& db = *ctx_.workload->database;
  const int m = service.num_queries();
  std::vector<std::vector<int>> queues(static_cast<size_t>(m));
  int64_t total_pairs = 0;
  for (int q = 0; q < m; ++q) {
    queues[static_cast<size_t>(q)] =
        ctx_.candidates->per_query[static_cast<size_t>(q)];
    std::sort(queues[static_cast<size_t>(q)].begin(),
              queues[static_cast<size_t>(q)].end(), [&](int a, int b) {
                const Index& ia =
                    ctx_.candidates->indexes[static_cast<size_t>(a)];
                double ra = db.table(ia.table_id).row_count();
                const Index& ib =
                    ctx_.candidates->indexes[static_cast<size_t>(b)];
                double rb = db.table(ib.table_id).row_count();
                if (ra != rb) return ra > rb;
                return a < b;
              });
    total_pairs += static_cast<int64_t>(queues[static_cast<size_t>(q)].size());
  }

  // B' = min(B/2, P) (Section 6.1.2). The whole prior phase is one round.
  service.BeginRound("mcts.prior");
  int64_t prior_budget = std::min(service.budget() / 2, total_pairs);

  // Round-robin QuerySelection over queries with work left.
  std::vector<size_t> cursor(static_cast<size_t>(m), 0);
  int q = 0;
  for (int64_t b = 0; b < prior_budget && service.HasBudget();) {
    // Advance round-robin to the next query with unevaluated candidates.
    int scanned = 0;
    while (scanned < m &&
           cursor[static_cast<size_t>(q)] >=
               queues[static_cast<size_t>(q)].size()) {
      q = (q + 1) % m;
      ++scanned;
    }
    if (scanned >= m) break;  // all pairs evaluated
    int pos = queues[static_cast<size_t>(q)][cursor[static_cast<size_t>(q)]++];
    Config singleton = service.EmptyConfig();
    singleton.set(static_cast<size_t>(pos));
    auto c = service.WhatIfCost(q, singleton);
    if (!c.has_value()) break;
    cost_w[static_cast<size_t>(pos)] -= service.BaseCost(q) - *c;
    ++b;
    q = (q + 1) % m;
  }

  // Which candidates received at least one singleton evaluation.
  std::vector<bool> evaluated(static_cast<size_t>(n), false);
  for (const LayoutEntry& e : service.layout()) {
    if (e.config.count() == 1) {
      evaluated[e.config.ToIndices().front()] = true;
    }
  }

  for (int pos = 0; pos < n; ++pos) {
    double eta = 1.0 - cost_w[static_cast<size_t>(pos)] / base;
    priors_[static_cast<size_t>(pos)] = std::max(0.0, eta);
  }

  // Featurized-prior generalization: predict priors for never-evaluated
  // candidates from a ridge model fitted on the evaluated ones.
  if (options_.featurized_priors) {
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int pos = 0; pos < n; ++pos) {
      if (!evaluated[static_cast<size_t>(pos)]) continue;
      xs.push_back(IndexFeatures(ctx_, pos));
      ys.push_back(priors_[static_cast<size_t>(pos)]);
    }
    if (xs.size() >= static_cast<size_t>(kIndexFeatureCount)) {
      std::vector<double> theta =
          RidgeFit(xs, ys, options_.prior_ridge_lambda);
      for (int pos = 0; pos < n; ++pos) {
        if (evaluated[static_cast<size_t>(pos)]) continue;
        double predicted = DotProduct(theta, IndexFeatures(ctx_, pos));
        priors_[static_cast<size_t>(pos)] =
            std::min(1.0, std::max(0.0, predicted));
      }
    }
  }
}

int MctsTuner::SelectAction(Node& node) {
  BATI_CHECK(!node.actions.empty());
  const size_t k = node.actions.size();
  if (options_.action_policy == MctsOptions::ActionPolicy::kUct) {
    // Unvisited actions have infinite UCB score; break ties randomly.
    std::vector<size_t> unvisited;
    for (size_t i = 0; i < k; ++i) {
      if (node.action_visits[i] == 0) unvisited.push_back(i);
    }
    if (!unvisited.empty()) {
      return static_cast<int>(unvisited[static_cast<size_t>(rng_.UniformInt(
          0, static_cast<int64_t>(unvisited.size()) - 1))]);
    }
    double log_n = std::log(std::max(1, node.visits));
    int best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < k; ++i) {
      double score = node.action_value[i] +
                     options_.uct_lambda *
                         std::sqrt(log_n / node.action_visits[i]);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    return best;
  }
  // Effective action values, optionally blended with RAVE estimates:
  // (1 - beta) * Q-hat + beta * Q-rave with beta = sqrt(k / (3n + k)).
  std::vector<double> values = node.action_value;
  if (options_.use_rave) {
    for (size_t i = 0; i < k; ++i) {
      double n = node.action_visits[i];
      double beta = std::sqrt(options_.rave_k / (3.0 * n + options_.rave_k));
      double rave = node.rave_visits[i] > 0 ? node.rave_value[i] : values[i];
      values[i] = (1.0 - beta) * values[i] + beta * rave;
    }
  }
  if (options_.action_policy == MctsOptions::ActionPolicy::kBoltzmann) {
    // Softmax with temperature tau; subtract the max for numerical safety.
    double max_v = *std::max_element(values.begin(), values.end());
    std::vector<double> probs(k);
    double tau = std::max(1e-6, options_.boltzmann_temperature);
    for (size_t i = 0; i < k; ++i) {
      probs[i] = std::exp((values[i] - max_v) / tau);
    }
    return static_cast<int>(rng_.WeightedIndex(probs));
  }
  // Proportional epsilon-greedy (Equation 6): Pr(a) proportional to Q-hat.
  return static_cast<int>(rng_.WeightedIndex(values));
}

Config MctsTuner::Rollout(const Node& node) {
  const int k_max = ctx_.constraints.max_indexes;
  const int depth = static_cast<int>(node.config.count());
  const int slack = std::max(0, k_max - depth);
  int steps;
  if (options_.rollout_policy == MctsOptions::RolloutPolicy::kRandomStep) {
    steps = static_cast<int>(rng_.UniformInt(0, slack));
  } else {
    steps = std::min(options_.fixed_rollout_step, slack);
  }
  Config result = node.config;
  if (steps == 0) return result;

  const Database& db = *ctx_.workload->database;
  std::vector<int> pool = node.actions;
  std::vector<double> weights;
  weights.reserve(pool.size());
  bool weighted =
      options_.action_policy != MctsOptions::ActionPolicy::kUct &&
      !priors_.empty();
  for (int pos : pool) {
    weights.push_back(weighted ? priors_[static_cast<size_t>(pos)] : 1.0);
  }
  for (int s = 0; s < steps && !pool.empty(); ++s) {
    size_t pick = rng_.WeightedIndex(weights);
    int pos = pool[pick];
    pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
    weights.erase(weights.begin() + static_cast<ptrdiff_t>(pick));
    if (!FitsStorage(ctx_, db, result, pos)) continue;
    result.set(static_cast<size_t>(pos));
  }
  return result;
}

bool MctsTuner::RunEpisode(CostService& service) {
  // ---- Selection / expansion / simulation (SampleConfiguration). ----
  struct PathStep {
    Node* node;
    int action_index;  // -1 at the final node
  };
  std::vector<PathStep> path;
  Node* node = GetOrCreateNode(service.EmptyConfig(), service);
  Config sampled(0);
  while (true) {
    bool terminal =
        static_cast<int>(node->config.count()) >=
            ctx_.constraints.max_indexes ||
        node->actions.empty();
    if (terminal) {
      path.push_back(PathStep{node, -1});
      sampled = node->config;
      break;
    }
    if (node->visits == 0) {
      // Unvisited leaf: simulate.
      path.push_back(PathStep{node, -1});
      sampled = Rollout(*node);
      break;
    }
    int a = SelectAction(*node);
    path.push_back(PathStep{node, a});
    Config next = node->config.With(
        static_cast<size_t>(node->actions[static_cast<size_t>(a)]));
    node = GetOrCreateNode(next, service);  // expansion on first touch
  }

  // ---- EvaluateCostWithBudget: one what-if call on a query sampled with
  // probability proportional to its derived cost. Queries whose cost for
  // this configuration is already cached carry weight zero — re-evaluating
  // them would spend the episode without learning anything new. ----
  const int m = service.num_queries();
  // Batched Equation-1 lookups through the engine's derived-cost index: one
  // episode evaluates all m queries, the hot path of the search phase.
  std::vector<double> derived = service.DerivedCosts(sampled);
  std::vector<double> weights(static_cast<size_t>(m), 0.0);
  double cost = 0.0;
  bool any_unknown = false;
  for (int q = 0; q < m; ++q) {
    cost += derived[static_cast<size_t>(q)];
    if (!service.IsKnown(q, sampled)) {
      weights[static_cast<size_t>(q)] = derived[static_cast<size_t>(q)];
      any_unknown = true;
    }
  }
  if (!sampled.empty() && any_unknown) {
    int q_sel = -1;
    switch (options_.query_selection) {
      case MctsOptions::QuerySelection::kProportionalToDerivedCost:
        q_sel = static_cast<int>(rng_.WeightedIndex(weights));
        break;
      case MctsOptions::QuerySelection::kUniform: {
        std::vector<double> uniform(weights.size(), 0.0);
        for (size_t q = 0; q < weights.size(); ++q) {
          if (weights[q] > 0.0) uniform[q] = 1.0;
        }
        q_sel = static_cast<int>(rng_.WeightedIndex(uniform));
        break;
      }
      case MctsOptions::QuerySelection::kRoundRobin: {
        for (int step = 0; step < m; ++step) {
          int q = (rr_query_cursor_ + step) % m;
          if (weights[static_cast<size_t>(q)] > 0.0) {
            q_sel = q;
            rr_query_cursor_ = (q + 1) % m;
            break;
          }
        }
        break;
      }
    }
    BATI_CHECK(q_sel >= 0);
    auto what_if = service.WhatIfCost(q_sel, sampled);
    if (!what_if.has_value()) return false;  // budget exhausted
    cost += *what_if - derived[static_cast<size_t>(q_sel)];
  }
  double base = service.BaseWorkloadCost();
  double reward = base > 0.0 ? std::max(0.0, 1.0 - cost / base) : 0.0;

  // ---- Update: back the reward up the path. ----
  for (PathStep& step : path) {
    step.node->visits += 1;
    if (step.action_index >= 0) {
      size_t a = static_cast<size_t>(step.action_index);
      int n = ++step.node->action_visits[a];
      double& q_hat = step.node->action_value[a];
      if (n == 1 &&
          options_.action_policy != MctsOptions::ActionPolicy::kUct) {
        // First real observation replaces the prior.
        q_hat = reward;
      } else {
        q_hat += (reward - q_hat) / n;
      }
    }
    if (options_.use_rave) {
      // All-moves-as-first: every action whose index ended up in the
      // sampled configuration gets a RAVE update at every node on the path.
      Node& node_ref = *step.node;
      for (size_t i = 0; i < node_ref.actions.size(); ++i) {
        size_t pos = static_cast<size_t>(node_ref.actions[i]);
        if (!sampled.test(pos)) continue;
        int rn = ++node_ref.rave_visits[i];
        node_ref.rave_value[i] += (reward - node_ref.rave_value[i]) / rn;
      }
    }
  }

  // ---- Track the best configuration explored (for BCE and the trace). ----
  double improvement = reward * 100.0;
  if (improvement > best_explored_improvement_) {
    best_explored_improvement_ = improvement;
    best_explored_ = sampled;
  }
  trace_.push_back(best_explored_improvement_);
  return true;
}

TuningResult MctsTuner::Tune(CostService& service) {
  nodes_.clear();
  trace_.clear();
  best_explored_ = service.EmptyConfig();
  best_explored_improvement_ = -1.0;

  if (options_.action_policy != MctsOptions::ActionPolicy::kUct) {
    ComputePriors(service);
  }
  GetOrCreateNode(service.EmptyConfig(), service);
  // Episodes that only touch cached cells spend no budget; in tiny search
  // spaces everything eventually is cached, so bound the free-episode streak
  // to guarantee termination.
  int free_episodes = 0;
  while (service.HasBudget() && free_episodes < 1000) {
    service.BeginRound("mcts.episode");  // one episode = one round
    int64_t calls_before = service.calls_made();
    if (!RunEpisode(service)) break;
    if (service.calls_made() == calls_before) {
      ++free_episodes;
    } else {
      free_episodes = 0;
    }
  }

  Config best = service.EmptyConfig();
  if (options_.extraction == MctsOptions::Extraction::kBce) {
    best = best_explored_;
  } else {
    // Best-Greedy: re-run Algorithm 1 over the cached costs only (derived
    // costs; no budget is spent).
    std::vector<int> all_queries(static_cast<size_t>(service.num_queries()));
    std::iota(all_queries.begin(), all_queries.end(), 0);
    std::vector<int> all_candidates(
        static_cast<size_t>(service.num_candidates()));
    std::iota(all_candidates.begin(), all_candidates.end(), 0);
    best = GreedyEnumerate(ctx_, service, all_queries, all_candidates,
                           service.EmptyConfig(), DenyAllWhatIf());
    if (options_.extraction == MctsOptions::Extraction::kHybrid &&
        service.DerivedImprovement(best_explored_) >
            service.DerivedImprovement(best)) {
      best = best_explored_;
    }
  }

  TuningResult result;
  result.algorithm = name();
  result.best_config = best;
  result.derived_improvement = service.DerivedImprovement(best);
  result.what_if_calls = service.calls_made();
  // The trace always ends at the returned recommendation's improvement (BG
  // extraction can differ from the best explored configuration).
  if (trace_.empty() || trace_.back() != result.derived_improvement) {
    trace_.push_back(result.derived_improvement);
  }
  return result;
}

}  // namespace bati
