#ifndef BATI_SIGNAL_EXEC_SIGNAL_H_
#define BATI_SIGNAL_EXEC_SIGNAL_H_

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "exec/executor.h"
#include "obs/metrics.h"
#include "signal/deployment_signal.h"

namespace bati {

/// Tunables shared by the exec-backed signals.
struct ExecSignalOptions {
  /// Interleaved repetitions per configuration for the measured signal
  /// (pooled per-query minima, the correlation harness's estimator).
  int measured_repetitions = 3;
  /// Store-materialization seed (StoreOptions::seed).
  uint64_t store_seed = 42;
  /// Total catalog rows beyond which Ready() refuses: the serve event
  /// loop must not stall for minutes materializing a statistics-scale
  /// store; the caller falls back to the calibrated what-if estimate.
  int64_t max_store_rows = 2 * 1000 * 1000;
  /// Where the engines' "exec.*" operator counters land. Never null once
  /// the hub constructs a signal.
  MetricsRegistry* metrics = nullptr;
  /// Test seam for the measured signal: when set, per-query seconds come
  /// from this function of (query id, configuration positions) instead of
  /// wall-clock execution — deterministic rollback drills without timer
  /// dependence. Production leaves it empty.
  std::function<double(int query_id, const std::vector<size_t>& positions)>
      measured_time_override;
};

/// Lazily materialized, bundle-keyed execution engines shared by both
/// exec-backed signals (and both sides of every evaluation). Bundle
/// pointers are stable for the process lifetime (BundleRegistry), so the
/// pointer is the key; the underlying column store is additionally shared
/// process-wide through exec/store_cache.h, so drift sub-workload bundles
/// over the same catalog reuse one store. Single-threaded (serve event
/// loop).
class SignalEngineCache {
 public:
  explicit SignalEngineCache(const ExecSignalOptions& options)
      : options_(options) {}

  /// FailedPrecondition when the bundle's catalog exceeds max_store_rows.
  Status Ready(const WorkloadBundle& bundle) const;

  /// The engine for `bundle` (built on first use). Ready() must be Ok.
  exec::ExecutionEngine* Get(const WorkloadBundle& bundle);

  const ExecSignalOptions& options() const { return options_; }

 private:
  ExecSignalOptions options_;
  std::map<const WorkloadBundle*, std::unique_ptr<exec::ExecutionEngine>>
      engines_;
};

/// Deterministic execution-backed signal: runs every window query through
/// the plan-driven executor and prices it as a fixed weighted sum of the
/// per-operator work counters the run bumped (rows scanned, entries
/// touched, seeks, probes, ...). Uses real execution — the plan the
/// what-if cost claims to price actually runs against the materialized
/// store — but never a clock, so equal inputs produce equal bytes and the
/// serve daemon's reproducibility guarantee survives.
class DeterministicExecSignal : public DeploymentSignal {
 public:
  explicit DeterministicExecSignal(SignalEngineCache* engines);

  SignalKind kind() const override { return SignalKind::kDeterministicExec; }
  Status Ready(const WorkloadBundle& bundle) const override;
  SignalCosts Evaluate(const WorkloadBundle& bundle,
                       const std::vector<std::pair<int, double>>& window,
                       const std::vector<size_t>& deployed,
                       const std::vector<size_t>& candidate) override;

  /// Cost units of one query under one configuration: executes it and
  /// weighs the operator-counter deltas. Exposed for tests.
  double QueryCostUnits(exec::ExecutionEngine* engine, int query_id,
                        const std::vector<Index>& config);

 private:
  SignalEngineCache* engines_;
  exec::ExecCounters counters_;
};

/// Measured execution-backed signal: wall-clock seconds per query, pooled
/// per-query minima over `measured_repetitions` interleaved sweeps of
/// deployed and candidate (the correlation harness's noise-clipping
/// estimator), window-weighted. What-if costs ride along for calibration.
class MeasuredSignal : public DeploymentSignal {
 public:
  explicit MeasuredSignal(SignalEngineCache* engines) : engines_(engines) {}

  SignalKind kind() const override { return SignalKind::kMeasured; }
  Status Ready(const WorkloadBundle& bundle) const override;
  SignalCosts Evaluate(const WorkloadBundle& bundle,
                       const std::vector<std::pair<int, double>>& window,
                       const std::vector<size_t>& deployed,
                       const std::vector<size_t>& candidate) override;

 private:
  SignalEngineCache* engines_;
};

}  // namespace bati

#endif  // BATI_SIGNAL_EXEC_SIGNAL_H_
