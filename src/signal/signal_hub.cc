#include "signal/signal_hub.h"

#include "common/macros.h"

namespace bati {

SignalHub::SignalHub(const ExecSignalOptions& options,
                     MetricsRegistry* metrics)
    : options_(options) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  options_.metrics = metrics;
}

SignalHub::~SignalHub() = default;

DeploymentSignal* SignalHub::Get(SignalKind kind) {
  const size_t slot = static_cast<size_t>(kind);
  BATI_CHECK(slot < 3);
  if (signals_[slot] == nullptr) {
    if (engines_ == nullptr && kind != SignalKind::kWhatIf) {
      engines_ = std::make_unique<SignalEngineCache>(options_);
    }
    switch (kind) {
      case SignalKind::kWhatIf:
        signals_[slot] = std::make_unique<WhatIfSignal>();
        break;
      case SignalKind::kDeterministicExec:
        signals_[slot] =
            std::make_unique<DeterministicExecSignal>(engines_.get());
        break;
      case SignalKind::kMeasured:
        signals_[slot] = std::make_unique<MeasuredSignal>(engines_.get());
        break;
    }
  }
  return signals_[slot].get();
}

}  // namespace bati
