#ifndef BATI_SIGNAL_SIGNAL_HUB_H_
#define BATI_SIGNAL_SIGNAL_HUB_H_

#include <memory>

#include "obs/metrics.h"
#include "signal/exec_signal.h"

namespace bati {

/// Owns one instance of every deployment signal plus the execution-engine
/// cache the exec-backed ones share. The serve daemon holds one hub and
/// resolves the signal per tenant per decision; signals are constructed
/// lazily, so a what-if-only daemon never materializes a store. Single-
/// threaded (serve event loop).
class SignalHub {
 public:
  /// `metrics` receives the engines' "exec.*" operator counters; when
  /// null, the hub owns a private registry (detached use in tests).
  SignalHub(const ExecSignalOptions& options, MetricsRegistry* metrics);
  ~SignalHub();

  SignalHub(const SignalHub&) = delete;
  SignalHub& operator=(const SignalHub&) = delete;

  /// The signal instance for `kind`; stable for the hub's lifetime.
  DeploymentSignal* Get(SignalKind kind);

 private:
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  ExecSignalOptions options_;
  std::unique_ptr<SignalEngineCache> engines_;
  std::unique_ptr<DeploymentSignal> signals_[3];
};

}  // namespace bati

#endif  // BATI_SIGNAL_SIGNAL_HUB_H_
