#include "signal/exec_signal.h"

#include <algorithm>
#include <array>
#include <limits>
#include <string>

#include "common/macros.h"

namespace bati {

namespace {

/// Weight of one unit of each operator counter in deterministic cost
/// units. The ratios mirror the cost model's qualitative ordering — a
/// random heap lookup or tree descent dwarfs touching one covering entry,
/// a scanned heap row is the baseline, per-scan and per-seek setup carry
/// fixed overhead — but the absolute scale is arbitrary: the lifecycle
/// only ever compares two configurations under the same weights, and the
/// calibration ratio absorbs scale when units stand next to what-if cost.
constexpr double kWeightSeqScan = 10.0;
constexpr double kWeightSeqRow = 1.0;
constexpr double kWeightIndexSeek = 8.0;
constexpr double kWeightIndexEntry = 0.5;
constexpr double kWeightIndexFullScan = 10.0;
constexpr double kWeightHeapLookup = 4.0;
constexpr double kWeightHashBuildRow = 2.0;
constexpr double kWeightHashProbeRow = 1.0;
constexpr double kWeightMergeRow = 0.5;
constexpr double kWeightSortRow = 2.0;
constexpr double kWeightAggGroup = 1.0;
constexpr double kWeightResultRow = 0.1;

std::vector<Index> ToConfig(const WorkloadBundle& bundle,
                            const std::vector<size_t>& positions) {
  std::vector<Index> config;
  config.reserve(positions.size());
  for (size_t pos : positions) {
    BATI_CHECK(pos < bundle.candidates.indexes.size());
    config.push_back(bundle.candidates.indexes[pos]);
  }
  return config;
}

/// Window-weighted accumulation of a per-query unit cost, with the same
/// empty-window uniform fallback as WindowWhatIfCost.
template <typename UnitFn>
double WindowAccumulate(const WorkloadBundle& bundle,
                        const std::vector<std::pair<int, double>>& window,
                        UnitFn unit) {
  double cost = 0.0;
  if (window.empty()) {
    const int nq = bundle.workload.num_queries();
    for (int qi = 0; qi < nq; ++qi) cost += unit(qi);
    return cost;
  }
  for (const auto& [query_id, weight] : window) {
    BATI_CHECK(query_id >= 0 && query_id < bundle.workload.num_queries());
    cost += weight * unit(query_id);
  }
  return cost;
}

/// Largest single-table row count in the bundle's catalog — the quantity
/// StoreOptions::max_rows_per_table caps. A table beyond the cap would be
/// silently truncated at materialization, decoupling executed work from
/// the catalog statistics what-if costs are derived from, so such bundles
/// are rejected up front instead.
int64_t MaxTableRows(const WorkloadBundle& bundle) {
  const Database& db = *bundle.workload.database;
  double rows = 0.0;
  for (int t = 0; t < db.num_tables(); ++t) {
    rows = std::max(rows, db.table(t).row_count());
  }
  return static_cast<int64_t>(rows);
}

Status GuardStoreSize(const WorkloadBundle& bundle, int64_t max_rows) {
  const int64_t rows = MaxTableRows(bundle);
  if (rows > max_rows) {
    return Status::FailedPrecondition(
        "catalog of workload \"" + bundle.workload.name +
        "\" has a table of " + std::to_string(rows) +
        " rows, beyond the exec-signal cap of " + std::to_string(max_rows) +
        " (falling back to calibrated what-if)");
  }
  return Status::Ok();
}

int64_t CounterValue(Counter* c) { return c == nullptr ? 0 : c->value(); }

}  // namespace

Status SignalEngineCache::Ready(const WorkloadBundle& bundle) const {
  return GuardStoreSize(bundle, options_.max_store_rows);
}

exec::ExecutionEngine* SignalEngineCache::Get(const WorkloadBundle& bundle) {
  BATI_CHECK(Ready(bundle).ok());
  std::unique_ptr<exec::ExecutionEngine>& slot = engines_[&bundle];
  if (slot == nullptr) {
    exec::StoreOptions store_options;
    store_options.seed = options_.store_seed;
    store_options.max_rows_per_table = options_.max_store_rows;
    slot = std::make_unique<exec::ExecutionEngine>(
        bundle.workload, store_options, options_.metrics);
  }
  return slot.get();
}

DeterministicExecSignal::DeterministicExecSignal(SignalEngineCache* engines)
    : engines_(engines),
      counters_(exec::ExecCounters::Resolve(engines->options().metrics)) {}

Status DeterministicExecSignal::Ready(const WorkloadBundle& bundle) const {
  return engines_->Ready(bundle);
}

double DeterministicExecSignal::QueryCostUnits(
    exec::ExecutionEngine* engine, int query_id,
    const std::vector<Index>& config) {
  // Counter deltas around one synchronous execution on the event loop:
  // these engines resolve their counters against the same registry, and
  // nothing else bumps the exec.* family, so the delta is exactly this
  // query's operator work. Tree builds are excluded — materialization is
  // one-time and cached, not per-evaluation cost.
  struct Snapshot {
    int64_t seq_scans, seq_rows, index_seeks, index_entries,
        index_full_scans, heap_lookups, hash_build_rows, hash_probe_rows,
        merge_rows, sort_rows, agg_groups, result_rows;
  };
  auto snap = [&]() -> Snapshot {
    return {CounterValue(counters_.seq_scans),
            CounterValue(counters_.seq_rows),
            CounterValue(counters_.index_seeks),
            CounterValue(counters_.index_entries),
            CounterValue(counters_.index_full_scans),
            CounterValue(counters_.heap_lookups),
            CounterValue(counters_.hash_build_rows),
            CounterValue(counters_.hash_probe_rows),
            CounterValue(counters_.merge_rows),
            CounterValue(counters_.sort_rows),
            CounterValue(counters_.agg_groups),
            CounterValue(counters_.result_rows)};
  };
  const Snapshot before = snap();
  engine->ExecuteOne(query_id, config);
  const Snapshot after = snap();
  const auto delta = [](int64_t b, int64_t a) {
    return static_cast<double>(a - b);
  };
  return kWeightSeqScan * delta(before.seq_scans, after.seq_scans) +
         kWeightSeqRow * delta(before.seq_rows, after.seq_rows) +
         kWeightIndexSeek * delta(before.index_seeks, after.index_seeks) +
         kWeightIndexEntry *
             delta(before.index_entries, after.index_entries) +
         kWeightIndexFullScan *
             delta(before.index_full_scans, after.index_full_scans) +
         kWeightHeapLookup *
             delta(before.heap_lookups, after.heap_lookups) +
         kWeightHashBuildRow *
             delta(before.hash_build_rows, after.hash_build_rows) +
         kWeightHashProbeRow *
             delta(before.hash_probe_rows, after.hash_probe_rows) +
         kWeightMergeRow * delta(before.merge_rows, after.merge_rows) +
         kWeightSortRow * delta(before.sort_rows, after.sort_rows) +
         kWeightAggGroup * delta(before.agg_groups, after.agg_groups) +
         kWeightResultRow * delta(before.result_rows, after.result_rows);
}

SignalCosts DeterministicExecSignal::Evaluate(
    const WorkloadBundle& bundle,
    const std::vector<std::pair<int, double>>& window,
    const std::vector<size_t>& deployed,
    const std::vector<size_t>& candidate) {
  exec::ExecutionEngine* engine = engines_->Get(bundle);
  const std::vector<Index> deployed_config = ToConfig(bundle, deployed);
  const std::vector<Index> candidate_config = ToConfig(bundle, candidate);
  SignalCosts costs;
  costs.deployed = WindowAccumulate(bundle, window, [&](int qi) {
    return QueryCostUnits(engine, qi, deployed_config);
  });
  costs.candidate = WindowAccumulate(bundle, window, [&](int qi) {
    return QueryCostUnits(engine, qi, candidate_config);
  });
  costs.whatif_deployed = WindowWhatIfCost(bundle, window, deployed);
  costs.whatif_candidate = WindowWhatIfCost(bundle, window, candidate);
  return costs;
}

Status MeasuredSignal::Ready(const WorkloadBundle& bundle) const {
  // The override seam never touches a store, so it is always ready.
  if (engines_->options().measured_time_override) return Status::Ok();
  return engines_->Ready(bundle);
}

SignalCosts MeasuredSignal::Evaluate(
    const WorkloadBundle& bundle,
    const std::vector<std::pair<int, double>>& window,
    const std::vector<size_t>& deployed,
    const std::vector<size_t>& candidate) {
  SignalCosts costs;
  costs.whatif_deployed = WindowWhatIfCost(bundle, window, deployed);
  costs.whatif_candidate = WindowWhatIfCost(bundle, window, candidate);

  const ExecSignalOptions& options = engines_->options();
  if (options.measured_time_override) {
    costs.deployed = WindowAccumulate(bundle, window, [&](int qi) {
      return options.measured_time_override(qi, deployed);
    });
    costs.candidate = WindowAccumulate(bundle, window, [&](int qi) {
      return options.measured_time_override(qi, candidate);
    });
    return costs;
  }

  exec::ExecutionEngine* engine = engines_->Get(bundle);
  const std::array<std::vector<Index>, 2> configs = {
      ToConfig(bundle, deployed), ToConfig(bundle, candidate)};
  const size_t nq = static_cast<size_t>(bundle.workload.num_queries());
  std::array<std::vector<double>, 2> best;
  best[0].assign(nq, std::numeric_limits<double>::infinity());
  best[1].assign(nq, std::numeric_limits<double>::infinity());

  // Interleave the two configurations across repetitions (the correlation
  // harness's pattern): slow drift in machine state hits both sides
  // equally instead of biasing whichever ran last.
  const int reps = std::max(1, options.measured_repetitions);
  for (int rep = 0; rep < reps; ++rep) {
    for (int side = 0; side < 2; ++side) {
      const exec::ExecutionEngine::RunResult run =
          engine->ExecuteWorkload(configs[static_cast<size_t>(side)], 1);
      for (size_t qi = 0; qi < nq; ++qi) {
        best[static_cast<size_t>(side)][qi] =
            std::min(best[static_cast<size_t>(side)][qi],
                     run.per_query_seconds[qi]);
      }
    }
  }
  costs.deployed = WindowAccumulate(bundle, window, [&](int qi) {
    return best[0][static_cast<size_t>(qi)];
  });
  costs.candidate = WindowAccumulate(bundle, window, [&](int qi) {
    return best[1][static_cast<size_t>(qi)];
  });
  return costs;
}

}  // namespace bati
