#include "signal/deployment_signal.h"

#include "common/macros.h"
#include "storage/index.h"

namespace bati {

const char* SignalKindName(SignalKind kind) {
  switch (kind) {
    case SignalKind::kWhatIf:
      return "whatif";
    case SignalKind::kDeterministicExec:
      return "exec-deterministic";
    case SignalKind::kMeasured:
      return "measured";
  }
  return "unknown";
}

bool ParseSignalKind(const std::string& name, SignalKind* kind) {
  if (name == "whatif") {
    *kind = SignalKind::kWhatIf;
    return true;
  }
  if (name == "exec-deterministic") {
    *kind = SignalKind::kDeterministicExec;
    return true;
  }
  if (name == "measured") {
    *kind = SignalKind::kMeasured;
    return true;
  }
  return false;
}

double WindowWhatIfCost(const WorkloadBundle& bundle,
                        const std::vector<std::pair<int, double>>& window,
                        const std::vector<size_t>& positions) {
  std::vector<Index> config;
  config.reserve(positions.size());
  for (size_t pos : positions) {
    BATI_CHECK(pos < bundle.candidates.indexes.size());
    config.push_back(bundle.candidates.indexes[pos]);
  }
  double cost = 0.0;
  if (window.empty()) {
    // No live observations yet: fall back to the tuning-time assumption of
    // a uniformly weighted workload.
    for (const Query& query : bundle.workload.queries) {
      cost += bundle.optimizer->Cost(query, config);
    }
    return cost;
  }
  for (const auto& [query_id, weight] : window) {
    BATI_CHECK(query_id >= 0 &&
               query_id < bundle.workload.num_queries());
    cost += weight * bundle.optimizer->Cost(
                         bundle.workload.queries[static_cast<size_t>(
                             query_id)],
                         config);
  }
  return cost;
}

SignalCosts WhatIfSignal::Evaluate(
    const WorkloadBundle& bundle,
    const std::vector<std::pair<int, double>>& window,
    const std::vector<size_t>& deployed,
    const std::vector<size_t>& candidate) {
  SignalCosts costs;
  costs.deployed = WindowWhatIfCost(bundle, window, deployed);
  costs.candidate = WindowWhatIfCost(bundle, window, candidate);
  costs.whatif_deployed = costs.deployed;
  costs.whatif_candidate = costs.candidate;
  return costs;
}

}  // namespace bati
