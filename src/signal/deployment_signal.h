#ifndef BATI_SIGNAL_DEPLOYMENT_SIGNAL_H_
#define BATI_SIGNAL_DEPLOYMENT_SIGNAL_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "session/bundle_registry.h"

namespace bati {

/// Which regression signal judges a deployment.
enum class SignalKind {
  /// The bundle's pure what-if optimizer — today's derived cost model and
  /// the default. Bit-identical to the pre-signal-layer serve daemon.
  kWhatIf = 0,
  /// Operator-counter-weighted cost units from the real executor: every
  /// window query is executed through src/exec following its what-if plan,
  /// and the cost is a fixed weighted sum of the per-operator work counts
  /// (rows scanned, seeks, probes, ...). A pure function of plan + store —
  /// no wall-clock anywhere — so serve output stays byte-reproducible
  /// across replays and parallelism settings.
  kDeterministicExec = 1,
  /// Measured wall-clock seconds from src/exec, pooled per-query minima
  /// over interleaved repetitions (the correlation harness's estimator).
  /// The DBA-bandits never-regress guarantee on *observed* execution; not
  /// byte-reproducible, by construction.
  kMeasured = 2,
};

/// "whatif" | "exec-deterministic" | "measured" — the spelling used by
/// --signal, the "signal" spec key, and the checkpoint.
const char* SignalKindName(SignalKind kind);

/// Inverse of SignalKindName(); false on an unknown spelling.
bool ParseSignalKind(const std::string& name, SignalKind* kind);

/// Both configurations' window-weighted costs under one signal, plus the
/// matching what-if costs (always filled): the observed/what-if pairs feed
/// the serve daemon's calibration ratio, and for WhatIfSignal the two
/// pairs coincide.
struct SignalCosts {
  double deployed = 0.0;
  double candidate = 0.0;
  double whatif_deployed = 0.0;
  double whatif_candidate = 0.0;
};

/// A pluggable deployment-regression signal: given a tenant's bundle, its
/// live window (the observer's WindowSupport(); uniform over the whole
/// workload when empty), and the deployed/candidate configurations as
/// ascending candidate positions, produce comparable costs for both sides.
///
/// Implementations must be deterministic functions of their inputs except
/// where the signal's contract is explicitly wall-clock (kMeasured).
/// Single-threaded: the serve event loop is the only caller.
class DeploymentSignal {
 public:
  virtual ~DeploymentSignal() = default;

  virtual SignalKind kind() const = 0;

  /// Whether Evaluate() may be called for `bundle`. Exec-backed signals
  /// refuse catalogs too large to materialize within their row budget
  /// (FailedPrecondition); the caller then falls back to the calibrated
  /// what-if estimate. Deterministic, so fallback decisions replay
  /// identically.
  virtual Status Ready(const WorkloadBundle& bundle) const {
    (void)bundle;
    return Status::Ok();
  }

  /// Costs both configurations on the window. Positions must be in range
  /// for bundle.candidates.indexes (CHECK). Ready() must have returned Ok.
  virtual SignalCosts Evaluate(
      const WorkloadBundle& bundle,
      const std::vector<std::pair<int, double>>& window,
      const std::vector<size_t>& deployed,
      const std::vector<size_t>& candidate) = 0;
};

/// Window-weighted what-if cost of a configuration — the exact arithmetic
/// (loop order, fallback, accumulation) the pre-signal-layer lifecycle
/// used, shared by WhatIfSignal and by the exec-backed signals' what-if
/// sides so every signal's calibration baseline agrees to the bit.
double WindowWhatIfCost(const WorkloadBundle& bundle,
                        const std::vector<std::pair<int, double>>& window,
                        const std::vector<size_t>& positions);

/// The default signal: both cost pairs are the pure what-if window costs.
class WhatIfSignal : public DeploymentSignal {
 public:
  SignalKind kind() const override { return SignalKind::kWhatIf; }
  SignalCosts Evaluate(const WorkloadBundle& bundle,
                       const std::vector<std::pair<int, double>>& window,
                       const std::vector<size_t>& deployed,
                       const std::vector<size_t>& candidate) override;
};

}  // namespace bati

#endif  // BATI_SIGNAL_DEPLOYMENT_SIGNAL_H_
