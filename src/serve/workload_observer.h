#ifndef BATI_SERVE_WORKLOAD_OBSERVER_H_
#define BATI_SERVE_WORKLOAD_OBSERVER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace bati {

/// Tunables of one tenant's sliding-window workload observer.
struct ObserverOptions {
  /// Observations the sliding window retains; the oldest is evicted (and
  /// its sketch contribution subtracted) when the window is full.
  size_t window = 256;
  /// Drift is evaluated every `stride` observations, not on every query —
  /// the paper's workloads shift in phases, not per statement.
  size_t stride = 32;
  /// No drift verdict before this many observations have ever been seen:
  /// a cold window is not evidence of a shift.
  size_t min_events = 64;
  /// Total-variation distance between the live window and the reference
  /// (tuning-time) distribution above which the window has drifted.
  double drift_threshold = 0.25;
  /// Count-min sketch geometry. Width is cells per row; depth is the
  /// number of independently hashed rows minimized over.
  size_t sketch_width = 512;
  size_t sketch_depth = 4;
};

/// One tenant's view of its live query stream: a count-min-style frequency
/// sketch maintained over a sliding window of recent observations, plus the
/// exact window contents (needed for eviction, serialization, and building
/// re-tune sub-workloads). Frequencies are estimated from the sketch — the
/// min over its rows, an upper bound that is exact while the window's
/// support is small against the sketch width — and compared against the
/// reference distribution captured at tuning time by total-variation
/// distance. Single-threaded by design: the daemon's event loop is the only
/// caller.
class WorkloadObserver {
 public:
  /// `num_queries` is the tenant workload's query universe size; observed
  /// ids must lie in [0, num_queries).
  WorkloadObserver(const ObserverOptions& options, int num_queries);

  /// Records one observation of `query_id` with positive `weight`,
  /// evicting the oldest observation when the window is full.
  void Observe(int query_id, double weight);

  /// True when a drift evaluation is due: at least `min_events` total
  /// observations, a reference set, and `stride` observations since the
  /// last evaluation point.
  bool DriftCheckDue() const;

  /// Total-variation distance in [0, 1] between the live window's sketch-
  /// estimated distribution and the reference distribution. Marks the
  /// evaluation point (resets the stride counter). Returns 0 when the
  /// window is empty or no reference is set.
  double EvaluateDrift();

  /// Captures the current live distribution as the new reference —
  /// called when a (re-)tune is submitted, so drift is measured against
  /// the window the active configuration was tuned for.
  void CaptureReference();

  /// Installs an explicit reference distribution (`num_queries` entries) —
  /// the daemon uses the uniform distribution when a tune is submitted
  /// before any query has been observed, matching the tuner's uniformly
  /// weighted view of the workload.
  void SetReference(std::vector<double> reference);

  /// The live window's sketch-estimated distribution over the query
  /// universe, normalized to sum 1 (all-zero when the window is empty).
  std::vector<double> Distribution() const;

  /// The live window's support with aggregated exact weights, ascending by
  /// query id; empty when the window is empty. This is both the re-tune
  /// sub-workload (which queries matter now) and the lifecycle manager's
  /// cost weighting.
  std::vector<std::pair<int, double>> WindowSupport() const;

  size_t window_size() const { return window_.size(); }
  uint64_t events_seen() const { return events_seen_; }
  bool has_reference() const { return has_reference_; }

  /// Serializes the observer's replayable state (window contents,
  /// reference distribution, counters) as `kv`-style lines with hex-float
  /// weights, for embedding in the serve checkpoint. The sketch itself is
  /// not serialized: Deserialize rebuilds it by replaying the window.
  std::string Serialize() const;

  /// Restores state written by Serialize(). Returns false on malformed
  /// input. `lines` are the payload lines, without the surrounding
  /// checkpoint framing.
  bool Deserialize(const std::vector<std::string>& lines);

 private:
  size_t SketchCell(size_t row, int query_id) const;
  void SketchAdd(int query_id, double weight);
  double SketchEstimate(int query_id) const;

  ObserverOptions options_;
  int num_queries_;
  /// (query id, weight), oldest first.
  std::deque<std::pair<int, double>> window_;
  /// depth x width weight cells, row-major.
  std::vector<double> sketch_;
  std::vector<double> reference_;
  bool has_reference_ = false;
  uint64_t events_seen_ = 0;
  uint64_t since_check_ = 0;
};

}  // namespace bati

#endif  // BATI_SERVE_WORKLOAD_OBSERVER_H_
