#ifndef BATI_SERVE_DAEMON_H_
#define BATI_SERVE_DAEMON_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "serve/admission.h"
#include "serve/event_json.h"
#include "serve/lifecycle.h"
#include "serve/serve_checkpoint.h"
#include "serve/workload_observer.h"
#include "session/session_manager.h"
#include "signal/signal_hub.h"

namespace bati {

/// Configuration of a ServeDaemon.
struct ServeOptions {
  /// Session-pool workers executing tuning runs in the background.
  int parallelism = 2;
  /// Simulated seconds one query event advances the clock by.
  double tick_seconds = 1.0;
  /// Per-tenant sliding-window observer tunables.
  ObserverOptions observer;
  /// Maximum tolerated relative cost regression of a candidate over the
  /// deployed configuration on the live window; anything worse is rolled
  /// back (the DBA-bandits safety guarantee, serve-side).
  double safety_bound = 0.02;
  /// Checkpoint file; empty disables checkpointing (and resume).
  std::string state_path;
  /// When > 0, a checkpoint is also written after every N processed
  /// events, not just at shutdown — crash recovery at event granularity.
  int64_t checkpoint_every = 0;
  /// Which deployment signal judges lifecycle decisions. kWhatIf is the
  /// pre-signal-layer behavior, byte for byte. The exec-backed kinds run
  /// both configurations through src/exec and feed the measured cost back
  /// into the ship/rollback decision — closing the loop on execution.
  /// Resume overrides this with the checkpoint's kind.
  SignalKind signal = SignalKind::kWhatIf;
  /// Tunables for the exec-backed signals (repetitions, store cap, seed).
  ExecSignalOptions signal_options;
};

/// The long-running tuning daemon: consumes a JSONL event stream (one
/// ServeEvent per line), observes each tenant's live query mix through a
/// sliding-window sketch, re-tunes when the mix drifts from the window the
/// active configuration was tuned for, and runs every recommended or
/// operator-proposed configuration through a safety-guarded index
/// lifecycle before it ships.
///
/// Time is the simulated clock: query events tick it, advance events jump
/// it, and a tuning run's result is applied only once the clock passes
/// `submit + simulated tuning duration` — in submission order, at event
/// boundaries. Because application points are functions of the event
/// stream alone (never of scheduling), the daemon's output and final state
/// are byte-reproducible, and a SIGTERM-interrupted run resumed from its
/// checkpoint converges to the exact state of an uninterrupted one.
///
/// Threading: ProcessLine/Finish/Shutdown/DumpState run on one caller
/// thread (the event loop). Tuning runs execute on the SessionManager's
/// worker pool; their results cross back through a mutex-guarded table the
/// event loop blocks on at deterministic points.
class ServeDaemon {
 public:
  explicit ServeDaemon(const ServeOptions& options);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Restores state from options.state_path. The next
  /// `events_processed` input lines are then skipped as already applied —
  /// feed the daemon the same stream and it continues where the
  /// checkpoint left off. NotFound when no checkpoint exists.
  Status Resume();

  /// Processes one input line, appending zero or more complete output
  /// lines ('\n'-terminated JSONL) to *out: one acknowledgement or error
  /// line per event (skipped resume lines excepted), plus one tune-result
  /// line per tuning run whose application point was reached.
  void ProcessLine(const std::string& line, std::string* out);

  /// End of stream: applies every still-pending tuning result in
  /// submission order (emitting their tune-result lines), then
  /// checkpoints.
  void Finish(std::string* out);

  /// Graceful SIGTERM: waits for in-flight tuning runs to finish,
  /// checkpoints (results ride along, still pending application), and
  /// leaves application points to the resumed run. Ok when no state path
  /// is configured.
  Status Shutdown();

  /// The serialized current state (waits for in-flight runs first) —
  /// what Shutdown() would write. Tests compare these across runs.
  std::string DumpState();

  /// One-line human summary (tenants, queries, tunes, lifecycle counts).
  std::string SummaryLine() const;

  int64_t events_processed() const { return events_processed_; }
  MetricsRegistry& metrics() { return metrics_; }
  Tracer& tracer() { return tracer_; }

 private:
  struct Tenant {
    std::string name;
    RunSpec spec;  ///< the tuning template; spec.workload is the base name
    const WorkloadBundle* bundle = nullptr;
    TenantAdmission admission;
    IndexLifecycle lifecycle;
    WorkloadObserver observer;
    uint64_t generation = 0;
    /// Running observed/what-if ratio: every non-estimated signal
    /// evaluation contributes one sample per configuration side. The mean
    /// calibrates what-if estimates where the full signal is skipped
    /// (drift re-tunes, store-cap fallbacks).
    int64_t calib_samples = 0;
    double calib_sum = 0.0;

    double calibration() const {
      return calib_samples > 0
                 ? calib_sum / static_cast<double>(calib_samples)
                 : 1.0;
    }

    Tenant(std::string tenant_name, RunSpec template_spec,
           const WorkloadBundle* base, int64_t queue_quota,
           int64_t budget_quota, const ObserverOptions& observer_options,
           double safety_bound)
        : name(std::move(tenant_name)),
          spec(std::move(template_spec)),
          bundle(base),
          admission(queue_quota, budget_quota),
          lifecycle(safety_bound),
          observer(observer_options, base->workload.num_queries()) {}
  };

  /// One admitted tuning run, from submission until its application point.
  struct PendingTune {
    uint64_t tune_id = 0;
    uint64_t manager_id = 0;  ///< 0 when the result came from a checkpoint
    std::string tenant;
    std::string origin;  ///< "register" | "tune" | "drift"
    double submit_clock = 0.0;
    int64_t reserved_budget = 0;
    bool have_result = false;
    bool failed = false;
    std::string error;
    std::vector<size_t> positions;
    double improvement = 0.0;
    int64_t calls_used = 0;
    double tune_seconds = 0.0;
  };

  void HandleRegister(const ServeEvent& event, std::string* out);
  void HandleQuery(const ServeEvent& event, std::string* out);
  void HandleTune(const ServeEvent& event, std::string* out);
  void HandleDeploy(const ServeEvent& event, std::string* out);

  /// Admits and submits one tuning run for `tenant`. On success returns
  /// the new serve-global tune id; on rejection returns the admission
  /// error. `origin` is "register", "tune", or "drift"; drift runs tune a
  /// sub-workload built from the live window, the others the full
  /// workload.
  StatusOr<uint64_t> SubmitTune(Tenant* tenant, const RunSpec& spec,
                                const std::string& origin);

  /// Builds and registers the live-window sub-workload bundle for a drift
  /// re-tune; returns its dynamic registry name.
  std::string RegisterDriftBundle(Tenant* tenant);

  /// Resets the tenant's drift reference to the window a just-submitted
  /// tune is optimizing for (uniform when nothing was observed yet).
  void ResetReference(Tenant* tenant);

  /// Applies matured pending results in submission order: waits for the
  /// head's result, applies it if the clock passed its application point,
  /// stops at the first unmatured head. With `force`, maturity is ignored
  /// (EOF / drain event).
  void ApplyMatured(bool force, std::string* out);
  void ApplyTune(PendingTune* tune, std::string* out);

  /// Runs `candidate` through the tenant's lifecycle under the daemon's
  /// configured deployment signal. Under kWhatIf this is exactly the old
  /// direct lifecycle call. Under an exec-backed signal, drift-origin
  /// decisions and tenants whose store exceeds the signal's cap fall back
  /// to the calibrated what-if estimate; full evaluations feed the
  /// tenant's observed/what-if calibration ratio.
  LifecycleDecision Judge(Tenant* t, const std::string& origin,
                          const std::vector<size_t>& candidate);
  /// Folds one full signal evaluation into the tenant's calibration ratio
  /// and republishes the calibration gauges.
  void UpdateCalibration(Tenant* t, const LifecycleDecision& decision);
  void PublishCalibration(Tenant* t);

  /// Blocks until the SessionManager delivered the run's result, then
  /// copies it into the pending entry.
  void EnsureResult(PendingTune* tune);
  /// Waits for every pending run's result (the drain step of shutdown
  /// and checkpointing).
  void EnsureAllResults();

  ServeCheckpoint BuildCheckpoint();
  Status RestoreFromCheckpoint(const ServeCheckpoint& ckpt);
  void MaybePeriodicCheckpoint();

  Counter* TenantCounter(const std::string& tenant, const char* what);

  ServeOptions options_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  std::unique_ptr<SessionManager> manager_;
  /// Deployment signals + their shared execution engines; exec.* operator
  /// counters land in metrics_. Constructed lazily per kind, so a
  /// what-if-only daemon never materializes a column store.
  std::unique_ptr<SignalHub> hub_;

  /// Results crossing from the session pool's worker threads to the event
  /// loop, keyed by manager ticket.
  std::mutex results_mu_;
  std::condition_variable results_cv_;
  std::map<uint64_t, SessionResult> results_;

  // Event-loop state (single-threaded).
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::deque<PendingTune> pending_;
  double clock_ = 0.0;
  int64_t lines_seen_ = 0;
  int64_t skip_lines_ = 0;  ///< resume: input lines already applied
  int64_t events_processed_ = 0;
  uint64_t next_tune_id_ = 1;
  // Lifetime summary counters (mirrored into the checkpoint).
  int64_t queries_ = 0;
  int64_t tunes_submitted_ = 0;
  int64_t tunes_applied_ = 0;
  int64_t errors_ = 0;
  int64_t drift_retunes_ = 0;
  int64_t shipped_ = 0;
  int64_t rollbacks_ = 0;
};

/// JSON-string-escapes `text` (quotes, backslashes; control bytes become
/// spaces) for embedding in the daemon's output lines.
std::string ServeJsonEscape(const std::string& text);

/// Lower-kebab-case rendering of a status code for structured error lines
/// ("invalid-argument", "unavailable", ...).
const char* ServeStatusCodeName(StatusCode code);

}  // namespace bati

#endif  // BATI_SERVE_DAEMON_H_
