#include "serve/workload_observer.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/macros.h"
#include "whatif/checkpoint.h"

namespace bati {

namespace {

/// splitmix64: a fixed, platform-independent mixer, so sketch cell
/// placement (and therefore every drift score) is byte-stable across
/// machines and runs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

WorkloadObserver::WorkloadObserver(const ObserverOptions& options,
                                   int num_queries)
    : options_(options), num_queries_(num_queries) {
  BATI_CHECK(num_queries_ > 0);
  BATI_CHECK(options_.window >= 1);
  BATI_CHECK(options_.stride >= 1);
  BATI_CHECK(options_.sketch_width >= 1 && options_.sketch_depth >= 1);
  sketch_.assign(options_.sketch_depth * options_.sketch_width, 0.0);
}

size_t WorkloadObserver::SketchCell(size_t row, int query_id) const {
  const uint64_t h =
      Mix64((static_cast<uint64_t>(row) << 32) ^
            static_cast<uint64_t>(static_cast<uint32_t>(query_id)));
  return row * options_.sketch_width + h % options_.sketch_width;
}

void WorkloadObserver::SketchAdd(int query_id, double weight) {
  for (size_t row = 0; row < options_.sketch_depth; ++row) {
    sketch_[SketchCell(row, query_id)] += weight;
  }
}

double WorkloadObserver::SketchEstimate(int query_id) const {
  double est = sketch_[SketchCell(0, query_id)];
  for (size_t row = 1; row < options_.sketch_depth; ++row) {
    est = std::min(est, sketch_[SketchCell(row, query_id)]);
  }
  return est;
}

void WorkloadObserver::Observe(int query_id, double weight) {
  BATI_CHECK(query_id >= 0 && query_id < num_queries_);
  BATI_CHECK(weight > 0.0);
  if (window_.size() == options_.window) {
    const auto& [old_id, old_weight] = window_.front();
    SketchAdd(old_id, -old_weight);
    window_.pop_front();
  }
  window_.emplace_back(query_id, weight);
  SketchAdd(query_id, weight);
  ++events_seen_;
  ++since_check_;
}

bool WorkloadObserver::DriftCheckDue() const {
  return has_reference_ && events_seen_ >= options_.min_events &&
         since_check_ >= options_.stride;
}

double WorkloadObserver::EvaluateDrift() {
  since_check_ = 0;
  if (!has_reference_ || window_.empty()) return 0.0;
  const std::vector<double> live = Distribution();
  double tv = 0.0;
  for (int q = 0; q < num_queries_; ++q) {
    tv += std::abs(live[static_cast<size_t>(q)] -
                   reference_[static_cast<size_t>(q)]);
  }
  return 0.5 * tv;
}

void WorkloadObserver::CaptureReference() {
  reference_ = Distribution();
  has_reference_ = true;
  since_check_ = 0;
}

void WorkloadObserver::SetReference(std::vector<double> reference) {
  BATI_CHECK(reference.size() == static_cast<size_t>(num_queries_));
  reference_ = std::move(reference);
  has_reference_ = true;
  since_check_ = 0;
}

std::vector<double> WorkloadObserver::Distribution() const {
  std::vector<double> dist(static_cast<size_t>(num_queries_), 0.0);
  if (window_.empty()) return dist;
  double total = 0.0;
  for (int q = 0; q < num_queries_; ++q) {
    const double est = SketchEstimate(q);
    dist[static_cast<size_t>(q)] = est;
    total += est;
  }
  if (total <= 0.0) return dist;
  for (double& d : dist) d /= total;
  return dist;
}

std::vector<std::pair<int, double>> WorkloadObserver::WindowSupport() const {
  std::map<int, double> by_query;
  for (const auto& [id, weight] : window_) by_query[id] += weight;
  return std::vector<std::pair<int, double>>(by_query.begin(),
                                             by_query.end());
}

std::string WorkloadObserver::Serialize() const {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "counts %llu %llu\n",
                static_cast<unsigned long long>(events_seen_),
                static_cast<unsigned long long>(since_check_));
  out.append(buf);
  std::snprintf(buf, sizeof(buf), "window %zu\n", window_.size());
  out.append(buf);
  for (const auto& [id, weight] : window_) {
    std::snprintf(buf, sizeof(buf), "%d ", id);
    out.append(buf);
    AppendHexDouble(&out, weight);
    out.push_back('\n');
  }
  std::snprintf(buf, sizeof(buf), "reference %d\n", has_reference_ ? 1 : 0);
  out.append(buf);
  if (has_reference_) {
    for (size_t q = 0; q < reference_.size(); ++q) {
      if (q > 0) out.push_back(' ');
      AppendHexDouble(&out, reference_[q]);
    }
    out.push_back('\n');
  }
  return out;
}

bool WorkloadObserver::Deserialize(const std::vector<std::string>& lines) {
  window_.clear();
  sketch_.assign(options_.sketch_depth * options_.sketch_width, 0.0);
  reference_.clear();
  has_reference_ = false;
  events_seen_ = 0;
  since_check_ = 0;

  size_t pos = 0;
  auto next = [&](std::istringstream* in) -> bool {
    if (pos >= lines.size()) return false;
    in->clear();
    in->str(lines[pos++]);
    return true;
  };

  std::istringstream in;
  std::string keyword;
  unsigned long long events = 0, since = 0;
  if (!next(&in) || !(in >> keyword >> events >> since) ||
      keyword != "counts") {
    return false;
  }
  size_t window_count = 0;
  if (!next(&in) || !(in >> keyword >> window_count) || keyword != "window" ||
      window_count > options_.window) {
    return false;
  }
  for (size_t i = 0; i < window_count; ++i) {
    int id = 0;
    std::string weight_tok;
    double weight = 0.0;
    if (!next(&in) || !(in >> id >> weight_tok) ||
        !ParseHexDouble(weight_tok, &weight) || id < 0 ||
        id >= num_queries_ || weight <= 0.0) {
      return false;
    }
    window_.emplace_back(id, weight);
    SketchAdd(id, weight);
  }
  int has_ref = 0;
  if (!next(&in) || !(in >> keyword >> has_ref) || keyword != "reference" ||
      (has_ref != 0 && has_ref != 1)) {
    return false;
  }
  if (has_ref == 1) {
    if (!next(&in)) return false;
    std::string tok;
    while (in >> tok) {
      double value = 0.0;
      if (!ParseHexDouble(tok, &value) || value < 0.0) return false;
      reference_.push_back(value);
    }
    if (reference_.size() != static_cast<size_t>(num_queries_)) return false;
    has_reference_ = true;
  }
  if (pos != lines.size()) return false;
  events_seen_ = events;
  since_check_ = since;
  return true;
}

}  // namespace bati
