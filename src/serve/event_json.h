#ifndef BATI_SERVE_EVENT_JSON_H_
#define BATI_SERVE_EVENT_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "session/tuning_session.h"

namespace bati {

/// The kinds of event a serve stream can carry, one flat JSON object per
/// line (JSONL over stdin or a pipe — the same wire shape as bati_batch
/// specs, parsed with the same strict grammar).
enum class ServeEventType {
  /// One live query observation: `{"type":"query","tenant":"t","query":3}`
  /// with an optional positive `"weight"` (default 1). Feeds the tenant's
  /// sliding-window workload observer and advances the simulated clock.
  kQuery,
  /// Tenant registration carrying the tuning template:
  /// `{"type":"register","tenant":"t","workload":"tpch","algorithm":
  /// "vanilla-greedy","budget":400,...}`. Every key that is not a serve
  /// key (`type`, `tenant`, `queue_quota`, `budget_quota`, `tune`) is
  /// handed to session/spec_json.h's strict RunSpec parser, so a template
  /// accepts exactly the bati_batch spec vocabulary. `"tune":true` also
  /// submits an initial tuning run at registration.
  kRegister,
  /// An explicit tuning request for a registered tenant, subject to
  /// admission control: `{"type":"tune","tenant":"t"}` with optional
  /// `"budget"`, `"seed"`, and `"algorithm"` overrides of the template.
  kTune,
  /// An operator-proposed configuration (candidate positions, space-
  /// separated): `{"type":"deploy","tenant":"t","config":"1 4 7"}`. Runs
  /// through the same safety-guarded lifecycle evaluation as a tuned
  /// configuration — the injection point for regression drills.
  kDeploy,
  /// Advances the simulated clock: `{"type":"advance","seconds":30}`.
  kAdvance,
  /// Applies every pending tuning result now: `{"type":"drain"}`.
  kDrain,
};

/// One parsed serve event. Only the fields of the event's type are
/// meaningful; everything else keeps its default.
struct ServeEvent {
  ServeEventType type = ServeEventType::kQuery;
  std::string tenant;

  // kQuery
  int query_id = -1;
  double weight = 1.0;

  // kRegister
  RunSpec spec;
  int64_t queue_quota = 4;
  int64_t budget_quota = 0;  ///< total what-if units; 0 = unlimited
  bool tune_on_register = false;

  // kTune overrides; negative / empty = inherit from the template.
  int64_t budget_override = -1;
  int64_t seed_override = -1;
  std::string algorithm_override;

  // kDeploy
  std::vector<size_t> config;

  // kAdvance
  double seconds = 0.0;
};

/// Parses one JSONL stream line into a ServeEvent. Validation is strict in
/// the style of ParseRunSpecJson: unknown event types, unknown keys for the
/// event's type, wrong-typed or out-of-range values, and trailing garbage
/// are all InvalidArgument errors prefixed with "line N: " — the daemon
/// answers them with a structured error line and keeps serving.
Status ParseServeEventJson(const std::string& line, int lineno,
                           ServeEvent* event);

}  // namespace bati

#endif  // BATI_SERVE_EVENT_JSON_H_
