#ifndef BATI_SERVE_ADMISSION_H_
#define BATI_SERVE_ADMISSION_H_

#include <cstdint>

#include "common/status.h"

namespace bati {

/// Per-tenant admission control for tuning work: a bound on concurrently
/// pending tuning runs (queue quota) and a bound on total what-if units the
/// tenant may consume across its lifetime (budget quota). Admission
/// *reserves* the run's full requested budget — the only value known before
/// the run executes — and the unspent part is refunded when the result is
/// applied, so a tenant can never oversubscribe its quota through in-flight
/// runs. Single-threaded: only the daemon's event loop admits and settles.
class TenantAdmission {
 public:
  /// `budget_quota` of 0 means unlimited what-if units.
  TenantAdmission(int64_t queue_quota, int64_t budget_quota)
      : queue_quota_(queue_quota), budget_quota_(budget_quota) {}

  /// Admits a tuning run requesting `budget` what-if units. On success the
  /// run counts as pending and its budget is reserved. Failures are
  /// structured: Unavailable when the tenant's pending-run quota is
  /// exhausted (back off and retry), FailedPrecondition when the remaining
  /// budget quota cannot cover the request (no retry will help).
  Status Admit(int64_t budget);

  /// Settles an admitted run: releases its pending slot and refunds the
  /// difference between the reserved budget and the what-if calls actually
  /// used (a run never uses more than its budget).
  void Settle(int64_t reserved_budget, int64_t calls_used);

  int64_t queue_quota() const { return queue_quota_; }
  int64_t budget_quota() const { return budget_quota_; }
  int64_t pending() const { return pending_; }
  /// What-if units charged so far (reservations minus refunds).
  int64_t budget_used() const { return budget_used_; }

  /// Restores counters from a checkpoint.
  void Restore(int64_t pending, int64_t budget_used) {
    pending_ = pending;
    budget_used_ = budget_used;
  }

 private:
  int64_t queue_quota_;
  int64_t budget_quota_;
  int64_t pending_ = 0;
  int64_t budget_used_ = 0;
};

}  // namespace bati

#endif  // BATI_SERVE_ADMISSION_H_
