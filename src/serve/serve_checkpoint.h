#ifndef BATI_SERVE_SERVE_CHECKPOINT_H_
#define BATI_SERVE_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "signal/deployment_signal.h"

namespace bati {

/// One tuning run the daemon has admitted but not yet applied. Checkpoints
/// are written only after the session pool is drained, so a pending tune
/// always carries its *result*; what is still outstanding is applying it at
/// the simulated time the run would have finished (`submit_clock +
/// tune_seconds`) — which is what makes an interrupted stream resume to the
/// byte-identical end state of an uninterrupted one.
struct ServePendingTune {
  uint64_t tune_id = 0;  ///< serve-global, 1-based, submission order
  std::string tenant;
  /// What triggered it: "register" | "tune" | "drift".
  std::string origin;
  double submit_clock = 0.0;
  int64_t reserved_budget = 0;
  bool failed = false;
  std::string error;  ///< meaningful iff failed
  // The run's result (meaningful iff !failed).
  std::vector<size_t> positions;
  double improvement = 0.0;
  int64_t calls_used = 0;
  /// Simulated tuning duration (what-if plus other seconds).
  double tune_seconds = 0.0;

  bool operator==(const ServePendingTune&) const = default;
};

/// One tenant's durable state.
struct ServeTenantState {
  std::string name;
  /// The tuning template, as RunSpecToJson() — re-parsed on resume.
  std::string spec_json;
  int64_t queue_quota = 4;
  int64_t budget_quota = 0;
  int64_t pending = 0;
  int64_t budget_used = 0;
  /// Drift sub-workload generations minted so far.
  uint64_t generation = 0;
  /// Deployed configuration, ascending candidate positions.
  std::vector<size_t> deployed;
  /// Running observed/what-if calibration ratio, as sample count and sum
  /// (mean = sum / samples). Zero samples means "uncalibrated" (ratio 1).
  int64_t calib_samples = 0;
  double calib_sum = 0.0;
  /// WorkloadObserver::Serialize() payload.
  std::string observer_state;

  bool operator==(const ServeTenantState&) const = default;
};

/// A crash-consistent snapshot of the serve daemon between two input
/// events. Resume skips the first `events_processed` input lines (their
/// effects are all here) and continues the stream.
struct ServeCheckpoint {
  int64_t events_processed = 0;
  double clock = 0.0;
  uint64_t next_tune_id = 1;
  /// The deployment signal the run was judging decisions with. Resume
  /// adopts it: a daemon restarted with a different --signal keeps the
  /// checkpoint's kind so the stream's decision trail stays consistent.
  SignalKind signal = SignalKind::kWhatIf;
  // Lifetime summary counters.
  int64_t queries = 0;
  int64_t tunes_submitted = 0;
  int64_t tunes_applied = 0;
  int64_t errors = 0;
  int64_t drift_retunes = 0;
  int64_t shipped = 0;
  int64_t rollbacks = 0;
  /// Sorted by tenant name.
  std::vector<ServeTenantState> tenants;
  /// Sorted by tune_id.
  std::vector<ServePendingTune> pending;

  bool operator==(const ServeCheckpoint&) const = default;
};

/// Line-based text form with hex-float doubles, in the house checkpoint
/// style (see whatif/checkpoint.h): serialization round-trips every double
/// bit-exactly, which resume-to-identical-state requires.
std::string SerializeServeCheckpoint(const ServeCheckpoint& ckpt);
StatusOr<ServeCheckpoint> ParseServeCheckpoint(const std::string& text);

/// File forms: save is write-temp-then-rename (AtomicWriteFile), load is
/// NotFound for a missing file and InvalidArgument for a malformed one.
Status SaveServeCheckpoint(const ServeCheckpoint& ckpt,
                           const std::string& path);
StatusOr<ServeCheckpoint> LoadServeCheckpoint(const std::string& path);

}  // namespace bati

#endif  // BATI_SERVE_SERVE_CHECKPOINT_H_
