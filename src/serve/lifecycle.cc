#include "serve/lifecycle.h"

#include <algorithm>

#include "common/macros.h"
#include "storage/index.h"

namespace bati {

const char* LifecycleActionName(LifecycleDecision::Action action) {
  switch (action) {
    case LifecycleDecision::Action::kShipped:
      return "shipped";
    case LifecycleDecision::Action::kNoChange:
      return "no-change";
    case LifecycleDecision::Action::kRollback:
      return "safety-rollback";
  }
  return "unknown";
}

double IndexLifecycle::WindowCost(
    const WorkloadBundle& bundle,
    const std::vector<std::pair<int, double>>& window,
    const std::vector<size_t>& positions) const {
  std::vector<Index> config;
  config.reserve(positions.size());
  for (size_t pos : positions) {
    BATI_CHECK(pos < bundle.candidates.indexes.size());
    config.push_back(bundle.candidates.indexes[pos]);
  }
  double cost = 0.0;
  if (window.empty()) {
    // No live observations yet: fall back to the tuning-time assumption of
    // a uniformly weighted workload.
    for (const Query& query : bundle.workload.queries) {
      cost += bundle.optimizer->Cost(query, config);
    }
    return cost;
  }
  for (const auto& [query_id, weight] : window) {
    BATI_CHECK(query_id >= 0 &&
               query_id < bundle.workload.num_queries());
    cost += weight * bundle.optimizer->Cost(
                         bundle.workload.queries[static_cast<size_t>(
                             query_id)],
                         config);
  }
  return cost;
}

LifecycleDecision IndexLifecycle::Apply(
    const WorkloadBundle& bundle,
    const std::vector<std::pair<int, double>>& window,
    const std::vector<size_t>& candidate) {
  LifecycleDecision decision;
  decision.deployed_cost = WindowCost(bundle, window, deployed_);
  decision.candidate_cost = WindowCost(bundle, window, candidate);
  decision.regression =
      decision.deployed_cost > 0.0
          ? (decision.candidate_cost - decision.deployed_cost) /
                decision.deployed_cost
          : 0.0;

  if (candidate == deployed_) {
    decision.action = LifecycleDecision::Action::kNoChange;
    return decision;
  }
  if (decision.regression > safety_bound_) {
    decision.action = LifecycleDecision::Action::kRollback;
    return decision;
  }

  // Stage the diff: candidate \ deployed is created, deployed \ candidate
  // is dropped. Both inputs are ascending, so set_difference applies.
  std::set_difference(candidate.begin(), candidate.end(), deployed_.begin(),
                      deployed_.end(),
                      std::back_inserter(decision.created));
  std::set_difference(deployed_.begin(), deployed_.end(), candidate.begin(),
                      candidate.end(),
                      std::back_inserter(decision.dropped));
  decision.action = LifecycleDecision::Action::kShipped;
  deployed_ = candidate;
  return decision;
}

}  // namespace bati
