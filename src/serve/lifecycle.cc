#include "serve/lifecycle.h"

#include <algorithm>

#include "common/macros.h"

namespace bati {

const char* LifecycleActionName(LifecycleDecision::Action action) {
  switch (action) {
    case LifecycleDecision::Action::kShipped:
      return "shipped";
    case LifecycleDecision::Action::kNoChange:
      return "no-change";
    case LifecycleDecision::Action::kRollback:
      return "safety-rollback";
  }
  return "unknown";
}

LifecycleDecision IndexLifecycle::Apply(
    const WorkloadBundle& bundle,
    const std::vector<std::pair<int, double>>& window,
    const std::vector<size_t>& candidate, DeploymentSignal* signal,
    double calibration) {
  static WhatIfSignal default_signal;  // stateless, safe to share
  if (signal == nullptr) signal = &default_signal;

  const SignalCosts costs =
      signal->Evaluate(bundle, window, deployed_, candidate);
  LifecycleDecision decision;
  // calibration is exactly 1.0 on every uncalibrated path, and x * 1.0 is
  // bit-exact — the what-if signal's decisions are byte-identical to the
  // pre-signal-layer lifecycle.
  decision.deployed_cost = calibration * costs.deployed;
  decision.candidate_cost = calibration * costs.candidate;
  decision.whatif_deployed_cost = costs.whatif_deployed;
  decision.whatif_candidate_cost = costs.whatif_candidate;
  decision.regression =
      decision.deployed_cost > 0.0
          ? (decision.candidate_cost - decision.deployed_cost) /
                decision.deployed_cost
          : 0.0;

  if (candidate == deployed_) {
    decision.action = LifecycleDecision::Action::kNoChange;
    return decision;
  }
  if (decision.regression > safety_bound_) {
    decision.action = LifecycleDecision::Action::kRollback;
    return decision;
  }

  // Stage the diff: candidate \ deployed is created, deployed \ candidate
  // is dropped. Both inputs are ascending, so set_difference applies.
  std::set_difference(candidate.begin(), candidate.end(), deployed_.begin(),
                      deployed_.end(),
                      std::back_inserter(decision.created));
  std::set_difference(deployed_.begin(), deployed_.end(), candidate.begin(),
                      candidate.end(),
                      std::back_inserter(decision.dropped));
  decision.action = LifecycleDecision::Action::kShipped;
  deployed_ = candidate;
  return decision;
}

}  // namespace bati
