#include "serve/serve_checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/file_util.h"
#include "whatif/checkpoint.h"

namespace bati {

namespace {

constexpr char kMagic[] = "bati-serve v2";
/// v1 checkpoints (pre-signal-layer) are still readable: they lack the
/// signal and per-tenant calibration lines, which default to what-if /
/// uncalibrated.
constexpr char kMagicV1[] = "bati-serve v1";

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed serve checkpoint: ") +
                                 what);
}

bool ParseI64(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty() || token[0] == '-') return false;
  char* end = nullptr;
  *out = std::strtoull(token.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

/// Emits "keyword count p1 p2 ... pk\n" for a position list.
void AppendPositions(std::string* out, const char* keyword,
                     const std::vector<size_t>& positions) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %zu", keyword, positions.size());
  out->append(buf);
  for (size_t pos : positions) {
    std::snprintf(buf, sizeof(buf), " %zu", pos);
    out->append(buf);
  }
  out->push_back('\n');
}

/// Parses the positions of a "keyword count p1 ... pk" token vector,
/// starting at toks[1]. Requires strict ascent.
bool ParsePositions(const std::vector<std::string>& toks,
                    std::vector<size_t>* positions) {
  int64_t count = 0;
  if (toks.size() < 2 || !ParseI64(toks[1], &count) || count < 0 ||
      toks.size() != static_cast<size_t>(count) + 2) {
    return false;
  }
  positions->clear();
  for (int64_t i = 0; i < count; ++i) {
    int64_t p = 0;
    if (!ParseI64(toks[static_cast<size_t>(i) + 2], &p) || p < 0) {
      return false;
    }
    if (!positions->empty() &&
        static_cast<size_t>(p) <= positions->back()) {
      return false;
    }
    positions->push_back(static_cast<size_t>(p));
  }
  return true;
}

}  // namespace

std::string SerializeServeCheckpoint(const ServeCheckpoint& ckpt) {
  std::string out;
  out.reserve(512);
  char buf[256];
  out.append(kMagic);
  out.push_back('\n');
  std::snprintf(buf, sizeof(buf), "events %" PRId64 "\n",
                ckpt.events_processed);
  out.append(buf);
  out.append("clock ");
  AppendHexDouble(&out, ckpt.clock);
  out.push_back('\n');
  std::snprintf(buf, sizeof(buf), "next-tune %" PRIu64 "\n",
                ckpt.next_tune_id);
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                "counters %" PRId64 " %" PRId64 " %" PRId64 " %" PRId64
                " %" PRId64 " %" PRId64 " %" PRId64 "\n",
                ckpt.queries, ckpt.tunes_submitted, ckpt.tunes_applied,
                ckpt.errors, ckpt.drift_retunes, ckpt.shipped,
                ckpt.rollbacks);
  out.append(buf);
  out.append("signal ");
  out.append(SignalKindName(ckpt.signal));
  out.push_back('\n');

  std::snprintf(buf, sizeof(buf), "tenants %zu\n", ckpt.tenants.size());
  out.append(buf);
  for (const ServeTenantState& t : ckpt.tenants) {
    out.append("tenant ");
    out.append(t.name);
    out.push_back('\n');
    // The spec JSON owns the rest of its line (it contains spaces but,
    // by construction, no newlines).
    out.append("spec ");
    out.append(t.spec_json);
    out.push_back('\n');
    std::snprintf(buf, sizeof(buf),
                  "quotas %" PRId64 " %" PRId64 " %" PRId64 " %" PRId64 "\n",
                  t.queue_quota, t.budget_quota, t.pending, t.budget_used);
    out.append(buf);
    std::snprintf(buf, sizeof(buf), "generation %" PRIu64 "\n",
                  t.generation);
    out.append(buf);
    std::snprintf(buf, sizeof(buf), "calibration %" PRId64 " ",
                  t.calib_samples);
    out.append(buf);
    AppendHexDouble(&out, t.calib_sum);
    out.push_back('\n');
    AppendPositions(&out, "deployed", t.deployed);
    // The observer payload is line-based itself; frame it by line count.
    size_t observer_lines = 0;
    for (char c : t.observer_state) observer_lines += c == '\n' ? 1 : 0;
    std::snprintf(buf, sizeof(buf), "observer %zu\n", observer_lines);
    out.append(buf);
    out.append(t.observer_state);
  }

  std::snprintf(buf, sizeof(buf), "pending %zu\n", ckpt.pending.size());
  out.append(buf);
  for (const ServePendingTune& p : ckpt.pending) {
    std::snprintf(buf, sizeof(buf),
                  "tune %" PRIu64 " %s %s %" PRId64 " %d\n", p.tune_id,
                  p.tenant.c_str(), p.origin.c_str(), p.reserved_budget,
                  p.failed ? 1 : 0);
    out.append(buf);
    out.append("times ");
    AppendHexDouble(&out, p.submit_clock);
    out.push_back(' ');
    AppendHexDouble(&out, p.tune_seconds);
    out.push_back('\n');
    if (p.failed) {
      out.append("error ");
      out.append(p.error);
      out.push_back('\n');
    } else {
      out.append("result ");
      AppendHexDouble(&out, p.improvement);
      std::snprintf(buf, sizeof(buf), " %" PRId64, p.calls_used);
      out.append(buf);
      std::snprintf(buf, sizeof(buf), " %zu", p.positions.size());
      out.append(buf);
      for (size_t pos : p.positions) {
        std::snprintf(buf, sizeof(buf), " %zu", pos);
        out.append(buf);
      }
      out.push_back('\n');
    }
  }
  out.append("end\n");
  return out;
}

StatusOr<ServeCheckpoint> ParseServeCheckpoint(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || (line != kMagic && line != kMagicV1)) {
    return Malformed("missing or unsupported header");
  }
  const bool v1 = line == kMagicV1;
  ServeCheckpoint ckpt;
  std::vector<std::string> toks;
  auto next_tokens = [&](const char* keyword, size_t count) -> bool {
    if (!std::getline(in, line)) return false;
    toks = SplitTokens(line);
    return toks.size() == count + 1 && toks[0] == keyword;
  };

  if (!next_tokens("events", 1) || !ParseI64(toks[1], &ckpt.events_processed) ||
      ckpt.events_processed < 0) {
    return Malformed("bad events line");
  }
  if (!next_tokens("clock", 1) || !ParseHexDouble(toks[1], &ckpt.clock) ||
      ckpt.clock < 0.0) {
    return Malformed("bad clock line");
  }
  if (!next_tokens("next-tune", 1) ||
      !ParseU64(toks[1], &ckpt.next_tune_id) || ckpt.next_tune_id < 1) {
    return Malformed("bad next-tune line");
  }
  if (!next_tokens("counters", 7) || !ParseI64(toks[1], &ckpt.queries) ||
      !ParseI64(toks[2], &ckpt.tunes_submitted) ||
      !ParseI64(toks[3], &ckpt.tunes_applied) ||
      !ParseI64(toks[4], &ckpt.errors) ||
      !ParseI64(toks[5], &ckpt.drift_retunes) ||
      !ParseI64(toks[6], &ckpt.shipped) ||
      !ParseI64(toks[7], &ckpt.rollbacks)) {
    return Malformed("bad counters line");
  }
  if (!v1) {
    if (!next_tokens("signal", 1) ||
        !ParseSignalKind(toks[1], &ckpt.signal)) {
      return Malformed("bad signal line");
    }
  }

  int64_t num_tenants = 0;
  if (!next_tokens("tenants", 1) || !ParseI64(toks[1], &num_tenants) ||
      num_tenants < 0) {
    return Malformed("bad tenants line");
  }
  for (int64_t i = 0; i < num_tenants; ++i) {
    ServeTenantState t;
    if (!next_tokens("tenant", 1)) return Malformed("bad tenant line");
    t.name = toks[1];
    if (!ckpt.tenants.empty() && t.name <= ckpt.tenants.back().name) {
      return Malformed("tenants out of order");
    }
    if (!std::getline(in, line) || line.rfind("spec ", 0) != 0) {
      return Malformed("bad spec line");
    }
    t.spec_json = line.substr(std::strlen("spec "));
    if (!next_tokens("quotas", 4) || !ParseI64(toks[1], &t.queue_quota) ||
        !ParseI64(toks[2], &t.budget_quota) ||
        !ParseI64(toks[3], &t.pending) ||
        !ParseI64(toks[4], &t.budget_used) || t.queue_quota < 1 ||
        t.budget_quota < 0 || t.pending < 0 || t.budget_used < 0) {
      return Malformed("bad quotas line");
    }
    if (!next_tokens("generation", 1) ||
        !ParseU64(toks[1], &t.generation)) {
      return Malformed("bad generation line");
    }
    if (!v1) {
      if (!next_tokens("calibration", 2) ||
          !ParseI64(toks[1], &t.calib_samples) ||
          !ParseHexDouble(toks[2], &t.calib_sum) || t.calib_samples < 0 ||
          t.calib_sum < 0.0) {
        return Malformed("bad calibration line");
      }
    }
    if (!std::getline(in, line)) return Malformed("missing deployed line");
    toks = SplitTokens(line);
    if (toks.empty() || toks[0] != "deployed" ||
        !ParsePositions(toks, &t.deployed)) {
      return Malformed("bad deployed line");
    }
    int64_t observer_lines = 0;
    if (!next_tokens("observer", 1) ||
        !ParseI64(toks[1], &observer_lines) || observer_lines < 0) {
      return Malformed("bad observer line");
    }
    for (int64_t j = 0; j < observer_lines; ++j) {
      if (!std::getline(in, line)) return Malformed("truncated observer");
      t.observer_state.append(line);
      t.observer_state.push_back('\n');
    }
    ckpt.tenants.push_back(std::move(t));
  }

  int64_t num_pending = 0;
  if (!next_tokens("pending", 1) || !ParseI64(toks[1], &num_pending) ||
      num_pending < 0) {
    return Malformed("bad pending line");
  }
  for (int64_t i = 0; i < num_pending; ++i) {
    ServePendingTune p;
    int64_t failed = 0;
    if (!next_tokens("tune", 5) || !ParseU64(toks[1], &p.tune_id) ||
        !ParseI64(toks[4], &p.reserved_budget) ||
        !ParseI64(toks[5], &failed) || p.reserved_budget < 0 ||
        (failed != 0 && failed != 1)) {
      return Malformed("bad tune line");
    }
    p.tenant = toks[2];
    p.origin = toks[3];
    p.failed = failed == 1;
    if (p.origin != "register" && p.origin != "tune" &&
        p.origin != "drift") {
      return Malformed("bad tune origin");
    }
    if (!ckpt.pending.empty() &&
        p.tune_id <= ckpt.pending.back().tune_id) {
      return Malformed("pending tunes out of order");
    }
    if (p.tune_id >= ckpt.next_tune_id) {
      return Malformed("pending tune id beyond next-tune");
    }
    if (!next_tokens("times", 2) ||
        !ParseHexDouble(toks[1], &p.submit_clock) ||
        !ParseHexDouble(toks[2], &p.tune_seconds) || p.submit_clock < 0.0 ||
        p.tune_seconds < 0.0) {
      return Malformed("bad times line");
    }
    if (p.failed) {
      if (!std::getline(in, line) || line.rfind("error ", 0) != 0) {
        return Malformed("bad error line");
      }
      p.error = line.substr(std::strlen("error "));
    } else {
      if (!std::getline(in, line)) return Malformed("missing result line");
      toks = SplitTokens(line);
      if (toks.size() < 4 || toks[0] != "result" ||
          !ParseHexDouble(toks[1], &p.improvement) ||
          !ParseI64(toks[2], &p.calls_used) || p.calls_used < 0) {
        return Malformed("bad result line");
      }
      // Reuse the "keyword count p1..pk" parser by dropping the leading
      // improvement/calls tokens.
      std::vector<std::string> pos_toks(toks.begin() + 2, toks.end());
      pos_toks[0] = "positions";
      if (!ParsePositions(pos_toks, &p.positions)) {
        return Malformed("bad result positions");
      }
    }
    ckpt.pending.push_back(std::move(p));
  }
  if (!std::getline(in, line) || line != "end") {
    return Malformed("missing end marker");
  }
  return ckpt;
}

Status SaveServeCheckpoint(const ServeCheckpoint& ckpt,
                           const std::string& path) {
  return AtomicWriteFile(path, SerializeServeCheckpoint(ckpt));
}

StatusOr<ServeCheckpoint> LoadServeCheckpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open serve checkpoint: " + path);
  }
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("error reading serve checkpoint: " + path);
  }
  return ParseServeCheckpoint(text);
}

}  // namespace bati
