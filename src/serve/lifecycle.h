#ifndef BATI_SERVE_LIFECYCLE_H_
#define BATI_SERVE_LIFECYCLE_H_

#include <string>
#include <utility>
#include <vector>

#include "session/bundle_registry.h"
#include "signal/deployment_signal.h"

namespace bati {

/// What the lifecycle manager decided about one candidate configuration.
struct LifecycleDecision {
  enum class Action {
    /// The candidate was deployed: `created` staged in, `dropped` staged
    /// out.
    kShipped,
    /// The candidate equals the deployed configuration; nothing to do.
    kNoChange,
    /// The candidate's cost on the live window regressed past the safety
    /// bound; the deployed configuration stays (DBA-bandits' guarantee: a
    /// regressing recommendation is rolled back, never shipped).
    kRollback,
  };

  Action action = Action::kNoChange;
  /// Candidate positions staged in / out by a kShipped decision (empty
  /// otherwise), ascending.
  std::vector<size_t> created;
  std::vector<size_t> dropped;
  /// Signal costs of both configurations on the live window, after the
  /// calibration multiplier. Under the default what-if signal these are
  /// the weighted derived costs, exactly as before the signal layer.
  double deployed_cost = 0.0;
  double candidate_cost = 0.0;
  /// (candidate - deployed) / deployed; negative is an improvement.
  double regression = 0.0;
  /// The pure what-if window costs the signal reported alongside its own
  /// (uncalibrated) — the denominator of the observed/what-if ratio.
  double whatif_deployed_cost = 0.0;
  double whatif_candidate_cost = 0.0;
  /// Reporting fields stamped by the caller (the daemon): which signal
  /// kind judged this tenant's decision, whether a calibrated what-if
  /// estimate stood in for it, and the multiplier that was applied.
  SignalKind signal = SignalKind::kWhatIf;
  bool estimated = false;
  double calibration = 1.0;
};

const char* LifecycleActionName(LifecycleDecision::Action action);

/// One tenant's index lifecycle: tracks the deployed configuration (as
/// candidate positions in the tenant bundle's universe) and evaluates each
/// recommended or operator-proposed candidate against it on the *live*
/// window before anything ships. The evaluation runs through a pluggable
/// DeploymentSignal — pure what-if by default (the serve-side analogue of
/// DBA-bandits' safety check on derived cost), or one of the
/// execution-backed signals when the daemon closes the loop on real
/// execution. Single-threaded: only the daemon's event loop applies
/// decisions.
class IndexLifecycle {
 public:
  /// `safety_bound` is the maximum tolerated relative regression of the
  /// candidate over the deployed configuration on the live window.
  explicit IndexLifecycle(double safety_bound)
      : safety_bound_(safety_bound) {}

  /// Evaluates `candidate` (ascending positions into
  /// `bundle.candidates.indexes`; all positions must be in range) against
  /// the deployed configuration, weighting each query by `window` (the
  /// observer's WindowSupport(); uniform over the whole workload when
  /// empty). Ships it — updating deployed() — unless it equals the
  /// deployed configuration or regresses past the safety bound.
  ///
  /// `signal` supplies both configurations' window costs; null means the
  /// built-in what-if signal. `calibration` scales the signal's costs —
  /// the daemon passes its running observed/what-if ratio when a what-if
  /// estimate stands in for an expensive signal, and 1.0 otherwise.
  LifecycleDecision Apply(const WorkloadBundle& bundle,
                          const std::vector<std::pair<int, double>>& window,
                          const std::vector<size_t>& candidate,
                          DeploymentSignal* signal = nullptr,
                          double calibration = 1.0);

  const std::vector<size_t>& deployed() const { return deployed_; }

  /// Restores the deployed configuration from a checkpoint.
  void Restore(std::vector<size_t> deployed) {
    deployed_ = std::move(deployed);
  }

  double safety_bound() const { return safety_bound_; }

 private:
  double safety_bound_;
  std::vector<size_t> deployed_;
};

}  // namespace bati

#endif  // BATI_SERVE_LIFECYCLE_H_
