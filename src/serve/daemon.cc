#include "serve/daemon.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/macros.h"
#include "common/strings.h"
#include "session/spec_json.h"

namespace bati {

namespace {

/// "%.10g" keeps output lines readable while staying deterministic: equal
/// doubles always render to equal bytes.
void AppendNumber(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out->append(buf);
}

void AppendPositionsField(std::string* out, const char* key,
                          const std::vector<size_t>& positions) {
  out->append(",\"");
  out->append(key);
  out->append("\":\"");
  char buf[32];
  for (size_t i = 0; i < positions.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%zu", i == 0 ? "" : " ",
                  positions[i]);
    out->append(buf);
  }
  out->append("\"");
}

/// Appends the signal provenance of a lifecycle decision. Decisions judged
/// by the default what-if signal emit nothing — the legacy output stays
/// byte-identical.
void AppendSignalFields(std::string* out,
                        const LifecycleDecision& decision) {
  if (decision.signal == SignalKind::kWhatIf) return;
  out->append(",\"signal\":\"");
  out->append(SignalKindName(decision.signal));
  out->append("\",\"estimated\":");
  out->append(decision.estimated ? "true" : "false");
  if (decision.estimated) {
    out->append(",\"calibration\":");
    AppendNumber(out, decision.calibration);
  } else {
    out->append(",\"deployed_cost\":");
    AppendNumber(out, decision.deployed_cost);
    out->append(",\"candidate_cost\":");
    AppendNumber(out, decision.candidate_cost);
  }
}

bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' &&
        c != '_' && c != '-') {
      return false;
    }
  }
  return true;
}

std::vector<std::string> SplitPayloadLines(const std::string& payload) {
  std::vector<std::string> lines = Split(payload, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

}  // namespace

std::string ServeJsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const char* ServeStatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

ServeDaemon::ServeDaemon(const ServeOptions& options) : options_(options) {
  BATI_CHECK(options_.parallelism >= 1);
  SessionManagerOptions manager_options;
  manager_options.parallelism = options_.parallelism;
  manager_options.on_result = [this](const SessionResult& result) {
    {
      std::lock_guard<std::mutex> lock(results_mu_);
      results_.emplace(result.id, result);
    }
    results_cv_.notify_all();
  };
  manager_ = std::make_unique<SessionManager>(manager_options);
  hub_ = std::make_unique<SignalHub>(options_.signal_options, &metrics_);
}

ServeDaemon::~ServeDaemon() {
  // Join the manager's workers before results_mu_/results_cv_ are
  // destroyed: the on_result callback notifies results_cv_, and the
  // members are declared in the opposite order.
  manager_.reset();
}

Counter* ServeDaemon::TenantCounter(const std::string& tenant,
                                    const char* what) {
  return metrics_.GetCounter("serve.tenant." + tenant + "." + what);
}

Status ServeDaemon::Resume() {
  if (options_.state_path.empty()) {
    return Status::InvalidArgument("resume requires a state path");
  }
  StatusOr<ServeCheckpoint> loaded =
      LoadServeCheckpoint(options_.state_path);
  if (!loaded.ok()) return loaded.status();
  return RestoreFromCheckpoint(*loaded);
}

Status ServeDaemon::RestoreFromCheckpoint(const ServeCheckpoint& ckpt) {
  // The checkpoint's signal kind is authoritative: the stream's decision
  // trail was produced under it, and switching signals mid-stream would
  // break resume-to-identical-state.
  options_.signal = ckpt.signal;
  for (const ServeTenantState& t : ckpt.tenants) {
    RunSpec spec;
    Status st = ParseRunSpecJson(t.spec_json, &spec);
    if (!st.ok()) {
      return Status::InvalidArgument("checkpoint tenant \"" + t.name +
                                     "\": " + st.message());
    }
    const WorkloadBundle* bundle =
        BundleRegistry::Global().TryGet(spec.workload);
    if (bundle == nullptr) {
      return Status::InvalidArgument("checkpoint tenant \"" + t.name +
                                     "\": unknown workload " +
                                     spec.workload);
    }
    auto tenant = std::make_unique<Tenant>(t.name, std::move(spec), bundle,
                                           t.queue_quota, t.budget_quota,
                                           options_.observer,
                                           options_.safety_bound);
    tenant->admission.Restore(t.pending, t.budget_used);
    for (size_t pos : t.deployed) {
      if (pos >= bundle->candidates.indexes.size()) {
        return Status::InvalidArgument("checkpoint tenant \"" + t.name +
                                       "\": deployed position out of range");
      }
    }
    tenant->lifecycle.Restore(t.deployed);
    if (!tenant->observer.Deserialize(SplitPayloadLines(t.observer_state))) {
      return Status::InvalidArgument("checkpoint tenant \"" + t.name +
                                     "\": malformed observer state");
    }
    tenant->generation = t.generation;
    tenant->calib_samples = t.calib_samples;
    tenant->calib_sum = t.calib_sum;
    if (tenant->calib_samples > 0) PublishCalibration(tenant.get());
    tenants_.emplace(t.name, std::move(tenant));
  }
  for (const ServePendingTune& p : ckpt.pending) {
    if (tenants_.find(p.tenant) == tenants_.end()) {
      return Status::InvalidArgument("checkpoint pending tune " +
                                     std::to_string(p.tune_id) +
                                     ": unknown tenant " + p.tenant);
    }
    PendingTune tune;
    tune.tune_id = p.tune_id;
    tune.manager_id = 0;
    tune.tenant = p.tenant;
    tune.origin = p.origin;
    tune.submit_clock = p.submit_clock;
    tune.reserved_budget = p.reserved_budget;
    tune.have_result = true;
    tune.failed = p.failed;
    tune.error = p.error;
    tune.positions = p.positions;
    tune.improvement = p.improvement;
    tune.calls_used = p.calls_used;
    tune.tune_seconds = p.tune_seconds;
    pending_.push_back(std::move(tune));
  }
  clock_ = ckpt.clock;
  skip_lines_ = ckpt.events_processed;
  next_tune_id_ = ckpt.next_tune_id;
  queries_ = ckpt.queries;
  tunes_submitted_ = ckpt.tunes_submitted;
  tunes_applied_ = ckpt.tunes_applied;
  errors_ = ckpt.errors;
  drift_retunes_ = ckpt.drift_retunes;
  shipped_ = ckpt.shipped;
  rollbacks_ = ckpt.rollbacks;
  return Status::Ok();
}

void ServeDaemon::ProcessLine(const std::string& line, std::string* out) {
  if (Trim(line).empty()) return;  // blank lines are not events
  ++events_processed_;
  if (events_processed_ <= skip_lines_) return;  // resume: already applied
  metrics_.GetCounter("serve.events")->Increment();

  ServeEvent event;
  Status st =
      ParseServeEventJson(line, static_cast<int>(events_processed_), &event);
  if (!st.ok()) {
    ++errors_;
    metrics_.GetCounter("serve.errors")->Increment();
    out->append("{\"type\":\"error\",\"line\":" +
                std::to_string(events_processed_) + ",\"code\":\"" +
                ServeStatusCodeName(st.code()) + "\",\"error\":\"" +
                ServeJsonEscape(st.message()) + "\"}\n");
    return;
  }

  switch (event.type) {
    case ServeEventType::kQuery:
      HandleQuery(event, out);
      break;
    case ServeEventType::kRegister:
      HandleRegister(event, out);
      break;
    case ServeEventType::kTune:
      HandleTune(event, out);
      break;
    case ServeEventType::kDeploy:
      HandleDeploy(event, out);
      break;
    case ServeEventType::kAdvance:
      clock_ += event.seconds;
      out->append("{\"type\":\"advance\",\"clock\":");
      AppendNumber(out, clock_);
      out->append("}\n");
      ApplyMatured(/*force=*/false, out);
      break;
    case ServeEventType::kDrain: {
      const int64_t before = tunes_applied_;
      ApplyMatured(/*force=*/true, out);
      out->append("{\"type\":\"drain\",\"applied\":" +
                  std::to_string(tunes_applied_ - before) + ",\"clock\":");
      AppendNumber(out, clock_);
      out->append("}\n");
      break;
    }
  }
  MaybePeriodicCheckpoint();
}

/// Emits one structured error line for an event that failed validation or
/// admission, and counts it.
#define BATI_SERVE_EVENT_ERROR(out, status)                                 \
  do {                                                                      \
    ++errors_;                                                              \
    metrics_.GetCounter("serve.errors")->Increment();                       \
    (out)->append("{\"type\":\"error\",\"line\":" +                         \
                  std::to_string(events_processed_) + ",\"code\":\"" +      \
                  ServeStatusCodeName((status).code()) +                    \
                  "\",\"error\":\"" + ServeJsonEscape((status).message()) + \
                  "\"}\n");                                                 \
  } while (0)

void ServeDaemon::HandleRegister(const ServeEvent& event, std::string* out) {
  if (!ValidTenantName(event.tenant)) {
    BATI_SERVE_EVENT_ERROR(
        out, Status::InvalidArgument(
                 "tenant names are [A-Za-z0-9._-]{1,64}, got \"" +
                 event.tenant + "\""));
    return;
  }
  if (tenants_.find(event.tenant) != tenants_.end()) {
    BATI_SERVE_EVENT_ERROR(
        out, Status::FailedPrecondition("tenant \"" + event.tenant +
                                        "\" is already registered"));
    return;
  }
  RunSpec spec = event.spec;
  const WorkloadBundle* bundle =
      BundleRegistry::Global().TryGet(spec.workload);
  if (bundle == nullptr) {
    BATI_SERVE_EVENT_ERROR(out, Status::NotFound("unknown workload \"" +
                                                 spec.workload + "\""));
    return;
  }
  // Serve owns checkpointing and tracing; per-run artifact paths from the
  // template would collide across the tenant's many runs.
  spec.checkpoint_path.clear();
  spec.resume_path.clear();
  spec.trace_path.clear();

  auto tenant = std::make_unique<Tenant>(
      event.tenant, std::move(spec), bundle, event.queue_quota,
      event.budget_quota, options_.observer, options_.safety_bound);
  Tenant* t = tenant.get();
  tenants_.emplace(event.tenant, std::move(tenant));

  std::string ack = "{\"type\":\"register\",\"tenant\":\"" + t->name +
                    "\",\"workload\":\"" + t->spec.workload +
                    "\",\"queries\":" +
                    std::to_string(t->bundle->workload.num_queries()) +
                    ",\"candidates\":" +
                    std::to_string(t->bundle->candidates.size());
  if (event.tune_on_register) {
    StatusOr<uint64_t> submitted = SubmitTune(t, t->spec, "register");
    if (submitted.ok()) {
      ack += ",\"tune\":" + std::to_string(*submitted);
    } else {
      ack += ",\"tune_error\":\"" +
             ServeJsonEscape(submitted.status().message()) + "\"";
    }
  }
  ack += ",\"status\":\"ok\"}\n";
  out->append(ack);
}

void ServeDaemon::HandleQuery(const ServeEvent& event, std::string* out) {
  auto it = tenants_.find(event.tenant);
  if (it == tenants_.end()) {
    BATI_SERVE_EVENT_ERROR(out, Status::NotFound("unknown tenant \"" +
                                                 event.tenant + "\""));
    return;
  }
  Tenant* t = it->second.get();
  if (event.query_id >= t->bundle->workload.num_queries()) {
    BATI_SERVE_EVENT_ERROR(
        out, Status::OutOfRange(
                 "query " + std::to_string(event.query_id) +
                 " out of range for workload " + t->spec.workload + " (" +
                 std::to_string(t->bundle->workload.num_queries()) +
                 " queries)"));
    return;
  }

  clock_ += options_.tick_seconds;
  ++queries_;
  TenantCounter(t->name, "queries")->Increment();
  t->observer.Observe(event.query_id, event.weight);

  std::string ack = "{\"type\":\"query\",\"tenant\":\"" + t->name +
                    "\",\"query\":" + std::to_string(event.query_id) +
                    ",\"clock\":";
  AppendNumber(&ack, clock_);

  if (t->observer.DriftCheckDue()) {
    const double wall_start = tracer_.NowUs();
    const double score = t->observer.EvaluateDrift();
    tracer_.Complete("drift-check", "serve", wall_start,
                     tracer_.NowUs() - wall_start, clock_, 0.0,
                     {{"score", score}});
    ack += ",\"drift\":";
    AppendNumber(&ack, score);
    if (score > options_.observer.drift_threshold) {
      ++drift_retunes_;
      metrics_.GetCounter("serve.drift")->Increment();
      tracer_.Instant("drift-detected", "serve", clock_,
                      {{"score", score}});
      RunSpec spec = t->spec;
      spec.workload = RegisterDriftBundle(t);
      StatusOr<uint64_t> submitted = SubmitTune(t, spec, "drift");
      if (submitted.ok()) {
        ack += ",\"retune\":" + std::to_string(*submitted);
      } else {
        TenantCounter(t->name, "rejects")->Increment();
        metrics_.GetCounter("serve.rejects")->Increment();
        ack += ",\"retune_error\":\"" +
               ServeJsonEscape(submitted.status().message()) + "\"";
      }
    }
  }
  ack += "}\n";
  out->append(ack);
  ApplyMatured(/*force=*/false, out);
}

void ServeDaemon::HandleTune(const ServeEvent& event, std::string* out) {
  auto it = tenants_.find(event.tenant);
  if (it == tenants_.end()) {
    BATI_SERVE_EVENT_ERROR(out, Status::NotFound("unknown tenant \"" +
                                                 event.tenant + "\""));
    return;
  }
  Tenant* t = it->second.get();
  RunSpec spec = t->spec;
  if (event.budget_override >= 0) spec.budget = event.budget_override;
  if (event.seed_override >= 0) {
    spec.seed = static_cast<uint64_t>(event.seed_override);
  }
  if (!event.algorithm_override.empty()) {
    spec.algorithm = event.algorithm_override;
  }
  StatusOr<uint64_t> submitted = SubmitTune(t, spec, "tune");
  if (!submitted.ok()) {
    TenantCounter(t->name, "rejects")->Increment();
    metrics_.GetCounter("serve.rejects")->Increment();
    BATI_SERVE_EVENT_ERROR(out, submitted.status());
    return;
  }
  out->append("{\"type\":\"tune\",\"tenant\":\"" + t->name +
              "\",\"id\":" + std::to_string(*submitted) +
              ",\"status\":\"ok\"}\n");
}

void ServeDaemon::HandleDeploy(const ServeEvent& event, std::string* out) {
  auto it = tenants_.find(event.tenant);
  if (it == tenants_.end()) {
    BATI_SERVE_EVENT_ERROR(out, Status::NotFound("unknown tenant \"" +
                                                 event.tenant + "\""));
    return;
  }
  Tenant* t = it->second.get();
  for (size_t pos : event.config) {
    if (pos >= t->bundle->candidates.indexes.size()) {
      BATI_SERVE_EVENT_ERROR(
          out, Status::OutOfRange(
                   "config position " + std::to_string(pos) +
                   " out of range (" +
                   std::to_string(t->bundle->candidates.indexes.size()) +
                   " candidates)"));
      return;
    }
  }
  const LifecycleDecision decision = Judge(t, "deploy", event.config);
  if (decision.action == LifecycleDecision::Action::kShipped) {
    ++shipped_;
    metrics_.GetCounter("serve.shipped")->Increment();
  } else if (decision.action == LifecycleDecision::Action::kRollback) {
    ++rollbacks_;
    metrics_.GetCounter("serve.rollbacks")->Increment();
  }
  tracer_.Instant("lifecycle", "serve", clock_,
                  {{"regression", decision.regression},
                   {"shipped", decision.action ==
                                       LifecycleDecision::Action::kShipped
                                   ? 1.0
                                   : 0.0}});

  std::string ack = "{\"type\":\"deploy\",\"tenant\":\"" + t->name +
                    "\",\"action\":\"" +
                    LifecycleActionName(decision.action) +
                    "\",\"regression\":";
  AppendNumber(&ack, decision.regression);
  AppendSignalFields(&ack, decision);
  AppendPositionsField(&ack, "create", decision.created);
  AppendPositionsField(&ack, "drop", decision.dropped);
  ack += "}\n";
  out->append(ack);
}

StatusOr<uint64_t> ServeDaemon::SubmitTune(Tenant* tenant,
                                           const RunSpec& spec,
                                           const std::string& origin) {
  Status admitted = tenant->admission.Admit(spec.budget);
  if (!admitted.ok()) return admitted;

  PendingTune tune;
  tune.tune_id = next_tune_id_++;
  tune.tenant = tenant->name;
  tune.origin = origin;
  tune.submit_clock = clock_;
  tune.reserved_budget = spec.budget;
  tune.manager_id = manager_->Submit(spec);
  pending_.push_back(std::move(tune));

  ++tunes_submitted_;
  TenantCounter(tenant->name, "tunes")->Increment();
  metrics_.GetCounter("serve.tunes")->Increment();
  tracer_.Instant("tune-submitted", "serve", clock_,
                  {{"budget", static_cast<double>(spec.budget)}});
  // Drift is measured against the window this tune optimizes for.
  ResetReference(tenant);
  return pending_.back().tune_id;
}

std::string ServeDaemon::RegisterDriftBundle(Tenant* tenant) {
  const uint64_t generation = ++tenant->generation;
  const std::string name = "serve/" + tenant->name + "/g" +
                           std::to_string(generation);
  const std::vector<std::pair<int, double>> support =
      tenant->observer.WindowSupport();
  BATI_CHECK(!support.empty());

  auto bundle = std::make_unique<WorkloadBundle>();
  bundle->workload.name = name;
  bundle->workload.database = tenant->bundle->workload.database;
  // The sub-workload is the live window's support, renumbered 0..n-1. The
  // candidate universe stays the FULL universe (with per-query provenance
  // subset in support order) so recommended positions remain comparable
  // with the tenant's deployed configuration.
  int next_id = 0;
  for (const auto& [query_id, weight] : support) {
    (void)weight;  // support queries enter unweighted, each once
    Query query =
        tenant->bundle->workload.queries[static_cast<size_t>(query_id)];
    query.id = next_id++;
    bundle->workload.queries.push_back(std::move(query));
    bundle->candidates.per_query.push_back(
        tenant->bundle->candidates.per_query[static_cast<size_t>(
            query_id)]);
  }
  bundle->candidates.indexes = tenant->bundle->candidates.indexes;
  bundle->optimizer = tenant->bundle->optimizer;
  BundleRegistry::Global().RegisterDynamic(name, std::move(bundle));
  return name;
}

void ServeDaemon::ResetReference(Tenant* tenant) {
  if (tenant->observer.window_size() > 0) {
    tenant->observer.CaptureReference();
  } else {
    const int n = tenant->bundle->workload.num_queries();
    tenant->observer.SetReference(
        std::vector<double>(static_cast<size_t>(n), 1.0 / n));
  }
}

void ServeDaemon::ApplyMatured(bool force, std::string* out) {
  while (!pending_.empty()) {
    PendingTune& head = pending_.front();
    EnsureResult(&head);
    const double ready = head.submit_clock + head.tune_seconds;
    if (!force && ready > clock_) break;
    ApplyTune(&head, out);
    pending_.pop_front();
  }
}

void ServeDaemon::ApplyTune(PendingTune* tune, std::string* out) {
  auto it = tenants_.find(tune->tenant);
  BATI_CHECK(it != tenants_.end());  // tenants are never removed
  Tenant* t = it->second.get();
  t->admission.Settle(tune->reserved_budget,
                      tune->failed ? 0 : tune->calls_used);
  ++tunes_applied_;
  metrics_.GetCounter("serve.applied")->Increment();

  std::string line = "{\"type\":\"tune-result\",\"id\":" +
                     std::to_string(tune->tune_id) + ",\"tenant\":\"" +
                     tune->tenant + "\",\"origin\":\"" + tune->origin +
                     "\",\"clock\":";
  AppendNumber(&line, clock_);
  if (tune->failed) {
    line += ",\"status\":\"error\",\"error\":\"" +
            ServeJsonEscape(tune->error) + "\"}\n";
    out->append(line);
    return;
  }

  const LifecycleDecision decision =
      Judge(t, tune->origin, tune->positions);
  if (decision.action == LifecycleDecision::Action::kShipped) {
    ++shipped_;
    metrics_.GetCounter("serve.shipped")->Increment();
  } else if (decision.action == LifecycleDecision::Action::kRollback) {
    ++rollbacks_;
    metrics_.GetCounter("serve.rollbacks")->Increment();
  }
  tracer_.Instant("tune-applied", "serve", clock_,
                  {{"improvement", tune->improvement},
                   {"calls", static_cast<double>(tune->calls_used)},
                   {"regression", decision.regression}});

  line += ",\"improvement\":";
  AppendNumber(&line, tune->improvement);
  line += ",\"calls\":" + std::to_string(tune->calls_used);
  AppendPositionsField(&line, "config", tune->positions);
  line += ",\"action\":\"";
  line += LifecycleActionName(decision.action);
  line += "\",\"regression\":";
  AppendNumber(&line, decision.regression);
  AppendSignalFields(&line, decision);
  AppendPositionsField(&line, "create", decision.created);
  AppendPositionsField(&line, "drop", decision.dropped);
  line += "}\n";
  out->append(line);
}

LifecycleDecision ServeDaemon::Judge(Tenant* t, const std::string& origin,
                                     const std::vector<size_t>& candidate) {
  const std::vector<std::pair<int, double>> window =
      t->observer.WindowSupport();
  if (options_.signal == SignalKind::kWhatIf) {
    // The pre-signal-layer pathway, byte for byte: built-in what-if
    // signal, calibration 1.0, no signal metrics.
    return t->lifecycle.Apply(*t->bundle, window, candidate);
  }

  metrics_.GetCounter("serve.signal.evals")->Increment();
  DeploymentSignal* signal = hub_->Get(options_.signal);
  // Drift re-tunes fire on every window shift — too often to pay for a
  // full execution-backed evaluation. They take the Wii-style cheap
  // stand-in: the derived what-if cost scaled by the tenant's running
  // observed/what-if ratio. Oversized stores fall back the same way.
  const bool estimate = origin == "drift";
  Status ready = Status::Ok();
  if (!estimate) {
    ready = signal->Ready(*t->bundle);
    if (!ready.ok()) {
      metrics_.GetCounter("serve.signal.fallbacks")->Increment();
      tracer_.Instant("signal-fallback", "serve", clock_, {});
    }
  } else {
    metrics_.GetCounter("serve.signal.estimates")->Increment();
  }

  LifecycleDecision decision;
  if (estimate || !ready.ok()) {
    const double calibration = t->calibration();
    decision =
        t->lifecycle.Apply(*t->bundle, window, candidate,
                           hub_->Get(SignalKind::kWhatIf), calibration);
    decision.estimated = true;
    decision.calibration = calibration;
  } else {
    decision = t->lifecycle.Apply(*t->bundle, window, candidate, signal);
    UpdateCalibration(t, decision);
  }
  decision.signal = options_.signal;
  return decision;
}

void ServeDaemon::UpdateCalibration(Tenant* t,
                                    const LifecycleDecision& decision) {
  const auto sample = [&](double observed, double whatif) {
    if (!(observed > 0.0) || !(whatif > 0.0)) return;
    const double ratio = observed / whatif;
    if (!std::isfinite(ratio)) return;
    t->calib_sum += ratio;
    ++t->calib_samples;
  };
  sample(decision.deployed_cost, decision.whatif_deployed_cost);
  sample(decision.candidate_cost, decision.whatif_candidate_cost);
  PublishCalibration(t);
}

void ServeDaemon::PublishCalibration(Tenant* t) {
  metrics_.GetGauge("serve.tenant." + t->name + ".calibration")
      ->Set(t->calibration());
  metrics_.GetGauge("serve.tenant." + t->name + ".calibration_samples")
      ->Set(static_cast<double>(t->calib_samples));
}

void ServeDaemon::EnsureResult(PendingTune* tune) {
  if (tune->have_result) return;
  BATI_CHECK(tune->manager_id != 0);
  SessionResult result;
  {
    std::unique_lock<std::mutex> lock(results_mu_);
    results_cv_.wait(lock, [this, tune] {
      return results_.find(tune->manager_id) != results_.end();
    });
    auto it = results_.find(tune->manager_id);
    result = std::move(it->second);
    results_.erase(it);
  }
  tune->have_result = true;
  if (result.cancelled) {
    tune->failed = true;
    tune->error = "cancelled";
  } else if (!result.status.ok()) {
    tune->failed = true;
    tune->error = result.status.message();
  } else {
    tune->positions = result.outcome.config_positions;
    tune->improvement = result.outcome.true_improvement;
    tune->calls_used = result.outcome.calls_used;
    tune->tune_seconds =
        result.outcome.whatif_seconds + result.outcome.other_seconds;
  }
}

void ServeDaemon::EnsureAllResults() {
  for (PendingTune& tune : pending_) EnsureResult(&tune);
}

ServeCheckpoint ServeDaemon::BuildCheckpoint() {
  EnsureAllResults();
  ServeCheckpoint ckpt;
  ckpt.events_processed = std::max(events_processed_, skip_lines_);
  ckpt.clock = clock_;
  ckpt.next_tune_id = next_tune_id_;
  ckpt.queries = queries_;
  ckpt.tunes_submitted = tunes_submitted_;
  ckpt.tunes_applied = tunes_applied_;
  ckpt.errors = errors_;
  ckpt.drift_retunes = drift_retunes_;
  ckpt.shipped = shipped_;
  ckpt.rollbacks = rollbacks_;
  ckpt.signal = options_.signal;
  for (const auto& [name, tenant] : tenants_) {
    ServeTenantState t;
    t.name = name;
    t.spec_json = RunSpecToJson(tenant->spec);
    t.queue_quota = tenant->admission.queue_quota();
    t.budget_quota = tenant->admission.budget_quota();
    t.pending = tenant->admission.pending();
    t.budget_used = tenant->admission.budget_used();
    t.generation = tenant->generation;
    t.calib_samples = tenant->calib_samples;
    t.calib_sum = tenant->calib_sum;
    t.deployed = tenant->lifecycle.deployed();
    t.observer_state = tenant->observer.Serialize();
    ckpt.tenants.push_back(std::move(t));
  }
  for (const PendingTune& tune : pending_) {
    ServePendingTune p;
    p.tune_id = tune.tune_id;
    p.tenant = tune.tenant;
    p.origin = tune.origin;
    p.submit_clock = tune.submit_clock;
    p.reserved_budget = tune.reserved_budget;
    p.failed = tune.failed;
    p.error = tune.error;
    p.positions = tune.positions;
    p.improvement = tune.improvement;
    p.calls_used = tune.calls_used;
    p.tune_seconds = tune.tune_seconds;
    ckpt.pending.push_back(std::move(p));
  }
  return ckpt;
}

void ServeDaemon::MaybePeriodicCheckpoint() {
  if (options_.checkpoint_every <= 0 || options_.state_path.empty()) return;
  if (events_processed_ <= skip_lines_) return;
  if (events_processed_ % options_.checkpoint_every != 0) return;
  SaveServeCheckpoint(BuildCheckpoint(), options_.state_path);
}

void ServeDaemon::Finish(std::string* out) {
  ApplyMatured(/*force=*/true, out);
  if (!options_.state_path.empty()) {
    SaveServeCheckpoint(BuildCheckpoint(), options_.state_path);
  }
}

Status ServeDaemon::Shutdown() {
  EnsureAllResults();
  if (options_.state_path.empty()) return Status::Ok();
  return SaveServeCheckpoint(BuildCheckpoint(), options_.state_path);
}

std::string ServeDaemon::DumpState() {
  return SerializeServeCheckpoint(BuildCheckpoint());
}

std::string ServeDaemon::SummaryLine() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "serve: %zu tenants, %" PRId64 " queries, %" PRId64
                " tunes (%" PRId64 " applied, %" PRId64 " drift), %" PRId64
                " shipped, %" PRId64 " rollbacks, %" PRId64
                " errors, clock %.10g",
                tenants_.size(), queries_, tunes_submitted_, tunes_applied_,
                drift_retunes_, shipped_, rollbacks_, errors_, clock_);
  return buf;
}

}  // namespace bati
