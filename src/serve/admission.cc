#include "serve/admission.h"

#include <algorithm>
#include <string>

namespace bati {

Status TenantAdmission::Admit(int64_t budget) {
  if (pending_ >= queue_quota_) {
    return Status::Unavailable(
        "queue quota exhausted: " + std::to_string(pending_) +
        " tuning runs pending (quota " + std::to_string(queue_quota_) + ")");
  }
  if (budget_quota_ > 0 && budget_used_ + budget > budget_quota_) {
    return Status::FailedPrecondition(
        "budget quota exhausted: " + std::to_string(budget) +
        " what-if units requested, " +
        std::to_string(budget_quota_ - budget_used_) + " of " +
        std::to_string(budget_quota_) + " remaining");
  }
  ++pending_;
  budget_used_ += budget;
  return Status::Ok();
}

void TenantAdmission::Settle(int64_t reserved_budget, int64_t calls_used) {
  pending_ = std::max<int64_t>(0, pending_ - 1);
  const int64_t refund = reserved_budget - std::min(calls_used,
                                                    reserved_budget);
  budget_used_ = std::max<int64_t>(0, budget_used_ - refund);
}

}  // namespace bati
