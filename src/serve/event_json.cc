#include "serve/event_json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/strings.h"
#include "session/spec_json.h"

namespace bati {

namespace {

/// One raw key/value token of the event line. `raw` is the exact value
/// substring, kept so residual (non-serve) keys can be reassembled into a
/// spec object for session/spec_json.h without re-encoding.
struct RawField {
  std::string key;
  std::string raw;
  bool is_string = false;
  bool is_bool = false;
  bool is_number = false;
  std::string str;  ///< decoded, when is_string
  double num = 0.0;
  bool boolean = false;
};

struct Cursor {
  const std::string& text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

Status ParseStringToken(Cursor* c, std::string* raw, std::string* decoded) {
  c->SkipSpace();
  const size_t start = c->pos;
  if (!c->Consume('"')) {
    return Status::InvalidArgument("expected '\"' at position " +
                                   std::to_string(c->pos));
  }
  decoded->clear();
  while (c->pos < c->text.size()) {
    char ch = c->text[c->pos++];
    if (ch == '"') {
      *raw = c->text.substr(start, c->pos - start);
      return Status::Ok();
    }
    if (ch == '\\') {
      if (c->pos >= c->text.size()) break;
      char esc = c->text[c->pos++];
      if (esc == '"' || esc == '\\' || esc == '/') {
        decoded->push_back(esc);
      } else {
        return Status::InvalidArgument(
            std::string("unsupported escape '\\") + esc + "' in string");
      }
      continue;
    }
    decoded->push_back(ch);
  }
  return Status::InvalidArgument("unterminated string");
}

Status ParseRawField(Cursor* c, RawField* out) {
  c->SkipSpace();
  if (c->pos >= c->text.size()) {
    return Status::InvalidArgument("missing value");
  }
  const char ch = c->text[c->pos];
  if (ch == '"') {
    out->is_string = true;
    return ParseStringToken(c, &out->raw, &out->str);
  }
  if (ch == 't' || ch == 'f') {
    out->is_bool = true;
    if (c->text.compare(c->pos, 4, "true") == 0) {
      out->boolean = true;
      out->raw = "true";
      c->pos += 4;
      return Status::Ok();
    }
    if (c->text.compare(c->pos, 5, "false") == 0) {
      out->boolean = false;
      out->raw = "false";
      c->pos += 5;
      return Status::Ok();
    }
    return Status::InvalidArgument("expected true or false at position " +
                                   std::to_string(c->pos));
  }
  if (ch == '{' || ch == '[') {
    return Status::InvalidArgument("nested objects/arrays are not allowed");
  }
  errno = 0;
  const char* begin = c->text.c_str() + c->pos;
  char* end = nullptr;
  const double parsed = std::strtod(begin, &end);
  if (end == begin || errno != 0) {
    return Status::InvalidArgument("malformed number at position " +
                                   std::to_string(c->pos));
  }
  out->is_number = true;
  out->num = parsed;
  out->raw = std::string(begin, static_cast<size_t>(end - begin));
  c->pos += static_cast<size_t>(end - begin);
  return Status::Ok();
}

Status Tokenize(const std::string& line, std::vector<RawField>* fields) {
  Cursor c{line};
  if (!c.Consume('{')) {
    return Status::InvalidArgument("event line must be a JSON object");
  }
  bool first = true;
  while (!c.Consume('}')) {
    if (!first && !c.Consume(',')) {
      return Status::InvalidArgument("expected ',' or '}' at position " +
                                     std::to_string(c.pos));
    }
    first = false;
    RawField field;
    std::string raw_key;
    Status st = ParseStringToken(&c, &raw_key, &field.key);
    if (!st.ok()) return st;
    if (!c.Consume(':')) {
      return Status::InvalidArgument("expected ':' after \"" + field.key +
                                     "\"");
    }
    st = ParseRawField(&c, &field);
    if (!st.ok()) return st;
    fields->push_back(std::move(field));
  }
  if (!c.AtEnd()) {
    return Status::InvalidArgument("trailing characters after object");
  }
  return Status::Ok();
}

Status WantEventString(const RawField& f, std::string* out) {
  if (!f.is_string) {
    return Status::InvalidArgument("\"" + f.key + "\" must be a string");
  }
  *out = f.str;
  return Status::Ok();
}

Status WantEventInt(const RawField& f, int64_t min, int64_t* out) {
  if (!f.is_number) {
    return Status::InvalidArgument("\"" + f.key + "\" must be a number");
  }
  const int64_t integer = static_cast<int64_t>(f.num);
  if (static_cast<double>(integer) != f.num) {
    return Status::InvalidArgument("\"" + f.key + "\" must be an integer");
  }
  if (integer < min) {
    return Status::InvalidArgument("\"" + f.key + "\" out of range");
  }
  *out = integer;
  return Status::Ok();
}

Status WantEventNumber(const RawField& f, double min, double* out) {
  if (!f.is_number) {
    return Status::InvalidArgument("\"" + f.key + "\" must be a number");
  }
  if (f.num < min) {
    return Status::InvalidArgument("\"" + f.key + "\" out of range");
  }
  *out = f.num;
  return Status::Ok();
}

Status WantEventBool(const RawField& f, bool* out) {
  if (!f.is_bool) {
    return Status::InvalidArgument("\"" + f.key + "\" must be true or "
                                   "false");
  }
  *out = f.boolean;
  return Status::Ok();
}

/// Parses a deploy config: space-separated non-negative candidate
/// positions ("1 4 7"); the empty string is the base (no-index)
/// configuration. Duplicates are rejected so a diff is well-defined.
Status ParseConfigString(const std::string& text,
                         std::vector<size_t>* positions) {
  positions->clear();
  size_t last = static_cast<size_t>(-1);
  bool have_last = false;
  for (const std::string& token : Split(Trim(text), ' ')) {
    if (token.empty()) continue;
    errno = 0;
    char* end = nullptr;
    const long long parsed = std::strtoll(token.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' || parsed < 0) {
      return Status::InvalidArgument("\"config\" must be space-separated "
                                     "non-negative positions, got '" +
                                     token + "'");
    }
    const size_t pos = static_cast<size_t>(parsed);
    if (have_last && pos <= last) {
      return Status::InvalidArgument(
          "\"config\" positions must be strictly ascending");
    }
    positions->push_back(pos);
    last = pos;
    have_last = true;
  }
  return Status::Ok();
}

Status ParseEvent(const std::string& line, ServeEvent* event) {
  *event = ServeEvent();
  std::vector<RawField> fields;
  Status st = Tokenize(line, &fields);
  if (!st.ok()) return st;

  std::string type;
  for (const RawField& f : fields) {
    if (f.key != "type") continue;
    st = WantEventString(f, &type);
    if (!st.ok()) return st;
  }
  if (type.empty()) {
    return Status::InvalidArgument("\"type\" is required");
  }

  bool have_query = false;
  bool have_config = false;
  bool have_seconds = false;
  if (type == "query") {
    event->type = ServeEventType::kQuery;
    for (const RawField& f : fields) {
      int64_t integer = 0;
      if (f.key == "type") {
        continue;
      } else if (f.key == "tenant") {
        st = WantEventString(f, &event->tenant);
      } else if (f.key == "query") {
        st = WantEventInt(f, 0, &integer);
        if (st.ok()) {
          event->query_id = static_cast<int>(integer);
          have_query = true;
        }
      } else if (f.key == "weight") {
        st = WantEventNumber(f, 0.0, &event->weight);
        if (st.ok() && event->weight <= 0.0) {
          st = Status::InvalidArgument("\"weight\" must be positive");
        }
      } else {
        st = Status::InvalidArgument("unknown key \"" + f.key +
                                     "\" for a query event");
      }
      if (!st.ok()) return st;
    }
    if (!have_query) {
      return Status::InvalidArgument("query events require \"query\"");
    }
  } else if (type == "register") {
    event->type = ServeEventType::kRegister;
    // Residual keys are the tuning template, re-encoded verbatim for the
    // strict RunSpec parser so serve accepts exactly the bati_batch spec
    // vocabulary (budget, k, seed, governor, faults, ...).
    std::string spec_json = "{";
    for (const RawField& f : fields) {
      if (f.key == "type") {
        continue;
      } else if (f.key == "tenant") {
        st = WantEventString(f, &event->tenant);
      } else if (f.key == "queue_quota") {
        st = WantEventInt(f, 1, &event->queue_quota);
      } else if (f.key == "budget_quota") {
        st = WantEventInt(f, 0, &event->budget_quota);
      } else if (f.key == "tune") {
        st = WantEventBool(f, &event->tune_on_register);
      } else {
        if (spec_json.size() > 1) spec_json.push_back(',');
        spec_json += "\"" + f.key + "\":" + f.raw;
      }
      if (!st.ok()) return st;
    }
    spec_json.push_back('}');
    st = ParseRunSpecJson(spec_json, &event->spec);
    if (!st.ok()) return st;
  } else if (type == "tune") {
    event->type = ServeEventType::kTune;
    for (const RawField& f : fields) {
      if (f.key == "type") {
        continue;
      } else if (f.key == "tenant") {
        st = WantEventString(f, &event->tenant);
      } else if (f.key == "budget") {
        st = WantEventInt(f, 0, &event->budget_override);
      } else if (f.key == "seed") {
        st = WantEventInt(f, 0, &event->seed_override);
      } else if (f.key == "algorithm") {
        st = WantEventString(f, &event->algorithm_override);
        if (st.ok() && !IsKnownAlgorithm(event->algorithm_override)) {
          st = Status::InvalidArgument("unknown algorithm \"" +
                                       event->algorithm_override + "\"");
        }
      } else {
        st = Status::InvalidArgument("unknown key \"" + f.key +
                                     "\" for a tune event");
      }
      if (!st.ok()) return st;
    }
  } else if (type == "deploy") {
    event->type = ServeEventType::kDeploy;
    for (const RawField& f : fields) {
      if (f.key == "type") {
        continue;
      } else if (f.key == "tenant") {
        st = WantEventString(f, &event->tenant);
      } else if (f.key == "config") {
        std::string text;
        st = WantEventString(f, &text);
        if (st.ok()) st = ParseConfigString(text, &event->config);
        if (st.ok()) have_config = true;
      } else {
        st = Status::InvalidArgument("unknown key \"" + f.key +
                                     "\" for a deploy event");
      }
      if (!st.ok()) return st;
    }
    if (!have_config) {
      return Status::InvalidArgument("deploy events require \"config\"");
    }
  } else if (type == "advance") {
    event->type = ServeEventType::kAdvance;
    for (const RawField& f : fields) {
      if (f.key == "type") {
        continue;
      } else if (f.key == "seconds") {
        st = WantEventNumber(f, 0.0, &event->seconds);
        if (st.ok()) have_seconds = true;
        if (st.ok() && event->seconds <= 0.0) {
          st = Status::InvalidArgument("\"seconds\" must be positive");
        }
      } else {
        st = Status::InvalidArgument("unknown key \"" + f.key +
                                     "\" for an advance event");
      }
      if (!st.ok()) return st;
    }
    if (!have_seconds) {
      return Status::InvalidArgument("advance events require \"seconds\"");
    }
  } else if (type == "drain") {
    event->type = ServeEventType::kDrain;
    for (const RawField& f : fields) {
      if (f.key != "type") {
        return Status::InvalidArgument("unknown key \"" + f.key +
                                       "\" for a drain event");
      }
    }
  } else {
    return Status::InvalidArgument("unknown event type \"" + type + "\"");
  }

  const bool needs_tenant = event->type == ServeEventType::kQuery ||
                            event->type == ServeEventType::kRegister ||
                            event->type == ServeEventType::kTune ||
                            event->type == ServeEventType::kDeploy;
  if (needs_tenant && event->tenant.empty()) {
    return Status::InvalidArgument("\"tenant\" is required");
  }
  return Status::Ok();
}

}  // namespace

Status ParseServeEventJson(const std::string& line, int lineno,
                           ServeEvent* event) {
  Status st = ParseEvent(line, event);
  if (st.ok()) return st;
  return Status::InvalidArgument("line " + std::to_string(lineno) + ": " +
                                 st.message());
}

}  // namespace bati
