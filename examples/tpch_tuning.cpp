// Tunes the TPC-H workload with every algorithm in the library under the
// same what-if budget, and prints a side-by-side comparison — a miniature
// version of the paper's end-to-end evaluation (Figures 8-13).
//
// Usage: tpch_tuning [budget] [K]

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.h"
#include "mcts/mcts_tuner.h"

int main(int argc, char** argv) {
  using namespace bati;
  int64_t budget = argc > 1 ? std::atoll(argv[1]) : 500;
  int k = argc > 2 ? std::atoi(argv[2]) : 10;

  const WorkloadBundle& bundle = LoadBundle("tpch");
  std::printf("TPC-H: %d queries, %d candidate indexes, budget=%lld, K=%d\n\n",
              bundle.workload.num_queries(), bundle.candidates.size(),
              static_cast<long long>(budget), k);
  std::printf("%-20s %14s %14s %10s %8s\n", "algorithm", "improvement%",
              "derived-est%", "calls", "indexes");

  for (const char* algo :
       {"vanilla-greedy", "two-phase-greedy", "autoadmin-greedy",
        "dba-bandits", "no-dba", "dta", "mcts"}) {
    RunSpec spec;
    spec.workload = "tpch";
    spec.algorithm = algo;
    spec.budget = budget;
    spec.max_indexes = k;
    spec.seed = 1;
    RunOutcome outcome = RunOnce(bundle, spec);
    std::printf("%-20s %14.2f %14.2f %10lld %8zu\n", algo,
                outcome.true_improvement, outcome.derived_improvement,
                static_cast<long long>(outcome.calls_used),
                outcome.config_size);
  }

  // Show the winning MCTS configuration in detail.
  RunSpec spec;
  spec.workload = "tpch";
  spec.algorithm = "mcts";
  spec.budget = budget;
  spec.max_indexes = k;
  CostService service(bundle.optimizer.get(), &bundle.workload,
                      &bundle.candidates.indexes, budget);
  TuningContext ctx;
  ctx.workload = &bundle.workload;
  ctx.candidates = &bundle.candidates;
  ctx.constraints.max_indexes = k;
  MctsOptions options;
  MctsTuner tuner(ctx, options);
  TuningResult result = tuner.Tune(service);
  std::printf("\nMCTS recommendation:\n");
  const Database& db = *bundle.workload.database;
  for (const Index& ix : service.Materialize(result.best_config)) {
    std::printf("  %-45s %8.1f MB\n", ix.Name(db).c_str(),
                ix.SizeBytes(db) / 1e6);
  }
  return 0;
}
