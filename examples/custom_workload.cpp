// Shows the lower-level API surface on a custom schema: what-if plan
// explanations, the derived-cost machinery, and the budget allocation
// matrix layout trace (paper Section 3.2) of a tuning run.

#include <cstdio>
#include <memory>

#include "mcts/mcts_tuner.h"
#include "optimizer/explain_format.h"
#include "tuner/candidate_gen.h"
#include "whatif/cost_service.h"
#include "workload/binder.h"
#include "workload/schema_util.h"

namespace {

const char* AccessName(bati::AccessPathKind kind) {
  switch (kind) {
    case bati::AccessPathKind::kHeapScan:
      return "heap scan";
    case bati::AccessPathKind::kIndexSeek:
      return "index seek";
    case bati::AccessPathKind::kIndexOnlyScan:
      return "index-only scan";
  }
  return "?";
}

const char* JoinName(bati::JoinMethod method) {
  switch (method) {
    case bati::JoinMethod::kNone:
      return "-";
    case bati::JoinMethod::kHashJoin:
      return "hash join";
    case bati::JoinMethod::kIndexNestedLoop:
      return "index nested loops";
    case bati::JoinMethod::kMergeJoin:
      return "merge join";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace bati;

  // A sensor telemetry schema: one big append-only readings table, two
  // dimension tables.
  auto db = std::make_shared<Database>("telemetry");
  {
    Table readings("readings", 50'000'000);
    readings.AddColumn(schema_util::IntCol("r_sensor", 10'000, 0, 10'000));
    readings.AddColumn(schema_util::IntCol("r_ts", 5'000'000, 0, 5'000'000));
    readings.AddColumn(schema_util::NumCol("r_value", 1'000'000, -50, 150));
    readings.AddColumn(schema_util::IntCol("r_quality", 5, 0, 5));
    BATI_CHECK_OK(db->AddTable(std::move(readings)).status());

    Table sensors("sensors", 10'000);
    sensors.AddColumn(schema_util::KeyCol("s_id", 10'000));
    sensors.AddColumn(schema_util::IntCol("s_site", 300, 0, 300));
    sensors.AddColumn(schema_util::StrCol("s_model", 20, 40));
    BATI_CHECK_OK(db->AddTable(std::move(sensors)).status());

    Table sites("sites", 300);
    sites.AddColumn(schema_util::KeyCol("t_id", 300));
    sites.AddColumn(schema_util::StrCol("t_region", 12, 8));
    BATI_CHECK_OK(db->AddTable(std::move(sites)).status());
  }

  Workload workload = schema_util::BindAll(
      "telemetry", db,
      {
          "SELECT r_value FROM readings WHERE r_sensor = 1234 AND "
          "r_ts BETWEEN 4000000 AND 4100000",
          "SELECT t_region, AVG(r_value) FROM readings, sensors, sites "
          "WHERE r_sensor = s_id AND s_site = t_id AND t_region = 'west' "
          "GROUP BY t_region",
          "SELECT COUNT(*) FROM readings WHERE r_quality = 0",
      },
      {"point_lookup", "regional_rollup", "bad_readings"});

  CandidateSet candidates = GenerateCandidates(workload);
  WhatIfOptimizer optimizer(db);

  // ---- Plan explanations: before and after an index. ----
  const Query& rollup = workload.queries[1];
  std::printf("Q2 plan with no indexes:\n");
  PlanExplanation before = optimizer.Explain(rollup, {});
  for (const PlanStep& step : before.steps) {
    std::printf("  scan %-10s %-16s %-20s cost=%10.1f rows=%.0f\n",
                db->table(rollup.scans[static_cast<size_t>(step.scan_id)]
                              .table_id)
                    .name()
                    .c_str(),
                AccessName(step.access), JoinName(step.join), step.step_cost,
                step.output_rows);
  }
  std::printf("  total=%.1f\n\n", before.total_cost);

  std::printf("Q2 plan with all candidate indexes:\n");
  PlanExplanation after = optimizer.Explain(rollup, candidates.indexes);
  for (const PlanStep& step : after.steps) {
    std::printf("  scan %-10s %-16s %-20s cost=%10.1f rows=%.0f\n",
                db->table(rollup.scans[static_cast<size_t>(step.scan_id)]
                              .table_id)
                    .name()
                    .c_str(),
                AccessName(step.access), JoinName(step.join), step.step_cost,
                step.output_rows);
  }
  std::printf("  total=%.1f  (%.1fx cheaper)\n\n", after.total_cost,
              before.total_cost / after.total_cost);

  // ---- A budgeted tuning run, then the layout trace. ----
  CostService service(&optimizer, &workload, &candidates.indexes,
                      /*budget=*/25);
  TuningContext ctx;
  ctx.workload = &workload;
  ctx.candidates = &candidates;
  ctx.constraints.max_indexes = 3;
  MctsOptions options;
  options.seed = 7;
  MctsTuner tuner(ctx, options);
  TuningResult result = tuner.Tune(service);

  std::printf("budget allocation matrix layout (the %zu what-if calls):\n",
              service.layout().size());
  for (size_t i = 0; i < service.layout().size(); ++i) {
    const LayoutEntry& e = service.layout()[i];
    std::printf("  call %2zu: query=%-15s config=%s\n", i + 1,
                workload.queries[static_cast<size_t>(e.query_id)].name.c_str(),
                e.config.ToString().c_str());
  }
  std::printf("\nfinal recommendation (%zu indexes), improvement %.1f%%:\n",
              result.best_config.count(),
              service.TrueImprovement(result.best_config));
  for (const Index& ix : service.Materialize(result.best_config)) {
    std::printf("  %s\n", ix.Name(*db).c_str());
  }
  return 0;
}
