// Quickstart: tune a small workload with a budget of what-if calls.
//
// Demonstrates the whole public pipeline: define a statistics-only database,
// write SQL, bind it into a workload, generate candidate indexes, and run the
// MCTS budget-aware tuner against a metered what-if cost service.

#include <cstdio>
#include <memory>

#include "mcts/mcts_tuner.h"
#include "tuner/candidate_gen.h"
#include "whatif/cost_service.h"
#include "workload/binder.h"
#include "workload/schema_util.h"

int main() {
  using namespace bati;

  // 1. Describe the database: tables, row counts, per-column statistics.
  //    (No data is loaded — like a real what-if API, the tuner only needs
  //    optimizer statistics.)
  auto db = std::make_shared<Database>("shop");
  {
    Table orders("orders", 5'000'000);
    orders.AddColumn(schema_util::KeyCol("o_id", 5'000'000));
    orders.AddColumn(schema_util::IntCol("o_customer", 200'000, 0, 200'000));
    orders.AddColumn(schema_util::DateCol("o_date", 1'500));
    orders.AddColumn(schema_util::NumCol("o_total", 1'000'000, 1, 10'000));
    orders.AddColumn(schema_util::StrCol("o_status", 1, 4));
    BATI_CHECK_OK(db->AddTable(std::move(orders)).status());

    Table customers("customers", 200'000);
    customers.AddColumn(schema_util::KeyCol("c_id", 200'000));
    customers.AddColumn(schema_util::StrCol("c_segment", 10, 5));
    customers.AddColumn(schema_util::StrCol("c_country", 2, 60));
    BATI_CHECK_OK(db->AddTable(std::move(customers)).status());
  }

  // 2. The workload: plain SQL text, parsed and bound by the library.
  Workload workload = schema_util::BindAll(
      "shop", db,
      {
          "SELECT o_id, o_total FROM orders WHERE o_status = 'OPEN' AND "
          "o_date > 1400",
          "SELECT c_segment, SUM(o_total) FROM orders, customers WHERE "
          "o_customer = c_id AND c_country = 'DE' GROUP BY c_segment",
          "SELECT COUNT(*) FROM orders WHERE o_total BETWEEN 5000 AND 6000",
      },
      {"open_orders", "revenue_by_segment", "big_orders"});

  // 3. Candidate indexes (Figure 3 of the paper: indexable columns ->
  //    per-query candidates -> workload union).
  CandidateSet candidates = GenerateCandidates(workload);
  std::printf("candidate indexes: %d\n", candidates.size());
  for (const Index& ix : candidates.indexes) {
    std::printf("  %s (%.1f MB)\n", ix.Name(*db).c_str(),
                ix.SizeBytes(*db) / 1e6);
  }

  // 4. Tune under a budget of 40 what-if calls, at most 3 indexes.
  WhatIfOptimizer optimizer(db);
  CostService service(&optimizer, &workload, &candidates.indexes,
                      /*budget=*/40);
  TuningContext ctx;
  ctx.workload = &workload;
  ctx.candidates = &candidates;
  ctx.constraints.max_indexes = 3;

  MctsTuner tuner(ctx);
  TuningResult result = tuner.Tune(service);

  std::printf("\nwhat-if calls used: %lld / 40\n",
              static_cast<long long>(service.calls_made()));
  std::printf("recommended configuration (%zu indexes):\n",
              result.best_config.count());
  for (const Index& ix : service.Materialize(result.best_config)) {
    std::printf("  CREATE INDEX %s\n", ix.Name(*db).c_str());
  }
  std::printf("estimated improvement (derived): %.1f%%\n",
              result.derived_improvement);
  std::printf("actual improvement (ground truth): %.1f%%\n",
              service.TrueImprovement(result.best_config));
  return 0;
}
