// Sweeps the what-if budget for one workload and algorithm, printing the
// improvement curve — how configuration quality buys into the budget, the
// central trade-off the paper studies.
//
// Usage: budget_sweep [workload] [algorithm] [K]
//   workload  - toy | tpch | tpcds | job | real-d | real-m   (default tpch)
//   algorithm - any tuner name, e.g. mcts, vanilla-greedy    (default mcts)
//   K         - cardinality constraint                       (default 10)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace bati;
  std::string workload = argc > 1 ? argv[1] : "tpch";
  std::string algorithm = argc > 2 ? argv[2] : "mcts";
  int k = argc > 3 ? std::atoi(argv[3]) : 10;

  const WorkloadBundle& bundle = LoadBundle(workload);
  if (bundle.workload.database == nullptr) {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 1;
  }
  std::printf("%s on %s (K=%d, %d candidates)\n", algorithm.c_str(),
              workload.c_str(), k, bundle.candidates.size());
  std::printf("%-10s %14s %10s %14s\n", "budget", "improvement%", "stddev",
              "sim-minutes");

  const std::vector<uint64_t> seeds = {1, 2, 3};
  for (int64_t budget : {50, 100, 200, 500, 1000, 2000}) {
    RunningStats improvement;
    double minutes = 0.0;
    for (uint64_t seed : seeds) {
      RunSpec spec;
      spec.workload = workload;
      spec.algorithm = algorithm;
      spec.budget = budget;
      spec.max_indexes = k;
      spec.seed = seed;
      RunOutcome outcome = RunOnce(bundle, spec);
      improvement.Add(outcome.true_improvement);
      minutes = (outcome.whatif_seconds + outcome.other_seconds) / 60.0;
    }
    std::printf("%-10lld %14.2f %10.2f %14.1f\n",
                static_cast<long long>(budget), improvement.mean(),
                improvement.stddev(), minutes);
  }
  return 0;
}
