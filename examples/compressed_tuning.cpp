// Demonstrates workload compression + time budgets: compress TPC-DS's 99
// queries to their structural templates, derive a what-if budget from a
// wall-clock tuning-time budget, tune the compressed workload, and verify
// the recommendation transfers to the full workload.

#include <cstdio>

#include "harness/experiment.h"
#include "mcts/mcts_tuner.h"
#include "tuner/time_budget.h"
#include "whatif/cost_service.h"
#include "workload/compression.h"

int main(int argc, char** argv) {
  using namespace bati;
  double minutes = argc > 1 ? std::atof(argv[1]) : 10.0;

  const WorkloadBundle& full = LoadBundle("tpcds");
  CompressedWorkload compressed = CompressWorkload(full.workload);
  std::printf("TPC-DS: %d queries -> %d structural templates ",
              full.workload.num_queries(), compressed.workload.num_queries());
  std::printf("(weights: ");
  for (size_t i = 0; i < compressed.weights.size() && i < 5; ++i) {
    std::printf("%s%.0f", i ? "," : "", compressed.weights[i]);
  }
  std::printf(",...)\n");

  // Map the time budget to what-if calls for the *compressed* workload.
  int64_t budget = CallBudgetForTime(*full.optimizer, compressed.workload,
                                     minutes * 60.0);
  std::printf("time budget %.0f min -> %lld what-if calls\n\n", minutes,
              static_cast<long long>(budget));

  CandidateSet candidates = GenerateCandidates(compressed.workload);
  CostService service(full.optimizer.get(), &compressed.workload,
                      &candidates.indexes, budget);
  TuningContext ctx;
  ctx.workload = &compressed.workload;
  ctx.candidates = &candidates;
  ctx.constraints.max_indexes = 10;
  MctsTuner tuner(ctx);
  TuningResult result = tuner.Tune(service);

  std::printf("improvement on the compressed workload: %.2f%%\n",
              service.TrueImprovement(result.best_config));

  // Evaluate the physical recommendation against the full 99 queries.
  std::vector<Index> chosen = service.Materialize(result.best_config);
  double base = 0.0, tuned = 0.0;
  for (const Query& q : full.workload.queries) {
    base += full.optimizer->Cost(q, {});
    tuned += full.optimizer->Cost(q, chosen);
  }
  std::printf("improvement transferred to the full workload: %.2f%%\n",
              (1.0 - tuned / base) * 100.0);
  std::printf("what-if calls spent: %lld (vs ~%lldx more to evaluate each "
              "template instance separately)\n",
              static_cast<long long>(service.calls_made()),
              static_cast<long long>(full.workload.num_queries() /
                                     compressed.workload.num_queries()));
  return 0;
}
