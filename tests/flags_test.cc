// Tests for the shared strict CLI flag table (common/flags.h) that
// bati_tune, bati_export, and bati_batch all parse with: the same inputs
// must validate identically across the three tools, so the table itself is
// pinned down here once.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/flags.h"

namespace bati {
namespace {

/// Builds a mutable argv from string literals, with the program name
/// prepended, the way main() receives it.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "test-tool");
    for (std::string& arg : storage_) ptrs_.push_back(arg.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

struct Parsed {
  std::string name = "default";
  bool flag = false;
  int64_t count = 7;
  uint64_t seed = 1;
  double rate = 0.0;
  double factor = 1.0;
  bool metrics = false;
  std::string metrics_file;
};

FlagParser MakeParser(Parsed* out) {
  FlagParser parser;
  parser.AddString("name", &out->name);
  parser.AddBool("flag", &out->flag);
  parser.AddInt64("count", &out->count, /*min=*/1);
  parser.AddUint64("seed", &out->seed);
  parser.AddRate("rate", &out->rate);
  parser.AddDouble("factor", &out->factor, /*min=*/1.0);
  parser.AddOptionalValue("metrics", &out->metrics, &out->metrics_file);
  return parser;
}

TEST(FlagParserTest, ParsesBothValueSyntaxes) {
  Parsed out;
  FlagParser parser = MakeParser(&out);
  Argv argv({"--name", "alpha", "--count=42", "--flag", "--rate", "0.25",
             "--seed=9", "--factor", "2.5"});
  EXPECT_TRUE(parser.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(out.name, "alpha");
  EXPECT_EQ(out.count, 42);
  EXPECT_TRUE(out.flag);
  EXPECT_DOUBLE_EQ(out.rate, 0.25);
  EXPECT_EQ(out.seed, 9u);
  EXPECT_DOUBLE_EQ(out.factor, 2.5);
}

TEST(FlagParserTest, DefaultsSurviveWhenFlagsAbsent) {
  Parsed out;
  FlagParser parser = MakeParser(&out);
  Argv argv({});
  EXPECT_TRUE(parser.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(out.name, "default");
  EXPECT_EQ(out.count, 7);
  EXPECT_FALSE(out.flag);
}

TEST(FlagParserTest, RejectsUnknownFlag) {
  Parsed out;
  FlagParser parser = MakeParser(&out);
  Argv argv({"--bogus"});
  EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv()));
}

TEST(FlagParserTest, RejectsMissingValue) {
  Parsed out;
  FlagParser parser = MakeParser(&out);
  Argv argv({"--name"});
  EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv()));
}

TEST(FlagParserTest, RejectsMalformedNumbers) {
  // Strict parsing: the whole token must parse, no atoll-style truncation.
  for (const char* bad : {"abc", "12x", "", "1.5"}) {
    Parsed out;
    FlagParser parser = MakeParser(&out);
    Argv argv({"--count", bad});
    EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv())) << bad;
  }
}

TEST(FlagParserTest, EnforcesBounds) {
  {
    Parsed out;
    FlagParser parser = MakeParser(&out);
    Argv argv({"--count", "0"});  // min is 1
    EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv()));
  }
  {
    Parsed out;
    FlagParser parser = MakeParser(&out);
    Argv argv({"--seed", "-3"});  // unsigned
    EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv()));
  }
  {
    Parsed out;
    FlagParser parser = MakeParser(&out);
    Argv argv({"--rate", "1.5"});  // rates live in [0, 1]
    EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv()));
  }
  {
    Parsed out;
    FlagParser parser = MakeParser(&out);
    Argv argv({"--factor", "0.5"});  // min is 1.0
    EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv()));
  }
}

TEST(FlagParserTest, EqualsFormWorksForEveryValuedKind) {
  Parsed out;
  FlagParser parser = MakeParser(&out);
  Argv argv({"--name=beta", "--count=3", "--seed=11", "--rate=0.5",
             "--factor=4.5"});
  EXPECT_TRUE(parser.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(out.name, "beta");
  EXPECT_EQ(out.count, 3);
  EXPECT_EQ(out.seed, 11u);
  EXPECT_DOUBLE_EQ(out.rate, 0.5);
  EXPECT_DOUBLE_EQ(out.factor, 4.5);
}

TEST(FlagParserTest, EqualsFormStillValidatesStrictly) {
  for (const char* bad :
       {"--count=abc", "--count=0", "--seed=-3", "--rate=1.5"}) {
    Parsed out;
    FlagParser parser = MakeParser(&out);
    Argv argv({bad});
    EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv())) << bad;
  }
}

TEST(FlagParserTest, LastOccurrenceWinsAcrossBothSyntaxes) {
  // Repeating a flag is not an error; the final occurrence decides, no
  // matter which syntax each occurrence used. This is what lets a wrapper
  // script append overrides to a base command line.
  Parsed out;
  FlagParser parser = MakeParser(&out);
  Argv argv({"--name", "first", "--name=second", "--count=2", "--count",
             "9", "--rate=0.75", "--rate", "0.25"});
  EXPECT_TRUE(parser.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(out.name, "second");
  EXPECT_EQ(out.count, 9);
  EXPECT_DOUBLE_EQ(out.rate, 0.25);
}

TEST(FlagParserTest, LastOccurrenceStillRejectsAnyMalformedRepeat) {
  // Every occurrence is validated even though only the last one lands.
  Parsed out;
  FlagParser parser = MakeParser(&out);
  Argv argv({"--count=abc", "--count=9"});
  EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv()));
}

TEST(FlagParserTest, BoolTakesNoValue) {
  Parsed out;
  FlagParser parser = MakeParser(&out);
  Argv argv({"--flag=true"});
  EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv()));
}

TEST(FlagParserTest, OptionalValueForms) {
  {
    Parsed out;
    FlagParser parser = MakeParser(&out);
    Argv argv({"--metrics"});
    EXPECT_TRUE(parser.Parse(argv.argc(), argv.argv()));
    EXPECT_TRUE(out.metrics);
    EXPECT_TRUE(out.metrics_file.empty());
  }
  {
    Parsed out;
    FlagParser parser = MakeParser(&out);
    Argv argv({"--metrics=/tmp/m.json"});
    EXPECT_TRUE(parser.Parse(argv.argc(), argv.argv()));
    EXPECT_TRUE(out.metrics);
    EXPECT_EQ(out.metrics_file, "/tmp/m.json");
  }
  {
    Parsed out;
    FlagParser parser = MakeParser(&out);
    Argv argv({"--metrics="});  // empty file name is an error
    EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv()));
  }
}

TEST(FlagParserTest, HelpReturnsFalseWithHelpSet) {
  for (const char* token : {"--help", "-h"}) {
    Parsed out;
    FlagParser parser = MakeParser(&out);
    Argv argv({token});
    bool help = false;
    EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv(), &help));
    EXPECT_TRUE(help) << token;
  }
  // A parse error is distinguishable from help.
  Parsed out;
  FlagParser parser = MakeParser(&out);
  Argv argv({"--bogus"});
  bool help = true;
  EXPECT_FALSE(parser.Parse(argv.argc(), argv.argv(), &help));
  EXPECT_FALSE(help);
}

TEST(FlagParserTest, StrictHelpersParseWholeToken) {
  int64_t i = 0;
  EXPECT_TRUE(ParseInt64Flag("--x", "-12", &i));
  EXPECT_EQ(i, -12);
  EXPECT_FALSE(ParseInt64Flag("--x", "12 ", &i));
  EXPECT_FALSE(ParseInt64Flag("--x", "", &i));
  uint64_t u = 0;
  EXPECT_TRUE(ParseUint64Flag("--x", "12", &u));
  EXPECT_FALSE(ParseUint64Flag("--x", "-1", &u));
  double d = 0.0;
  EXPECT_TRUE(ParseDoubleFlag("--x", "2.5e-3", &d));
  EXPECT_DOUBLE_EQ(d, 2.5e-3);
  EXPECT_FALSE(ParseDoubleFlag("--x", "2.5q", &d));
  EXPECT_TRUE(ParseRateFlag("--x", "1.0", &d));
  EXPECT_FALSE(ParseRateFlag("--x", "-0.1", &d));
}

}  // namespace
}  // namespace bati
