// Tests for parenthesized OR disjunction groups in the SQL subset.

#include <memory>

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "optimizer/what_if.h"
#include "tuner/candidate_gen.h"
#include "workload/binder.h"
#include "workload/schema_util.h"

namespace bati {
namespace {

using schema_util::IntCol;

std::shared_ptr<Database> Db() {
  auto db = std::make_shared<Database>("db");
  Table t("t", 100000);
  t.AddColumn(IntCol("a", 100, 0, 100));
  t.AddColumn(IntCol("b", 1000, 0, 1000));
  BATI_CHECK_OK(db->AddTable(std::move(t)).status());
  Table u("u", 50000);
  u.AddColumn(IntCol("c", 1000, 0, 1000));
  BATI_CHECK_OK(db->AddTable(std::move(u)).status());
  return db;
}

TEST(OrParsing, GroupBecomesOneConjunctWithDisjuncts) {
  auto stmt = sql::Parse(
      "SELECT a FROM t WHERE (a = 1 OR a = 2 OR b > 900) AND b < 500");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->where.size(), 2u);
  EXPECT_EQ(stmt->where[0].or_disjuncts.size(), 2u);
  EXPECT_TRUE(stmt->where[1].or_disjuncts.empty());
}

TEST(OrParsing, RoundTripsThroughToSql) {
  auto stmt = sql::Parse("SELECT a FROM t WHERE (a = 1 OR b BETWEEN 2 AND 5)");
  ASSERT_TRUE(stmt.ok());
  std::string rendered = sql::ToSql(stmt.value());
  EXPECT_NE(rendered.find("(a = 1 OR b BETWEEN 2 AND 5)"), std::string::npos);
  auto reparsed = sql::Parse(rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered;
  EXPECT_EQ(sql::ToSql(reparsed.value()), rendered);
}

TEST(OrParsing, ParenthesesWithoutOrRejected) {
  EXPECT_FALSE(sql::Parse("SELECT a FROM t WHERE (a = 1)").ok());
}

TEST(OrBinding, UnionSelectivity) {
  auto db = Db();
  auto q = BindSql("SELECT a FROM t WHERE (a = 1 OR a = 2)", *db);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->num_filters(), 1);
  EXPECT_EQ(q->filters[0].kind, FilterKind::kOr);
  // 1 - (1 - 0.01)^2 = 0.0199
  EXPECT_NEAR(q->filters[0].selectivity, 0.0199, 1e-6);
}

TEST(OrBinding, MixedPredicateKindsInsideGroup) {
  auto db = Db();
  auto q = BindSql(
      "SELECT a FROM t WHERE (a = 1 OR b BETWEEN 0 AND 100 OR b IN (1, 2))",
      *db);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->num_filters(), 1);
  // union of 0.01, 0.1, 0.002
  EXPECT_GT(q->filters[0].selectivity, 0.1);
  EXPECT_LT(q->filters[0].selectivity, 0.12);
}

TEST(OrBinding, CrossTableDisjunctsRejected) {
  auto db = Db();
  auto q = BindSql("SELECT a FROM t, u WHERE (a = 1 OR c = 2) AND b = c",
                   *db);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kUnimplemented);
}

TEST(OrBinding, JoinInsideOrRejected) {
  auto db = Db();
  auto q = BindSql("SELECT a FROM t, u WHERE (b = c OR a = 1)", *db);
  EXPECT_FALSE(q.ok());
}

TEST(OrBinding, OrFilterIsNotSargable) {
  // An OR filter must not be used as an index seek prefix: the optimizer
  // should keep the heap scan even with an index on `a`.
  auto db = Db();
  auto q = BindSql("SELECT a FROM t WHERE (a = 1 OR b = 2)", *db);
  ASSERT_TRUE(q.ok());
  WhatIfOptimizer opt(db);
  Index ix;
  ix.table_id = 0;
  ix.key_columns = {0};
  PlanExplanation plan = opt.Explain(*q, {ix});
  EXPECT_EQ(plan.steps[0].access, AccessPathKind::kHeapScan);
}

TEST(OrBinding, WholeQueryStillTunes) {
  auto db = Db();
  Workload w = schema_util::BindAll(
      "orwl", db,
      {"SELECT a, b FROM t WHERE (a = 1 OR a = 7) AND b < 100"}, {"q1"});
  CandidateSet candidates = GenerateCandidates(w);
  EXPECT_GT(candidates.size(), 0);
  WhatIfOptimizer opt(db);
  double base = opt.Cost(w.queries[0], {});
  double full = opt.Cost(w.queries[0], candidates.indexes);
  EXPECT_LE(full, base);
}

}  // namespace
}  // namespace bati
